//! Differential testing against the brute-force world-enumeration oracle.
//!
//! `pvc_prob::oracle` computes aggregate distributions the dumbest possible
//! way — enumerate all `2^n` worlds of a group's independent tuples and sum
//! world probabilities per outcome. These tests pin the engine's entire
//! evaluation stack (rewriting, compilation, arena evaluation, the adaptive
//! dense/sparse/FFT convolution kernel, threshold folds) against that ground
//! truth, across:
//!
//! * every aggregate operator (MIN, MAX, SUM, COUNT, PROD);
//! * dense-friendly (small contiguous values) and sparse-forcing (scattered
//!   values) data shapes;
//! * fast-path and full-compilation execution;
//! * thread counts 1 vs 4, which must agree **bit-for-bit** — evaluation
//!   per tuple is single-threaded and kernel-path selection (including the
//!   FFT crossover) is a pure function of operand shapes;
//! * one-sided aggregate threshold predicates, whose confidences must match
//!   the oracle's comparison mass over present worlds.
//!
//! Oracle-vs-engine agreement is `1e-9`-bounded (the two sides legitimately
//! accumulate in different orders; the FFT path's documented accuracy policy
//! is also `1e-9`-relative). Seeds can be extended from the environment:
//! `PVC_ORACLE_SEED=<u64>` adds one more instance to every sweep, which is how
//! the CI `oracle-smoke` job runs two extra seeded rounds.

use pvc_suite::prelude::*;
use pvc_suite::prob::oracle;

/// Deterministic pseudo-random stream (splitmix64) — no RNG dependency, stable
/// across platforms, distinct per seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0.05, 0.95)` — away from 0/1 so no tuple is (near-)certain.
    fn prob(&mut self) -> f64 {
        0.05 + 0.9 * (self.next() % 1_000_000) as f64 / 1_000_000.0
    }

    fn value(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Seeds every sweep runs: two fixed, plus `PVC_ORACLE_SEED` when set.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![1, 42];
    if let Ok(extra) = std::env::var("PVC_ORACLE_SEED") {
        seeds.push(extra.parse().expect("PVC_ORACLE_SEED must be a u64"));
    }
    seeds
}

/// A single-group database of `n` independent tuples with values in
/// `[lo, hi]`; returns the `(probability, value)` list the oracle needs.
fn seeded_db(seed: u64, n: usize, lo: i64, hi: i64) -> (Database, Vec<(f64, i64)>) {
    let mut mix = Mix(seed);
    let mut db = Database::new();
    db.create_table("T", Schema::new(["g", "v"]));
    let mut tuples = Vec::with_capacity(n);
    let (t, vars) = db.table_and_vars_mut("T").unwrap();
    for _ in 0..n {
        let p = mix.prob();
        let v = mix.value(lo, hi);
        t.push_independent(vec!["G".into(), v.into()], p, vars);
        tuples.push((p, v));
    }
    (db, tuples)
}

/// The oracle's view of the group for one operator: COUNT aggregates the
/// constant 1 per tuple, everything else the column value.
fn oracle_tuples(op: AggOp, tuples: &[(f64, i64)]) -> Vec<(f64, MonoidValue)> {
    tuples
        .iter()
        .map(|&(p, v)| {
            let contributed = if op.is_count() { 1 } else { v };
            (p, MonoidValue::Fin(contributed))
        })
        .collect()
}

fn agg_query(op: AggOp) -> Query {
    Query::table("T").group_agg(Vec::<String>::new(), vec![AggSpec::new(op, "v", "m")])
}

/// `|engine − oracle|` must stay within `tol` on the union of both supports.
fn assert_dist_close(engine: &MonoidDist, expected: &MonoidDist, tol: f64, context: &str) {
    for (v, p) in expected.iter() {
        assert!(
            (engine.prob(v) - p).abs() <= tol,
            "{context}: P[{v}] engine={} oracle={p}",
            engine.prob(v)
        );
    }
    for (v, p) in engine.iter() {
        assert!(
            (expected.prob(v) - p).abs() <= tol,
            "{context}: P[{v}] engine={p} oracle={}",
            expected.prob(v)
        );
    }
}

#[test]
fn every_aggregate_matches_the_enumeration_oracle() {
    for seed in seeds() {
        // Dense-friendly values (contiguous SUM supports) and scattered values
        // (forces the sparse kernel) — the oracle doesn't care, the engine's
        // kernel takes different paths.
        for (lo, hi, shape) in [(1, 6, "dense"), (1_000, 900_000, "sparse")] {
            let (db, tuples) = seeded_db(seed, 10, lo, hi);
            let engine = Engine::new(db);
            for op in [
                AggOp::Min,
                AggOp::Max,
                AggOp::Sum,
                AggOp::Count,
                AggOp::Prod,
            ] {
                // PROD over ten ~10^5-scale factors overflows i64 in engine
                // and oracle alike; keep it to the small-value shape.
                if op == AggOp::Prod && shape == "sparse" {
                    continue;
                }
                let context = format!("seed={seed} shape={shape} op={op}");
                let result = engine
                    .prepare(&agg_query(op))
                    .unwrap()
                    .execute(&EvalOptions::default())
                    .unwrap();
                assert_eq!(result.tuples.len(), 1, "{context}");
                let expected = oracle::aggregate_by_enumeration(op, &oracle_tuples(op, &tuples));
                assert_dist_close(
                    &result.tuples[0].aggregate_distributions["m"],
                    &expected,
                    1e-9,
                    &context,
                );
                // A group-free aggregate always produces its one row: the
                // empty world contributes the monoid identity, not absence.
                assert!(
                    (result.tuples[0].confidence - 1.0).abs() < 1e-9,
                    "{context}: confidence"
                );
            }
        }
    }
}

#[test]
fn fast_path_and_full_compilation_agree_with_the_oracle() {
    for seed in seeds() {
        let (db, tuples) = seeded_db(seed, 8, 1, 50);
        let engine = Engine::new(db);
        for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
            let prepared = engine.prepare(&agg_query(op)).unwrap();
            let expected = oracle::aggregate_by_enumeration(op, &oracle_tuples(op, &tuples));
            for (label, options) in [
                ("fast", EvalOptions::default()),
                ("compiled", EvalOptions::default().without_fast_path()),
            ] {
                let context = format!("seed={seed} op={op} path={label}");
                let result = prepared.execute(&options).unwrap();
                assert_dist_close(
                    &result.tuples[0].aggregate_distributions["m"],
                    &expected,
                    1e-9,
                    &context,
                );
            }
        }
    }
}

#[test]
fn thread_counts_agree_bitwise_and_match_the_oracle() {
    for seed in seeds() {
        for (lo, hi) in [(1, 6), (200, 90_000)] {
            let (db, tuples) = seeded_db(seed, 12, lo, hi);
            let reference_engine = Engine::new(db.clone());
            for op in [AggOp::Sum, AggOp::Count, AggOp::Min] {
                let prepared = reference_engine.prepare(&agg_query(op)).unwrap();
                let reference = prepared
                    .execute(&EvalOptions::default().with_threads(1))
                    .unwrap();
                // Cold engine per thread count: identical results, bit for bit.
                for threads in [2, 4] {
                    let engine = Engine::new(db.clone());
                    let result = engine
                        .prepare(&agg_query(op))
                        .unwrap()
                        .execute(&EvalOptions::default().with_threads(threads))
                        .unwrap();
                    assert_eq!(
                        reference.tuples[0].aggregate_distributions,
                        result.tuples[0].aggregate_distributions,
                        "seed={seed} op={op} threads={threads}: distributions must be identical"
                    );
                    assert_eq!(
                        reference.tuples[0].confidence.to_bits(),
                        result.tuples[0].confidence.to_bits(),
                        "seed={seed} op={op} threads={threads}: confidence bits"
                    );
                }
                let expected = oracle::aggregate_by_enumeration(op, &oracle_tuples(op, &tuples));
                assert_dist_close(
                    &reference.tuples[0].aggregate_distributions["m"],
                    &expected,
                    1e-9,
                    &format!("seed={seed} op={op} oracle"),
                );
            }
        }
    }
}

#[test]
fn threshold_predicates_match_the_oracle_comparison_mass() {
    for seed in seeds() {
        let (db, tuples) = seeded_db(seed, 9, 1, 20);
        let engine = Engine::new(db);
        for op in [AggOp::Sum, AggOp::Count, AggOp::Min, AggOp::Max] {
            // Group-free aggregates follow the total-distribution semantics
            // (the empty world contributes the identity), so the predicate's
            // confidence is the oracle's comparison mass over *all* worlds.
            let base = oracle::aggregate_by_enumeration(op, &oracle_tuples(op, &tuples));
            for theta in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt] {
                for c in [1, 5, 40] {
                    let query = agg_query(op).select(Predicate::AggCmpConst("m".into(), theta, c));
                    let result = engine
                        .prepare(&query)
                        .unwrap()
                        .execute(&EvalOptions::default())
                        .unwrap();
                    let probs = oracle::comparison_probabilities(&base, MonoidValue::Fin(c));
                    let expected = match theta {
                        CmpOp::Le => probs.le(),
                        CmpOp::Lt => probs.lt,
                        CmpOp::Ge => probs.ge(),
                        CmpOp::Gt => probs.gt,
                        _ => unreachable!(),
                    };
                    let got = result.tuples.first().map_or(0.0, |t| t.confidence);
                    assert!(
                        (got - expected).abs() < 1e-9,
                        "seed={seed} op={op} {theta:?} {c}: engine={got} oracle={expected}"
                    );
                }
            }
        }
    }
}

#[test]
fn grouped_queries_match_per_group_oracles() {
    for seed in seeds() {
        let mut mix = Mix(seed.wrapping_mul(31).wrapping_add(5));
        let mut db = Database::new();
        db.create_table("T", Schema::new(["g", "v"]));
        let mut groups: std::collections::BTreeMap<String, Vec<(f64, i64)>> =
            std::collections::BTreeMap::new();
        {
            let (t, vars) = db.table_and_vars_mut("T").unwrap();
            for i in 0..12 {
                let g = format!("g{}", i % 3);
                let p = mix.prob();
                let v = mix.value(1, 8);
                t.push_independent(vec![g.as_str().into(), v.into()], p, vars);
                groups.entry(g).or_default().push((p, v));
            }
        }
        let engine = Engine::new(db);
        let query = Query::table("T").group_agg(["g"], vec![AggSpec::new(AggOp::Sum, "v", "m")]);
        let result = engine
            .prepare(&query)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(result.tuples.len(), groups.len(), "seed={seed}");
        for tuple in &result.tuples {
            let Value::Str(g) = &tuple.values[0] else {
                panic!("group key must be text");
            };
            let expected = oracle::aggregate_by_enumeration(
                AggOp::Sum,
                &oracle_tuples(AggOp::Sum, &groups[g.as_str()]),
            );
            assert_dist_close(
                &tuple.aggregate_distributions["m"],
                &expected,
                1e-9,
                &format!("seed={seed} group={g}"),
            );
        }
    }
}
