//! Regression contract for chained dense evaluation: a pure SUM/COUNT
//! workload must keep its intermediates dense across every `⊕` node boundary —
//! **zero** `kernel.dense_chain.breaks` — instead of round-tripping
//! dense → sparse → dense at each node exit, which is exactly the defect the
//! chained value stack removed.
//!
//! This test binary exists on its own (rather than inside `tests/obs.rs`)
//! because the assertions read process-wide kernel counters: cargo runs test
//! *binaries* sequentially, so a dedicated binary keeps the counters
//! attributable. The tests inside it still serialise on one mutex.

use pvc_suite::obs;
use pvc_suite::prelude::*;
use std::sync::Mutex;

/// Serialises tests that read the process-wide kernel counters.
static COUNTERS: Mutex<()> = Mutex::new(());

/// `n` independent tuples in one group with values in `[1, spread]`.
fn sum_db(n: usize, spread: i64) -> Database {
    let mut db = Database::new();
    db.create_table("T", Schema::new(["g", "v"]));
    let (t, vars) = db.table_and_vars_mut("T").unwrap();
    for i in 0..n {
        let p = 0.2 + 0.6 * (i as f64 / n as f64);
        let v = 1 + (i as i64 * 7) % spread;
        t.push_independent(vec!["G".into(), v.into()], p, vars);
    }
    db
}

fn run_agg(op: AggOp, db: Database) -> QueryResult {
    let engine = Engine::new(db);
    let query = Query::table("T").group_agg(Vec::<String>::new(), vec![AggSpec::new(op, "v", "m")]);
    engine
        .prepare(&query)
        .unwrap()
        // Force full compilation so the d-tree arena (the chained evaluator)
        // runs instead of a closed-form fast path.
        .execute(&EvalOptions::default().without_fast_path())
        .unwrap()
}

#[test]
fn pure_sum_and_count_chains_never_break() {
    let _guard = COUNTERS.lock().unwrap();
    for op in [AggOp::Sum, AggOp::Count] {
        obs::reset();
        obs::set_metrics_enabled(true);
        let result = run_agg(op, sum_db(14, 5));
        obs::set_metrics_enabled(false);
        assert_eq!(result.tuples.len(), 1);
        let snapshot = obs::snapshot();
        let extends = snapshot.counters["kernel.dense_chain.extends"];
        let breaks = snapshot.counters["kernel.dense_chain.breaks"];
        assert!(
            extends > 0,
            "{op}: a pure additive chain must extend dense intermediates (got {extends})"
        );
        assert_eq!(
            breaks, 0,
            "{op}: a pure additive chain must never demote mid-chain"
        );
        // Every ⊕ node took the dense kernel; none fell back to sparse.
        assert!(snapshot.counters["kernel.conv.dense"] > 0, "{op}");
        assert_eq!(snapshot.counters["kernel.conv.sparse"], 0, "{op}");
    }
}

/// `n` independent tuples whose values are spread over ~10^6, so SUM supports
/// are far too scattered for the dense representation.
fn scattered_db(n: usize) -> Database {
    let mut db = Database::new();
    db.create_table("T", Schema::new(["g", "v"]));
    let (t, vars) = db.table_and_vars_mut("T").unwrap();
    for i in 0..n {
        let v = 1 + (i as i64) * 137_101;
        t.push_independent(vec!["G".into(), v.into()], 0.5, vars);
    }
    db
}

#[test]
fn scattered_sums_take_the_sparse_kernel_and_metrics_stay_observational() {
    let _guard = COUNTERS.lock().unwrap();
    obs::reset();
    obs::set_metrics_enabled(true);
    let counted = run_agg(AggOp::Sum, scattered_db(10));
    obs::set_metrics_enabled(false);
    let snapshot = obs::snapshot();
    // Scattered supports never qualify for the dense chain: every ⊕ node
    // takes the sparse kernel and no chain ever starts (so none can break).
    assert!(snapshot.counters["kernel.conv.sparse"] > 0);
    assert_eq!(snapshot.counters["kernel.dense_chain.extends"], 0);
    // Counters are observational: a metrics-off replay must agree bit for bit.
    let replay = run_agg(AggOp::Sum, scattered_db(10));
    assert_eq!(
        counted.tuples[0].aggregate_distributions, replay.tuples[0].aggregate_distributions,
        "metrics collection must not perturb results"
    );
}
