//! Contract of the observability layer (`pvc_suite::obs`):
//!
//! * **zero-cost when off** — results are bit-identical whether metrics,
//!   tracing and per-query profiles are enabled or not;
//! * **deterministic profiles** — `ExecutionProfile::shape()` is identical
//!   across repeated warm runs and across `threads = 1` vs `threads = 4`;
//! * **coverage** — a Q2-shaped query's profile covers the rewrite, the
//!   evaluation and every tuple's confidence/compile path, with per-sub-d-tree
//!   cache outcomes on a cold run;
//! * **bounded tracing** — a tiny span ring drops oldest spans, never panics;
//! * **catalog** — every metric the pipeline emits uses a documented prefix.
//!
//! Tests that flip the process-wide flags serialise on one mutex: Rust runs
//! `#[test]`s concurrently in one process, and the flags are global.

use pvc_suite::obs;
use pvc_suite::prelude::*;
use std::sync::Mutex;

/// Serialises every test that touches the global metrics/tracing flags.
static OBS_FLAGS: Mutex<()> = Mutex::new(());

/// The paper's Figure-1-style database: suppliers, offers, two product tables.
fn shop_db() -> Database {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for (sid, shop) in [(1, "M&S"), (2, "M&S"), (3, "Gap"), (4, "Gap"), (5, "B&Q")] {
            s.push_independent(vec![(sid as i64).into(), shop.into()], 0.6, vars);
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for (sid, pid, price) in [
            (1, 1, 10),
            (1, 2, 50),
            (2, 1, 11),
            (3, 3, 15),
            (3, 1, 60),
            (4, 2, 10),
            (5, 3, 70),
            (5, 1, 20),
        ] {
            ps.push_independent(
                vec![
                    (sid as i64).into(),
                    (pid as i64).into(),
                    (price as i64).into(),
                ],
                0.5,
                vars,
            );
        }
    }
    for table in ["P1", "P2"] {
        let (p, vars) = db.table_and_vars_mut(table).unwrap();
        for pid in 1..=3 {
            p.push_independent(
                vec![(pid as i64).into(), (pid as i64 * 2).into()],
                0.7,
                vars,
            );
        }
    }
    db
}

/// The paper's Q2 shape: join + union + aggregate + having.
fn q2() -> Query {
    Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(
            Query::table("P1")
                .union(Query::table("P2"))
                .rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
            &[("ps_pid", "p_pid")],
        )
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 60))
}

fn assert_bit_identical(a: &QueryResult, b: &QueryResult) {
    assert_eq!(a.tuples.len(), b.tuples.len());
    for (x, y) in a.tuples.iter().zip(&b.tuples) {
        assert_eq!(x.values, y.values);
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        assert_eq!(
            x.aggregate_distributions.len(),
            y.aggregate_distributions.len()
        );
    }
}

#[test]
fn profiles_are_deterministic_across_runs_and_thread_counts() {
    let engine = Engine::new(shop_db());
    let prepared = engine.prepare(&q2()).unwrap();
    // Warm the caches first: on a warm engine every run observes the same
    // cache outcomes, so the span-tree shape must be identical — across
    // repeated runs and across worker-thread counts.
    prepared.execute(&EvalOptions::default()).unwrap();

    let profile_shape = |threads: usize| {
        let options = EvalOptions::default().with_threads(threads).with_profile();
        let result = prepared.execute(&options).unwrap();
        let profile = result.profile.expect("profile requested");
        assert_eq!(profile.dropped_spans, 0, "warm Q2 fits the default ring");
        profile.shape()
    };

    let first = profile_shape(1);
    let again = profile_shape(1);
    assert_eq!(first, again, "same warm run must produce the same shape");
    let parallel = profile_shape(4);
    assert_eq!(
        first, parallel,
        "threads=4 must profile identically to threads=1 on a warm engine"
    );
}

#[test]
fn cold_q2_profile_covers_rewrite_compile_and_evaluate() {
    let engine = Engine::new(shop_db());
    let prepared = engine.prepare(&q2()).unwrap();
    let result = prepared
        .execute(&EvalOptions::default().with_profile())
        .unwrap();
    let profile = result.profile.expect("profile requested");

    assert_eq!(profile.root.name, "query");
    assert!(
        profile
            .root
            .attrs
            .iter()
            .any(|(k, _)| k == "structural_key"),
        "query root carries the structural key"
    );
    let names: Vec<&str> = profile
        .root
        .children
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(names, ["rewrite", "evaluate"]);
    let evaluate = &profile.root.children[1];
    assert_eq!(
        evaluate.children.len(),
        result.tuples.len(),
        "one tuple span per result tuple"
    );

    let shape = profile.shape();
    let render = profile.render();
    // Every tuple records its kernel dispatch counts and its aggregate's path.
    assert!(shape.contains("kernel_dense="), "{shape}");
    assert!(shape.contains("aggregate"), "{shape}");
    assert!(shape.contains("path="), "{shape}");
    // The cold run compiled at least one sub-d-tree, recording its arena
    // outcome and node count per independent sub-d-tree.
    assert!(shape.contains("compile"), "{shape}");
    assert!(shape.contains("arena=miss"), "{shape}");
    assert!(shape.contains("nodes="), "{shape}");
    // render() adds durations on top of the same tree.
    assert!(render.contains("query"), "{render}");
    assert!(render.contains("ms)"), "{render}");

    // A second, warm execution observes cache hits on the same sub-d-trees.
    let warm = prepared
        .execute(&EvalOptions::default().with_profile())
        .unwrap();
    let warm_shape = warm.profile.expect("profile requested").shape();
    assert!(warm_shape.contains("path=cache"), "{warm_shape}");
}

#[test]
fn observability_never_changes_results() {
    let _guard = OBS_FLAGS.lock().unwrap();
    let engine = Engine::new(shop_db());
    let prepared = engine.prepare(&q2()).unwrap();

    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    let off = prepared.execute(&EvalOptions::default()).unwrap();

    // Metrics + global tracing on: same bits.
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
    let on = prepared.execute(&EvalOptions::default()).unwrap();
    assert_bit_identical(&off, &on);
    assert!(on.profile.is_none(), "profiles are opt-in per query");

    // Full per-query profiling, sequential and parallel: same bits.
    let profiled = prepared
        .execute(&EvalOptions::default().with_profile())
        .unwrap();
    assert_bit_identical(&off, &profiled);
    let profiled_mt = prepared
        .execute(&EvalOptions::default().with_threads(4).with_profile())
        .unwrap();
    assert_bit_identical(&off, &profiled_mt);

    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset();
}

#[test]
fn tiny_span_ring_drops_oldest_without_panic() {
    let trace = obs::Trace::new(2);
    let seqs: Vec<usize> = (0..100).map(|_| trace.start("tuple")).collect();
    for seq in seqs {
        trace.finish(seq);
    }
    assert_eq!(trace.len(), 2, "ring keeps only the newest spans");
    assert_eq!(trace.dropped(), 98);
    // Building profile trees from a truncated ring must not panic; the
    // dropped count survives into the profile.
    let (roots, dropped) = obs::profile_nodes(&trace);
    assert!(!roots.is_empty());
    assert_eq!(dropped, 98);
}

#[test]
fn emitted_metrics_match_the_documented_catalog() {
    let _guard = OBS_FLAGS.lock().unwrap();
    obs::reset();
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);

    let engine = Engine::new(shop_db());
    let prepared = engine.prepare(&q2()).unwrap();
    prepared.execute(&EvalOptions::default()).unwrap();
    prepared
        .execute(&EvalOptions::default().with_threads(2))
        .unwrap();

    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);

    let snapshot = obs::snapshot();
    let documented = |name: &str| {
        [
            "cache.", "kernel.", "arena.", "pool.", "persist.", "serve.", "span.",
        ]
        .iter()
        .any(|prefix| name.starts_with(prefix))
    };
    for name in snapshot.counters.keys() {
        assert!(documented(name), "undocumented counter {name}");
    }
    for name in snapshot.gauges.keys() {
        assert!(documented(name), "undocumented gauge {name}");
    }
    for name in snapshot.histograms.keys() {
        assert!(documented(name), "undocumented histogram {name}");
    }
    // The lifecycle spans of this execution were all counted.
    let count = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    for span in [
        "span.prepare",
        "span.query",
        "span.rewrite",
        "span.evaluate",
    ] {
        assert!(count(span) > 0, "{span} never fired");
    }
    assert!(count("span.tuple") > 0);
    assert!(count("cache.semiring.miss") + count("cache.semiring.hit") > 0);
    obs::reset();
}
