//! Cache-correctness contract of the hash-consed arena + compilation cache:
//!
//! * cold vs. warm equivalence — the same `QueryResult` with and without cache,
//!   across all `Strategy` variants (Q_ind, Q_hie, general compilation);
//! * canonical interning — structurally-equal queries under *different renderings*
//!   (commuted operands) share cache entries, observable as cross-query hits;
//! * LRU eviction — a tiny entry bound evicts but never changes results.

use pvc_suite::prelude::*;

/// A Figure-1-style database: suppliers, offers, and two product tables.
fn shop_db() -> Database {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for (sid, shop) in [(1, "M&S"), (2, "M&S"), (3, "Gap"), (4, "Gap")] {
            s.push_independent(vec![(sid as i64).into(), shop.into()], 0.6, vars);
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for (sid, pid, price) in [
            (1, 1, 10),
            (1, 2, 50),
            (2, 1, 11),
            (3, 3, 15),
            (3, 1, 60),
            (4, 2, 10),
        ] {
            ps.push_independent(
                vec![
                    (sid as i64).into(),
                    (pid as i64).into(),
                    (price as i64).into(),
                ],
                0.5,
                vars,
            );
        }
    }
    {
        let (p1, vars) = db.table_and_vars_mut("P1").unwrap();
        for (pid, weight) in [(1, 4), (2, 8), (3, 7)] {
            p1.push_independent(vec![(pid as i64).into(), (weight as i64).into()], 0.7, vars);
        }
    }
    {
        let (p2, vars) = db.table_and_vars_mut("P2").unwrap();
        p2.push_independent(vec![1i64.into(), 5i64.into()], 0.4, vars);
    }
    db
}

/// Queries covering every `Strategy` variant.
fn strategy_workload() -> Vec<(Query, Strategy)> {
    vec![
        // Q_ind: projection over a tuple-independent table.
        (
            Query::table("S").project(["shop"]),
            Strategy::IndependentFastPath,
        ),
        // Q_hie: join + grouped MAX aggregation.
        (
            Query::table("S")
                .join(Query::table("PS"), &[("sid", "ps_sid")])
                .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]),
            Strategy::HierarchicalFastPath,
        ),
        // General: the same base table used twice (repeating, so no §6 guarantee).
        (
            Query::table("PS")
                .rename(&[
                    ("ps_sid", "a_sid"),
                    ("ps_pid", "a_pid"),
                    ("price", "a_price"),
                ])
                .join(Query::table("PS"), &[("a_pid", "ps_pid")])
                .project(["a_sid"]),
            Strategy::GeneralCompilation,
        ),
    ]
}

fn assert_same_result(a: &QueryResult, b: &QueryResult) {
    assert_eq!(a.tuples.len(), b.tuples.len());
    for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
        assert!(
            (ta.confidence - tb.confidence).abs() < 1e-12,
            "confidence mismatch: {} vs {}",
            ta.confidence,
            tb.confidence
        );
        assert_eq!(
            ta.aggregate_distributions.len(),
            tb.aggregate_distributions.len()
        );
        for (col, da) in &ta.aggregate_distributions {
            let db_ = &tb.aggregate_distributions[col];
            assert!(da.approx_eq(db_, 1e-9), "{col}: {da} vs {db_}");
        }
    }
}

#[test]
fn cold_and_warm_executions_agree_across_strategies() {
    for (query, strategy) in strategy_workload() {
        let engine = Engine::new(shop_db());
        let prepared = engine.prepare(&query).unwrap();
        assert_eq!(prepared.plan().strategy, strategy);
        let cold = prepared.execute(&EvalOptions::default()).unwrap();
        let warm = prepared.execute(&EvalOptions::default()).unwrap();
        assert_same_result(&cold, &warm);
        // The warm run answers from the cache.
        assert!(
            engine.cache_stats().hits > 0,
            "{strategy:?}: warm run should hit the cache"
        );
        // One-shot (cache-less) execution agrees too.
        let once =
            Engine::execute_once(engine.database(), &query, &EvalOptions::default()).unwrap();
        assert_same_result(&cold, &once);
        // And so does compilation with the fast path disabled.
        let slow = prepared
            .execute(&EvalOptions::default().without_fast_path())
            .unwrap();
        assert_same_result(&cold, &slow);
    }
}

#[test]
fn commuted_renderings_share_cache_entries() {
    // Two renderings of the same query: union operands swapped. The rewriting
    // enumerates summands in opposite orders, so only canonical interning makes
    // them structurally equal.
    let engine = Engine::new(shop_db());
    let qa = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(
            Query::table("P1")
                .union(Query::table("P2"))
                .rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
            &[("ps_pid", "p_pid")],
        )
        .project(["shop", "price"]);
    let qb = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(
            Query::table("P2")
                .union(Query::table("P1"))
                .rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
            &[("ps_pid", "p_pid")],
        )
        .project(["shop", "price"]);
    assert_ne!(format!("{qa:?}"), format!("{qb:?}"), "distinct renderings");

    let ra = engine
        .prepare(&qa)
        .unwrap()
        .execute(&EvalOptions::default())
        .unwrap();
    let stats_after_a = engine.cache_stats();
    assert_eq!(stats_after_a.cross_query_hits, 0);

    let rb = engine
        .prepare(&qb)
        .unwrap()
        .execute(&EvalOptions::default())
        .unwrap();
    let stats_after_b = engine.cache_stats();
    assert!(
        stats_after_b.cross_query_hits >= 1,
        "expected cross-query hits from the commuted rendering, got {stats_after_b:?}"
    );
    // No new artifact entries were needed for the second rendering's annotations.
    assert_eq!(stats_after_b.confidences, stats_after_a.confidences);
    assert_same_result(&ra, &rb);
}

#[test]
fn interner_canonicalises_commuted_operands() {
    let mut vars = VarTable::new();
    let x = vars.boolean("x", 0.5);
    let y = vars.boolean("y", 0.5);
    let z = vars.boolean("z", 0.5);
    let mut interner = Interner::new();
    let a =
        interner.intern(&(SemiringExpr::Var(x) * (SemiringExpr::Var(y) + SemiringExpr::Var(z))));
    let b =
        interner.intern(&((SemiringExpr::Var(z) + SemiringExpr::Var(y)) * SemiringExpr::Var(x)));
    assert_eq!(a, b, "commuted operands must intern to the same id");
    assert_eq!(interner.hash(a), interner.hash(b));
}

#[test]
fn tiny_lru_bound_evicts_without_changing_results() {
    let config = CacheConfig {
        max_entries: 2,
        max_bytes: usize::MAX,
    };
    for (query, _) in strategy_workload() {
        let bounded = Engine::with_cache_config(shop_db(), config);
        let unbounded = Engine::new(shop_db());
        let rb = bounded
            .prepare(&query)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let ru = unbounded
            .prepare(&query)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_same_result(&rb, &ru);
        let stats = bounded.cache_stats();
        assert!(stats.confidences <= 2);
        assert!(stats.aggregates <= 2);
        // Warm re-execution still agrees even when entries were evicted.
        let again = bounded
            .prepare(&query)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_same_result(&ru, &again);
    }
}

#[test]
fn eviction_counter_reports_lru_pressure() {
    let engine = Engine::with_cache_config(
        shop_db(),
        CacheConfig {
            max_entries: 1,
            max_bytes: usize::MAX,
        },
    );
    // A query with several distinct annotations forces evictions at bound 1.
    let q = Query::table("PS").project(["ps_sid"]);
    engine
        .prepare(&q)
        .unwrap()
        .execute(&EvalOptions::default())
        .unwrap();
    let stats = engine.cache_stats();
    assert!(stats.confidences <= 1);
    assert!(
        stats.evictions > 0,
        "bound 1 must evict on a multi-annotation query: {stats:?}"
    );
}
