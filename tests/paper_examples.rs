//! Reproductions of the paper's worked examples that concern expressions and
//! decomposition trees (Examples 10–13, Figures 5 and 6), plus the set/bag semantics
//! of Table 1.

use pvc_suite::expr::oracle;
use pvc_suite::prelude::*;

fn v(x: Var) -> SemiringExpr {
    SemiringExpr::Var(x)
}

#[test]
fn example_12_figure5_distributions() {
    // α = a(b + c) ⊗ 10 + c ⊗ 20 over N ⊗ N, with a, b, c taking values 1 and 2 with
    // probabilities p and 1−p. The paper lists the full SUM distribution.
    let (pa, pb, pc) = (0.25, 0.5, 0.75);
    let mut vars = VarTable::new();
    let a = vars.natural("a", &[(1, pa), (2, 1.0 - pa)]);
    let b = vars.natural("b", &[(1, pb), (2, 1.0 - pb)]);
    let c = vars.natural("c", &[(1, pc), (2, 1.0 - pc)]);
    let alpha = SemimoduleExpr::from_terms(
        AggOp::Sum,
        vec![
            (v(a) * (v(b) + v(c)), MonoidValue::Fin(10)),
            (v(c), MonoidValue::Fin(20)),
        ],
    );
    let dist = semimodule_distribution(&alpha, &vars, SemiringKind::Nat);
    let (qa, qb, qc) = (1.0 - pa, 1.0 - pb, 1.0 - pc);
    // The paper's closed forms for the overall d-tree distribution.
    let expected = [
        (40, pa * pb * pc),
        (50, pa * qb * pc),
        (60, qa * pb * pc),
        (70, pa * pb * qc),
        (80, qa * qb * pc + pa * qb * qc),
        (100, qa * pb * qc),
        (120, qa * qb * qc),
    ];
    for (value, p) in expected {
        assert!(
            (dist.prob(&MonoidValue::Fin(value)) - p).abs() < 1e-9,
            "P[{value}] should be {p}"
        );
    }
    assert_eq!(dist.support_size(), 7);

    // MIN aggregation over the same expression: the distribution is {(10, 1)}.
    let alpha_min = SemimoduleExpr::from_terms(
        AggOp::Min,
        vec![
            (v(a) * (v(b) + v(c)), MonoidValue::Fin(10)),
            (v(c), MonoidValue::Fin(20)),
        ],
    );
    let dist_min = semimodule_distribution(&alpha_min, &vars, SemiringKind::Nat);
    assert_eq!(dist_min.support_size(), 1);
    assert!((dist_min.prob(&MonoidValue::Fin(10)) - 1.0).abs() < 1e-9);
}

#[test]
fn example_12_boolean_min_case() {
    // The Boolean-semiring MIN case of Example 12: the distribution is over 10, 20, +∞.
    let (pa, pb, pc) = (0.25, 0.5, 0.75);
    let mut vars = VarTable::new();
    let a = vars.boolean("a", pa);
    let b = vars.boolean("b", pb);
    let c = vars.boolean("c", pc);
    let alpha = SemimoduleExpr::from_terms(
        AggOp::Min,
        vec![
            (v(a) * (v(b) + v(c)), MonoidValue::Fin(10)),
            (v(c), MonoidValue::Fin(20)),
        ],
    );
    let dist = semimodule_distribution(&alpha, &vars, SemiringKind::Bool);
    let (qa, qc) = (1.0 - pa, 1.0 - pc);
    // P[10] = pa·pb·q̄c? — following the paper: left branch (c←⊥) gives {10: pa·pb·qc},
    // right branch (c←⊤) gives {10: pa·pc, 20: qa·pc}; the rest is +∞.
    assert!((dist.prob(&MonoidValue::Fin(10)) - (pa * pb * qc + pa * pc)).abs() < 1e-9);
    assert!((dist.prob(&MonoidValue::Fin(20)) - qa * pc).abs() < 1e-9);
    let rest = 1.0 - (pa * pb * qc + pa * pc) - qa * pc;
    assert!((dist.prob(&MonoidValue::PosInf) - rest).abs() < 1e-9);
    // Always equal to the brute-force semantics.
    let by_enum = oracle::semimodule_dist_by_enumeration(&alpha, &vars, SemiringKind::Bool);
    assert!(dist.approx_eq(&by_enum, 1e-9));
}

#[test]
fn example_13_figure6_gap_conditional() {
    // The Gap tuple's annotation in Figure 1e: the semimodule expression of Figure 6
    // compared against 50, conjoined with the group-nonemptiness condition Ψ2.
    let mut vars = VarTable::new();
    let x4 = vars.boolean("x4", 0.5);
    let x5 = vars.boolean("x5", 0.5);
    let y41 = vars.boolean("y41", 0.5);
    let y43 = vars.boolean("y43", 0.5);
    let y51 = vars.boolean("y51", 0.5);
    let z1 = vars.boolean("z1", 0.5);
    let z3 = vars.boolean("z3", 0.5);
    let z5 = vars.boolean("z5", 0.5);
    let alpha = SemimoduleExpr::from_terms(
        AggOp::Max,
        vec![
            (v(x4) * v(y41) * (v(z1) + v(z5)), MonoidValue::Fin(15)),
            (v(x4) * v(y43) * v(z3), MonoidValue::Fin(60)),
            (v(x5) * v(y51) * (v(z1) + v(z5)), MonoidValue::Fin(10)),
        ],
    );
    let psi2 = SemiringExpr::sum(vec![
        v(x4) * v(y41) * (v(z1) + v(z5)),
        v(x4) * v(y43) * v(z3),
        v(x5) * v(y51) * (v(z1) + v(z5)),
    ]);
    let annotation =
        SemiringExpr::cmp_mm(
            CmpOp::Le,
            alpha,
            SemimoduleExpr::constant(AggOp::Max, MonoidValue::Fin(50)),
        ) * SemiringExpr::cmp_ss(CmpOp::Ne, psi2, SemiringExpr::zero(SemiringKind::Bool));
    let p = confidence(&annotation, &vars, SemiringKind::Bool);
    let expected = oracle::confidence_by_enumeration(&annotation, &vars, SemiringKind::Bool);
    assert!((p - expected).abs() < 1e-9);
    assert!(p > 0.0 && p < 1.0);
}

#[test]
fn example_10_independence() {
    // Φ = x + y and α = a(b+c)⊗10 + c⊗20 are independent (disjoint variables).
    let mut vars = VarTable::new();
    let x = vars.boolean("x", 0.5);
    let y = vars.boolean("y", 0.5);
    let a = vars.boolean("a", 0.5);
    let b = vars.boolean("b", 0.5);
    let c = vars.boolean("c", 0.5);
    let phi = v(x) + v(y);
    let alpha = SemimoduleExpr::from_terms(
        AggOp::Sum,
        vec![
            (v(a) * (v(b) + v(c)), MonoidValue::Fin(10)),
            (v(c), MonoidValue::Fin(20)),
        ],
    );
    assert!(phi.vars().is_disjoint(&alpha.vars()));
}

#[test]
fn table1_set_and_bag_semantics() {
    // Table 1: the four combinations of deterministic/probabilistic × set/bag.
    // Deterministic set: every variable has probability 1 for one Boolean value.
    let mut vars = VarTable::new();
    let t = vars.fresh("t", Dist::point(SemiringValue::Bool(true)));
    let f = vars.fresh("f", Dist::point(SemiringValue::Bool(false)));
    let d = semiring_distribution(&(v(t) + v(f)), &vars, SemiringKind::Bool);
    assert_eq!(d.support_size(), 1);
    assert!((d.prob(&SemiringValue::Bool(true)) - 1.0).abs() < 1e-12);

    // Deterministic bag: variables are point-distributed naturals; annotations count
    // multiplicities.
    let mut vars = VarTable::new();
    let two = vars.fresh("two", Dist::point(SemiringValue::Nat(2)));
    let three = vars.fresh("three", Dist::point(SemiringValue::Nat(3)));
    let d = semiring_distribution(&(v(two) * v(three)), &vars, SemiringKind::Nat);
    assert!((d.prob(&SemiringValue::Nat(6)) - 1.0).abs() < 1e-12);

    // Probabilistic set: Bernoulli Booleans.
    let mut vars = VarTable::new();
    let x = vars.boolean("x", 0.3);
    let y = vars.boolean("y", 0.4);
    let d = semiring_distribution(&(v(x) + v(y)), &vars, SemiringKind::Bool);
    assert!((d.prob(&SemiringValue::Bool(true)) - (1.0 - 0.7 * 0.6)).abs() < 1e-12);

    // Probabilistic bag: a distribution over tuple multiplicities.
    let mut vars = VarTable::new();
    let m = vars.natural("m", &[(0, 0.2), (1, 0.5), (2, 0.3)]);
    let n = vars.natural("n", &[(1, 0.5), (2, 0.5)]);
    let d = semiring_distribution(&(v(m) + v(n)), &vars, SemiringKind::Nat);
    assert!(d.is_normalized());
    assert!((d.prob(&SemiringValue::Nat(0)) - 0.0).abs() < 1e-12);
    assert!((d.prob(&SemiringValue::Nat(1)) - 0.2 * 0.5).abs() < 1e-12);
    assert_eq!(d.support_size(), 4);
}

#[test]
fn theorem1_succinctness_aggregation_result_is_polynomial() {
    // A SUM aggregation over n independent tuples has 2^n possible outcomes, yet the
    // pvc-table result stores a single semimodule expression with n terms.
    let mut db = Database::new();
    db.create_table("R", Schema::new(["v"]));
    let n = 20usize;
    {
        let (r, vars) = db.table_and_vars_mut("R").unwrap();
        for i in 0..n {
            r.push_independent(vec![(1i64 << i).into()], 0.5, vars);
        }
    }
    let q = Query::table("R").group_agg(
        Vec::<String>::new(),
        vec![AggSpec::new(AggOp::Sum, "v", "total")],
    );
    let table = try_evaluate(&db, &q).unwrap();
    assert_eq!(table.len(), 1);
    let expr = table.tuples[0].values[0].as_agg().unwrap();
    // Polynomial (here: linear) size representation of 2^20 distinct outcomes.
    assert_eq!(expr.num_terms(), n);
}
