//! Persistence contract of the compile-artifact snapshot subsystem
//! (`pvc_core::persist` + `Engine::save_artifacts` / `with_artifacts_from`):
//!
//! * **round-trip fidelity** — a warm-from-disk engine produces bit-identical
//!   results to both the engine that wrote the snapshot and a never-persisted
//!   cold engine, across all three `Strategy` variants, without recompiling a
//!   single d-tree;
//! * **typed failure** — corrupted, truncated and wrong-version snapshots are
//!   refused with `Error::Snapshot`, never a panic; a partially diverged
//!   database restores warm for the tables that still match (evicting only
//!   artifacts over the diverged tables' variables), and is refused outright
//!   only when no table matches;
//! * **bounds** — restoring honours the target engine's LRU bounds;
//! * **sharing** — one restored `SharedArtifacts` store serves several engines.

use pvc_suite::prelude::*;
use std::path::PathBuf;

/// A scratch snapshot path, removed on drop so test runs do not accumulate.
struct TempSnapshot(PathBuf);

impl TempSnapshot {
    fn new(tag: &str) -> Self {
        TempSnapshot(
            std::env::temp_dir().join(format!("pvc-persistence-{tag}-{}.snap", std::process::id())),
        )
    }
}

impl Drop for TempSnapshot {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// A Figure-1-style database covering every strategy; deterministic, so two
/// calls fingerprint identically (the warm-restart precondition).
fn shop_db() -> Database {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for (sid, shop) in [(1, "M&S"), (2, "M&S"), (3, "Gap"), (4, "Gap")] {
            s.push_independent(vec![(sid as i64).into(), shop.into()], 0.6, vars);
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for (sid, pid, price) in [(1, 1, 10), (1, 2, 50), (2, 1, 11), (3, 3, 15), (3, 1, 60)] {
            ps.push_independent(
                vec![
                    (sid as i64).into(),
                    (pid as i64).into(),
                    (price as i64).into(),
                ],
                0.5,
                vars,
            );
        }
    }
    {
        let (p1, vars) = db.table_and_vars_mut("P1").unwrap();
        for (pid, weight) in [(1, 4), (2, 8), (3, 7)] {
            p1.push_independent(vec![(pid as i64).into(), (weight as i64).into()], 0.7, vars);
        }
    }
    {
        let (p2, vars) = db.table_and_vars_mut("P2").unwrap();
        p2.push_independent(vec![1i64.into(), 5i64.into()], 0.4, vars);
    }
    db
}

/// Queries covering every `Strategy` variant (and the aggregate pipeline).
fn workload() -> Vec<Query> {
    vec![
        // Q_ind: projection of a tuple-independent table.
        Query::table("S").project(["shop"]),
        // Q_hie: hierarchical join + aggregation.
        Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]),
        // General compilation: repeated table through a union + a θ-predicate.
        Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .join(
                Query::table("P1")
                    .union(Query::table("P2"))
                    .rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
                &[("ps_pid", "p_pid")],
            )
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
            .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 55))
            .project(["shop"]),
    ]
}

fn run_all(engine: &Engine) -> Vec<QueryResult> {
    workload()
        .iter()
        .map(|q| {
            engine
                .prepare(q)
                .expect("workload prepares")
                .execute(&EvalOptions::default())
                .expect("workload executes")
        })
        .collect()
}

fn assert_bit_identical(a: &[QueryResult], b: &[QueryResult]) {
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.tuples.len(), rb.tuples.len());
        for (ta, tb) in ra.tuples.iter().zip(&rb.tuples) {
            assert_eq!(ta.values, tb.values);
            assert_eq!(
                ta.confidence.to_bits(),
                tb.confidence.to_bits(),
                "confidences must be bit-identical"
            );
            assert_eq!(
                ta.aggregate_distributions, tb.aggregate_distributions,
                "aggregate distributions must be identical"
            );
        }
    }
}

#[test]
fn roundtrip_is_bit_identical_across_all_strategies() {
    let snap = TempSnapshot::new("roundtrip");
    // Reference: a never-persisted engine.
    let reference = run_all(&Engine::new(shop_db()));

    let writer = Engine::new(shop_db());
    let written = run_all(&writer);
    assert_bit_identical(&reference, &written);
    let stats = writer.save_artifacts(&snap.0).unwrap();
    assert!(stats.interned > 0 && stats.distributions > 0);
    assert!(stats.arenas > 0, "general compilation must cache arenas");
    assert_eq!(stats.rewrites, workload().len());
    assert_eq!(
        stats.bytes,
        std::fs::metadata(&snap.0).unwrap().len() as usize
    );

    // "Restart": identical database rebuilt, artifacts loaded from disk.
    let restarted = Engine::with_artifacts_from(shop_db(), &snap.0).unwrap();
    let restored_stats = restarted.cache_stats();
    assert_eq!(restored_stats.rewrites, workload().len());
    assert!(restored_stats.confidences > 0);
    let warm = run_all(&restarted);
    assert_bit_identical(&reference, &warm);
    // The warm run recompiled nothing: no distribution misses, no arena builds.
    let after = restarted.cache_stats();
    assert_eq!(after.misses, 0, "warm-from-disk run must not recompute");
    assert_eq!(
        after.arena_misses, 0,
        "warm-from-disk run must not recompile"
    );
    assert!(after.hits > 0);
}

#[test]
fn corrupt_truncated_and_wrong_version_snapshots_are_typed_errors() {
    let snap = TempSnapshot::new("corrupt");
    let engine = Engine::new(shop_db());
    run_all(&engine);
    engine.save_artifacts(&snap.0).unwrap();
    let bytes = std::fs::read(&snap.0).unwrap();

    // Missing file.
    let missing = Engine::with_artifacts_from(shop_db(), snap.0.with_extension("nope"));
    assert!(matches!(missing, Err(Error::Snapshot(PersistError::Io(_)))));

    // Flip one payload byte: checksum failure.
    let mut corrupt = bytes.clone();
    corrupt[bytes.len() / 2] ^= 0x40;
    std::fs::write(&snap.0, &corrupt).unwrap();
    match Engine::with_artifacts_from(shop_db(), &snap.0) {
        Err(Error::Snapshot(PersistError::Checksum { .. })) => {}
        other => panic!("expected checksum error, got {other:?}"),
    }

    // Truncations at every kind of boundary: typed errors, no panic.
    for cut in [4usize, 19, bytes.len() / 3, bytes.len() - 1] {
        std::fs::write(&snap.0, &bytes[..cut]).unwrap();
        match Engine::with_artifacts_from(shop_db(), &snap.0) {
            Err(Error::Snapshot(_)) => {}
            other => panic!("truncated at {cut}: expected snapshot error, got {other:?}"),
        }
    }

    // A future format version is refused (checksum fixed up so the version
    // gate, not the checksum, decides).
    let mut future = bytes.clone();
    future[8] = 0xfe;
    let n = future.len();
    let h = pvc_suite::core::persist::fnv64(&future[..n - 8]);
    future[n - 8..].copy_from_slice(&h.to_le_bytes());
    std::fs::write(&snap.0, &future).unwrap();
    match Engine::with_artifacts_from(shop_db(), &snap.0) {
        Err(Error::Snapshot(PersistError::Version { found, .. })) => assert_eq!(found, 0xfe),
        other => panic!("expected version error, got {other:?}"),
    }
}

#[test]
fn diverged_databases_restore_partially_or_are_refused() {
    let snap = TempSnapshot::new("fingerprint");
    let engine = Engine::new(shop_db());
    run_all(&engine);
    // Warm one query whose lineage never touches S: its artifacts must
    // survive a divergence that is confined to S.
    let p1_only = Query::table("P1").project(["pid"]);
    engine
        .prepare(&p1_only)
        .unwrap()
        .execute(&EvalOptions::default())
        .unwrap();
    engine.save_artifacts(&snap.0).unwrap();

    // One table grew a tuple: the per-table fingerprint vector pinpoints the
    // divergence to S, so the snapshot loads *partially* — artifacts disjoint
    // from S's variables survive, the rest are evicted — and results are still
    // exact: bit-identical to a cold engine over the same grown database.
    let grown = || {
        let mut db = shop_db();
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        s.push_independent(vec![9i64.into(), "Zara".into()], 0.3, vars);
        db
    };
    let warm = Engine::with_artifacts_from(grown(), &snap.0).unwrap();
    let stats = warm.cache_stats();
    assert!(
        stats.confidences + stats.aggregates > 0,
        "artifacts disjoint from the diverged table must survive a partial restore"
    );
    let cold = Engine::new(grown());
    assert_bit_identical(&run_all(&warm), &run_all(&cold));

    // Every table diverged: nothing is salvageable, so the load is refused —
    // a cold start beats a silently wrong warm cache.
    let mut other = shop_db();
    for name in ["S", "PS", "P1", "P2"] {
        let (table, vars) = other.table_and_vars_mut(name).unwrap();
        let arity = table.schema.columns().len();
        table.push_independent(vec![99i64.into(); arity], 0.5, vars);
    }
    match Engine::with_artifacts_from(other, &snap.0) {
        Err(Error::Snapshot(PersistError::Fingerprint { .. })) => {}
        other => panic!("expected fingerprint error, got {other:?}"),
    }
}

#[test]
fn restore_honours_lru_bounds_and_merges_into_live_engines() {
    let snap = TempSnapshot::new("bounds");
    let writer = Engine::new(shop_db());
    let reference = run_all(&writer);
    writer.save_artifacts(&snap.0).unwrap();

    // Restore into a tightly bounded live engine: entries beyond the bound are
    // evicted, results are still exact (recomputed where evicted).
    let bounded = Engine::with_cache_config(
        shop_db(),
        CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        },
    );
    let stats = bounded.restore_artifacts(&snap.0).unwrap();
    assert!(stats.distributions > 0);
    assert!(bounded.cache_stats().confidences <= 2);
    assert!(bounded.cache_stats().evictions > 0);
    assert_bit_identical(&reference, &run_all(&bounded));

    // Merging into an engine that is already warm keeps working (ids remap onto
    // the live arena) and fills only the gaps.
    let live = Engine::new(shop_db());
    let q = &workload()[0];
    live.prepare(q)
        .unwrap()
        .execute(&EvalOptions::default())
        .unwrap();
    let rewrites_before = live.cache_stats().rewrites;
    live.restore_artifacts(&snap.0).unwrap();
    assert!(live.cache_stats().rewrites > rewrites_before);
    assert_bit_identical(&reference, &run_all(&live));
}

#[test]
fn one_restored_store_serves_several_engines() {
    let snap = TempSnapshot::new("shared");
    let writer = Engine::new(shop_db());
    let reference = run_all(&writer);
    writer.save_artifacts(&snap.0).unwrap();

    let first = Engine::with_artifacts_from(shop_db(), &snap.0).unwrap();
    let second = Engine::with_shared_artifacts(shop_db(), first.shared_artifacts());
    assert_bit_identical(&reference, &run_all(&second));
    // The second tenant was served from the restored store: no recomputation.
    assert_eq!(second.cache_stats().misses, 0);
    assert_bit_identical(&reference, &run_all(&first));
}

#[test]
fn saving_and_reloading_an_empty_engine_works() {
    let snap = TempSnapshot::new("empty");
    let engine = Engine::new(shop_db());
    let stats = engine.save_artifacts(&snap.0).unwrap();
    assert_eq!(stats.distributions, 0);
    let restarted = Engine::with_artifacts_from(shop_db(), &snap.0).unwrap();
    assert_eq!(restarted.cache_stats(), CacheStats::default());
    // And it still executes normally afterwards.
    assert_eq!(run_all(&restarted).len(), workload().len());
}
