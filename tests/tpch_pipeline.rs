//! End-to-end tests of the TPC-H-like pipeline (Experiment F's workload): data
//! generation, query validation, tractability classification, evaluation, and — on a
//! tiny instance — exact agreement of every tuple confidence with the brute-force
//! possible-world semantics.

use pvc_suite::expr::oracle;
use pvc_suite::prelude::*;
use pvc_suite::tpch::{deterministic_copy, generate, q1, q2, Cardinalities, TpchConfig};

fn tiny() -> Database {
    generate(&TpchConfig {
        scale_factor: 0.002,
        ..TpchConfig::default()
    })
}

#[test]
fn generated_database_is_tuple_independent_and_scales() {
    let small = generate(&TpchConfig {
        scale_factor: 0.01,
        ..TpchConfig::default()
    });
    let larger = generate(&TpchConfig {
        scale_factor: 0.05,
        ..TpchConfig::default()
    });
    assert!(small.is_tuple_independent());
    assert!(larger.total_tuples() > small.total_tuples());
    assert_eq!(
        larger.table_or_err("lineitem").unwrap().len(),
        Cardinalities::for_scale(0.05).lineitems
    );
}

#[test]
fn q1_confidences_match_enumeration_on_tiny_instance() {
    let db = tiny();
    let query = q1(2_000);
    let table = try_evaluate(&db, &query).unwrap();
    assert!(!table.is_empty());
    let confidences = try_tuple_confidences(&db, &table).unwrap();
    for (tuple, confidence) in table.iter().zip(confidences) {
        // Only enumerate when the annotation is small enough for the oracle.
        if tuple.annotation.vars().len() <= 16 {
            let expected = oracle::confidence_by_enumeration(&tuple.annotation, &db.vars, db.kind);
            assert!((confidence - expected).abs() < 1e-9);
        }
        assert!(confidence > 0.0 && confidence <= 1.0 + 1e-9);
    }
}

#[test]
fn q1_count_distributions_are_consistent() {
    let db = tiny();
    let result = Engine::execute_once(&db, &q1(2_000), &EvalOptions::default()).unwrap();
    for tuple in &result.tuples {
        let count = &tuple.aggregate_distributions["order_count"];
        assert!(count.is_normalized());
        // The probability of a non-zero count equals the group-nonemptiness
        // confidence of the tuple.
        let p_nonzero: f64 = count
            .iter()
            .filter(|(v, _)| **v != MonoidValue::Fin(0))
            .map(|(_, p)| p)
            .sum();
        assert!((p_nonzero - tuple.confidence).abs() < 1e-9);
    }
}

#[test]
fn q2_answers_are_minimum_cost_offers() {
    let db = generate(&TpchConfig {
        scale_factor: 0.5,
        ..TpchConfig::default()
    });
    let query = q2("ASIA", 25);
    let result = Engine::execute_once(&db, &query, &EvalOptions::default()).unwrap();
    // Every reported answer has positive probability, bounded by 1.
    for tuple in &result.tuples {
        assert!(tuple.confidence > 0.0 && tuple.confidence <= 1.0 + 1e-9);
    }
    // Deterministically (all tuples present), the answers with probability 1 are
    // exactly the offers whose cost equals the per-part minimum; candidate tuples at a
    // higher cost have probability 0 (their conditional annotation is false).
    let det = deterministic_copy(&db);
    let det_result = try_evaluate(&det, &query).unwrap();
    let confidences = try_tuple_confidences(&det, &det_result).unwrap();
    let partsupp = db.table_or_err("partsupp").unwrap();
    let mut certain_answers = 0usize;
    for (t, confidence) in det_result.iter().zip(confidences) {
        let part = t.values[1].as_int().unwrap();
        let cost = t.values[2].as_int().unwrap();
        let min_cost = partsupp
            .iter()
            .filter(|ps| ps.values[0].as_int() == Some(part))
            .map(|ps| ps.values[2].as_int().unwrap())
            .min()
            .unwrap();
        if cost == min_cost {
            assert!(
                (confidence - 1.0).abs() < 1e-9,
                "min-cost offer for part {part} must be certain"
            );
            certain_answers += 1;
        } else {
            assert!(
                confidence.abs() < 1e-9,
                "non-minimal offer for part {part} must be impossible"
            );
        }
    }
    assert!(
        certain_answers > 0,
        "the deterministic run should produce certain answers"
    );
}

#[test]
fn q0_rewrite_and_probability_phases_all_run() {
    let db = generate(&TpchConfig {
        scale_factor: 0.05,
        ..TpchConfig::default()
    });
    let det = deterministic_copy(&db);
    let query = q1(1_800);
    let det_table = try_evaluate(&det, &query).unwrap();
    let prob_result = Engine::execute_once(&db, &query, &EvalOptions::default()).unwrap();
    // The deterministic run produces the same groups as the probabilistic one.
    assert_eq!(det_table.len(), prob_result.tuples.len());
    // On the deterministic copy every group is certainly non-empty.
    let det_confidences = try_tuple_confidences(&det, &det_table).unwrap();
    assert!(det_confidences.iter().all(|p| (p - 1.0).abs() < 1e-9));
}

#[test]
fn paper_queries_are_classified() {
    let db = tiny();
    // Q1 is an aggregation over a single tuple-independent relation: tractable.
    assert_ne!(classify(&q1(1_800), &db), QueryClass::General);
    // Q2 contains a nested aggregate join; the syntactic test is conservative and may
    // return General, but the query must still validate and evaluate.
    assert!(q2("ASIA", 25).output_schema(&db).is_ok());
}
