//! End-to-end reproduction of the paper's running example (Figure 1 and Examples
//! 1, 8, 9): the shop/product database, the positive query Q1 and the aggregate
//! queries Q2 (MAX) and Q2' (MIN), with every probability cross-checked against
//! brute-force possible-world enumeration.

use pvc_suite::expr::oracle;
use pvc_suite::prelude::*;

/// Build the Figure 1 database with all variables at probability 1/2.
fn figure1_db() -> Database {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for (sid, shop) in [(1, "M&S"), (2, "M&S"), (3, "M&S"), (4, "Gap"), (5, "Gap")] {
            s.push_independent(vec![(sid as i64).into(), shop.into()], 0.5, vars);
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for (sid, pid, price) in [
            (1, 1, 10),
            (1, 2, 50),
            (2, 1, 11),
            (2, 2, 60),
            (3, 3, 15),
            (3, 4, 40),
            (4, 1, 15),
            (4, 3, 60),
            (5, 1, 10),
        ] {
            ps.push_independent(
                vec![
                    (sid as i64).into(),
                    (pid as i64).into(),
                    (price as i64).into(),
                ],
                0.5,
                vars,
            );
        }
    }
    {
        let (p1, vars) = db.table_and_vars_mut("P1").unwrap();
        for (pid, weight) in [(1, 4), (2, 8), (3, 7), (4, 6)] {
            p1.push_independent(vec![(pid as i64).into(), (weight as i64).into()], 0.5, vars);
        }
    }
    {
        let (p2, vars) = db.table_and_vars_mut("P2").unwrap();
        p2.push_independent(vec![1i64.into(), 5i64.into()], 0.5, vars);
    }
    db
}

fn q1() -> Query {
    let products = Query::table("P1")
        .union(Query::table("P2"))
        .rename(&[("pid", "p_pid"), ("weight", "p_weight")]);
    Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(products, &[("ps_pid", "p_pid")])
        .project(["shop", "price"])
}

#[test]
fn q1_has_the_nine_tuples_of_figure_1d() {
    let db = figure1_db();
    let table = try_evaluate(&db, &q1()).unwrap();
    assert_eq!(table.len(), 9);
    let expected: Vec<(&str, i64)> = vec![
        ("M&S", 10),
        ("M&S", 50),
        ("M&S", 11),
        ("M&S", 60),
        ("M&S", 15),
        ("M&S", 40),
        ("Gap", 15),
        ("Gap", 60),
        ("Gap", 10),
    ];
    for (shop, price) in expected {
        assert!(
            table
                .iter()
                .any(|t| t.values[0].as_str() == Some(shop) && t.values[1].as_int() == Some(price)),
            "missing tuple ({shop}, {price})"
        );
    }
}

#[test]
fn q1_confidences_match_possible_world_semantics() {
    let db = figure1_db();
    let table = try_evaluate(&db, &q1()).unwrap();
    let confidences = try_tuple_confidences(&db, &table).unwrap();
    for (tuple, confidence) in table.iter().zip(confidences) {
        let expected = oracle::confidence_by_enumeration(&tuple.annotation, &db.vars, db.kind);
        assert!(
            (confidence - expected).abs() < 1e-9,
            "confidence mismatch for {:?}",
            tuple.values
        );
    }
    // Spot checks: ⟨M&S, 10⟩ has annotation x1·y11·(z1+z5) ⇒ 0.5·0.5·0.75.
    let mands10 = table
        .iter()
        .zip(try_tuple_confidences(&db, &table).unwrap())
        .find(|(t, _)| t.values[0].as_str() == Some("M&S") && t.values[1].as_int() == Some(10))
        .unwrap()
        .1;
    assert!((mands10 - 0.1875).abs() < 1e-9);
}

#[test]
fn q2_max_price_at_most_50() {
    // Q2 from Figure 1e (MAX) and the valuation ν1 discussed in Example 1.
    let db = figure1_db();
    let q2 = q1()
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
        .project(["shop"]);
    let table = try_evaluate(&db, &q2).unwrap();
    assert_eq!(table.len(), 2);
    let result = Engine::execute_once(&db, &q2, &EvalOptions::default()).unwrap();
    for (prob, tuple) in result.tuples.iter().zip(table.iter()) {
        let expected = oracle::confidence_by_enumeration(&tuple.annotation, &db.vars, db.kind);
        assert!((prob.confidence - expected).abs() < 1e-9);
        // The result is uncertain but possible for both shops.
        assert!(prob.confidence > 0.0 && prob.confidence < 1.0);
    }
}

#[test]
fn q2_prime_min_variant_of_example_9() {
    let db = figure1_db();
    let q2p = q1()
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Min, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
        .project(["shop"]);
    let result = Engine::execute_once(&db, &q2p, &EvalOptions::default()).unwrap();
    let table = try_evaluate(&db, &q2p).unwrap();
    for (prob, tuple) in result.tuples.iter().zip(table.iter()) {
        let expected = oracle::confidence_by_enumeration(&tuple.annotation, &db.vars, db.kind);
        assert!((prob.confidence - expected).abs() < 1e-9);
    }
    // As argued in Example 9, for MIN the group-nonemptiness condition is implied:
    // the MIN-variant probability equals the probability that the shop offers some
    // product at price ≤ 50 at all.
    let alt = q1()
        .select(Predicate::ColCmpConst(
            "price".into(),
            CmpOp::Le,
            Value::Int(50),
        ))
        .project(["shop"]);
    let alt_result = Engine::execute_once(&db, &alt, &EvalOptions::default()).unwrap();
    for tuple in &result.tuples {
        let shop = tuple.values[0].to_string();
        let alt_conf = alt_result
            .tuples
            .iter()
            .find(|t| t.values[0].to_string() == shop)
            .unwrap()
            .confidence;
        assert!((tuple.confidence - alt_conf).abs() < 1e-9, "shop {shop}");
    }
}

#[test]
fn example_8_min_weight_boolean_query() {
    // π_∅ σ_{5≤α} ($_{∅; α←MIN(weight)}(P1)): the probability that the minimum weight
    // is at least 5.
    let db = figure1_db();
    let q = Query::table("P1")
        .group_agg(
            Vec::<String>::new(),
            vec![AggSpec::new(AggOp::Min, "weight", "alpha")],
        )
        .select(Predicate::AggCmpConst("alpha".into(), CmpOp::Ge, 5))
        .project(Vec::<String>::new());
    let result = Engine::execute_once(&db, &q, &EvalOptions::default()).unwrap();
    assert_eq!(result.tuples.len(), 1);
    // Weights are 4, 8, 7, 6 each present with probability 1/2; min ≥ 5 iff the
    // weight-4 product is absent (probability 1/2) — the empty group has min +∞ ≥ 5.
    assert!((result.tuples[0].confidence - 0.5).abs() < 1e-9);
}

#[test]
fn classification_of_the_paper_queries() {
    let db = figure1_db();
    assert_eq!(classify(&Query::table("S"), &db), QueryClass::Qind);
    // The grouped MAX aggregation over the hierarchical join is in Q_hie.
    let agg = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]);
    assert_eq!(classify(&agg, &db), QueryClass::Qhie);
}
