//! Error-path coverage for the `Engine` / prepared-query API: every malformed query
//! must come back as `Err(Error::Validation(..))` from `prepare` — never a panic —
//! and runtime failures (node budgets, type mismatches) surface as the matching
//! `Error` variants from `execute`.

use pvc_suite::db::QueryError;
use pvc_suite::prelude::*;

/// A small database with one data table and one prepared aggregation.
fn sample_engine() -> Engine {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "pid", "price"]));
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        s.push_independent(vec![1i64.into(), "M&S".into()], 0.5, vars);
        s.push_independent(vec![2i64.into(), "Gap".into()], 0.5, vars);
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        ps.push_independent(vec![1i64.into(), 1i64.into(), 10i64.into()], 0.5, vars);
        ps.push_independent(vec![2i64.into(), 1i64.into(), 60i64.into()], 0.5, vars);
    }
    Engine::new(db)
}

#[test]
fn unknown_table_is_a_validation_error() {
    let engine = sample_engine();
    let err = engine.prepare(&Query::table("missing")).unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::UnknownTable(ref t)) if t == "missing"
    ));
    // The error is printable and carries context.
    assert!(err.to_string().contains("missing"));
}

#[test]
fn unknown_column_is_a_validation_error() {
    let engine = sample_engine();
    for query in [
        Query::table("S").project(["nope"]),
        Query::table("S").select(Predicate::eq_const("nope", 1i64)),
        Query::table("S").group_agg(["nope"], vec![AggSpec::count("c")]),
        Query::table("S").group_agg(["shop"], vec![AggSpec::new(AggOp::Sum, "nope", "t")]),
        Query::table("S").rename(&[("nope", "x")]),
    ] {
        let err = engine.prepare(&query).unwrap_err();
        assert!(
            matches!(err, Error::Validation(QueryError::UnknownColumn(ref c)) if c == "nope"),
            "unexpected error for {query:?}: {err}"
        );
    }
}

#[test]
fn projection_of_aggregation_attributes_is_rejected() {
    let engine = sample_engine();
    let agg = Query::table("PS").group_agg(["pid"], vec![AggSpec::new(AggOp::Max, "price", "m")]);
    // Projecting on the aggregate.
    let err = engine.prepare(&agg.clone().project(["m"])).unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::ProjectionOnAggregate(ref c)) if c == "m"
    ));
    // Grouping by the aggregate.
    let err = engine
        .prepare(&agg.clone().group_agg(["m"], vec![AggSpec::count("c")]))
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::ProjectionOnAggregate(_))
    ));
    // Aggregating the aggregate.
    let err = engine
        .prepare(
            &agg.clone()
                .group_agg(["pid"], vec![AggSpec::new(AggOp::Sum, "m", "t")]),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::AggregationOfAggregate(_))
    ));
}

#[test]
fn union_violations_are_rejected() {
    let engine = sample_engine();
    // Different schemas.
    let err = engine
        .prepare(&Query::table("S").union(Query::table("PS")))
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::UnionSchemaMismatch)
    ));
    // Union over an operand with aggregation attributes (Definition 5, constraint 2).
    let agg = Query::table("PS").group_agg(["pid"], vec![AggSpec::new(AggOp::Max, "price", "m")]);
    let err = engine.prepare(&agg.clone().union(agg)).unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::UnionOnAggregate(_))
    ));
}

#[test]
fn predicate_sort_mismatches_are_rejected() {
    let engine = sample_engine();
    // An Agg* predicate over a plain data column.
    let err = engine
        .prepare(&Query::table("PS").select(Predicate::AggCmpConst("price".into(), CmpOp::Le, 5)))
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::PredicateSortMismatch(ref c)) if c == "price"
    ));
    // A plain comparison over an aggregation attribute.
    let agg = Query::table("PS").group_agg(["pid"], vec![AggSpec::new(AggOp::Max, "price", "m")]);
    let err = engine
        .prepare(&agg.select(Predicate::eq_const("m", 5i64)))
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::PredicateSortMismatch(ref c)) if c == "m"
    ));
}

#[test]
fn duplicate_columns_in_products_are_rejected() {
    let engine = sample_engine();
    let err = engine
        .prepare(&Query::table("S").product(Query::table("S")))
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::DuplicateColumn(_))
    ));
    // Renaming onto an existing column name is also a duplicate.
    let err = engine
        .prepare(&Query::table("S").rename(&[("sid", "shop")]))
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::DuplicateColumn(ref c)) if c == "shop"
    ));
}

#[test]
fn node_budget_exhaustion_is_a_compile_error() {
    let engine = sample_engine();
    let q = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "m")])
        .select(Predicate::AggCmpConst("m".into(), CmpOp::Le, 30))
        .project(["shop"]);
    let prepared = engine.prepare(&q).unwrap();
    let err = prepared
        .execute(
            &EvalOptions::default()
                .with_node_budget(1)
                .without_fast_path(),
        )
        .unwrap_err();
    assert!(matches!(err, Error::Compile(_)));
    // With a generous budget the same prepared query succeeds.
    let ok = prepared
        .execute(&EvalOptions::default().with_node_budget(1_000_000))
        .unwrap();
    assert!(!ok.tuples.is_empty());
}

#[test]
fn aggregating_a_string_column_is_a_type_error() {
    let engine = sample_engine();
    let q = Query::table("S").group_agg(
        Vec::<String>::new(),
        vec![AggSpec::new(AggOp::Sum, "shop", "t")],
    );
    // Schema-level validation cannot see value types, so prepare succeeds …
    let prepared = engine.prepare(&q).unwrap();
    // … and execution reports the type mismatch as an error, not a panic.
    let err = prepared.execute(&EvalOptions::default()).unwrap_err();
    assert!(matches!(err, Error::TypeMismatch { ref column, .. } if column == "shop"));
}

#[test]
fn fallible_free_functions_return_errors_too() {
    let engine = sample_engine();
    let db = engine.database();
    let err = try_evaluate(db, &Query::table("missing")).unwrap_err();
    assert!(matches!(
        err,
        Error::Validation(QueryError::UnknownTable(_))
    ));
    let err = db.table_or_err("missing").unwrap_err();
    assert!(matches!(err, Error::UnknownTable { .. }));
}

#[test]
fn tractable_plans_report_their_strategy() {
    let engine = sample_engine();
    // Base table: Q_ind.
    let plan = engine.prepare(&Query::table("S")).unwrap().plan().clone();
    assert_eq!(plan.class, QueryClass::Qind);
    assert_eq!(plan.strategy, Strategy::IndependentFastPath);
    // Grouped aggregation over a hierarchical join: Q_hie.
    let q = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "m")]);
    let plan = engine.prepare(&q).unwrap().plan().clone();
    assert_eq!(plan.class, QueryClass::Qhie);
    assert_eq!(plan.strategy, Strategy::HierarchicalFastPath);
    assert!(plan.strategy.is_tractable());
    // Repeating a table (after renames) loses the syntactic guarantee.
    let repeated =
        Query::table("S").product(Query::table("S").rename(&[("sid", "sid2"), ("shop", "shop2")]));
    let plan = engine.prepare(&repeated).unwrap().plan().clone();
    assert_eq!(plan.strategy, Strategy::GeneralCompilation);
    assert!(!plan.non_repeating);
}

#[test]
fn prepared_queries_never_panic_on_any_malformed_input() {
    // A sweep of malformed queries: everything must come back as Err.
    let engine = sample_engine();
    let agg = Query::table("PS").group_agg(["pid"], vec![AggSpec::new(AggOp::Max, "price", "m")]);
    let malformed: Vec<Query> = vec![
        Query::table(""),
        Query::table("s"), // case-sensitive
        Query::table("S").project(["SID"]),
        Query::table("S").join(Query::table("PS"), &[("sid", "nope")]),
        agg.clone().project(["pid", "m"]),
        agg.clone().union(Query::table("S")),
        Query::table("S").select(Predicate::AggCmpAgg("sid".into(), CmpOp::Le, "shop".into())),
        Query::table("S").select(Predicate::AggCmpCol("sid".into(), CmpOp::Le, "shop".into())),
    ];
    for query in malformed {
        let result = engine.prepare(&query);
        assert!(result.is_err(), "expected Err for {query:?}");
        assert!(matches!(result.unwrap_err(), Error::Validation(_)));
    }
}
