//! Determinism contract of parallel and streaming execution:
//!
//! * `execute` with `threads = 1` and `threads = N` produces **identical**
//!   `QueryResult`s — bit-equal confidences, equal tuple order, equal aggregate
//!   distributions — across all three `Strategy` variants, at several database
//!   sizes (a property-style sweep over seeded instances);
//! * cache-stat invariants hold regardless of the worker count: the same set of
//!   canonical artifacts is cached, re-execution is pure hits, and cross-thread
//!   sharing means a parallel cold run warms the cache for everyone;
//! * streaming yields tuples in deterministic order, supports partial consumption
//!   without deadlocking or leaking workers, and agrees with `execute`.

use pvc_suite::prelude::*;
use std::sync::Arc;

/// A seeded shop/offer/product database; `shops`/`per_shop` scale the instance,
/// `seed` perturbs probabilities and prices deterministically (no RNG needed —
/// arithmetic mixing keeps instances reproducible).
fn workload_db(shops: usize, per_shop: usize, seed: u64) -> Database {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    let num_products = (shops * per_shop / 2).max(1);
    let prob = |i: u64| 0.2 + 0.6 * ((i.wrapping_mul(seed | 1).wrapping_add(7) % 97) as f64 / 97.0);
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for i in 0..shops {
            s.push_independent(
                vec![(i as i64).into(), format!("shop{i}").as_str().into()],
                prob(i as u64),
                vars,
            );
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for i in 0..shops {
            for j in 0..per_shop {
                let pid = (i * 31 + j * 7) % num_products;
                let price = 10 + ((i * 13 + j * 29 + seed as usize) % 90) as i64;
                ps.push_independent(
                    vec![(i as i64).into(), (pid as i64).into(), price.into()],
                    prob((i * per_shop + j) as u64 + 1000),
                    vars,
                );
            }
        }
    }
    for table in ["P1", "P2"] {
        let (p, vars) = db.table_and_vars_mut(table).unwrap();
        for pid in 0..num_products {
            p.push_independent(
                vec![(pid as i64).into(), ((pid % 17) as i64).into()],
                prob(pid as u64 + 5000),
                vars,
            );
        }
    }
    db
}

/// Queries covering every `Strategy` variant over the workload database.
fn strategy_workload() -> Vec<(Query, Strategy)> {
    vec![
        // Q_ind: projection over a tuple-independent table.
        (
            Query::table("PS").project(["ps_pid"]),
            Strategy::IndependentFastPath,
        ),
        // Q_hie: join + grouped MAX aggregation.
        (
            Query::table("S")
                .join(Query::table("PS"), &[("sid", "ps_sid")])
                .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]),
            Strategy::HierarchicalFastPath,
        ),
        // General: union of products joined in (repeats nothing but the selection
        // on an aggregation attribute leaves §6), the paper's Q2 shape.
        (
            Query::table("S")
                .join(Query::table("PS"), &[("sid", "ps_sid")])
                .join(
                    Query::table("P1")
                        .union(Query::table("P2"))
                        .rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
                    &[("ps_pid", "p_pid")],
                )
                .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
                .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 60))
                .project(["shop"]),
            Strategy::GeneralCompilation,
        ),
    ]
}

/// Assert two results are **identical**: same order, bit-equal confidences, equal
/// aggregate distributions.
fn assert_identical(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.columns, b.columns, "{context}: columns");
    assert_eq!(a.tuples.len(), b.tuples.len(), "{context}: tuple count");
    for (i, (ta, tb)) in a.tuples.iter().zip(&b.tuples).enumerate() {
        assert_eq!(ta.values, tb.values, "{context}: tuple {i} values");
        assert_eq!(
            ta.confidence.to_bits(),
            tb.confidence.to_bits(),
            "{context}: tuple {i} confidence {} vs {}",
            ta.confidence,
            tb.confidence
        );
        assert_eq!(
            ta.aggregate_distributions, tb.aggregate_distributions,
            "{context}: tuple {i} aggregates"
        );
    }
}

#[test]
fn parallel_equals_sequential_across_strategies_and_sizes() {
    // Property-style sweep: strategies × instance sizes × seeds × thread counts.
    for (query, strategy) in strategy_workload() {
        for (shops, per_shop, seed) in [(4, 3, 1u64), (8, 4, 42), (12, 5, 7)] {
            let sequential_engine = Engine::new(workload_db(shops, per_shop, seed));
            let prepared = sequential_engine.prepare(&query).unwrap();
            assert_eq!(prepared.plan().strategy, strategy);
            let reference = prepared
                .execute(&EvalOptions::default().with_threads(1))
                .unwrap();
            let seq_stats = sequential_engine.cache_stats();
            for threads in [2, 4, 0] {
                // Fresh engine per thread count: a *cold* parallel run must match
                // the cold sequential run exactly.
                let engine = Engine::new(workload_db(shops, per_shop, seed));
                let prepared = engine.prepare(&query).unwrap();
                let result = prepared
                    .execute(&EvalOptions::default().with_threads(threads))
                    .unwrap();
                let context =
                    format!("{strategy:?} shops={shops} per_shop={per_shop} threads={threads}");
                assert_identical(&reference, &result, &context);
                // Both runs were cold, so the fast-path counters must agree too
                // (warm runs legitimately answer from the cache instead).
                assert_eq!(result.fast_path_hits, reference.fast_path_hits, "{context}");
                assert_eq!(
                    result.agg_fast_path_hits, reference.agg_fast_path_hits,
                    "{context}"
                );
                // Cache-stat invariants: the same canonical artifacts end up
                // cached no matter how many workers raced to fill them (racing
                // workers may duplicate a computation — more misses — but never
                // add or lose entries), and the arena interned the same nodes.
                let stats = engine.cache_stats();
                assert_eq!(stats.confidences, seq_stats.confidences, "{context}");
                assert_eq!(stats.aggregates, seq_stats.aggregates, "{context}");
                assert_eq!(stats.interned, seq_stats.interned, "{context}");
                assert!(stats.misses >= seq_stats.misses, "{context}");
                // Re-execution is answered entirely from the warm shared cache.
                let warm_before = stats.misses;
                let again = prepared
                    .execute(&EvalOptions::default().with_threads(threads))
                    .unwrap();
                assert_identical(&reference, &again, &format!("{context} warm"));
                assert_eq!(engine.cache_stats().misses, warm_before, "{context} warm");
            }
        }
    }
}

#[test]
fn parallel_cold_run_warms_cache_for_sequential_use() {
    // Cross-thread cache sharing: artifacts inserted by worker threads must be
    // visible to later executions on the calling thread.
    let engine = Engine::new(workload_db(8, 4, 3));
    let (query, _) = strategy_workload().pop().unwrap();
    let prepared = engine.prepare(&query).unwrap();
    prepared
        .execute(&EvalOptions::default().with_threads(4))
        .unwrap();
    let cold = engine.cache_stats();
    assert!(cold.confidences > 0, "parallel run must fill the cache");
    prepared
        .execute(&EvalOptions::default().with_threads(1))
        .unwrap();
    let warm = engine.cache_stats();
    assert_eq!(
        warm.misses, cold.misses,
        "sequential rerun must be all hits"
    );
    assert!(warm.hits > cold.hits);
}

#[test]
fn streaming_matches_execute_and_reports_counters() {
    for (query, _) in strategy_workload() {
        // Fresh engine per query so both the reference and the stream run against
        // a cold cache — the fast-path counters are then comparable.
        let engine = Engine::new(workload_db(8, 4, 9));
        let prepared = engine.prepare(&query).unwrap();
        let cold_engine = Engine::new(workload_db(8, 4, 9));
        let cold_prepared = cold_engine.prepare(&query).unwrap();
        let reference = cold_prepared.execute(&EvalOptions::default()).unwrap();
        let mut stream = prepared
            .execute_streaming(&EvalOptions::default().with_threads(3))
            .unwrap();
        assert_eq!(stream.total_tuples(), reference.tuples.len());
        let mut streamed = Vec::new();
        for item in &mut stream {
            streamed.push(item.unwrap());
        }
        assert_eq!(streamed.len(), reference.tuples.len());
        for (s, r) in streamed.iter().zip(&reference.tuples) {
            assert_eq!(s.values, r.values);
            assert_eq!(s.confidence.to_bits(), r.confidence.to_bits());
            assert_eq!(s.aggregate_distributions, r.aggregate_distributions);
        }
        // Counters are final once the stream is exhausted.
        assert_eq!(stream.fast_path_hits() > 0, reference.fast_path_hits > 0);
    }
}

#[test]
fn streaming_partial_consumption_does_not_deadlock_or_leak() {
    // A bounded channel plus eager workers: dropping the stream after consuming a
    // prefix must cancel the remaining work, unblock senders and join every
    // worker. Repeat enough times that a leaked/deadlocked worker would show up.
    let engine = Engine::new(workload_db(10, 5, 11));
    let (query, _) = strategy_workload().into_iter().nth(1).unwrap();
    let prepared = engine.prepare(&query).unwrap();
    for round in 0..10 {
        let mut stream = prepared
            .execute_streaming(&EvalOptions::default().with_threads(4))
            .unwrap();
        let take = round % 3; // sometimes consume nothing at all
        for _ in 0..take {
            if let Some(item) = stream.next() {
                item.unwrap();
            }
        }
        drop(stream);
    }
    // The engine is still fully functional afterwards.
    let result = prepared.execute(&EvalOptions::default()).unwrap();
    assert!(!result.tuples.is_empty());
}

#[test]
fn streaming_with_one_thread_still_streams() {
    let engine = Engine::new(workload_db(6, 3, 5));
    let (query, _) = strategy_workload().into_iter().next().unwrap();
    let prepared = engine.prepare(&query).unwrap();
    let stream = prepared
        .execute_streaming(&EvalOptions::default().with_threads(1))
        .unwrap();
    assert_eq!(stream.threads(), 1);
    let reference = prepared.execute(&EvalOptions::default()).unwrap();
    let streamed: Vec<ProbTuple> = stream.map(|t| t.unwrap()).collect();
    assert_eq!(streamed.len(), reference.tuples.len());
    for (s, r) in streamed.iter().zip(&reference.tuples) {
        assert_eq!(s.confidence.to_bits(), r.confidence.to_bits());
    }
}

#[test]
fn shared_artifacts_serve_multiple_engines() {
    // The Arc-based handle backs several engines over clones of one database; the
    // second engine's cold run is served from the first engine's artifacts.
    let db = workload_db(8, 4, 13);
    let engine_a = Engine::new(db.clone());
    let shared: Arc<SharedArtifacts> = engine_a.shared_artifacts();
    let engine_b = Engine::with_shared_artifacts(db, Arc::clone(&shared));
    let (query, _) = strategy_workload().into_iter().nth(2).unwrap();
    let ra = engine_a
        .prepare(&query)
        .unwrap()
        .execute(&EvalOptions::default().with_threads(2))
        .unwrap();
    let misses_after_a = engine_a.cache_stats().misses;
    let rb = engine_b
        .prepare(&query)
        .unwrap()
        .execute(&EvalOptions::default().with_threads(2))
        .unwrap();
    assert_identical(&ra, &rb, "shared artifacts across engines");
    let stats = engine_b.cache_stats();
    assert_eq!(
        stats.misses, misses_after_a,
        "engine B must not recompute what engine A cached"
    );
}

#[test]
fn node_budget_error_is_deterministic_under_parallelism() {
    let engine = Engine::new(workload_db(8, 4, 17));
    let (query, _) = strategy_workload().pop().unwrap();
    let prepared = engine.prepare(&query).unwrap();
    let seq = prepared
        .execute(
            &EvalOptions::default()
                .with_node_budget(1)
                .without_fast_path(),
        )
        .unwrap_err();
    for threads in [2, 4] {
        let par = prepared
            .execute(
                &EvalOptions::default()
                    .with_node_budget(1)
                    .without_fast_path()
                    .with_threads(threads),
            )
            .unwrap_err();
        assert_eq!(
            format!("{seq}"),
            format!("{par}"),
            "first-in-order error must not depend on the worker count"
        );
    }
}
