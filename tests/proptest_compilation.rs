//! Property-based end-to-end test: for randomly generated semiring and semimodule
//! expressions (including conditionals, mixed monoids and Shannon-requiring variable
//! sharing), the distribution computed via decomposition trees equals the brute-force
//! possible-world semantics, with and without the structural decomposition rules.

use proptest::prelude::*;
use pvc_suite::expr::oracle;
use pvc_suite::prelude::*;

const NUM_VARS: usize = 6;

fn make_vars(probs: &[f64]) -> VarTable {
    let mut vars = VarTable::new();
    for (i, p) in probs.iter().enumerate() {
        vars.boolean(format!("x{i}"), *p);
    }
    vars
}

/// A strategy for random semiring expressions over `NUM_VARS` Boolean variables.
fn semiring_expr(depth: u32) -> impl Strategy<Value = SemiringExpr> {
    let leaf = prop_oneof![
        (0..NUM_VARS as u32).prop_map(|i| SemiringExpr::Var(Var(i))),
        Just(SemiringExpr::Const(SemiringValue::Bool(true))),
        Just(SemiringExpr::Const(SemiringValue::Bool(false))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(SemiringExpr::sum),
            prop::collection::vec(inner, 2..4).prop_map(SemiringExpr::product),
        ]
    })
}

/// A strategy for random semimodule expressions (flat term lists).
fn semimodule_expr() -> impl Strategy<Value = SemimoduleExpr> {
    let op = prop_oneof![
        Just(AggOp::Min),
        Just(AggOp::Max),
        Just(AggOp::Sum),
        Just(AggOp::Count),
    ];
    (op, prop::collection::vec((semiring_expr(2), -20i64..20), 1..5)).prop_map(|(op, terms)| {
        SemimoduleExpr::from_terms(
            op,
            terms
                .into_iter()
                .map(|(coeff, value)| {
                    let value = if op == AggOp::Count { 1 } else { value };
                    (coeff, MonoidValue::Fin(value))
                })
                .collect(),
        )
    })
}

fn probs() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05f64..0.95, NUM_VARS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn semiring_dtree_matches_enumeration(expr in semiring_expr(3), probs in probs()) {
        let vars = make_vars(&probs);
        let by_dtree = semiring_distribution(&expr, &vars, SemiringKind::Bool);
        let by_enum = oracle::semiring_dist_by_enumeration(&expr, &vars, SemiringKind::Bool);
        prop_assert!(by_dtree.approx_eq(&by_enum, 1e-7), "{expr}");
    }

    #[test]
    fn semimodule_dtree_matches_enumeration(expr in semimodule_expr(), probs in probs()) {
        let vars = make_vars(&probs);
        let by_dtree = semimodule_distribution(&expr, &vars, SemiringKind::Bool);
        let by_enum = oracle::semimodule_dist_by_enumeration(&expr, &vars, SemiringKind::Bool);
        prop_assert!(by_dtree.approx_eq(&by_enum, 1e-7), "{expr}");
    }

    #[test]
    fn conditional_expressions_match_enumeration(
        lhs in semimodule_expr(),
        bound in -20i64..20,
        theta_idx in 0usize..6,
        probs in probs(),
    ) {
        let theta = [CmpOp::Eq, CmpOp::Ne, CmpOp::Le, CmpOp::Ge, CmpOp::Lt, CmpOp::Gt][theta_idx];
        let vars = make_vars(&probs);
        let cond = SemiringExpr::cmp_mm(
            theta,
            lhs,
            SemimoduleExpr::constant(AggOp::Min, MonoidValue::Fin(bound)),
        );
        let p = confidence(&cond, &vars, SemiringKind::Bool);
        let expected = oracle::confidence_by_enumeration(&cond, &vars, SemiringKind::Bool);
        prop_assert!((p - expected).abs() < 1e-7, "{cond}");
    }

    #[test]
    fn shannon_only_ablation_agrees_with_full_rules(expr in semiring_expr(3), probs in probs()) {
        let vars = make_vars(&probs);
        let full = semiring_distribution(&expr, &vars, SemiringKind::Bool);
        let mut shannon = Compiler::with_options(
            &vars,
            SemiringKind::Bool,
            CompileOptions::shannon_only(),
        );
        let tree = shannon.compile_semiring(&expr).unwrap();
        let dist = tree.semiring_distribution(&vars, SemiringKind::Bool).unwrap();
        prop_assert!(full.approx_eq(&dist, 1e-7));
    }

    #[test]
    fn dtree_distributions_are_proper(expr in semimodule_expr(), probs in probs()) {
        let vars = make_vars(&probs);
        let dist = semimodule_distribution(&expr, &vars, SemiringKind::Bool);
        prop_assert!(dist.is_normalized());
        prop_assert!(dist.iter().all(|(_, p)| p > 0.0 && p <= 1.0 + 1e-9));
    }
}
