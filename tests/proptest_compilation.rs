//! Property-based end-to-end test: for randomly generated semiring and semimodule
//! expressions (including conditionals, mixed monoids and Shannon-requiring variable
//! sharing), the distribution computed via decomposition trees equals the brute-force
//! possible-world semantics, with and without the structural decomposition rules.
//!
//! Cases are drawn from a deterministic, seeded stream (no external property-testing
//! framework), so every run exercises the same expressions.

use pvc_suite::expr::oracle;
use pvc_suite::prelude::*;
use pvc_suite::prob::SeededRng;

const NUM_VARS: usize = 6;
const CASES: u64 = 64;

fn make_vars(rng: &mut SeededRng) -> VarTable {
    let mut vars = VarTable::new();
    for i in 0..NUM_VARS {
        let p = 0.05 + 0.9 * rng.next_f64();
        vars.boolean(format!("x{i}"), p);
    }
    vars
}

/// A random semiring expression over `NUM_VARS` Boolean variables.
fn semiring_expr(rng: &mut SeededRng, depth: u32) -> SemiringExpr {
    // At depth 0 produce a leaf; otherwise half the time branch into a sum/product.
    if depth == 0 || rng.gen_range(0usize..2) == 0 {
        return match rng.gen_range(0usize..4) {
            0 => SemiringExpr::Const(SemiringValue::Bool(true)),
            1 => SemiringExpr::Const(SemiringValue::Bool(false)),
            _ => SemiringExpr::Var(Var(rng.gen_range(0u32..NUM_VARS as u32))),
        };
    }
    let arity = rng.gen_range(2usize..4);
    let children: Vec<SemiringExpr> = (0..arity).map(|_| semiring_expr(rng, depth - 1)).collect();
    if rng.gen_range(0usize..2) == 0 {
        SemiringExpr::sum(children)
    } else {
        SemiringExpr::product(children)
    }
}

/// A random semimodule expression (flat term list).
fn semimodule_expr(rng: &mut SeededRng) -> SemimoduleExpr {
    let op = [AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::Count][rng.gen_range(0usize..4)];
    let terms = rng.gen_range(1usize..5);
    SemimoduleExpr::from_terms(
        op,
        (0..terms)
            .map(|_| {
                let coeff = semiring_expr(rng, 2);
                let value = if op == AggOp::Count {
                    1
                } else {
                    rng.gen_range(-20i64..20)
                };
                (coeff, MonoidValue::Fin(value))
            })
            .collect(),
    )
}

#[test]
fn semiring_dtree_matches_enumeration() {
    let mut rng = SeededRng::seed_from_u64(0xC1);
    for case in 0..CASES {
        let vars = make_vars(&mut rng);
        let expr = semiring_expr(&mut rng, 3);
        let by_dtree = semiring_distribution(&expr, &vars, SemiringKind::Bool);
        let by_enum = oracle::semiring_dist_by_enumeration(&expr, &vars, SemiringKind::Bool);
        assert!(by_dtree.approx_eq(&by_enum, 1e-7), "case {case}: {expr}");
    }
}

#[test]
fn semimodule_dtree_matches_enumeration() {
    let mut rng = SeededRng::seed_from_u64(0xC2);
    for case in 0..CASES {
        let vars = make_vars(&mut rng);
        let expr = semimodule_expr(&mut rng);
        let by_dtree = semimodule_distribution(&expr, &vars, SemiringKind::Bool);
        let by_enum = oracle::semimodule_dist_by_enumeration(&expr, &vars, SemiringKind::Bool);
        assert!(by_dtree.approx_eq(&by_enum, 1e-7), "case {case}: {expr}");
    }
}

#[test]
fn conditional_expressions_match_enumeration() {
    let mut rng = SeededRng::seed_from_u64(0xC3);
    let thetas = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Le,
        CmpOp::Ge,
        CmpOp::Lt,
        CmpOp::Gt,
    ];
    for case in 0..CASES {
        let vars = make_vars(&mut rng);
        let lhs = semimodule_expr(&mut rng);
        let bound = rng.gen_range(-20i64..20);
        let theta = thetas[rng.gen_range(0usize..thetas.len())];
        let cond = SemiringExpr::cmp_mm(
            theta,
            lhs,
            SemimoduleExpr::constant(AggOp::Min, MonoidValue::Fin(bound)),
        );
        let p = confidence(&cond, &vars, SemiringKind::Bool);
        let expected = oracle::confidence_by_enumeration(&cond, &vars, SemiringKind::Bool);
        assert!((p - expected).abs() < 1e-7, "case {case}: {cond}");
    }
}

#[test]
fn shannon_only_ablation_agrees_with_full_rules() {
    let mut rng = SeededRng::seed_from_u64(0xC4);
    for case in 0..CASES {
        let vars = make_vars(&mut rng);
        let expr = semiring_expr(&mut rng, 3);
        let full = semiring_distribution(&expr, &vars, SemiringKind::Bool);
        let mut shannon =
            Compiler::with_options(&vars, SemiringKind::Bool, CompileOptions::shannon_only());
        let tree = shannon.compile_semiring(&expr).unwrap();
        let dist = tree
            .semiring_distribution(&vars, SemiringKind::Bool)
            .unwrap();
        assert!(full.approx_eq(&dist, 1e-7), "case {case}: {expr}");
    }
}

#[test]
fn dtree_distributions_are_proper() {
    let mut rng = SeededRng::seed_from_u64(0xC5);
    for case in 0..CASES {
        let vars = make_vars(&mut rng);
        let expr = semimodule_expr(&mut rng);
        let dist = semimodule_distribution(&expr, &vars, SemiringKind::Bool);
        assert!(dist.is_normalized(), "case {case}: {expr}");
        assert!(dist.iter().all(|(_, p)| p > 0.0 && p <= 1.0 + 1e-9));
    }
}
