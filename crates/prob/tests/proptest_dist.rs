//! Property-based tests for distributions and convolution, run over a deterministic,
//! seeded stream of random cases (no external property-testing framework).

use pvc_prob::{Dist, ProbabilitySpace, SeededRng};

const CASES: u64 = 128;

/// A random normalized distribution over up to 4 integer values in [-5, 5).
fn small_dist(rng: &mut SeededRng) -> Dist<i64> {
    let n = rng.gen_range(1usize..5);
    let pairs: Vec<(i64, f64)> = (0..n)
        .map(|_| (rng.gen_range(-5i64..5), 0.05 + 0.95 * rng.next_f64()))
        .collect();
    let total: f64 = pairs.iter().map(|(_, p)| p).sum();
    Dist::from_pairs(pairs.into_iter().map(|(v, p)| (v, p / total)))
}

#[test]
fn convolution_preserves_mass() {
    let mut rng = SeededRng::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        let c = a.convolve(&b, |x, y| x + y);
        assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-9);
    }
}

#[test]
fn convolution_is_commutative_for_commutative_ops() {
    let mut rng = SeededRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        let ab = a.convolve(&b, |x, y| x + y);
        let ba = b.convolve(&a, |x, y| x + y);
        assert!(ab.approx_eq(&ba, 1e-9));
        let ab = a.convolve(&b, |x, y| (*x).max(*y));
        let ba = b.convolve(&a, |x, y| (*x).max(*y));
        assert!(ab.approx_eq(&ba, 1e-9));
    }
}

#[test]
fn convolution_is_associative() {
    let mut rng = SeededRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        let c = small_dist(&mut rng);
        let left = a.convolve(&b, |x, y| x + y).convolve(&c, |x, y| x + y);
        let right = a.convolve(&b.convolve(&c, |x, y| x + y), |x, y| x + y);
        assert!(left.approx_eq(&right, 1e-9));
    }
}

#[test]
fn point_distribution_is_neutral_for_sum() {
    let mut rng = SeededRng::seed_from_u64(0xB4);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let zero = Dist::point(0i64);
        let conv = a.convolve(&zero, |x, y| x + y);
        assert!(conv.approx_eq(&a, 1e-9));
    }
}

#[test]
fn scale_mix_partition_reconstructs() {
    // Partitioning a distribution into an event and its complement and mixing the
    // scaled parts back yields the original distribution.
    let mut rng = SeededRng::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let p = rng.next_f64();
        let branch1 = a.clone();
        let branch2 = a.clone();
        let mixed = branch1.scale(p).mix(&branch2.scale(1.0 - p));
        assert!(mixed.approx_eq(&a, 1e-9));
    }
}

#[test]
fn enumeration_matches_convolution_for_sums() {
    let mut rng = SeededRng::seed_from_u64(0xB6);
    for _ in 0..CASES {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|p| p / s).collect::<Vec<_>>()
        };
        let px: Vec<f64> = (0..2).map(|_| 0.1 + 0.9 * rng.next_f64()).collect();
        let py: Vec<f64> = (0..3).map(|_| 0.1 + 0.9 * rng.next_f64()).collect();
        let px = norm(&px);
        let py = norm(&py);
        let dx = Dist::from_pairs(px.iter().enumerate().map(|(i, p)| (i as i64, *p)));
        let dy = Dist::from_pairs(py.iter().enumerate().map(|(i, p)| (10 + i as i64, *p)));
        let mut space = ProbabilitySpace::new();
        space.insert("x", dx.clone());
        space.insert("y", dy.clone());
        let by_enum = space.distribution_of(|v| v["x"] + v["y"]);
        let by_conv = dx.convolve(&dy, |a, b| a + b);
        assert!(by_enum.approx_eq(&by_conv, 1e-9));
    }
}

#[test]
fn map_preserves_mass() {
    let mut rng = SeededRng::seed_from_u64(0xB7);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let m = a.map(|v| v.rem_euclid(3));
        assert!((m.total_mass() - a.total_mass()).abs() < 1e-9);
    }
}

#[test]
fn filter_plus_complement_preserves_mass() {
    let mut rng = SeededRng::seed_from_u64(0xB8);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let even = a.filter(|v| v % 2 == 0);
        let odd = a.filter(|v| v % 2 != 0);
        assert!((even.total_mass() + odd.total_mass() - a.total_mass()).abs() < 1e-9);
    }
}
