//! Property-based tests for distributions and convolution, run over a deterministic,
//! seeded stream of random cases (no external property-testing framework).
//!
//! The second half drives random operation chains through both the flat
//! sorted-vector kernel and the retained `BTreeMap` reference implementation
//! ([`pvc_prob::dist::reference`]) and requires **exact** (bitwise) agreement.

use pvc_algebra::MonoidValue;
use pvc_prob::dist::reference::RefDist;
use pvc_prob::{convolve_additive, Dist, DistRepr, ProbabilitySpace, SeededRng};

const CASES: u64 = 128;

/// A random normalized distribution over up to 4 integer values in [-5, 5).
fn small_dist(rng: &mut SeededRng) -> Dist<i64> {
    let n = rng.gen_range(1usize..5);
    let pairs: Vec<(i64, f64)> = (0..n)
        .map(|_| (rng.gen_range(-5i64..5), 0.05 + 0.95 * rng.next_f64()))
        .collect();
    let total: f64 = pairs.iter().map(|(_, p)| p).sum();
    Dist::from_pairs(pairs.into_iter().map(|(v, p)| (v, p / total)))
}

#[test]
fn convolution_preserves_mass() {
    let mut rng = SeededRng::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        let c = a.convolve(&b, |x, y| x + y);
        assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-9);
    }
}

#[test]
fn convolution_is_commutative_for_commutative_ops() {
    let mut rng = SeededRng::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        let ab = a.convolve(&b, |x, y| x + y);
        let ba = b.convolve(&a, |x, y| x + y);
        assert!(ab.approx_eq(&ba, 1e-9));
        let ab = a.convolve(&b, |x, y| (*x).max(*y));
        let ba = b.convolve(&a, |x, y| (*x).max(*y));
        assert!(ab.approx_eq(&ba, 1e-9));
    }
}

#[test]
fn convolution_is_associative() {
    let mut rng = SeededRng::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        let c = small_dist(&mut rng);
        let left = a.convolve(&b, |x, y| x + y).convolve(&c, |x, y| x + y);
        let right = a.convolve(&b.convolve(&c, |x, y| x + y), |x, y| x + y);
        assert!(left.approx_eq(&right, 1e-9));
    }
}

#[test]
fn point_distribution_is_neutral_for_sum() {
    let mut rng = SeededRng::seed_from_u64(0xB4);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let zero = Dist::point(0i64);
        let conv = a.convolve(&zero, |x, y| x + y);
        assert!(conv.approx_eq(&a, 1e-9));
    }
}

#[test]
fn scale_mix_partition_reconstructs() {
    // Partitioning a distribution into an event and its complement and mixing the
    // scaled parts back yields the original distribution.
    let mut rng = SeededRng::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let p = rng.next_f64();
        let branch1 = a.clone();
        let branch2 = a.clone();
        let mixed = branch1.scale(p).mix(&branch2.scale(1.0 - p));
        assert!(mixed.approx_eq(&a, 1e-9));
    }
}

#[test]
fn enumeration_matches_convolution_for_sums() {
    let mut rng = SeededRng::seed_from_u64(0xB6);
    for _ in 0..CASES {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|p| p / s).collect::<Vec<_>>()
        };
        let px: Vec<f64> = (0..2).map(|_| 0.1 + 0.9 * rng.next_f64()).collect();
        let py: Vec<f64> = (0..3).map(|_| 0.1 + 0.9 * rng.next_f64()).collect();
        let px = norm(&px);
        let py = norm(&py);
        let dx = Dist::from_pairs(px.iter().enumerate().map(|(i, p)| (i as i64, *p)));
        let dy = Dist::from_pairs(py.iter().enumerate().map(|(i, p)| (10 + i as i64, *p)));
        let mut space = ProbabilitySpace::new();
        space.insert("x", dx.clone());
        space.insert("y", dy.clone());
        let by_enum = space.distribution_of(|v| v["x"] + v["y"]);
        let by_conv = dx.convolve(&dy, |a, b| a + b);
        assert!(by_enum.approx_eq(&by_conv, 1e-9));
    }
}

#[test]
fn map_preserves_mass() {
    let mut rng = SeededRng::seed_from_u64(0xB7);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let m = a.map(|v| v.rem_euclid(3));
        assert!((m.total_mass() - a.total_mass()).abs() < 1e-9);
    }
}

#[test]
fn filter_plus_complement_preserves_mass() {
    let mut rng = SeededRng::seed_from_u64(0xB8);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let even = a.filter(|v| v % 2 == 0);
        let odd = a.filter(|v| v % 2 != 0);
        assert!((even.total_mass() + odd.total_mass() - a.total_mass()).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Flat kernel vs. BTreeMap reference: exact agreement on random op chains.
// ---------------------------------------------------------------------------

/// Structural + numeric invariants of the flat representation: ascending unique
/// values, strictly positive finite (NaN-free) weights.
fn assert_invariants(d: &Dist<i64>) {
    let support: Vec<i64> = d.support().copied().collect();
    assert!(support.windows(2).all(|w| w[0] < w[1]), "unsorted support");
    for (_, p) in d.iter() {
        assert!(p.is_finite() && !p.is_nan(), "non-finite weight {p}");
        assert!(p > 0.0, "non-positive weight {p}");
    }
}

fn assert_bit_equal(reference: &RefDist<i64>, flat: &Dist<i64>) {
    assert!(
        reference.bit_equal(flat),
        "flat kernel diverged from the BTreeMap reference:\n flat: {:?}\n ref:  {:?}",
        flat.iter().collect::<Vec<_>>(),
        reference.to_flat().iter().collect::<Vec<_>>()
    );
}

/// Random raw pairs, including duplicates and sub-threshold weights, so the merge
/// and drop rules are exercised.
fn raw_pairs(rng: &mut SeededRng) -> Vec<(i64, f64)> {
    let n = rng.gen_range(0usize..6);
    (0..n)
        .map(|_| {
            let v = rng.gen_range(-4i64..5);
            let p = match rng.gen_range(0u32..8) {
                0 => 0.0,   // dropped before accumulation
                1 => 5e-10, // below PROB_EPS
                _ => 0.05 + rng.next_f64(),
            };
            (v, p)
        })
        .collect()
}

#[test]
fn flat_matches_reference_on_random_op_chains() {
    let mut rng = SeededRng::seed_from_u64(0xC1);
    for _ in 0..CASES {
        let pairs = raw_pairs(&mut rng);
        let mut flat = Dist::from_pairs(pairs.clone());
        let mut reference = RefDist::from_pairs(pairs);
        assert_bit_equal(&reference, &flat);
        assert_invariants(&flat);
        // A chain of 4 random operations, applied to both implementations.
        for _ in 0..4 {
            match rng.gen_range(0u32..4) {
                0 => {
                    let other_pairs = raw_pairs(&mut rng);
                    let other_flat = Dist::from_pairs(other_pairs.clone());
                    let other_ref = RefDist::from_pairs(other_pairs);
                    let op = rng.gen_range(0u32..3);
                    let f = move |x: &i64, y: &i64| match op {
                        0 => x + y,
                        1 => (*x).min(*y),
                        _ => x * y,
                    };
                    flat = flat.convolve(&other_flat, f);
                    reference = reference.convolve(&other_ref, f);
                }
                1 => {
                    let other_pairs = raw_pairs(&mut rng);
                    flat = flat.mix(&Dist::from_pairs(other_pairs.clone()));
                    reference = reference.mix(&RefDist::from_pairs(other_pairs));
                }
                2 => {
                    let factor = rng.next_f64() * 1.5;
                    flat = flat.scale(factor);
                    reference = reference.scale(factor);
                }
                _ => {
                    let modulus = rng.gen_range(2i64..5);
                    flat = flat.map(|v| v.rem_euclid(modulus));
                    reference = reference.map(|v| v.rem_euclid(modulus));
                }
            }
            assert_bit_equal(&reference, &flat);
            assert_invariants(&flat);
        }
    }
}

/// A random monoid-value distribution; contiguous supports trigger the dense path.
fn monoid_dist(rng: &mut SeededRng, contiguous: bool) -> Dist<MonoidValue> {
    let n = rng.gen_range(1usize..6);
    let stride = if contiguous { 1 } else { 997 };
    let base = rng.gen_range(-3i64..4);
    let pairs: Vec<(MonoidValue, f64)> = (0..n as i64)
        .map(|i| (MonoidValue::Fin(base + i * stride), 0.05 + rng.next_f64()))
        .collect();
    let total: f64 = pairs.iter().map(|(_, p)| p).sum();
    Dist::from_pairs(pairs.into_iter().map(|(v, p)| (v, p / total)))
}

#[test]
fn dense_and_sparse_additive_convolutions_agree_bitwise() {
    let mut rng = SeededRng::seed_from_u64(0xC2);
    for case in 0..CASES {
        let contiguous = case % 2 == 0;
        let a = monoid_dist(&mut rng, contiguous);
        let b = monoid_dist(&mut rng, contiguous);
        if contiguous {
            assert!(
                DistRepr::of(&a).is_dense(),
                "contiguous support should choose the dense representation"
            );
        }
        let adaptive = convolve_additive(&a, &b);
        let sparse = a.convolve(&b, |x, y| x.saturating_add(y));
        assert_eq!(adaptive.support_size(), sparse.support_size());
        for ((av, ap), (sv, sp)) in adaptive.iter().zip(sparse.iter()) {
            assert_eq!(av, sv);
            assert_eq!(ap.to_bits(), sp.to_bits(), "value {av:?}");
        }
        // Total-mass preservation (both operands are normalized).
        assert!((adaptive.total_mass() - 1.0).abs() < 1e-9);
        for (_, p) in adaptive.iter() {
            assert!(p.is_finite() && p > 0.0);
        }
    }
}

#[test]
fn mass_is_preserved_through_mix_scale_chains() {
    let mut rng = SeededRng::seed_from_u64(0xC3);
    for _ in 0..CASES {
        let a = small_dist(&mut rng);
        let b = small_dist(&mut rng);
        // Mixing with weights p and 1-p preserves total (unit) mass; the flat and
        // reference kernels agree bit-for-bit along the way.
        let p = 0.05 + 0.9 * rng.next_f64();
        let flat = a.scale(p).mix(&b.scale(1.0 - p));
        let reference = RefDist::from(&a)
            .scale(p)
            .mix(&RefDist::from(&b).scale(1.0 - p));
        assert_bit_equal(&reference, &flat);
        assert!((flat.total_mass() - 1.0).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------------
// The adaptive FFT kernel vs. the exact chunked kernel, across the crossover.
// ---------------------------------------------------------------------------

use pvc_prob::{fft_would_run, DenseDist, FFT_MIN_LEN, FFT_RELATIVE_EPS};

/// A normalized dense distribution spanning exactly `len` contiguous cells,
/// with a random sprinkling of interior gaps (endpoints always occupied, so the
/// operand length — and with it the FFT crossover — is under the test's
/// control, and the chunked kernel's zero-cell skip gets exercised).
fn dense_span(rng: &mut SeededRng, len: usize) -> DenseDist {
    let base = rng.gen_range(-20i64..20);
    let mut pairs: Vec<(MonoidValue, f64)> = Vec::with_capacity(len);
    for i in 0..len as i64 {
        if i != 0 && i != len as i64 - 1 && rng.gen_range(0u32..5) == 0 {
            continue;
        }
        pairs.push((MonoidValue::Fin(base + i), 0.05 + rng.next_f64()));
    }
    let total: f64 = pairs.iter().map(|(_, p)| p).sum();
    let d = Dist::from_pairs(pairs.into_iter().map(|(v, p)| (v, p / total)));
    DenseDist::from_dist(&d).expect("finite non-empty support")
}

/// Trim invariant: the bounds reported by `offset`/`len` are *true* support
/// bounds — the first and last cells hold mass.
fn assert_trimmed(d: &DenseDist) {
    if d.is_empty() {
        return;
    }
    let cells: Vec<(i64, f64)> = d.iter().collect();
    assert_eq!(
        cells.first().map(|c| c.0),
        Some(d.offset()),
        "leading zeros"
    );
    assert_eq!(
        cells.last().map(|c| c.0),
        Some(d.offset() + d.len() as i64 - 1),
        "trailing zeros"
    );
}

#[test]
fn adaptive_convolution_agrees_with_exact_across_the_fft_cutoff() {
    let mut rng = SeededRng::seed_from_u64(0xD1);
    // Operand lengths straddling the crossover: below FFT_MIN_LEN, at it but
    // with the cost model refusing, and comfortably past it.
    let shapes = [
        (8, 8),
        (FFT_MIN_LEN - 1, 512),
        (FFT_MIN_LEN, FFT_MIN_LEN),
        (100, 100),
        (256, 256),
        (320, 190),
    ];
    let mut took_fft = false;
    for _ in 0..8 {
        for &(la, lb) in &shapes {
            let a = dense_span(&mut rng, la);
            let b = dense_span(&mut rng, lb);
            let adaptive = a.convolve_add(&b);
            let exact = a.convolve_add_exact(&b);
            assert_trimmed(&adaptive);
            assert_trimmed(&exact);
            for (_, p) in adaptive.iter() {
                assert!(p.is_finite() && p > 0.0, "non-finite or negative cell {p}");
            }
            assert!(
                (adaptive.total_mass() - exact.total_mass()).abs() < 1e-6,
                "mass drifted: fft={} exact={} ({la}×{lb})",
                adaptive.total_mass(),
                exact.total_mass()
            );
            if fft_would_run(a.len(), b.len()) {
                took_fft = true;
                // ε-close per cell under the documented accuracy policy.
                assert_eq!(adaptive.offset(), exact.offset(), "{la}×{lb}");
                assert_eq!(adaptive.len(), exact.len(), "{la}×{lb}");
                let tol = FFT_RELATIVE_EPS.max(1e-12);
                for ((va, pa), (ve, pe)) in adaptive.iter().zip(exact.iter()) {
                    assert_eq!(va, ve);
                    assert!(
                        (pa - pe).abs() <= tol,
                        "cell {va}: fft={pa} exact={pe} ({la}×{lb})"
                    );
                }
            } else {
                // Below the crossover the adaptive kernel *is* the exact one.
                assert_eq!(adaptive, exact, "{la}×{lb}");
            }
        }
    }
    assert!(took_fft, "no shape reached the FFT path — cutoff drifted?");
}

#[test]
fn chunked_kernel_conserves_mass_and_stays_finite() {
    let mut rng = SeededRng::seed_from_u64(0xD2);
    for _ in 0..CASES {
        // Lengths below, at, and above the 4-lane width, so both the packed
        // loop and the scalar remainder run.
        let la = rng.gen_range(1usize..40);
        let lb = rng.gen_range(1usize..40);
        let a = dense_span(&mut rng, la);
        let b = dense_span(&mut rng, lb);
        let out = a.convolve_add_exact(&b);
        assert_trimmed(&out);
        // Mass is the product of the operand masses, up to the drop rule
        // zeroing cells at or below PROB_EPS.
        let expected = a.total_mass() * b.total_mass();
        let slack = 1e-9 * (out.len() as f64 + 1.0) + 1e-12;
        assert!(
            (out.total_mass() - expected).abs() <= slack,
            "mass: got {} want {expected} ({la}×{lb})",
            out.total_mass()
        );
        for (_, p) in out.iter() {
            assert!(p.is_finite() && p > 0.0);
        }
        // Bit-for-bit agreement with the sparse kernel (same accumulation
        // order by construction).
        let sparse = a
            .to_dist()
            .convolve(&b.to_dist(), |x, y| x.saturating_add(y));
        let dense_cells: Vec<(i64, f64)> = out.iter().collect();
        assert_eq!(dense_cells.len(), sparse.support_size());
        for ((dv, dp), (sv, sp)) in dense_cells.iter().zip(sparse.iter()) {
            assert_eq!(MonoidValue::Fin(*dv), *sv);
            assert_eq!(dp.to_bits(), sp.to_bits(), "value {dv}");
        }
    }
}
