//! Property-based tests for distributions and convolution.

use proptest::prelude::*;
use pvc_prob::{Dist, ProbabilitySpace};

fn small_dist() -> impl Strategy<Value = Dist<i64>> {
    prop::collection::vec((-5i64..5, 0.05f64..1.0), 1..5).prop_map(|pairs| {
        let total: f64 = pairs.iter().map(|(_, p)| p).sum();
        Dist::from_pairs(pairs.into_iter().map(|(v, p)| (v, p / total)))
    })
}

proptest! {
    #[test]
    fn convolution_preserves_mass(a in small_dist(), b in small_dist()) {
        let c = a.convolve(&b, |x, y| x + y);
        prop_assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() < 1e-9);
    }

    #[test]
    fn convolution_is_commutative_for_commutative_ops(a in small_dist(), b in small_dist()) {
        let ab = a.convolve(&b, |x, y| x + y);
        let ba = b.convolve(&a, |x, y| x + y);
        prop_assert!(ab.approx_eq(&ba, 1e-9));
        let ab = a.convolve(&b, |x, y| (*x).max(*y));
        let ba = b.convolve(&a, |x, y| (*x).max(*y));
        prop_assert!(ab.approx_eq(&ba, 1e-9));
    }

    #[test]
    fn convolution_is_associative(a in small_dist(), b in small_dist(), c in small_dist()) {
        let left = a.convolve(&b, |x, y| x + y).convolve(&c, |x, y| x + y);
        let right = a.convolve(&b.convolve(&c, |x, y| x + y), |x, y| x + y);
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn point_distribution_is_neutral_for_sum(a in small_dist()) {
        let zero = Dist::point(0i64);
        let conv = a.convolve(&zero, |x, y| x + y);
        prop_assert!(conv.approx_eq(&a, 1e-9));
    }

    #[test]
    fn scale_mix_partition_reconstructs(a in small_dist(), p in 0.0f64..1.0) {
        // Partitioning a distribution into an event and its complement and mixing the
        // scaled parts back yields the original distribution.
        let branch1 = a.clone();
        let branch2 = a.clone();
        let mixed = branch1.scale(p).mix(&branch2.scale(1.0 - p));
        prop_assert!(mixed.approx_eq(&a, 1e-9));
    }

    #[test]
    fn enumeration_matches_convolution_for_sums(
        px in prop::collection::vec(0.1f64..1.0, 2),
        py in prop::collection::vec(0.1f64..1.0, 3),
    ) {
        let norm = |v: &[f64]| {
            let s: f64 = v.iter().sum();
            v.iter().map(|p| p / s).collect::<Vec<_>>()
        };
        let px = norm(&px);
        let py = norm(&py);
        let dx = Dist::from_pairs(px.iter().enumerate().map(|(i, p)| (i as i64, *p)));
        let dy = Dist::from_pairs(py.iter().enumerate().map(|(i, p)| (10 + i as i64, *p)));
        let mut space = ProbabilitySpace::new();
        space.insert("x", dx.clone());
        space.insert("y", dy.clone());
        let by_enum = space.distribution_of(|v| v["x"] + v["y"]);
        let by_conv = dx.convolve(&dy, |a, b| a + b);
        prop_assert!(by_enum.approx_eq(&by_conv, 1e-9));
    }

    #[test]
    fn map_preserves_mass(a in small_dist()) {
        let m = a.map(|v| v.rem_euclid(3));
        prop_assert!((m.total_mass() - a.total_mass()).abs() < 1e-9);
    }

    #[test]
    fn filter_plus_complement_preserves_mass(a in small_dist()) {
        let even = a.filter(|v| v % 2 == 0);
        let odd = a.filter(|v| v % 2 != 0);
        prop_assert!((even.total_mass() + odd.total_mass() - a.total_mass()).abs() < 1e-9);
    }
}
