//! Brute-force possible-world oracle for aggregate distributions.
//!
//! The engine computes aggregate distributions through knowledge compilation,
//! decomposition trees, and the adaptive convolution kernel — a long chain of
//! clever code. This module computes the *same* distributions the dumbest
//! possible way: enumerate **all `2^n` worlds** of `n` independent Boolean
//! tuples, fold the aggregate in each world, and sum world probabilities per
//! outcome. Exponential, unarguably correct, and therefore the ground truth
//! the differential tests (`tests/oracle_differential.rs`) pin every
//! strategy × representation × thread-count combination against.
//!
//! Two variants cover the two semantics a grouped aggregate can have:
//!
//! * [`aggregate_by_enumeration`] — the aggregate as a **total** distribution:
//!   worlds where no tuple is present contribute their mass to the monoid
//!   identity (`SUM = 0`, `MIN = +∞`, …). Total mass is exactly 1 (up to the
//!   kernel's drop rule).
//! * [`aggregate_present_by_enumeration`] — the aggregate as a
//!   **sub-distribution conditioned on the group existing**: empty worlds
//!   contribute nothing, so the total mass is `1 − ∏(1 − pᵢ)`, the probability
//!   that at least one tuple is present. This matches the engine's per-tuple
//!   result semantics, where a group that materialises no tuple has no row.
//!
//! Both walk masks in ascending order and accumulate per-outcome masses in a
//! `BTreeMap`, so the summation order is deterministic — runs are repeatable
//! bit-for-bit, which the differential tests rely on when comparing thread
//! counts.

use std::collections::BTreeMap;

use crate::dist::Dist;
use crate::values::MonoidDist;
use pvc_algebra::{AggOp, MonoidValue};

/// Hard cap on the number of tuples the oracle will enumerate (`2^20` worlds ≈
/// one million folds — comfortably testable; beyond it you almost certainly
/// meant to use the engine).
pub const MAX_ORACLE_VARS: usize = 20;

/// One independent tuple as the oracle sees it: present with probability
/// `prob`, contributing `value` to the aggregate when present.
pub type OracleTuple = (f64, MonoidValue);

/// The aggregate's total distribution by brute-force world enumeration: every
/// world contributes, with the empty world(s) mapped to `op.identity()`.
///
/// # Panics
///
/// Panics if more than [`MAX_ORACLE_VARS`] tuples are given.
pub fn aggregate_by_enumeration(op: AggOp, tuples: &[OracleTuple]) -> MonoidDist {
    enumerate(op, tuples, true)
}

/// The aggregate's sub-distribution over worlds where **at least one** tuple
/// is present (mass `1 − ∏(1 − pᵢ)`); worlds with no tuples are skipped.
///
/// # Panics
///
/// Panics if more than [`MAX_ORACLE_VARS`] tuples are given.
pub fn aggregate_present_by_enumeration(op: AggOp, tuples: &[OracleTuple]) -> MonoidDist {
    enumerate(op, tuples, false)
}

fn enumerate(op: AggOp, tuples: &[OracleTuple], include_empty: bool) -> MonoidDist {
    assert!(
        tuples.len() <= MAX_ORACLE_VARS,
        "oracle asked to enumerate 2^{} worlds (cap: 2^{MAX_ORACLE_VARS})",
        tuples.len()
    );
    let mut outcomes: BTreeMap<MonoidValue, f64> = BTreeMap::new();
    for mask in 0u64..(1u64 << tuples.len()) {
        if mask == 0 && !include_empty {
            continue;
        }
        let mut weight = 1.0f64;
        let mut acc = op.identity();
        for (i, (prob, value)) in tuples.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight *= prob;
                acc = op.combine(&acc, value);
            } else {
                weight *= 1.0 - prob;
            }
        }
        *outcomes.entry(acc).or_insert(0.0) += weight;
    }
    Dist::from_pairs(outcomes)
}

/// `P[agg < c]`, `P[agg ≤ c]`, `P[agg > c]`, `P[agg ≥ c]` read off an oracle
/// distribution — the comparison probabilities the engine's threshold folds
/// compute, for pinning `HAVING`-style predicates.
pub fn comparison_probabilities(dist: &MonoidDist, c: MonoidValue) -> ComparisonProbs {
    let mut lt = 0.0;
    let mut eq = 0.0;
    let mut gt = 0.0;
    for (v, p) in dist.iter() {
        match v.cmp(&c) {
            std::cmp::Ordering::Less => lt += p,
            std::cmp::Ordering::Equal => eq += p,
            std::cmp::Ordering::Greater => gt += p,
        }
    }
    ComparisonProbs { lt, eq, gt }
}

/// The three-way mass split of a distribution against a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonProbs {
    /// Mass strictly below the constant.
    pub lt: f64,
    /// Mass exactly at the constant.
    pub eq: f64,
    /// Mass strictly above the constant.
    pub gt: f64,
}

impl ComparisonProbs {
    /// Mass at or below the constant.
    pub fn le(&self) -> f64 {
        self.lt + self.eq
    }

    /// Mass at or above the constant.
    pub fn ge(&self) -> f64 {
        self.gt + self.eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::Fin;

    #[test]
    fn two_coin_sum() {
        // X ~ present(0.5)·3, Y ~ present(0.5)·4: SUM ∈ {0, 3, 4, 7} uniform.
        let d = aggregate_by_enumeration(AggOp::Sum, &[(0.5, Fin(3)), (0.5, Fin(4))]);
        for v in [0, 3, 4, 7] {
            assert!((d.prob(&Fin(v)) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn present_variant_drops_the_empty_world() {
        let tuples = [(0.5, Fin(3)), (0.5, Fin(4))];
        let total = aggregate_by_enumeration(AggOp::Sum, &tuples);
        let present = aggregate_present_by_enumeration(AggOp::Sum, &tuples);
        assert!((total.total_mass() - 1.0).abs() < 1e-12);
        assert!((present.total_mass() - 0.75).abs() < 1e-12);
        assert!((present.prob(&Fin(0))).abs() < 1e-12);
        assert!((present.prob(&Fin(7)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_uses_the_infinite_identity() {
        let d = aggregate_by_enumeration(AggOp::Min, &[(0.3, Fin(5))]);
        assert!((d.prob(&MonoidValue::PosInf) - 0.7).abs() < 1e-12);
        assert!((d.prob(&Fin(5)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn comparison_probabilities_partition_the_mass() {
        let d =
            aggregate_by_enumeration(AggOp::Sum, &[(0.5, Fin(1)), (0.4, Fin(2)), (0.3, Fin(4))]);
        let probs = comparison_probabilities(&d, Fin(3));
        assert!((probs.lt + probs.eq + probs.gt - 1.0).abs() < 1e-12);
        assert!((probs.le() + probs.gt - 1.0).abs() < 1e-12);
        // P[SUM = 3] is the {1,2}-present world: 0.5·0.4·0.7.
        assert!((probs.eq - 0.14).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "oracle asked to enumerate")]
    fn refuses_oversized_enumerations() {
        let tuples = vec![(0.5, Fin(1)); MAX_ORACLE_VARS + 1];
        let _ = aggregate_by_enumeration(AggOp::Sum, &tuples);
    }
}
