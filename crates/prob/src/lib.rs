//! # pvc-prob
//!
//! Sparse discrete probability distributions, convolution with respect to arbitrary
//! binary operations (Proposition 1 / Eqs. 4–9 of the paper), induced probability
//! spaces with possible-world enumeration (the correctness oracle), and distribution
//! summaries.
//!
//! Everything in this crate is purely about probability bookkeeping; the knowledge
//! compilation that makes these computations tractable lives in `pvc-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod fft;
pub mod moments;
pub mod oracle;
pub mod repr;
pub mod rng;
pub mod space;
pub mod stats;
pub mod values;

pub use dist::{Dist, PROB_EPS};
pub use moments::{cdf, expectation, moments, quantile, Moments};
pub use repr::{
    convolve_additive, convolve_additive_chained, fft_would_run, mix_dense_chained,
    record_chain_break, ChainVal, DenseDist, DistRepr, FFT_MIN_LEN, FFT_RELATIVE_EPS,
};
pub use rng::SeededRng;
pub use space::{ProbabilitySpace, World};
pub use stats::{
    begin_tuple_capture, kernel_stats, kernel_stats_enabled, record_dense_chain,
    reset_kernel_stats, set_kernel_stats_enabled, take_tuple_capture, KernelStats, SUPPORT_BUCKETS,
};
pub use values::{make, ops, DistValue, MixedDist, MonoidDist, SemiringDist};
