//! Kernel dispatch statistics: which convolution / representation path ran,
//! and how wide the convolved supports were.
//!
//! `pvc-prob` sits below the observability layer (`pvc_core::obs`), so it
//! cannot push into the metrics registry directly. Instead it keeps its own
//! process-wide atomics here, and `pvc_core::obs` bridges them into metric
//! names (`kernel.conv.dense`, `kernel.conv.sparse`, `kernel.repr.dense`,
//! `kernel.repr.sparse`, `kernel.conv.support`) at snapshot time.
//!
//! Everything is disabled by default: the hot-path cost is one relaxed
//! `AtomicBool` load per dispatch. A second, thread-local capture channel
//! ([`begin_tuple_capture`] / [`take_tuple_capture`]) lets the engine attribute
//! dense/sparse counts to one tuple's evaluation deterministically — per-tuple
//! work is single-threaded regardless of the engine's thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of log2 buckets in the support-size histogram (values are clamped
/// into the last bucket). Bucket `b > 0` holds sizes in `[2^(b-1), 2^b - 1]`;
/// bucket 0 holds size 0.
pub const SUPPORT_BUCKETS: usize = 33;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CONV_DENSE: AtomicU64 = AtomicU64::new(0);
static CONV_SPARSE: AtomicU64 = AtomicU64::new(0);
static CONV_FFT: AtomicU64 = AtomicU64::new(0);
static FFT_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static REPR_DENSE: AtomicU64 = AtomicU64::new(0);
static REPR_SPARSE: AtomicU64 = AtomicU64::new(0);
static CHAIN_EXTENDS: AtomicU64 = AtomicU64::new(0);
static CHAIN_BREAKS: AtomicU64 = AtomicU64::new(0);
static SUPPORT_COUNT: AtomicU64 = AtomicU64::new(0);
static SUPPORT_SUM: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SUPPORT_HIST: [AtomicU64; SUPPORT_BUCKETS] = [ZERO; SUPPORT_BUCKETS];

thread_local! {
    static TUPLE_CAPTURE: Cell<bool> = const { Cell::new(false) };
    static TUPLE_DENSE: Cell<u64> = const { Cell::new(0) };
    static TUPLE_SPARSE: Cell<u64> = const { Cell::new(0) };
}

/// Globally enable or disable kernel statistics collection.
pub fn set_kernel_stats_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether kernel statistics collection is currently enabled.
pub fn kernel_stats_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every global kernel counter (the enabled flag is left as-is).
pub fn reset_kernel_stats() {
    CONV_DENSE.store(0, Ordering::Relaxed);
    CONV_SPARSE.store(0, Ordering::Relaxed);
    CONV_FFT.store(0, Ordering::Relaxed);
    FFT_FALLBACKS.store(0, Ordering::Relaxed);
    REPR_DENSE.store(0, Ordering::Relaxed);
    REPR_SPARSE.store(0, Ordering::Relaxed);
    CHAIN_EXTENDS.store(0, Ordering::Relaxed);
    CHAIN_BREAKS.store(0, Ordering::Relaxed);
    SUPPORT_COUNT.store(0, Ordering::Relaxed);
    SUPPORT_SUM.store(0, Ordering::Relaxed);
    for bucket in &SUPPORT_HIST {
        bucket.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the kernel statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStats {
    /// Additive convolutions that took the direct-index dense path.
    pub conv_dense: u64,
    /// Additive convolutions that fell back to sparse generate–sort–coalesce.
    pub conv_sparse: u64,
    /// Dense convolutions that ran the spectral (FFT) kernel — a subset of
    /// [`conv_dense`](Self::conv_dense).
    pub conv_fft: u64,
    /// FFT attempts rejected by the accuracy policy (the exact kernel ran
    /// instead; these are *not* counted in [`conv_fft`](Self::conv_fft)).
    pub fft_fallbacks: u64,
    /// `⊕`/`⊔` node exits where a dense intermediate stayed dense for the next
    /// node instead of round-tripping through the sparse form.
    pub dense_chain_extends: u64,
    /// Dense intermediates forced back to the sparse form mid-chain because the
    /// consuming node could not use them (root materialisation not counted).
    pub dense_chain_breaks: u64,
    /// [`DistRepr::of`](crate::DistRepr::of) choices that picked the dense form.
    pub repr_dense: u64,
    /// [`DistRepr::of`](crate::DistRepr::of) choices that picked the sparse form.
    pub repr_sparse: u64,
    /// Number of support-size samples (two per convolution: each input).
    pub support_count: u64,
    /// Sum of all sampled support sizes.
    pub support_sum: u64,
    /// Log2-bucketed support sizes: bucket `b > 0` holds sizes in
    /// `[2^(b-1), 2^b - 1]`, bucket 0 holds size 0.
    pub support_buckets: [u64; SUPPORT_BUCKETS],
}

/// Snapshot the global kernel counters.
pub fn kernel_stats() -> KernelStats {
    let mut support_buckets = [0u64; SUPPORT_BUCKETS];
    for (out, bucket) in support_buckets.iter_mut().zip(&SUPPORT_HIST) {
        *out = bucket.load(Ordering::Relaxed);
    }
    KernelStats {
        conv_dense: CONV_DENSE.load(Ordering::Relaxed),
        conv_sparse: CONV_SPARSE.load(Ordering::Relaxed),
        conv_fft: CONV_FFT.load(Ordering::Relaxed),
        fft_fallbacks: FFT_FALLBACKS.load(Ordering::Relaxed),
        dense_chain_extends: CHAIN_EXTENDS.load(Ordering::Relaxed),
        dense_chain_breaks: CHAIN_BREAKS.load(Ordering::Relaxed),
        repr_dense: REPR_DENSE.load(Ordering::Relaxed),
        repr_sparse: REPR_SPARSE.load(Ordering::Relaxed),
        support_count: SUPPORT_COUNT.load(Ordering::Relaxed),
        support_sum: SUPPORT_SUM.load(Ordering::Relaxed),
        support_buckets,
    }
}

/// Start attributing convolution dispatches on *this thread* to one tuple.
/// Returns the previous capture flag so nested scopes can restore it.
pub fn begin_tuple_capture() -> bool {
    TUPLE_DENSE.with(|c| c.set(0));
    TUPLE_SPARSE.with(|c| c.set(0));
    TUPLE_CAPTURE.with(|c| c.replace(true))
}

/// Stop capturing and return `(dense, sparse)` dispatch counts accumulated on
/// this thread since [`begin_tuple_capture`]; restores the given prior flag.
pub fn take_tuple_capture(prior: bool) -> (u64, u64) {
    TUPLE_CAPTURE.with(|c| c.set(prior));
    (TUPLE_DENSE.with(Cell::get), TUPLE_SPARSE.with(Cell::get))
}

fn support_bucket(size: usize) -> usize {
    if size == 0 {
        0
    } else {
        ((usize::BITS - size.leading_zeros()) as usize).min(SUPPORT_BUCKETS - 1)
    }
}

/// Record one additive-convolution dispatch (called from `repr`).
#[inline]
pub(crate) fn record_conv(dense: bool, support_a: usize, support_b: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        let counter = if dense { &CONV_DENSE } else { &CONV_SPARSE };
        counter.fetch_add(1, Ordering::Relaxed);
        SUPPORT_COUNT.fetch_add(2, Ordering::Relaxed);
        SUPPORT_SUM.fetch_add((support_a + support_b) as u64, Ordering::Relaxed);
        SUPPORT_HIST[support_bucket(support_a)].fetch_add(1, Ordering::Relaxed);
        SUPPORT_HIST[support_bucket(support_b)].fetch_add(1, Ordering::Relaxed);
    }
    if TUPLE_CAPTURE.with(Cell::get) {
        let cell = if dense { &TUPLE_DENSE } else { &TUPLE_SPARSE };
        cell.with(|c| c.set(c.get() + 1));
    }
}

/// Record one [`DistRepr::of`](crate::DistRepr::of) choice (called from `repr`).
#[inline]
pub(crate) fn record_repr(dense: bool) {
    if ENABLED.load(Ordering::Relaxed) {
        let counter = if dense { &REPR_DENSE } else { &REPR_SPARSE };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Record one spectral-convolution outcome: `ran` when the FFT result passed
/// the accuracy policy, otherwise a fallback to the exact kernel.
#[inline]
pub(crate) fn record_fft(ran: bool) {
    if ENABLED.load(Ordering::Relaxed) {
        let counter = if ran { &CONV_FFT } else { &FFT_FALLBACKS };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Record the fate of a dense intermediate at a `⊕`/`⊔` node boundary:
/// `extended` when it survives into the next node in dense form, a **break**
/// when the consumer forces it back to sparse mid-chain.
///
/// Public because the chained evaluator lives above this crate (the d-tree
/// arena in `pvc-core`); bridged into the `kernel.dense_chain.*` metric names
/// by `pvc_core::obs::snapshot`.
#[inline]
pub fn record_dense_chain(extended: bool) {
    if ENABLED.load(Ordering::Relaxed) {
        let counter = if extended {
            &CHAIN_EXTENDS
        } else {
            &CHAIN_BREAKS
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_buckets_are_log2() {
        assert_eq!(support_bucket(0), 0);
        assert_eq!(support_bucket(1), 1);
        assert_eq!(support_bucket(2), 2);
        assert_eq!(support_bucket(3), 2);
        assert_eq!(support_bucket(4), 3);
        assert_eq!(support_bucket(usize::MAX), SUPPORT_BUCKETS - 1);
    }

    #[test]
    fn disabled_stats_record_nothing() {
        // Not enabled in this test binary: counters must stay untouched.
        let before = kernel_stats();
        record_conv(true, 4, 4);
        record_repr(false);
        let after = kernel_stats();
        assert_eq!(before, after);
    }

    #[test]
    fn tuple_capture_counts_per_thread() {
        let prior = begin_tuple_capture();
        record_conv(true, 2, 2);
        record_conv(false, 8, 8);
        record_conv(false, 8, 8);
        let (dense, sparse) = take_tuple_capture(prior);
        assert_eq!((dense, sparse), (1, 2));
        // Capture is off again: further dispatches are not attributed.
        record_conv(true, 2, 2);
        let prior = begin_tuple_capture();
        let (dense, sparse) = take_tuple_capture(prior);
        assert_eq!((dense, sparse), (0, 0));
    }
}
