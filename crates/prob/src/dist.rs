//! Sparse discrete probability distributions (§2.1 of the paper).
//!
//! A distribution is represented by its set of pairs of unique values with their
//! non-zero probabilities, `{(s, P[s]) | P[s] > 0}`; the *size* of a distribution is
//! the size of this set. This is exactly the representation the paper's complexity
//! analysis counts (Theorem 2, Propositions 2–3).

use std::collections::BTreeMap;
use std::fmt;

/// Numerical tolerance used when comparing probabilities and checking normalisation.
pub const PROB_EPS: f64 = 1e-9;

/// A sparse discrete probability (sub-)distribution over values of type `T`.
///
/// Invariants maintained by every constructor and combinator:
/// * every stored probability is strictly positive (entries below [`PROB_EPS`] are
///   dropped);
/// * values are unique (duplicates are merged by summing their probabilities).
///
/// The total mass is usually 1, but sub-distributions (mass < 1) are permitted — they
/// arise naturally while partitioning by valuations of a variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Dist<T: Ord + Clone> {
    entries: BTreeMap<T, f64>,
}

impl<T: Ord + Clone> Default for Dist<T> {
    fn default() -> Self {
        Dist {
            entries: BTreeMap::new(),
        }
    }
}

impl<T: Ord + Clone> Dist<T> {
    /// The empty sub-distribution (total mass 0).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The point distribution putting all mass on a single value.
    pub fn point(value: T) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(value, 1.0);
        Dist { entries }
    }

    /// Build a distribution from `(value, probability)` pairs, merging duplicate
    /// values and dropping non-positive probabilities.
    pub fn from_pairs<I: IntoIterator<Item = (T, f64)>>(pairs: I) -> Self {
        let mut entries: BTreeMap<T, f64> = BTreeMap::new();
        for (v, p) in pairs {
            if p > PROB_EPS {
                *entries.entry(v).or_insert(0.0) += p;
            }
        }
        entries.retain(|_, p| *p > PROB_EPS);
        Dist { entries }
    }

    /// A Bernoulli-style two-point distribution; useful for Boolean variables.
    pub fn two_point(a: T, pa: f64, b: T, pb: f64) -> Self {
        Self::from_pairs([(a, pa), (b, pb)])
    }

    /// Number of values with non-zero probability (the paper's "size of a
    /// distribution").
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// True if no value has non-zero probability.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The probability of a particular value (0 if absent).
    pub fn prob(&self, value: &T) -> f64 {
        self.entries.get(value).copied().unwrap_or(0.0)
    }

    /// Total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.entries.values().sum()
    }

    /// True if the total mass is 1 up to [`PROB_EPS`].
    pub fn is_normalized(&self) -> bool {
        (self.total_mass() - 1.0).abs() < 1e-6
    }

    /// Iterate over `(value, probability)` pairs in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.entries.iter().map(|(v, p)| (v, *p))
    }

    /// The support (values with non-zero probability) in order.
    pub fn support(&self) -> impl Iterator<Item = &T> {
        self.entries.keys()
    }

    /// Insert additional mass on a value.
    pub fn add_mass(&mut self, value: T, p: f64) {
        if p > PROB_EPS {
            *self.entries.entry(value).or_insert(0.0) += p;
        }
    }

    /// Multiply every probability by a constant factor (e.g. `P[x ← s]` when
    /// partitioning on a variable, Eq. 10 of the paper).
    pub fn scale(&self, factor: f64) -> Self {
        Dist::from_pairs(self.entries.iter().map(|(v, p)| (v.clone(), p * factor)))
    }

    /// Pointwise mixture: the sum of two sub-distributions.
    ///
    /// Used to combine the mutually exclusive branches of a `⊔x` node
    /// (Eq. 10 of the paper).
    pub fn mix(&self, other: &Self) -> Self {
        Dist::from_pairs(
            self.entries
                .iter()
                .chain(other.entries.iter())
                .map(|(v, p)| (v.clone(), *p)),
        )
    }

    /// Apply a function to every value, merging collisions.
    pub fn map<U: Ord + Clone>(&self, f: impl Fn(&T) -> U) -> Dist<U> {
        Dist::from_pairs(self.entries.iter().map(|(v, p)| (f(v), *p)))
    }

    /// Keep only values satisfying the predicate (a sub-distribution).
    pub fn filter(&self, keep: impl Fn(&T) -> bool) -> Self {
        Dist::from_pairs(
            self.entries
                .iter()
                .filter(|(v, _)| keep(v))
                .map(|(v, p)| (v.clone(), *p)),
        )
    }

    /// Renormalise to total mass 1. Returns the empty distribution if the mass is 0.
    pub fn normalize(&self) -> Self {
        let mass = self.total_mass();
        if mass <= PROB_EPS {
            Self::empty()
        } else {
            self.scale(1.0 / mass)
        }
    }

    /// The probability-weighted convolution of two *independent* distributions with
    /// respect to an arbitrary binary operation (Proposition 1, Eq. 1 of the paper):
    ///
    /// `P_{x•y}[c] = Σ_{a•b=c} P_x[a]·P_y[b]`.
    ///
    /// The result size is at most `|self| · |other|`; computation takes
    /// `O(|self| · |other| · log)` time.
    pub fn convolve<U: Ord + Clone, V: Ord + Clone>(
        &self,
        other: &Dist<U>,
        op: impl Fn(&T, &U) -> V,
    ) -> Dist<V> {
        let mut out: BTreeMap<V, f64> = BTreeMap::new();
        for (a, pa) in &self.entries {
            for (b, pb) in &other.entries {
                let c = op(a, b);
                *out.entry(c).or_insert(0.0) += pa * pb;
            }
        }
        out.retain(|_, p| *p > PROB_EPS);
        Dist { entries: out }
    }

    /// Check that two distributions coincide up to a probability tolerance.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        let keys: std::collections::BTreeSet<&T> =
            self.entries.keys().chain(other.entries.keys()).collect();
        keys.into_iter()
            .all(|k| (self.prob(k) - other.prob(k)).abs() <= tol)
    }
}

impl<T: Ord + Clone + fmt::Display> fmt::Display for Dist<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (v, p) in &self.entries {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "({v}, {p:.4})")?;
        }
        write!(f, "}}")
    }
}

impl<T: Ord + Clone> FromIterator<(T, f64)> for Dist<T> {
    fn from_iter<I: IntoIterator<Item = (T, f64)>>(iter: I) -> Self {
        Dist::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distribution() {
        let d = Dist::point(5u32);
        assert_eq!(d.support_size(), 1);
        assert_eq!(d.prob(&5), 1.0);
        assert_eq!(d.prob(&6), 0.0);
        assert!(d.is_normalized());
    }

    #[test]
    fn from_pairs_merges_and_drops() {
        let d = Dist::from_pairs([(1u32, 0.2), (1, 0.3), (2, 0.5), (3, 0.0)]);
        assert_eq!(d.support_size(), 2);
        assert!((d.prob(&1) - 0.5).abs() < 1e-12);
        assert!(d.is_normalized());
    }

    #[test]
    fn convolution_of_integer_sum() {
        // The §2.1 example: P[x + y = 4] = Σ_k P[x=k]·P[y=4−k].
        let x = Dist::from_pairs([(0u32, 0.5), (1, 0.3), (2, 0.2)]);
        let y = Dist::from_pairs([(2u32, 0.4), (3, 0.6)]);
        let sum = x.convolve(&y, |a, b| a + b);
        assert!((sum.prob(&4) - (0.3 * 0.6 + 0.2 * 0.4)).abs() < 1e-12);
        assert!(sum.is_normalized());
        assert_eq!(sum.support_size(), 4); // values 2,3,4,5
    }

    #[test]
    fn convolution_of_disjunction_matches_closed_form() {
        // Example 2 of the paper: P[Φ∨Ψ = ⊤] = 1 − (1 − PΦ)(1 − PΨ).
        let p_phi = 0.3;
        let p_psi = 0.7;
        let phi = Dist::two_point(true, p_phi, false, 1.0 - p_phi);
        let psi = Dist::two_point(true, p_psi, false, 1.0 - p_psi);
        let or = phi.convolve(&psi, |a, b| *a || *b);
        assert!((or.prob(&true) - (1.0 - (1.0 - p_phi) * (1.0 - p_psi))).abs() < 1e-12);
    }

    #[test]
    fn convolution_sizes_are_bounded_by_product() {
        let a = Dist::from_pairs((0..5).map(|i| (i, 0.2)));
        let b = Dist::from_pairs((0..7).map(|i| (i, 1.0 / 7.0)));
        let c = a.convolve(&b, |x, y| x * 100 + y);
        assert_eq!(c.support_size(), 35);
        let d = a.convolve(&b, |_, _| 0u32);
        assert_eq!(d.support_size(), 1);
    }

    #[test]
    fn scale_and_mix_implement_case_analysis() {
        // P_Φ = Σ_s P_x[s] · P_{Φ|x←s}: scaling then mixing branches.
        let branch1 = Dist::from_pairs([(10u32, 0.5), (20, 0.5)]);
        let branch2 = Dist::from_pairs([(10u32, 1.0)]);
        let combined = branch1.scale(0.4).mix(&branch2.scale(0.6));
        assert!((combined.prob(&10) - (0.4 * 0.5 + 0.6)).abs() < 1e-12);
        assert!((combined.prob(&20) - 0.2).abs() < 1e-12);
        assert!(combined.is_normalized());
    }

    #[test]
    fn map_and_filter() {
        let d = Dist::from_pairs([(1u32, 0.25), (2, 0.25), (3, 0.5)]);
        let parity = d.map(|v| v % 2);
        assert!((parity.prob(&1) - 0.75).abs() < 1e-12);
        let odd = d.filter(|v| v % 2 == 1);
        assert!((odd.total_mass() - 0.75).abs() < 1e-12);
        assert!(odd.normalize().is_normalized());
    }

    #[test]
    fn normalize_empty_is_empty() {
        let d: Dist<u32> = Dist::empty();
        assert!(d.normalize().is_empty());
        assert_eq!(d.total_mass(), 0.0);
    }

    #[test]
    fn approx_eq_tolerates_small_errors() {
        let a = Dist::from_pairs([(1u32, 0.5), (2, 0.5)]);
        let b = Dist::from_pairs([(1u32, 0.5 + 1e-12), (2, 0.5 - 1e-12)]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = Dist::from_pairs([(1u32, 0.6), (2, 0.4)]);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn display_is_ordered() {
        let d = Dist::from_pairs([(2u32, 0.5), (1, 0.5)]);
        assert_eq!(d.to_string(), "{(1, 0.5000), (2, 0.5000)}");
    }
}
