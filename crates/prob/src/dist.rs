//! Sparse discrete probability distributions (§2.1 of the paper).
//!
//! A distribution is represented by its set of pairs of unique values with their
//! non-zero probabilities, `{(s, P[s]) | P[s] > 0}`; the *size* of a distribution is
//! the size of this set. This is exactly the representation the paper's complexity
//! analysis counts (Theorem 2, Propositions 2–3).
//!
//! # Representation
//!
//! The pair set is stored as a **flat sorted vector** `Vec<(T, f64)>` (ascending in
//! `T`, unique values, strictly positive probabilities). Theorem 2 evaluates a d-tree
//! by one convolution per node, so convolution throughput is engine throughput, and
//! the flat layout wins on every hot operation:
//!
//! * **convolution** is generate–sort–coalesce: materialise the `|p|·|q|` candidate
//!   pairs, stable-sort them by value, and sum equal-valued runs left to right.
//!   For monotone combiners (MIN/MAX/SUM over sorted supports) the candidate buffer
//!   consists of pre-sorted runs, which the stable merge sort detects and merges as
//!   a k-way run merge — no `O(log n)` per-element tree inserts;
//! * **mixing** is a linear two-pointer merge of two sorted vectors;
//! * **scaling** and **filtering** are linear passes;
//! * callers on the hot path can reuse a scratch buffer across convolutions
//!   ([`Dist::convolve_with_scratch`]) instead of allocating per d-tree node.
//!
//! The flat kernel is **bit-identical** to the previous `BTreeMap`-backed
//! implementation: equal-valued candidates are summed in exactly the order the map
//! version inserted them (stable sort preserves generation order), and the same
//! [`PROB_EPS`] drop rules apply. The map implementation is retained in
//! [`mod@reference`] and checked against in debug builds and property tests.

use std::fmt;

/// Numerical tolerance used when comparing probabilities and checking normalisation.
pub const PROB_EPS: f64 = 1e-9;

/// A sparse discrete probability (sub-)distribution over values of type `T`.
///
/// Invariants maintained by every constructor and combinator:
/// * every stored probability is strictly positive (entries below [`PROB_EPS`] are
///   dropped);
/// * values are unique and kept in ascending order (duplicates are merged by summing
///   their probabilities).
///
/// The total mass is usually 1, but sub-distributions (mass < 1) are permitted — they
/// arise naturally while partitioning by valuations of a variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Dist<T: Ord + Clone> {
    /// Sorted by value, unique, probabilities > [`PROB_EPS`].
    entries: Vec<(T, f64)>,
}

impl<T: Ord + Clone> Default for Dist<T> {
    fn default() -> Self {
        Dist {
            entries: Vec::new(),
        }
    }
}

/// Stable-sort a pair buffer by value and sum equal-valued runs **left to right**
/// (generation order — the same accumulation order a `BTreeMap` entry would see),
/// dropping sums below [`PROB_EPS`]. The result is written back into `pairs`.
fn coalesce_sorted<T: Ord + Clone>(pairs: &mut Vec<(T, f64)>) {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut write = 0usize;
    let mut read = 0usize;
    while read < pairs.len() {
        let mut acc = pairs[read].1;
        let mut next = read + 1;
        while next < pairs.len() && pairs[next].0 == pairs[read].0 {
            acc += pairs[next].1;
            next += 1;
        }
        if acc > PROB_EPS {
            pairs.swap(write, read);
            pairs[write].1 = acc;
            write += 1;
        }
        read = next;
    }
    pairs.truncate(write);
}

impl<T: Ord + Clone> Dist<T> {
    /// The empty sub-distribution (total mass 0).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The point distribution putting all mass on a single value.
    pub fn point(value: T) -> Self {
        Dist {
            entries: vec![(value, 1.0)],
        }
    }

    /// Build a distribution from `(value, probability)` pairs, merging duplicate
    /// values and dropping non-positive probabilities.
    pub fn from_pairs<I: IntoIterator<Item = (T, f64)>>(pairs: I) -> Self {
        let mut entries: Vec<(T, f64)> = pairs.into_iter().filter(|(_, p)| *p > PROB_EPS).collect();
        coalesce_sorted(&mut entries);
        Dist { entries }
    }

    /// Build from a vector that is already sorted by value with unique values and
    /// probabilities above [`PROB_EPS`] — the fast path used by kernels that produce
    /// sorted output natively (e.g. the dense convolution of
    /// [`repr`](crate::repr)). The invariants are checked by a debug assertion.
    pub fn from_sorted_unique(entries: Vec<(T, f64)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted_unique: values must be strictly ascending"
        );
        debug_assert!(
            entries.iter().all(|(_, p)| *p > PROB_EPS),
            "from_sorted_unique: probabilities must exceed PROB_EPS"
        );
        Dist { entries }
    }

    /// A Bernoulli-style two-point distribution; useful for Boolean variables.
    pub fn two_point(a: T, pa: f64, b: T, pb: f64) -> Self {
        Self::from_pairs([(a, pa), (b, pb)])
    }

    /// Number of values with non-zero probability (the paper's "size of a
    /// distribution").
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// True if no value has non-zero probability.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The probability of a particular value (0 if absent). Binary search.
    pub fn prob(&self, value: &T) -> f64 {
        match self.entries.binary_search_by(|(v, _)| v.cmp(value)) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.entries.iter().map(|(_, p)| p).sum()
    }

    /// True if the total mass is 1 up to [`PROB_EPS`].
    pub fn is_normalized(&self) -> bool {
        (self.total_mass() - 1.0).abs() < 1e-6
    }

    /// Iterate over `(value, probability)` pairs in value order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> {
        self.entries.iter().map(|(v, p)| (v, *p))
    }

    /// The support (values with non-zero probability) in order.
    pub fn support(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(v, _)| v)
    }

    /// The smallest value in the support (entries are sorted).
    pub fn min_value(&self) -> Option<&T> {
        self.entries.first().map(|(v, _)| v)
    }

    /// The largest value in the support (entries are sorted).
    pub fn max_value(&self) -> Option<&T> {
        self.entries.last().map(|(v, _)| v)
    }

    /// Insert additional mass on a value.
    pub fn add_mass(&mut self, value: T, p: f64) {
        if p > PROB_EPS {
            match self.entries.binary_search_by(|(v, _)| v.cmp(&value)) {
                Ok(i) => self.entries[i].1 += p,
                Err(i) => self.entries.insert(i, (value, p)),
            }
        }
    }

    /// Multiply every probability by a constant factor (e.g. `P[x ← s]` when
    /// partitioning on a variable, Eq. 10 of the paper). Linear pass; entries whose
    /// scaled probability falls below [`PROB_EPS`] are dropped.
    pub fn scale(&self, factor: f64) -> Self {
        Dist {
            entries: self
                .entries
                .iter()
                .map(|(v, p)| (v.clone(), p * factor))
                .filter(|(_, p)| *p > PROB_EPS)
                .collect(),
        }
    }

    /// Pointwise mixture: the sum of two sub-distributions, as a linear two-pointer
    /// merge of the sorted entry vectors.
    ///
    /// Used to combine the mutually exclusive branches of a `⊔x` node
    /// (Eq. 10 of the paper). For a value present on both sides, `self`'s
    /// probability is the left addend (matching the map implementation's
    /// insertion-order accumulation).
    pub fn mix(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let p = a[i].1 + b[j].1;
                    if p > PROB_EPS {
                        out.push((a[i].0.clone(), p));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Dist { entries: out }
    }

    /// Apply a function to every value, merging collisions.
    pub fn map<U: Ord + Clone>(&self, f: impl Fn(&T) -> U) -> Dist<U> {
        let mut entries: Vec<(U, f64)> = self.entries.iter().map(|(v, p)| (f(v), *p)).collect();
        coalesce_sorted(&mut entries);
        Dist { entries }
    }

    /// Keep only values satisfying the predicate (a sub-distribution).
    pub fn filter(&self, keep: impl Fn(&T) -> bool) -> Self {
        Dist {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| keep(v))
                .cloned()
                .collect(),
        }
    }

    /// Renormalise to total mass 1. Returns the empty distribution if the mass is 0.
    pub fn normalize(&self) -> Self {
        let mass = self.total_mass();
        if mass <= PROB_EPS {
            Self::empty()
        } else {
            self.scale(1.0 / mass)
        }
    }

    /// The probability-weighted convolution of two *independent* distributions with
    /// respect to an arbitrary binary operation (Proposition 1, Eq. 1 of the paper):
    ///
    /// `P_{x•y}[c] = Σ_{a•b=c} P_x[a]·P_y[b]`.
    ///
    /// The result size is at most `|self| · |other|`; computation is
    /// generate–sort–coalesce over the candidate pairs,
    /// `O(|self|·|other|·log(|self|·|other|))` in the worst case and effectively a
    /// k-way run merge for monotone `op`.
    ///
    /// ```
    /// use pvc_prob::Dist;
    ///
    /// // Two independent uncertain prices; the distribution of their minimum
    /// // (Eq. 4 of the paper: ⊕ over the MIN monoid).
    /// let a = Dist::from_pairs([(10i64, 0.5), (20, 0.5)]);
    /// let b = Dist::from_pairs([(15i64, 0.2), (25, 0.8)]);
    /// let min = a.convolve(&b, |x, y| *x.min(y));
    /// assert_eq!(min.support_size(), 3);
    /// assert!((min.prob(&10) - 0.5).abs() < 1e-12); // a=10 wins regardless of b
    /// assert!((min.prob(&15) - 0.1).abs() < 1e-12); // a=20 ∧ b=15
    /// assert!((min.prob(&20) - 0.4).abs() < 1e-12); // a=20 ∧ b=25
    /// ```
    pub fn convolve<U: Ord + Clone, V: Ord + Clone>(
        &self,
        other: &Dist<U>,
        op: impl Fn(&T, &U) -> V,
    ) -> Dist<V> {
        let mut scratch = Vec::new();
        self.convolve_with_scratch(other, op, &mut scratch)
    }

    /// As [`convolve`](Self::convolve), reusing a caller-provided scratch buffer for
    /// the candidate pairs. The buffer is cleared on entry; reusing one buffer across
    /// the nodes of a d-tree avoids one `O(|p|·|q|)` allocation per node.
    pub fn convolve_with_scratch<U: Ord + Clone, V: Ord + Clone>(
        &self,
        other: &Dist<U>,
        op: impl Fn(&T, &U) -> V,
        scratch: &mut Vec<(V, f64)>,
    ) -> Dist<V> {
        scratch.clear();
        scratch.reserve(self.entries.len() * other.entries.len());
        for (a, pa) in &self.entries {
            for (b, pb) in &other.entries {
                scratch.push((op(a, b), pa * pb));
            }
        }
        coalesce_sorted(scratch);
        // Copy the (coalesced, small) result out and keep the buffer's capacity for
        // the caller's next convolution.
        let result = Dist {
            entries: scratch.clone(),
        };
        #[cfg(debug_assertions)]
        {
            let expected =
                reference::RefDist::from(self).convolve(&reference::RefDist::from(other), &op);
            debug_assert!(
                expected.bit_equal(&result),
                "flat convolution diverged from the BTreeMap reference"
            );
        }
        result
    }

    /// Check that two distributions coincide up to a probability tolerance.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        let keys: std::collections::BTreeSet<&T> = self.support().chain(other.support()).collect();
        keys.into_iter()
            .all(|k| (self.prob(k) - other.prob(k)).abs() <= tol)
    }
}

impl<T: Ord + Clone + fmt::Display> fmt::Display for Dist<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (v, p) in &self.entries {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "({v}, {p:.4})")?;
        }
        write!(f, "}}")
    }
}

impl<T: Ord + Clone> FromIterator<(T, f64)> for Dist<T> {
    fn from_iter<I: IntoIterator<Item = (T, f64)>>(iter: I) -> Self {
        Dist::from_pairs(iter)
    }
}

pub mod reference {
    //! The original `BTreeMap`-backed distribution kernel, retained as the
    //! correctness reference for the flat sorted-vector implementation.
    //!
    //! Debug builds assert that every flat convolution agrees bit-for-bit with this
    //! implementation; the property tests in `tests/proptest_dist.rs` drive random
    //! operation chains through both and require exact agreement.

    use super::{Dist, PROB_EPS};
    use std::collections::BTreeMap;

    /// A `BTreeMap`-backed sparse distribution with the pre-flat-kernel semantics.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RefDist<T: Ord + Clone> {
        entries: BTreeMap<T, f64>,
    }

    impl<T: Ord + Clone> RefDist<T> {
        /// Build from `(value, probability)` pairs with the original merge/drop
        /// rules: pairs at or below [`PROB_EPS`] are skipped before accumulation,
        /// duplicates are summed in iteration order, and sums at or below
        /// [`PROB_EPS`] are dropped afterwards.
        pub fn from_pairs<I: IntoIterator<Item = (T, f64)>>(pairs: I) -> Self {
            let mut entries: BTreeMap<T, f64> = BTreeMap::new();
            for (v, p) in pairs {
                if p > PROB_EPS {
                    *entries.entry(v).or_insert(0.0) += p;
                }
            }
            entries.retain(|_, p| *p > PROB_EPS);
            RefDist { entries }
        }

        /// The original map-based convolution: accumulate every candidate product
        /// into a `BTreeMap` entry, then drop entries at or below [`PROB_EPS`].
        pub fn convolve<U: Ord + Clone, V: Ord + Clone>(
            &self,
            other: &RefDist<U>,
            op: impl Fn(&T, &U) -> V,
        ) -> RefDist<V> {
            let mut out: BTreeMap<V, f64> = BTreeMap::new();
            for (a, pa) in &self.entries {
                for (b, pb) in &other.entries {
                    *out.entry(op(a, b)).or_insert(0.0) += pa * pb;
                }
            }
            out.retain(|_, p| *p > PROB_EPS);
            RefDist { entries: out }
        }

        /// The original mixture: re-accumulate both entry sequences.
        pub fn mix(&self, other: &Self) -> Self {
            Self::from_pairs(
                self.entries
                    .iter()
                    .chain(other.entries.iter())
                    .map(|(v, p)| (v.clone(), *p)),
            )
        }

        /// The original scaling: rebuild with every probability multiplied.
        pub fn scale(&self, factor: f64) -> Self {
            Self::from_pairs(self.entries.iter().map(|(v, p)| (v.clone(), p * factor)))
        }

        /// The original map: rebuild under `f`, merging collisions.
        pub fn map<U: Ord + Clone>(&self, f: impl Fn(&T) -> U) -> RefDist<U> {
            RefDist::from_pairs(self.entries.iter().map(|(v, p)| (f(v), *p)))
        }

        /// Exact (bitwise) equality against a flat distribution: same value
        /// sequence, bit-identical probabilities.
        pub fn bit_equal(&self, flat: &Dist<T>) -> bool {
            self.entries.len() == flat.support_size()
                && self
                    .entries
                    .iter()
                    .zip(flat.iter())
                    .all(|((rv, rp), (fv, fp))| rv == fv && rp.to_bits() == fp.to_bits())
        }

        /// Convert into the flat representation (the map iterates in sorted order).
        pub fn to_flat(&self) -> Dist<T> {
            Dist::from_sorted_unique(self.entries.iter().map(|(v, p)| (v.clone(), *p)).collect())
        }
    }

    impl<T: Ord + Clone> From<&Dist<T>> for RefDist<T> {
        fn from(d: &Dist<T>) -> Self {
            RefDist {
                entries: d.iter().map(|(v, p)| (v.clone(), p)).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distribution() {
        let d = Dist::point(5u32);
        assert_eq!(d.support_size(), 1);
        assert_eq!(d.prob(&5), 1.0);
        assert_eq!(d.prob(&6), 0.0);
        assert!(d.is_normalized());
    }

    #[test]
    fn from_pairs_merges_and_drops() {
        let d = Dist::from_pairs([(1u32, 0.2), (1, 0.3), (2, 0.5), (3, 0.0)]);
        assert_eq!(d.support_size(), 2);
        assert!((d.prob(&1) - 0.5).abs() < 1e-12);
        assert!(d.is_normalized());
    }

    #[test]
    fn entries_are_sorted_and_unique() {
        let d = Dist::from_pairs([(9u32, 0.1), (1, 0.2), (5, 0.3), (1, 0.1)]);
        let support: Vec<u32> = d.support().copied().collect();
        assert_eq!(support, vec![1, 5, 9]);
        assert!((d.prob(&1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn convolution_of_integer_sum() {
        // The §2.1 example: P[x + y = 4] = Σ_k P[x=k]·P[y=4−k].
        let x = Dist::from_pairs([(0u32, 0.5), (1, 0.3), (2, 0.2)]);
        let y = Dist::from_pairs([(2u32, 0.4), (3, 0.6)]);
        let sum = x.convolve(&y, |a, b| a + b);
        assert!((sum.prob(&4) - (0.3 * 0.6 + 0.2 * 0.4)).abs() < 1e-12);
        assert!(sum.is_normalized());
        assert_eq!(sum.support_size(), 4); // values 2,3,4,5
    }

    #[test]
    fn convolution_of_disjunction_matches_closed_form() {
        // Example 2 of the paper: P[Φ∨Ψ = ⊤] = 1 − (1 − PΦ)(1 − PΨ).
        let p_phi = 0.3;
        let p_psi = 0.7;
        let phi = Dist::two_point(true, p_phi, false, 1.0 - p_phi);
        let psi = Dist::two_point(true, p_psi, false, 1.0 - p_psi);
        let or = phi.convolve(&psi, |a, b| *a || *b);
        assert!((or.prob(&true) - (1.0 - (1.0 - p_phi) * (1.0 - p_psi))).abs() < 1e-12);
    }

    #[test]
    fn convolution_sizes_are_bounded_by_product() {
        let a = Dist::from_pairs((0..5).map(|i| (i, 0.2)));
        let b = Dist::from_pairs((0..7).map(|i| (i, 1.0 / 7.0)));
        let c = a.convolve(&b, |x, y| x * 100 + y);
        assert_eq!(c.support_size(), 35);
        let d = a.convolve(&b, |_, _| 0u32);
        assert_eq!(d.support_size(), 1);
    }

    #[test]
    fn scratch_buffer_is_reusable() {
        let a = Dist::from_pairs((0..4).map(|i| (i, 0.25)));
        let b = Dist::from_pairs((0..4).map(|i| (i, 0.25)));
        let mut scratch = Vec::new();
        let c1 = a.convolve_with_scratch(&b, |x, y| x + y, &mut scratch);
        let c2 = a.convolve_with_scratch(&b, |x, y| x + y, &mut scratch);
        assert_eq!(c1, c2);
        assert_eq!(c1, a.convolve(&b, |x, y| x + y));
    }

    #[test]
    fn scale_and_mix_implement_case_analysis() {
        // P_Φ = Σ_s P_x[s] · P_{Φ|x←s}: scaling then mixing branches.
        let branch1 = Dist::from_pairs([(10u32, 0.5), (20, 0.5)]);
        let branch2 = Dist::from_pairs([(10u32, 1.0)]);
        let combined = branch1.scale(0.4).mix(&branch2.scale(0.6));
        assert!((combined.prob(&10) - (0.4 * 0.5 + 0.6)).abs() < 1e-12);
        assert!((combined.prob(&20) - 0.2).abs() < 1e-12);
        assert!(combined.is_normalized());
    }

    #[test]
    fn map_and_filter() {
        let d = Dist::from_pairs([(1u32, 0.25), (2, 0.25), (3, 0.5)]);
        let parity = d.map(|v| v % 2);
        assert!((parity.prob(&1) - 0.75).abs() < 1e-12);
        let odd = d.filter(|v| v % 2 == 1);
        assert!((odd.total_mass() - 0.75).abs() < 1e-12);
        assert!(odd.normalize().is_normalized());
    }

    #[test]
    fn normalize_empty_is_empty() {
        let d: Dist<u32> = Dist::empty();
        assert!(d.normalize().is_empty());
        assert_eq!(d.total_mass(), 0.0);
    }

    #[test]
    fn approx_eq_tolerates_small_errors() {
        let a = Dist::from_pairs([(1u32, 0.5), (2, 0.5)]);
        let b = Dist::from_pairs([(1u32, 0.5 + 1e-12), (2, 0.5 - 1e-12)]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = Dist::from_pairs([(1u32, 0.6), (2, 0.4)]);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    fn display_is_ordered() {
        let d = Dist::from_pairs([(2u32, 0.5), (1, 0.5)]);
        assert_eq!(d.to_string(), "{(1, 0.5000), (2, 0.5000)}");
    }

    #[test]
    fn flat_agrees_bitwise_with_reference() {
        let pairs = [(3i64, 0.125), (1, 0.5), (3, 0.25), (2, 0.125)];
        let flat = Dist::from_pairs(pairs);
        let refd = reference::RefDist::from_pairs(pairs);
        assert!(refd.bit_equal(&flat));
        let other = Dist::from_pairs([(0i64, 0.5), (1, 0.5)]);
        let conv = flat.convolve(&other, |a, b| a + b);
        let ref_conv = reference::RefDist::from(&flat)
            .convolve(&reference::RefDist::from(&other), |a, b| a + b);
        assert!(ref_conv.bit_equal(&conv));
        assert!(ref_conv
            .to_flat()
            .iter()
            .zip(conv.iter())
            .all(|((av, ap), (bv, bp))| av == bv && ap.to_bits() == bp.to_bits()));
    }
}
