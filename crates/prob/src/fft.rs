//! Zero-dependency iterative radix-2 FFT over `f64`, used by the dense
//! convolution kernel of [`repr`](crate::repr) when support sizes make the
//! `O(N log N)` spectral path cheaper than the direct `O(|p|·|q|)` loop.
//!
//! The convolution entry point packs both real inputs into **one** complex
//! transform (`z = a + i·b`), separates the two spectra through conjugate
//! symmetry, multiplies pointwise, and inverts — two FFTs total instead of
//! three. The result carries the usual floating-point error of a spectral
//! convolution (roughly `‖a‖·‖b‖·ε·log N` per cell), which is why
//! [`repr`](crate::repr) wraps it in an explicit accuracy policy
//! (mass-conservation check, clamping, renormalisation, exact fallback)
//! instead of trusting it blindly.

use std::f64::consts::PI;

/// Refuse transforms beyond this length (2²² complex points ≈ 64 MiB of
/// scratch): supports that large indicate a runaway query, and the direct
/// kernel's own memory would explode long before this.
const MAX_FFT_LEN: usize = 1 << 22;

/// Linear convolution of two non-empty real sequences via one packed complex
/// FFT round-trip. Returns `None` when the padded transform length would
/// exceed [`MAX_FFT_LEN`] (callers fall back to the exact kernel).
///
/// The output has length `a.len() + b.len() − 1`.
pub(crate) fn convolve(a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
    debug_assert!(!a.is_empty() && !b.is_empty());
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();
    if n > MAX_FFT_LEN {
        return None;
    }
    // Pack: z = a + i·b, zero-padded to n.
    let mut re = vec![0.0f64; n];
    let mut im = vec![0.0f64; n];
    re[..a.len()].copy_from_slice(a);
    im[..b.len()].copy_from_slice(b);
    fft_in_place(&mut re, &mut im, false);
    // With A = FFT(a) and B = FFT(b) (both conjugate-symmetric):
    //   A[k] = (Z[k] + conj(Z[n−k])) / 2
    //   B[k] = (Z[k] − conj(Z[n−k])) / (2i)
    // and the convolution spectrum is C[k] = A[k]·B[k].
    let mut cr = vec![0.0f64; n];
    let mut ci = vec![0.0f64; n];
    for k in 0..n {
        let j = (n - k) % n;
        let (zr, zi) = (re[k], im[k]);
        let (wr, wi) = (re[j], -im[j]);
        let (ar, ai) = ((zr + wr) * 0.5, (zi + wi) * 0.5);
        // (z − w) / (2i) = (im(z−w) − i·re(z−w)) / 2
        let (br, bi) = ((zi - wi) * 0.5, -(zr - wr) * 0.5);
        cr[k] = ar * br - ai * bi;
        ci[k] = ar * bi + ai * br;
    }
    fft_in_place(&mut cr, &mut ci, true);
    cr.truncate(out_len);
    Some(cr)
}

/// In-place iterative radix-2 Cooley–Tukey transform of `(re, im)`; lengths
/// must be equal powers of two. `invert` runs the inverse transform including
/// the `1/n` scaling.
fn fft_in_place(re: &mut [f64], im: &mut [f64], invert: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two() && im.len() == n);
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterfly stages; the twiddle runs by multiplicative recurrence (one
    // sin/cos pair per stage), whose accumulated error stays far inside the
    // accuracy policy's ε for any length this kernel accepts.
    let mut len = 2usize;
    while len <= n {
        let ang = 2.0 * PI / len as f64 * if invert { 1.0 } else { -1.0 };
        let (step_r, step_i) = (ang.cos(), ang.sin());
        let half = len / 2;
        let mut base = 0usize;
        while base < n {
            let (mut w_r, mut w_i) = (1.0f64, 0.0f64);
            for k in base..base + half {
                let (ur, ui) = (re[k], im[k]);
                let (xr, xi) = (re[k + half], im[k + half]);
                let (vr, vi) = (xr * w_r - xi * w_i, xr * w_i + xi * w_r);
                re[k] = ur + vr;
                im[k] = ui + vi;
                re[k + half] = ur - vr;
                im[k + half] = ui - vi;
                let next_r = w_r * step_r - w_i * step_i;
                w_i = w_r * step_i + w_i * step_r;
                w_r = next_r;
            }
            base += len;
        }
        len <<= 1;
    }
    if invert {
        let inv = 1.0 / n as f64;
        for x in re.iter_mut() {
            *x *= inv;
        }
        for x in im.iter_mut() {
            *x *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        out
    }

    #[test]
    fn matches_direct_convolution() {
        let a: Vec<f64> = (0..37).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let b: Vec<f64> = (0..53).map(|i| ((i * 7) % 11) as f64 / 11.0).collect();
        let fft = convolve(&a, &b).unwrap();
        let exact = direct(&a, &b);
        assert_eq!(fft.len(), exact.len());
        for (f, e) in fft.iter().zip(&exact) {
            assert!((f - e).abs() < 1e-10, "{f} vs {e}");
        }
    }

    #[test]
    fn single_cell_inputs() {
        let out = convolve(&[0.25], &[0.5]).unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[0] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_lengths() {
        let a = vec![0.5, 0.5];
        let b: Vec<f64> = (0..100).map(|_| 0.01).collect();
        let fft = convolve(&a, &b).unwrap();
        let exact = direct(&a, &b);
        for (f, e) in fft.iter().zip(&exact) {
            assert!((f - e).abs() < 1e-12);
        }
    }

    #[test]
    fn refuses_oversized_transforms() {
        // Fabricate lengths whose padded size exceeds the cap without
        // allocating: `convolve` checks before it allocates.
        let a = vec![0.0; 2];
        let b = vec![0.0; MAX_FFT_LEN];
        assert!(convolve(&a, &b).is_none());
    }
}
