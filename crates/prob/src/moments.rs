//! Summary statistics of aggregate-value distributions: expectation, variance,
//! quantiles and cumulative probabilities.
//!
//! The paper argues (following Ré & Suciu) that expected values alone can be
//! misleading for skewed distributions; the engine therefore returns *entire*
//! distributions, and this module derives summaries from them when the user wants
//! them. It is an extension beyond the paper's minimum (listed in DESIGN.md §7).

use crate::dist::Dist;
use pvc_algebra::MonoidValue;

/// Summary statistics of a distribution over (finite) monoid values.
#[derive(Debug, Clone, PartialEq)]
pub struct Moments {
    /// Probability-weighted mean of the finite values.
    pub mean: f64,
    /// Probability-weighted variance of the finite values.
    pub variance: f64,
    /// Total probability mass on finite values (the rest sits on ±∞, e.g. the
    /// neutral element of MIN/MAX for an empty group).
    pub finite_mass: f64,
}

/// Compute mean / variance of the finite part of a monoid-value distribution.
///
/// Returns `None` if no finite value has positive probability.
pub fn moments(dist: &Dist<MonoidValue>) -> Option<Moments> {
    let mut mass = 0.0;
    let mut mean = 0.0;
    for (v, p) in dist.iter() {
        if let Some(x) = v.finite() {
            mass += p;
            mean += p * x as f64;
        }
    }
    if mass <= 0.0 {
        return None;
    }
    mean /= mass;
    let mut variance = 0.0;
    for (v, p) in dist.iter() {
        if let Some(x) = v.finite() {
            let d = x as f64 - mean;
            variance += (p / mass) * d * d;
        }
    }
    Some(Moments {
        mean,
        variance,
        finite_mass: mass,
    })
}

/// The expected value of the finite part (convenience wrapper around [`moments`]).
pub fn expectation(dist: &Dist<MonoidValue>) -> Option<f64> {
    moments(dist).map(|m| m.mean)
}

/// Cumulative probability `P[value ≤ threshold]`.
pub fn cdf(dist: &Dist<MonoidValue>, threshold: MonoidValue) -> f64 {
    dist.iter()
        .filter(|(v, _)| **v <= threshold)
        .map(|(_, p)| p)
        .sum()
}

/// The smallest value `v` in the support with `P[X ≤ v] ≥ q` (a `q`-quantile).
///
/// Returns `None` for an empty distribution or `q` larger than the total mass.
pub fn quantile(dist: &Dist<MonoidValue>, q: f64) -> Option<MonoidValue> {
    let mut acc = 0.0;
    for (v, p) in dist.iter() {
        acc += p;
        if acc + 1e-12 >= q {
            return Some(*v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::{Fin, PosInf};

    #[test]
    fn mean_and_variance_of_fair_die_pair() {
        let d = Dist::from_pairs((1..=6).map(|v| (Fin(v), 1.0 / 6.0)));
        let m = moments(&d).unwrap();
        assert!((m.mean - 3.5).abs() < 1e-9);
        assert!((m.variance - 35.0 / 12.0).abs() < 1e-9);
        assert!((m.finite_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infinite_mass_is_excluded() {
        // A MIN aggregate over a possibly-empty group: 30% chance the group is empty.
        let d = Dist::from_pairs([(Fin(10), 0.7), (PosInf, 0.3)]);
        let m = moments(&d).unwrap();
        assert!((m.mean - 10.0).abs() < 1e-9);
        assert!((m.finite_mass - 0.7).abs() < 1e-9);
        assert_eq!(expectation(&d), Some(10.0));
    }

    #[test]
    fn all_infinite_returns_none() {
        let d = Dist::from_pairs([(PosInf, 1.0)]);
        assert!(moments(&d).is_none());
        assert!(expectation(&d).is_none());
    }

    #[test]
    fn cdf_and_quantiles() {
        let d = Dist::from_pairs([(Fin(1), 0.25), (Fin(2), 0.25), (Fin(10), 0.5)]);
        assert!((cdf(&d, Fin(2)) - 0.5).abs() < 1e-12);
        assert!((cdf(&d, Fin(0)) - 0.0).abs() < 1e-12);
        assert!((cdf(&d, PosInf) - 1.0).abs() < 1e-12);
        assert_eq!(quantile(&d, 0.5), Some(Fin(2)));
        assert_eq!(quantile(&d, 0.9), Some(Fin(10)));
        assert_eq!(quantile(&Dist::empty(), 0.5), None);
    }
}
