//! A small, dependency-free, seeded pseudo-random number generator used by the
//! synthetic workload and data generators.
//!
//! The experiments of the paper (§7) only need *reproducible* pseudo-randomness:
//! the same seed must always yield the same workload, across platforms and
//! builds. This module implements the well-known **SplitMix64** mixer (for seeding
//! and as a stream generator) feeding **xoshiro256++**, which has excellent
//! statistical quality for simulation purposes and a trivial implementation. It is
//! *not* cryptographically secure and must never be used where unpredictability
//! matters.

/// A seeded pseudo-random number generator (xoshiro256++ seeded via SplitMix64).
///
/// The generator is deterministic: equal seeds yield equal streams on every
/// platform. Ranges are sampled without modulo bias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SeededRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform value in `[0, bound)` (Lemire's method with rejection, unbiased).
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening multiply; reject the low slice that would bias small residues.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, mirroring the convention of common Rust RNG
    /// libraries.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Integer ranges that [`SeededRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut SeededRng) -> Self::Output;
}

fn sample_i64(rng: &mut SeededRng, start: i64, end_inclusive: i64) -> i64 {
    assert!(start <= end_inclusive, "cannot sample from an empty range");
    let span = (end_inclusive as i128 - start as i128 + 1) as u128;
    if span > u64::MAX as u128 {
        // The full i64 range: every u64 pattern is a valid sample.
        return rng.next_u64() as i64;
    }
    let offset = rng.next_below(span as u64);
    (start as i128 + offset as i128) as i64
}

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SeededRng) -> i64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        sample_i64(rng, self.start, self.end - 1)
    }
}

impl SampleRange for std::ops::RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SeededRng) -> i64 {
        sample_i64(rng, *self.start(), *self.end())
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SeededRng) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = (self.end - self.start) as u64;
        self.start + rng.next_below(span) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SeededRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let span = (end - start) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        start + rng.next_below(span + 1) as usize
    }
}

impl SampleRange for std::ops::Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SeededRng) -> u32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.next_below((self.end - self.start) as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SeededRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v = rng.gen_range(0usize..7);
            assert!(v < 7);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_in_small_range_occur() {
        let mut rng = SeededRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn mean_of_uniform_samples_is_centred() {
        let mut rng = SeededRng::seed_from_u64(99);
        let n = 10_000;
        let sum: i64 = (0..n).map(|_| rng.gen_range(0i64..=100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean} too far from 50");
    }
}
