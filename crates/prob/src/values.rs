//! Distributions over the engine's dynamic value types, and the mixed value type
//! produced when computing the distribution of a decomposition tree.

use crate::dist::Dist;
use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind, SemiringValue};
use std::fmt;

/// A value drawn from either the annotation semiring or an aggregation monoid.
///
/// Decomposition trees mix semiring sub-expressions and semimodule sub-expressions,
/// so the distribution at a d-tree node ranges over this sum type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistValue {
    /// An element of the annotation semiring.
    S(SemiringValue),
    /// An element of an aggregation monoid.
    M(MonoidValue),
}

impl DistValue {
    /// The semiring element, if this is a semiring value.
    pub fn as_semiring(&self) -> Option<SemiringValue> {
        match self {
            DistValue::S(s) => Some(*s),
            DistValue::M(_) => None,
        }
    }

    /// The monoid element, if this is a monoid value.
    pub fn as_monoid(&self) -> Option<MonoidValue> {
        match self {
            DistValue::M(m) => Some(*m),
            DistValue::S(_) => None,
        }
    }
}

impl fmt::Display for DistValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistValue::S(s) => write!(f, "{s}"),
            DistValue::M(m) => write!(f, "{m}"),
        }
    }
}

impl From<SemiringValue> for DistValue {
    fn from(s: SemiringValue) -> Self {
        DistValue::S(s)
    }
}

impl From<MonoidValue> for DistValue {
    fn from(m: MonoidValue) -> Self {
        DistValue::M(m)
    }
}

/// A distribution over semiring values.
pub type SemiringDist = Dist<SemiringValue>;
/// A distribution over monoid values.
pub type MonoidDist = Dist<MonoidValue>;
/// A distribution over mixed values (at a d-tree node).
pub type MixedDist = Dist<DistValue>;

/// Convenience constructors for the distributions that appear constantly in the
/// engine: Boolean tuple-presence variables and small integer-valued variables.
pub mod make {
    use super::*;

    /// The distribution of a Boolean tuple-presence random variable with
    /// `P[⊤] = p_true`.
    pub fn bernoulli(p_true: f64) -> SemiringDist {
        Dist::two_point(
            SemiringValue::Bool(true),
            p_true,
            SemiringValue::Bool(false),
            1.0 - p_true,
        )
    }

    /// A uniform distribution over the natural numbers `lo..=hi` (bag multiplicity).
    pub fn uniform_nat(lo: u64, hi: u64) -> SemiringDist {
        let n = (hi - lo + 1) as f64;
        Dist::from_pairs((lo..=hi).map(|v| (SemiringValue::Nat(v), 1.0 / n)))
    }

    /// A point distribution on a semiring constant.
    pub fn certain(value: SemiringValue) -> SemiringDist {
        Dist::point(value)
    }

    /// The distribution of a deterministic monoid value.
    pub fn certain_monoid(value: MonoidValue) -> MonoidDist {
        Dist::point(value)
    }
}

/// Convolution wrappers specialised to the value types, mirroring Eqs. (4)–(9) of the
/// paper. They exist so that call sites read like the equations.
pub mod ops {
    use super::*;

    /// Eq. (4): `P_{Φ+Ψ}` — semiring addition of independent semiring expressions.
    pub fn add_semiring(a: &SemiringDist, b: &SemiringDist) -> SemiringDist {
        a.convolve(b, |x, y| x.add(y))
    }

    /// Eq. (5): `P_{Φ·Ψ}` — semiring multiplication of independent expressions.
    pub fn mul_semiring(a: &SemiringDist, b: &SemiringDist) -> SemiringDist {
        a.convolve(b, |x, y| x.mul(y))
    }

    /// Eq. (6): `P_{α+β}` — monoid sum of independent semimodule expressions.
    ///
    /// SUM/COUNT go through the adaptive dense kernel
    /// ([`crate::repr::convolve_additive`]): contiguous integer supports convolve by
    /// direct indexing, scattered ones by the sparse kernel — bit-identical either
    /// way.
    pub fn add_monoid(op: AggOp, a: &MonoidDist, b: &MonoidDist) -> MonoidDist {
        match op {
            AggOp::Sum | AggOp::Count => crate::repr::convolve_additive(a, b),
            _ => a.convolve(b, |x, y| op.combine(x, y)),
        }
    }

    /// Eq. (7): `P_{Φ⊗α}` — scalar action of an independent semiring expression on a
    /// semimodule expression.
    pub fn tensor(op: AggOp, scalar: &SemiringDist, value: &MonoidDist) -> MonoidDist {
        scalar.convolve(value, |s, m| op.scalar_action(s, m))
    }

    /// Eq. (8): `P_{[αθβ]}` — comparison of independent semimodule expressions,
    /// yielding a semiring value in the given semiring.
    pub fn compare_monoid(
        kind: SemiringKind,
        theta: CmpOp,
        a: &MonoidDist,
        b: &MonoidDist,
    ) -> SemiringDist {
        a.convolve(b, |x, y| {
            if theta.eval(x, y) {
                kind.one()
            } else {
                kind.zero()
            }
        })
    }

    /// Eq. (9): `P_{[ΦθΨ]}` — comparison of independent semiring expressions.
    pub fn compare_semiring(
        kind: SemiringKind,
        theta: CmpOp,
        a: &SemiringDist,
        b: &SemiringDist,
    ) -> SemiringDist {
        a.convolve(b, |x, y| {
            if theta.eval(x, y) {
                kind.one()
            } else {
                kind.zero()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::Fin;

    #[test]
    fn bernoulli_is_normalised() {
        let d = make::bernoulli(0.3);
        assert!(d.is_normalized());
        assert!((d.prob(&SemiringValue::Bool(true)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn uniform_nat_support() {
        let d = make::uniform_nat(1, 4);
        assert_eq!(d.support_size(), 4);
        assert!(d.is_normalized());
    }

    #[test]
    fn example_11_tensor_distribution() {
        // Example 11 of the paper: Φ = x with Px = {(0,0.3),(1,0.3),(2,0.4)},
        // α = y⊗5 with Py = {(1,0.4),(2,0.4),(3,0.2)}  ⇒  Pα = {(5,.4),(10,.4),(15,.2)}
        // and P_{Φ⊗α}[10] = Px[1]·Pα[10] + Px[2]·Pα[5].
        let px = Dist::from_pairs([
            (SemiringValue::Nat(0), 0.3),
            (SemiringValue::Nat(1), 0.3),
            (SemiringValue::Nat(2), 0.4),
        ]);
        let py = Dist::from_pairs([
            (SemiringValue::Nat(1), 0.4),
            (SemiringValue::Nat(2), 0.4),
            (SemiringValue::Nat(3), 0.2),
        ]);
        let alpha = ops::tensor(AggOp::Sum, &py, &make::certain_monoid(Fin(5)));
        assert!((alpha.prob(&Fin(5)) - 0.4).abs() < 1e-12);
        assert!((alpha.prob(&Fin(10)) - 0.4).abs() < 1e-12);
        assert!((alpha.prob(&Fin(15)) - 0.2).abs() < 1e-12);

        let result = ops::tensor(AggOp::Sum, &px, &alpha);
        let expected_10 = 0.3 * 0.4 + 0.4 * 0.4;
        assert!((result.prob(&Fin(10)) - expected_10).abs() < 1e-12);
        // Possible outcomes listed in the paper: 0, 5, 10, 15, 20, 30 (and 45, 60 via
        // x=2,y=3 ⇒ 2·3·5=30; x=2,y=2 ⇒ 20 ...). Check 0 and 30 are present.
        assert!(result.prob(&Fin(0)) > 0.0);
        assert!(result.prob(&Fin(30)) > 0.0);
        assert!(result.is_normalized());
    }

    #[test]
    fn example_11_boolean_case() {
        // Boolean case of Example 11: outcomes 0 and 5 with
        // P[5] = Px[⊤]·Py[⊤].
        let px = make::bernoulli(0.3);
        let py = make::bernoulli(0.4);
        let alpha = ops::tensor(AggOp::Sum, &py, &make::certain_monoid(Fin(5)));
        let result = ops::tensor(AggOp::Sum, &px, &alpha);
        assert!((result.prob(&Fin(5)) - 0.3 * 0.4).abs() < 1e-12);
        assert!((result.prob(&Fin(0)) - (1.0 - 0.12)).abs() < 1e-12);
        assert_eq!(result.support_size(), 2);
    }

    #[test]
    fn comparisons_produce_semiring_values() {
        let a = Dist::from_pairs([(Fin(10), 0.5), (Fin(60), 0.5)]);
        let b = make::certain_monoid(Fin(50));
        let le = ops::compare_monoid(SemiringKind::Bool, CmpOp::Le, &a, &b);
        assert!((le.prob(&SemiringValue::Bool(true)) - 0.5).abs() < 1e-12);
        let eq = ops::compare_semiring(
            SemiringKind::Bool,
            CmpOp::Eq,
            &make::bernoulli(0.25),
            &Dist::point(SemiringValue::Bool(true)),
        );
        assert!((eq.prob(&SemiringValue::Bool(true)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_monoid_addition_is_selective() {
        let a = Dist::from_pairs([(Fin(10), 0.5), (MonoidValue::PosInf, 0.5)]);
        let b = Dist::from_pairs([(Fin(20), 0.5), (MonoidValue::PosInf, 0.5)]);
        let min = ops::add_monoid(AggOp::Min, &a, &b);
        // Support only holds values from the operand supports.
        assert!(min
            .support()
            .all(|v| matches!(v, Fin(10) | Fin(20) | MonoidValue::PosInf)));
        assert!((min.prob(&Fin(10)) - 0.5).abs() < 1e-12);
        assert!((min.prob(&MonoidValue::PosInf) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dist_value_ordering_and_accessors() {
        let s = DistValue::S(SemiringValue::Bool(true));
        let m = DistValue::M(Fin(4));
        assert!(s.as_semiring().is_some());
        assert!(s.as_monoid().is_none());
        assert!(m.as_monoid().is_some());
        assert_eq!(m.to_string(), "4");
        assert_eq!(s.to_string(), "⊤");
    }
}
