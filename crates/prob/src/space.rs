//! The probability space induced by a finite set of independent random variables
//! (§2.1, Definition 1 of the paper), and exhaustive enumeration of its samples.
//!
//! The sample space `Ω = {ν : X → S}` has one sample per total valuation of the
//! variables; its probability mass function is the product of per-variable
//! probabilities. Enumerating `Ω` is exponential in `|X|` and is used only as the
//! ground-truth baseline against which the decomposition-tree computation is verified.

use crate::dist::Dist;
use std::collections::BTreeMap;

/// A probability space induced by named independent random variables, each with a
/// sparse discrete distribution over values of type `V`.
#[derive(Debug, Clone, Default)]
pub struct ProbabilitySpace<K: Ord + Clone, V: Ord + Clone> {
    vars: BTreeMap<K, Dist<V>>,
}

/// One sample `ν ∈ Ω`: a total valuation of the variables together with its
/// probability mass `Pr(ν)`.
#[derive(Debug, Clone)]
pub struct World<K: Ord + Clone, V: Ord + Clone> {
    /// The valuation `ν : X → S`.
    pub valuation: BTreeMap<K, V>,
    /// The probability mass `Pr(ν) = Π_x P_x[ν(x)]`.
    pub probability: f64,
}

impl<K: Ord + Clone, V: Ord + Clone> ProbabilitySpace<K, V> {
    /// An empty space (no variables; exactly one world with probability 1).
    pub fn new() -> Self {
        ProbabilitySpace {
            vars: BTreeMap::new(),
        }
    }

    /// Add (or replace) a variable with its distribution.
    pub fn insert(&mut self, var: K, dist: Dist<V>) {
        self.vars.insert(var, dist);
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The distribution of a variable, if present.
    pub fn dist(&self, var: &K) -> Option<&Dist<V>> {
        self.vars.get(var)
    }

    /// Iterate over the variables and their distributions.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &Dist<V>)> {
        self.vars.iter()
    }

    /// The number of possible worlds `|Ω|` (product of support sizes).
    pub fn num_worlds(&self) -> u128 {
        self.vars
            .values()
            .map(|d| d.support_size() as u128)
            .product()
    }

    /// Exhaustively enumerate all possible worlds with their probabilities.
    ///
    /// Exponential in the number of variables; intended for ground-truth checks on
    /// small instances only.
    pub fn worlds(&self) -> Vec<World<K, V>> {
        let mut worlds = vec![World {
            valuation: BTreeMap::new(),
            probability: 1.0,
        }];
        for (var, dist) in &self.vars {
            let mut next = Vec::with_capacity(worlds.len() * dist.support_size());
            for world in &worlds {
                for (value, p) in dist.iter() {
                    let mut valuation = world.valuation.clone();
                    valuation.insert(var.clone(), value.clone());
                    next.push(World {
                        valuation,
                        probability: world.probability * p,
                    });
                }
            }
            worlds = next;
        }
        worlds
    }

    /// The exact distribution of an arbitrary function of the variables, computed by
    /// enumeration over all worlds. This is the brute-force counterpart of the
    /// decomposition-tree computation and serves as the correctness oracle.
    pub fn distribution_of<T: Ord + Clone>(&self, f: impl Fn(&BTreeMap<K, V>) -> T) -> Dist<T> {
        Dist::from_pairs(
            self.worlds()
                .into_iter()
                .map(|w| (f(&w.valuation), w.probability)),
        )
    }

    /// The probability of an event (a predicate on valuations), by enumeration.
    pub fn probability_of(&self, event: impl Fn(&BTreeMap<K, V>) -> bool) -> f64 {
        self.worlds()
            .into_iter()
            .filter(|w| event(&w.valuation))
            .map(|w| w.probability)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin(p: f64) -> Dist<bool> {
        Dist::two_point(true, p, false, 1.0 - p)
    }

    #[test]
    fn empty_space_has_one_world() {
        let space: ProbabilitySpace<&str, bool> = ProbabilitySpace::new();
        let worlds = space.worlds();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].probability, 1.0);
        assert_eq!(space.num_worlds(), 1);
    }

    #[test]
    fn world_count_and_mass() {
        let mut space = ProbabilitySpace::new();
        space.insert("x", coin(0.5));
        space.insert("y", coin(0.3));
        space.insert("z", Dist::from_pairs([(true, 0.2), (false, 0.8)]));
        assert_eq!(space.num_worlds(), 8);
        let worlds = space.worlds();
        assert_eq!(worlds.len(), 8);
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn world_mass_is_product_of_marginals() {
        // Example 4 of the paper: the world probability is the product of the
        // per-variable probabilities of the chosen values.
        let mut space = ProbabilitySpace::new();
        space.insert("x1", coin(0.1));
        space.insert("x2", coin(0.2));
        let worlds = space.worlds();
        let w = worlds
            .iter()
            .find(|w| !w.valuation["x1"] && w.valuation["x2"])
            .unwrap();
        assert!((w.probability - 0.9 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn distribution_of_disjunction_matches_convolution() {
        let mut space = ProbabilitySpace::new();
        space.insert("x", coin(0.3));
        space.insert("y", coin(0.7));
        let or = space.distribution_of(|v| v["x"] || v["y"]);
        assert!((or.prob(&true) - (1.0 - 0.7 * 0.3)).abs() < 1e-12);
        let direct = coin(0.3).convolve(&coin(0.7), |a, b| *a || *b);
        assert!(or.approx_eq(&direct, 1e-12));
    }

    #[test]
    fn probability_of_event() {
        let mut space = ProbabilitySpace::new();
        space.insert("x", Dist::from_pairs([(1u32, 0.5), (2, 0.5)]));
        space.insert("y", Dist::from_pairs([(1u32, 0.25), (2, 0.75)]));
        let p = space.probability_of(|v| v["x"] + v["y"] == 3);
        assert!((p - (0.5 * 0.75 + 0.5 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn non_boolean_domains() {
        let mut space = ProbabilitySpace::new();
        space.insert("n", Dist::from_pairs([(0u64, 0.2), (1, 0.3), (7, 0.5)]));
        let d = space.distribution_of(|v| v["n"] * 2);
        assert!((d.prob(&14) - 0.5).abs() < 1e-12);
        assert_eq!(d.support_size(), 3);
    }
}
