//! Adaptive distribution representations for the convolution kernel: sparse
//! (sorted-vector [`Dist`]) and **dense** (offset-indexed `Vec<f64>`) backing for
//! distributions over finite integer monoid values.
//!
//! COUNT and SUM convolutions (Eq. 6 of the paper) produce supports that live in a
//! contiguous (or near-contiguous) integer range: COUNT of `n` terms has support
//! `⊆ {0, …, n}`, and SUM over small values stays within the sum of the value
//! ranges. For such supports, the generate–sort–coalesce kernel wastes its time
//! sorting; a dense vector indexed by `value − offset` convolves by **direct
//! indexing** (`out[i + j] += p_a[i] · p_b[j]`) in `O(|p|·|q| + range)` with no
//! comparisons at all.
//!
//! [`DistRepr`] is the adaptive pairing of the two: [`DistRepr::of`] inspects the
//! support and picks the dense form exactly when the support is all-finite and the
//! spanned range is no larger than the work a convolution does anyway (so dense is
//! never asymptotically worse). [`convolve_additive`] is the drop-in convolution
//! used by the SUM/COUNT paths of `ops::add_monoid` and the d-tree evaluators; it is
//! **bit-identical** to the sparse kernel because equal-valued products accumulate
//! in the same (outer-operand-major) order and the same [`PROB_EPS`] drop rule
//! applies on the way out.

use crate::dist::{Dist, PROB_EPS};
use pvc_algebra::MonoidValue;

/// A distribution over monoid values in sparse form.
pub type MonoidDist = Dist<MonoidValue>;

/// A dense distribution over a contiguous range of finite integer values:
/// `probs[i]` is the probability of `Fin(offset + i)`. Cells at or below
/// [`PROB_EPS`] are kept as `0.0` (absent).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseDist {
    offset: i64,
    probs: Vec<f64>,
}

impl DenseDist {
    /// Build from a sparse distribution whose support is all finite.
    ///
    /// Returns `None` if the support is empty or contains `±∞`.
    pub fn from_dist(dist: &MonoidDist) -> Option<DenseDist> {
        let (lo, hi) = finite_bounds(dist)?;
        let range = usize::try_from(hi.checked_sub(lo)?).ok()?.checked_add(1)?;
        let mut probs = vec![0.0; range];
        for (v, p) in dist.iter() {
            let MonoidValue::Fin(x) = v else {
                unreachable!("finite_bounds verified an all-finite support")
            };
            probs[(x - lo) as usize] = p;
        }
        Some(DenseDist { offset: lo, probs })
    }

    /// The value of the first cell.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Number of cells (the spanned range, including zero cells).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Number of cells holding probability above [`PROB_EPS`].
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|p| **p > PROB_EPS).count()
    }

    /// Convert back to the sparse form (cells at or below [`PROB_EPS`] are dropped).
    /// The cells are scanned in ascending value order, so the output needs no sort.
    pub fn to_dist(&self) -> MonoidDist {
        Dist::from_sorted_unique(
            self.probs
                .iter()
                .enumerate()
                .filter(|(_, p)| **p > PROB_EPS)
                .map(|(i, p)| (MonoidValue::Fin(self.offset + i as i64), *p))
                .collect(),
        )
    }

    /// Direct-index additive convolution: `out[i + j] += self[i] · other[j]`.
    ///
    /// Accumulation at each output cell runs in ascending `self`-index order —
    /// the same order the sparse generate–sort–coalesce kernel sums equal-valued
    /// candidates — so the result is bit-identical to the sparse path.
    pub fn convolve_add(&self, other: &DenseDist) -> DenseDist {
        if self.probs.is_empty() || other.probs.is_empty() {
            return DenseDist {
                offset: 0,
                probs: Vec::new(),
            };
        }
        let mut probs = vec![0.0; self.probs.len() + other.probs.len() - 1];
        for (i, pa) in self.probs.iter().enumerate() {
            if *pa == 0.0 {
                continue;
            }
            for (j, pb) in other.probs.iter().enumerate() {
                probs[i + j] += pa * pb;
            }
        }
        // Apply the sparse kernel's drop rule so later convolutions see the same
        // support either way.
        for p in &mut probs {
            if *p <= PROB_EPS {
                *p = 0.0;
            }
        }
        DenseDist {
            offset: self.offset + other.offset,
            probs,
        }
    }
}

/// Which representation [`DistRepr::of`] chose (also exposed for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub enum DistRepr {
    /// Sorted-vector sparse form — scattered or non-finite supports.
    Sparse(MonoidDist),
    /// Offset-indexed dense form — all-finite supports spanning a small range.
    Dense(DenseDist),
}

/// Minimum spanned range below which the dense form is always chosen (the vector is
/// so small that direct indexing beats any sort regardless of density).
const DENSE_ALWAYS_RANGE: usize = 64;

impl DistRepr {
    /// Choose a representation adaptively by support density: dense when the
    /// support is all-finite and the spanned range is at most
    /// `max(4 × support, 64)` (i.e. at least a quarter of the cells are occupied,
    /// or the range is trivially small).
    pub fn of(dist: &MonoidDist) -> DistRepr {
        if let Some((lo, hi)) = finite_bounds(dist) {
            if let Some(range) = hi
                .checked_sub(lo)
                .and_then(|d| usize::try_from(d).ok())
                .and_then(|d| d.checked_add(1))
            {
                if range <= (4 * dist.support_size()).max(DENSE_ALWAYS_RANGE) {
                    if let Some(dense) = DenseDist::from_dist(dist) {
                        crate::stats::record_repr(true);
                        return DistRepr::Dense(dense);
                    }
                }
            }
        }
        crate::stats::record_repr(false);
        DistRepr::Sparse(dist.clone())
    }

    /// True if the dense form was chosen.
    pub fn is_dense(&self) -> bool {
        matches!(self, DistRepr::Dense(_))
    }

    /// Convert (back) to the sparse form.
    pub fn to_dist(&self) -> MonoidDist {
        match self {
            DistRepr::Sparse(d) => d.clone(),
            DistRepr::Dense(d) => d.to_dist(),
        }
    }

    /// Number of values with probability above [`PROB_EPS`].
    pub fn support_size(&self) -> usize {
        match self {
            DistRepr::Sparse(d) => d.support_size(),
            DistRepr::Dense(d) => d.support_size(),
        }
    }
}

/// The `(min, max)` finite values of the support; `None` when the support is empty
/// or contains `±∞`. Entries are sorted and `−∞ < Fin(_) < +∞`, so only the two
/// ends need checking: if both are finite, everything between is.
fn finite_bounds(dist: &MonoidDist) -> Option<(i64, i64)> {
    let lo = dist.min_value()?.finite()?;
    let hi = dist.max_value()?.finite()?;
    Some((lo, hi))
}

/// Additive (SUM/COUNT) convolution with adaptive representation choice:
/// direct-index dense convolution when both supports are all-finite and the output
/// range is no larger than the candidate-pair count (so the dense pass is never
/// more work than the sparse sort), sparse generate–sort–coalesce otherwise.
///
/// Bit-identical to `a.convolve(&b, |x, y| x.saturating_add(y))` on every input.
pub fn convolve_additive(a: &MonoidDist, b: &MonoidDist) -> MonoidDist {
    if let Some(out) = try_convolve_dense(a, b) {
        crate::stats::record_conv(true, a.support_size(), b.support_size());
        return out;
    }
    crate::stats::record_conv(false, a.support_size(), b.support_size());
    a.convolve(b, |x, y| x.saturating_add(y))
}

/// As [`convolve_additive`], reusing a scratch buffer on the sparse fallback path.
pub fn convolve_additive_with_scratch(
    a: &MonoidDist,
    b: &MonoidDist,
    scratch: &mut Vec<(MonoidValue, f64)>,
) -> MonoidDist {
    if let Some(out) = try_convolve_dense(a, b) {
        crate::stats::record_conv(true, a.support_size(), b.support_size());
        return out;
    }
    crate::stats::record_conv(false, a.support_size(), b.support_size());
    a.convolve_with_scratch(b, |x, y| x.saturating_add(y), scratch)
}

fn try_convolve_dense(a: &MonoidDist, b: &MonoidDist) -> Option<MonoidDist> {
    let (la, ha) = finite_bounds(a)?;
    let (lb, hb) = finite_bounds(b)?;
    let lo = la.checked_add(lb)?;
    let hi = ha.checked_add(hb)?;
    let range = usize::try_from(hi.checked_sub(lo)?).ok()?.checked_add(1)?;
    let candidates = a.support_size().checked_mul(b.support_size())?;
    if range > candidates.max(DENSE_ALWAYS_RANGE) {
        return None;
    }
    let mut cells = vec![0.0f64; range];
    for (va, pa) in a.iter() {
        let MonoidValue::Fin(x) = va else {
            unreachable!("finite_bounds verified an all-finite support")
        };
        for (vb, pb) in b.iter() {
            let MonoidValue::Fin(y) = vb else {
                unreachable!("finite_bounds verified an all-finite support")
            };
            cells[(x + y - lo) as usize] += pa * pb;
        }
    }
    let out = Dist::from_sorted_unique(
        cells
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > PROB_EPS)
            .map(|(i, p)| (MonoidValue::Fin(lo + i as i64), *p))
            .collect(),
    );
    #[cfg(debug_assertions)]
    debug_assert!(
        bit_equal(&out, &a.convolve(b, |x, y| x.saturating_add(y))),
        "dense convolution diverged from the sparse kernel"
    );
    Some(out)
}

#[cfg(debug_assertions)]
fn bit_equal(a: &MonoidDist, b: &MonoidDist) -> bool {
    a.support_size() == b.support_size()
        && a.iter()
            .zip(b.iter())
            .all(|((av, ap), (bv, bp))| av == bv && ap.to_bits() == bp.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::{Fin, PosInf};

    fn uniform(lo: i64, hi: i64) -> MonoidDist {
        let n = (hi - lo + 1) as f64;
        Dist::from_pairs((lo..=hi).map(|v| (Fin(v), 1.0 / n)))
    }

    #[test]
    fn dense_round_trip() {
        let d = Dist::from_pairs([(Fin(3), 0.25), (Fin(5), 0.75)]);
        let dense = DenseDist::from_dist(&d).unwrap();
        assert_eq!(dense.offset(), 3);
        assert_eq!(dense.len(), 3);
        assert_eq!(dense.support_size(), 2);
        assert_eq!(dense.to_dist(), d);
    }

    #[test]
    fn dense_rejects_infinite_support() {
        let d = Dist::from_pairs([(Fin(3), 0.5), (PosInf, 0.5)]);
        assert!(DenseDist::from_dist(&d).is_none());
        assert!(!DistRepr::of(&d).is_dense());
    }

    #[test]
    fn repr_choice_is_adaptive() {
        // Contiguous COUNT-style support: dense.
        assert!(DistRepr::of(&uniform(0, 10)).is_dense());
        // Scattered SUM support spanning a huge range: sparse.
        let scattered = Dist::from_pairs((0..40).map(|i| (Fin(i * 1_000_000), 1.0 / 40.0)));
        assert!(!DistRepr::of(&scattered).is_dense());
        assert_eq!(DistRepr::of(&scattered).support_size(), 40);
    }

    #[test]
    fn dense_convolution_matches_sparse_bitwise() {
        let a = uniform(0, 12);
        let b = Dist::from_pairs([(Fin(0), 0.5), (Fin(1), 0.3), (Fin(2), 0.2)]);
        let dense = convolve_additive(&a, &b);
        let sparse = a.convolve(&b, |x, y| x.saturating_add(y));
        assert_eq!(dense.support_size(), sparse.support_size());
        for ((dv, dp), (sv, sp)) in dense.iter().zip(sparse.iter()) {
            assert_eq!(dv, sv);
            assert_eq!(dp.to_bits(), sp.to_bits());
        }
    }

    #[test]
    fn dense_repr_convolve_matches() {
        let a = uniform(0, 8);
        let b = uniform(2, 6);
        let (DistRepr::Dense(da), DistRepr::Dense(db)) = (DistRepr::of(&a), DistRepr::of(&b))
        else {
            panic!("expected dense representations")
        };
        let dense = da.convolve_add(&db).to_dist();
        let sparse = a.convolve(&b, |x, y| x.saturating_add(y));
        assert!(dense.approx_eq(&sparse, 0.0));
    }

    #[test]
    fn infinite_values_fall_back_to_sparse() {
        let a = Dist::from_pairs([(Fin(1), 0.5), (PosInf, 0.5)]);
        let b = uniform(0, 3);
        let out = convolve_additive(&a, &b);
        let expected = a.convolve(&b, |x, y| x.saturating_add(y));
        assert!(out.approx_eq(&expected, 0.0));
        assert!(out.prob(&PosInf) > 0.0);
    }

    #[test]
    fn empty_operands() {
        let a = MonoidDist::empty();
        let b = uniform(0, 3);
        assert!(convolve_additive(&a, &b).is_empty());
        assert!(convolve_additive(&b, &a).is_empty());
    }
}
