//! Adaptive distribution representations for the convolution kernel: sparse
//! (sorted-vector [`Dist`]) and **dense** (offset-indexed `Vec<f64>`) backing for
//! distributions over finite integer monoid values.
//!
//! COUNT and SUM convolutions (Eq. 6 of the paper) produce supports that live in a
//! contiguous (or near-contiguous) integer range: COUNT of `n` terms has support
//! `⊆ {0, …, n}`, and SUM over small values stays within the sum of the value
//! ranges. For such supports, the generate–sort–coalesce kernel wastes its time
//! sorting; a dense vector indexed by `value − offset` convolves by **direct
//! indexing** (`out[i + j] += p_a[i] · p_b[j]`) in `O(|p|·|q| + range)` with no
//! comparisons at all.
//!
//! [`DistRepr`] is the adaptive pairing of the two: [`DistRepr::of`] inspects the
//! support and picks the dense form exactly when the support is all-finite and the
//! spanned range is no larger than the work a convolution does anyway (so dense is
//! never asymptotically worse). [`convolve_additive`] is the drop-in convolution
//! used by the SUM/COUNT paths of `ops::add_monoid` and the d-tree evaluators; it is
//! **bit-identical** to the sparse kernel because equal-valued products accumulate
//! in the same (outer-operand-major) order and the same [`PROB_EPS`] drop rule
//! applies on the way out.
//!
//! # Chained dense evaluation
//!
//! A SUM/COUNT `⊕` chain used to round-trip dense → sparse → dense at every node
//! exit. [`convolve_additive_chained`] keeps the dense form alive across node
//! boundaries: its operands and result are [`ChainVal`]s, and it applies exactly
//! the same pairwise eligibility rule as [`convolve_additive`] (computed from
//! bounds and support sizes that the trimmed dense form carries natively), so a
//! chained evaluation is bit-identical to the round-tripping one. Dense results
//! are **trimmed** — leading and trailing zero cells are removed and the offset
//! adjusted — so a dense value's bounds always equal its true support bounds and
//! every later eligibility decision matches the sparse path's. Chain fates are
//! counted by [`stats::record_dense_chain`](crate::stats::record_dense_chain)
//! (`kernel.dense_chain.extends` / `.breaks` after the obs bridge).
//!
//! # FFT convolution and its accuracy policy
//!
//! Past the crossover where the direct dense loop's `O(|p|·|q|)` products exceed
//! `O(N log N)` butterfly work ([`fft_would_run`]), [`DenseDist::convolve_add`]
//! switches to the spectral kernel of the internal `fft` module. Spectral results
//! carry rounding error, so they pass an explicit **accuracy policy** before
//! being accepted:
//!
//! 1. every cell must be finite, and no cell may be more negative than `−1e-12`
//!    (tiny negatives are clamped to zero);
//! 2. the total mass must equal the exact product of the input masses within a
//!    relative [`FFT_RELATIVE_EPS`] (`1e-9`);
//! 3. the surviving cells are **renormalised** to that exact product mass, and
//!    the usual [`PROB_EPS`] drop rule is applied.
//!
//! Any violation falls back to the exact chunked kernel
//! ([`DenseDist::convolve_add_exact`]) and is counted in
//! `kernel.conv.fft_fallbacks`. FFT selection is a pure function of the two
//! dense lengths, so results stay deterministic across runs and thread counts;
//! they are *not* bit-identical to the exact kernel, only ε-close (the
//! differential oracle asserts both regimes).

use crate::dist::{Dist, PROB_EPS};
use crate::values::MonoidDist;
use pvc_algebra::MonoidValue;

/// A dense distribution over a contiguous range of finite integer values:
/// `probs[i]` is the probability of `Fin(offset + i)`. Cells at or below
/// [`PROB_EPS`] are kept as `0.0` (absent). Every constructor and combinator
/// maintains the **trim invariant**: the first and last cells are non-zero (or
/// the cell vector is empty), so `offset` and `offset + len − 1` are the true
/// support bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseDist {
    offset: i64,
    probs: Vec<f64>,
}

impl DenseDist {
    /// Build from a sparse distribution whose support is all finite.
    ///
    /// Returns `None` if the support is empty or contains `±∞`.
    pub fn from_dist(dist: &MonoidDist) -> Option<DenseDist> {
        let (lo, hi) = finite_bounds(dist)?;
        let range = usize::try_from(hi.checked_sub(lo)?).ok()?.checked_add(1)?;
        let mut probs = vec![0.0; range];
        for (v, p) in dist.iter() {
            let MonoidValue::Fin(x) = v else {
                unreachable!("finite_bounds verified an all-finite support")
            };
            probs[(x - lo) as usize] = p;
        }
        Some(DenseDist { offset: lo, probs })
    }

    /// The value of the first cell.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Number of cells (the spanned range, including zero cells).
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Number of cells holding probability above [`PROB_EPS`].
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|p| **p > PROB_EPS).count()
    }

    /// Total probability mass.
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// The non-zero cells as `(value, probability)` pairs in ascending value
    /// order — the same sequence the sparse form's `iter` would yield.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != 0.0)
            .map(|(i, p)| (self.offset + i as i64, *p))
    }

    /// Convert back to the sparse form (cells at or below [`PROB_EPS`] are dropped).
    /// The cells are scanned in ascending value order, so the output needs no sort.
    pub fn to_dist(&self) -> MonoidDist {
        Dist::from_sorted_unique(
            self.probs
                .iter()
                .enumerate()
                .filter(|(_, p)| **p > PROB_EPS)
                .map(|(i, p)| (MonoidValue::Fin(self.offset + i as i64), *p))
                .collect(),
        )
    }

    /// Re-establish the trim invariant on a freshly built cell vector.
    fn trimmed(offset: i64, mut probs: Vec<f64>) -> DenseDist {
        let Some(first) = probs.iter().position(|p| *p != 0.0) else {
            return DenseDist {
                offset: 0,
                probs: Vec::new(),
            };
        };
        let last = probs.iter().rposition(|p| *p != 0.0).expect("nonzero cell");
        probs.truncate(last + 1);
        probs.drain(..first);
        DenseDist {
            offset: offset + first as i64,
            probs,
        }
    }

    /// Adaptive additive convolution: the spectral (FFT) kernel past the
    /// [`fft_would_run`] crossover (subject to the accuracy policy, see the
    /// [module docs](self)), the exact chunked kernel otherwise.
    pub fn convolve_add(&self, other: &DenseDist) -> DenseDist {
        if fft_would_run(self.probs.len(), other.probs.len()) {
            if let Some(out) = self.convolve_add_fft(other) {
                crate::stats::record_fft(true);
                return out;
            }
            crate::stats::record_fft(false);
        }
        self.convolve_add_exact(other)
    }

    /// Direct-index additive convolution: `out[i + j] += self[i] · other[j]`.
    ///
    /// Accumulation at each output cell runs in ascending `self`-index order —
    /// the same order the sparse generate–sort–coalesce kernel sums equal-valued
    /// candidates — so the result is bit-identical to the sparse path. The inner
    /// row update is written as four independent accumulator lanes over
    /// `chunks_exact(4)`: each output cell is touched exactly once per `i`, so
    /// the lanes never reassociate a sum and the compiler is free to emit packed
    /// `mulpd`/`addpd` (or fused) instructions for the whole row.
    pub fn convolve_add_exact(&self, other: &DenseDist) -> DenseDist {
        if self.probs.is_empty() || other.probs.is_empty() {
            return DenseDist {
                offset: 0,
                probs: Vec::new(),
            };
        }
        let n = other.probs.len();
        let mut probs = vec![0.0; self.probs.len() + n - 1];
        for (i, pa) in self.probs.iter().enumerate() {
            let pa = *pa;
            if pa == 0.0 {
                continue;
            }
            let row = &mut probs[i..i + n];
            let mut rows = row.chunks_exact_mut(4);
            let mut cols = other.probs.chunks_exact(4);
            for (r, o) in rows.by_ref().zip(cols.by_ref()) {
                r[0] += pa * o[0];
                r[1] += pa * o[1];
                r[2] += pa * o[2];
                r[3] += pa * o[3];
            }
            for (r, o) in rows.into_remainder().iter_mut().zip(cols.remainder()) {
                *r += pa * *o;
            }
        }
        // Apply the sparse kernel's drop rule so later convolutions see the same
        // support either way, then trim so the bounds are true support bounds.
        for p in &mut probs {
            if *p <= PROB_EPS {
                *p = 0.0;
            }
        }
        Self::trimmed(self.offset + other.offset, probs)
    }

    /// The spectral convolution attempt: `None` when the transform is
    /// oversized or the result violates the accuracy policy (the caller then
    /// runs the exact kernel).
    fn convolve_add_fft(&self, other: &DenseDist) -> Option<DenseDist> {
        if self.probs.is_empty() || other.probs.is_empty() {
            return None;
        }
        let mut cells = crate::fft::convolve(&self.probs, &other.probs)?;
        let target = self.total_mass() * other.total_mass();
        let mut sum = 0.0;
        for p in cells.iter_mut() {
            if !p.is_finite() || *p < -FFT_NEGATIVE_TOLERANCE {
                return None;
            }
            if *p < 0.0 {
                *p = 0.0;
            }
            sum += *p;
        }
        // `sum` is a sum of finite non-negative cells, so comparing against
        // zero directly is NaN-safe here.
        if sum <= 0.0 || (sum - target).abs() > FFT_RELATIVE_EPS * target {
            return None;
        }
        let scale = target / sum;
        for p in cells.iter_mut() {
            *p *= scale;
            if *p <= PROB_EPS {
                *p = 0.0;
            }
        }
        Some(Self::trimmed(self.offset + other.offset, cells))
    }

    /// Scale every cell by `factor`, applying the sparse kernel's drop rule
    /// (scaled cells at or below [`PROB_EPS`] become zero) and re-trimming —
    /// bit-identical to `to_dist().scale(factor)` re-densified.
    pub fn scale(&self, factor: f64) -> DenseDist {
        let probs = self
            .probs
            .iter()
            .map(|p| {
                let scaled = p * factor;
                if scaled > PROB_EPS {
                    scaled
                } else {
                    0.0
                }
            })
            .collect();
        Self::trimmed(self.offset, probs)
    }

    /// Pointwise mixture of two dense distributions (the `⊔` combination),
    /// staying dense only while the union range is bounded by
    /// [`dense_mix_bounded`]; `self`'s cell is the left addend, matching the
    /// sparse [`Dist::mix`] accumulation order bit-for-bit.
    pub fn mix(&self, other: &DenseDist) -> Option<DenseDist> {
        if self.probs.is_empty() {
            return Some(other.clone());
        }
        if other.probs.is_empty() {
            return Some(self.clone());
        }
        let lo = self.offset.min(other.offset);
        let hi = (self.offset + self.probs.len() as i64 - 1)
            .max(other.offset + other.probs.len() as i64 - 1);
        let union = usize::try_from(hi.checked_sub(lo)?).ok()?.checked_add(1)?;
        if !dense_mix_bounded(self.probs.len(), other.probs.len(), union) {
            return None;
        }
        let mut probs = vec![0.0f64; union];
        let base = (self.offset - lo) as usize;
        probs[base..base + self.probs.len()].copy_from_slice(&self.probs);
        let base = (other.offset - lo) as usize;
        for (cell, p) in probs[base..base + other.probs.len()]
            .iter_mut()
            .zip(&other.probs)
        {
            *cell += p;
        }
        // Both sides' cells exceed PROB_EPS individually, so no sum can fall
        // under the drop rule and the union's end cells are non-zero: the trim
        // invariant holds without another pass.
        Some(DenseDist { offset: lo, probs })
    }
}

/// Which representation [`DistRepr::of`] chose (also exposed for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub enum DistRepr {
    /// Sorted-vector sparse form — scattered or non-finite supports.
    Sparse(MonoidDist),
    /// Offset-indexed dense form — all-finite supports spanning a small range.
    Dense(DenseDist),
}

/// Minimum spanned range below which the dense form is always chosen (the vector is
/// so small that direct indexing beats any sort regardless of density).
const DENSE_ALWAYS_RANGE: usize = 64;

/// Minimum dense length on **both** operands before the spectral kernel is
/// considered: below this the direct loop's cache behaviour wins regardless of
/// the op-count model.
pub const FFT_MIN_LEN: usize = 64;

/// The spectral kernel runs when the direct loop's `|p|·|q|` cell products
/// exceed this multiple of the padded transform's `N log₂ N` butterflies.
const FFT_COST_FACTOR: usize = 8;

/// Documented ε of the FFT accuracy policy: the spectral result's total mass
/// must match the exact product of the operand masses within this relative
/// tolerance, and the accepted result is renormalised to that exact mass.
pub const FFT_RELATIVE_EPS: f64 = 1e-9;

/// Cells more negative than this are a policy violation; anything in
/// `(−tolerance, 0)` is clamped to zero before renormalisation.
const FFT_NEGATIVE_TOLERANCE: f64 = 1e-12;

/// Whether the adaptive kernel would pick the spectral path for dense operands
/// of the given lengths — a pure function of the two lengths, so chained and
/// round-tripping evaluations make identical choices. Exposed for the bench
/// crossover scenario and the property tests.
pub fn fft_would_run(len_a: usize, len_b: usize) -> bool {
    if len_a.min(len_b) < FFT_MIN_LEN {
        return false;
    }
    let out_len = len_a + len_b - 1;
    let n = out_len.next_power_of_two();
    let log2n = n.trailing_zeros() as usize;
    len_a
        .checked_mul(len_b)
        .map_or(true, |direct| direct > FFT_COST_FACTOR * n * log2n)
}

/// Whether a `⊔` mixture of dense operands may stay dense: the union range may
/// not exceed `max(4 × (cells_a + cells_b), 64)`, so the dense result stays
/// within a constant factor of the inputs' combined footprint.
pub fn dense_mix_bounded(len_a: usize, len_b: usize, union_range: usize) -> bool {
    union_range
        <= 4usize
            .saturating_mul(len_a.saturating_add(len_b))
            .max(DENSE_ALWAYS_RANGE)
}

impl DistRepr {
    /// Choose a representation adaptively by support density: dense when the
    /// support is all-finite and the spanned range is at most
    /// `max(4 × support, 64)` (i.e. at least a quarter of the cells are occupied,
    /// or the range is trivially small).
    pub fn of(dist: &MonoidDist) -> DistRepr {
        if let Some((lo, hi)) = finite_bounds(dist) {
            if let Some(range) = hi
                .checked_sub(lo)
                .and_then(|d| usize::try_from(d).ok())
                .and_then(|d| d.checked_add(1))
            {
                if range <= (4 * dist.support_size()).max(DENSE_ALWAYS_RANGE) {
                    if let Some(dense) = DenseDist::from_dist(dist) {
                        crate::stats::record_repr(true);
                        return DistRepr::Dense(dense);
                    }
                }
            }
        }
        crate::stats::record_repr(false);
        DistRepr::Sparse(dist.clone())
    }

    /// True if the dense form was chosen.
    pub fn is_dense(&self) -> bool {
        matches!(self, DistRepr::Dense(_))
    }

    /// Convert (back) to the sparse form.
    pub fn to_dist(&self) -> MonoidDist {
        match self {
            DistRepr::Sparse(d) => d.clone(),
            DistRepr::Dense(d) => d.to_dist(),
        }
    }

    /// Number of values with probability above [`PROB_EPS`].
    pub fn support_size(&self) -> usize {
        match self {
            DistRepr::Sparse(d) => d.support_size(),
            DistRepr::Dense(d) => d.support_size(),
        }
    }
}

/// The `(min, max)` finite values of the support; `None` when the support is empty
/// or contains `±∞`. Entries are sorted and `−∞ < Fin(_) < +∞`, so only the two
/// ends need checking: if both are finite, everything between is.
fn finite_bounds(dist: &MonoidDist) -> Option<(i64, i64)> {
    let lo = dist.min_value()?.finite()?;
    let hi = dist.max_value()?.finite()?;
    Some((lo, hi))
}

/// `(lo, hi, support)` of one convolution operand, from whichever form it is
/// in; `None` when empty or non-finite (dense values are always finite, and
/// their trim invariant makes the bounds exact).
fn operand_profile(v: &ChainVal) -> Option<(i64, i64, usize)> {
    match v {
        ChainVal::Dense(d) => {
            if d.probs.is_empty() {
                None
            } else {
                Some((
                    d.offset,
                    d.offset + d.probs.len() as i64 - 1,
                    d.support_size(),
                ))
            }
        }
        ChainVal::Sparse(d) => {
            let (lo, hi) = finite_bounds(d)?;
            Some((lo, hi, d.support_size()))
        }
    }
}

/// The pairwise dense-eligibility rule shared by [`convolve_additive`] and the
/// chained evaluator: the output range must not exceed the candidate-pair
/// count (so the dense pass is never more work than the sparse sort), with the
/// [`DENSE_ALWAYS_RANGE`] floor.
fn pair_eligible(a: (i64, i64, usize), b: (i64, i64, usize)) -> Option<()> {
    let lo = a.0.checked_add(b.0)?;
    let hi = a.1.checked_add(b.1)?;
    let range = usize::try_from(hi.checked_sub(lo)?).ok()?.checked_add(1)?;
    let candidates = a.2.checked_mul(b.2)?;
    (range <= candidates.max(DENSE_ALWAYS_RANGE)).then_some(())
}

/// Additive (SUM/COUNT) convolution with adaptive representation choice:
/// direct-index dense convolution when both supports are all-finite and the output
/// range is no larger than the candidate-pair count (so the dense pass is never
/// more work than the sparse sort), sparse generate–sort–coalesce otherwise. Past
/// the [`fft_would_run`] crossover the dense pass runs spectrally under the
/// accuracy policy (see the [module docs](self)).
///
/// Below the FFT crossover, bit-identical to
/// `a.convolve(&b, |x, y| x.saturating_add(y))` on every input.
pub fn convolve_additive(a: &MonoidDist, b: &MonoidDist) -> MonoidDist {
    if let Some(out) = try_convolve_dense(a, b) {
        crate::stats::record_conv(true, a.support_size(), b.support_size());
        return out;
    }
    crate::stats::record_conv(false, a.support_size(), b.support_size());
    a.convolve(b, |x, y| x.saturating_add(y))
}

/// As [`convolve_additive`], reusing a scratch buffer on the sparse fallback path.
pub fn convolve_additive_with_scratch(
    a: &MonoidDist,
    b: &MonoidDist,
    scratch: &mut Vec<(MonoidValue, f64)>,
) -> MonoidDist {
    if let Some(out) = try_convolve_dense(a, b) {
        crate::stats::record_conv(true, a.support_size(), b.support_size());
        return out;
    }
    crate::stats::record_conv(false, a.support_size(), b.support_size());
    a.convolve_with_scratch(b, |x, y| x.saturating_add(y), scratch)
}

fn try_convolve_dense(a: &MonoidDist, b: &MonoidDist) -> Option<MonoidDist> {
    let (la, ha) = finite_bounds(a)?;
    let (lb, hb) = finite_bounds(b)?;
    pair_eligible((la, ha, a.support_size()), (lb, hb, b.support_size()))?;
    let da = DenseDist::from_dist(a)?;
    let db = DenseDist::from_dist(b)?;
    let out = da.convolve_add(&db);
    #[cfg(debug_assertions)]
    if !fft_would_run(da.len(), db.len()) {
        debug_assert!(
            bit_equal(&out.to_dist(), &a.convolve(b, |x, y| x.saturating_add(y))),
            "dense convolution diverged from the sparse kernel"
        );
    }
    Some(out.to_dist())
}

/// One operand or result of a chained adaptive convolution: a dense value kept
/// alive across node boundaries, or a sparse one.
#[derive(Debug, Clone)]
pub enum ChainVal {
    /// Offset-indexed dense form (trimmed: bounds are true support bounds).
    Dense(DenseDist),
    /// Sorted-vector sparse form.
    Sparse(MonoidDist),
}

impl ChainVal {
    /// Materialise the sparse form (the dense case is the end of a chain — the
    /// caller decides whether that counts as a break).
    pub fn into_dist(self) -> MonoidDist {
        match self {
            ChainVal::Dense(d) => d.to_dist(),
            ChainVal::Sparse(d) => d,
        }
    }

    /// True when no value has non-zero probability.
    pub fn is_empty(&self) -> bool {
        match self {
            ChainVal::Dense(d) => d.is_empty(),
            ChainVal::Sparse(d) => d.is_empty(),
        }
    }
}

/// Additive convolution for chained dense evaluation: applies the same pairwise
/// eligibility rule as [`convolve_additive`], but keeps an eligible result in
/// dense form for the next node instead of materialising it sparse — and
/// accepts operands that are still dense from the previous node. Bit-identical
/// to materialising both operands and calling
/// [`convolve_additive_with_scratch`] (below the FFT crossover; ε-close above
/// it, with identical path selection either way).
///
/// Chain bookkeeping: a dense result records one *extend*; a dense **operand**
/// forced sparse because the pair is ineligible records one *break* (see
/// [`stats::record_dense_chain`](crate::stats::record_dense_chain)).
pub fn convolve_additive_chained(
    a: ChainVal,
    b: ChainVal,
    scratch: &mut Vec<(MonoidValue, f64)>,
) -> ChainVal {
    if a.is_empty() || b.is_empty() {
        // Counter parity with the non-chained kernel, which records a sparse
        // dispatch for empty operands too.
        let size = |v: &ChainVal| match v {
            ChainVal::Dense(d) => d.support_size(),
            ChainVal::Sparse(d) => d.support_size(),
        };
        crate::stats::record_conv(false, size(&a), size(&b));
        return ChainVal::Sparse(Dist::empty());
    }
    if let (Some(pa), Some(pb)) = (operand_profile(&a), operand_profile(&b)) {
        if pair_eligible(pa, pb).is_some() {
            let da = match &a {
                ChainVal::Dense(d) => d.clone(),
                ChainVal::Sparse(d) => DenseDist::from_dist(d).expect("profiled finite support"),
            };
            let db = match &b {
                ChainVal::Dense(d) => d.clone(),
                ChainVal::Sparse(d) => DenseDist::from_dist(d).expect("profiled finite support"),
            };
            crate::stats::record_conv(true, pa.2, pb.2);
            let out = da.convolve_add(&db);
            crate::stats::record_dense_chain(true);
            return ChainVal::Dense(out);
        }
    }
    // Sparse fallback: any dense operand breaks its chain here.
    let demote = |v: ChainVal| match v {
        ChainVal::Dense(d) => {
            crate::stats::record_dense_chain(false);
            d.to_dist()
        }
        ChainVal::Sparse(d) => d,
    };
    let da = demote(a);
    let db = demote(b);
    crate::stats::record_conv(false, da.support_size(), db.support_size());
    ChainVal::Sparse(da.convolve_with_scratch(&db, |x, y| x.saturating_add(y), scratch))
}

/// `⊔` mixture step for chained dense evaluation: keeps the mixture dense when
/// [`DenseDist::mix`] accepts it (recording one chain *extend*), otherwise
/// returns `None` and the caller demotes (recording the breaks itself).
pub fn mix_dense_chained(a: &DenseDist, b: &DenseDist) -> Option<DenseDist> {
    let out = a.mix(b)?;
    crate::stats::record_dense_chain(true);
    Some(out)
}

/// Record a forced dense→sparse demotion at a chain boundary — for evaluator
/// layers that materialise a dense intermediate outside
/// [`convolve_additive_chained`] (comparisons, tensor operands, mixed `⊔`
/// sorts). Root materialisation at the end of an evaluation is *not* a break
/// and must not be recorded.
pub fn record_chain_break() {
    crate::stats::record_dense_chain(false);
}

#[cfg(debug_assertions)]
fn bit_equal(a: &MonoidDist, b: &MonoidDist) -> bool {
    a.support_size() == b.support_size()
        && a.iter()
            .zip(b.iter())
            .all(|((av, ap), (bv, bp))| av == bv && ap.to_bits() == bp.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::MonoidValue::{Fin, PosInf};

    fn uniform(lo: i64, hi: i64) -> MonoidDist {
        let n = (hi - lo + 1) as f64;
        Dist::from_pairs((lo..=hi).map(|v| (Fin(v), 1.0 / n)))
    }

    #[test]
    fn dense_round_trip() {
        let d = Dist::from_pairs([(Fin(3), 0.25), (Fin(5), 0.75)]);
        let dense = DenseDist::from_dist(&d).unwrap();
        assert_eq!(dense.offset(), 3);
        assert_eq!(dense.len(), 3);
        assert_eq!(dense.support_size(), 2);
        assert_eq!(dense.to_dist(), d);
    }

    #[test]
    fn dense_rejects_infinite_support() {
        let d = Dist::from_pairs([(Fin(3), 0.5), (PosInf, 0.5)]);
        assert!(DenseDist::from_dist(&d).is_none());
        assert!(!DistRepr::of(&d).is_dense());
    }

    #[test]
    fn repr_choice_is_adaptive() {
        // Contiguous COUNT-style support: dense.
        assert!(DistRepr::of(&uniform(0, 10)).is_dense());
        // Scattered SUM support spanning a huge range: sparse.
        let scattered = Dist::from_pairs((0..40).map(|i| (Fin(i * 1_000_000), 1.0 / 40.0)));
        assert!(!DistRepr::of(&scattered).is_dense());
        assert_eq!(DistRepr::of(&scattered).support_size(), 40);
    }

    #[test]
    fn dense_convolution_matches_sparse_bitwise() {
        let a = uniform(0, 12);
        let b = Dist::from_pairs([(Fin(0), 0.5), (Fin(1), 0.3), (Fin(2), 0.2)]);
        let dense = convolve_additive(&a, &b);
        let sparse = a.convolve(&b, |x, y| x.saturating_add(y));
        assert_eq!(dense.support_size(), sparse.support_size());
        for ((dv, dp), (sv, sp)) in dense.iter().zip(sparse.iter()) {
            assert_eq!(dv, sv);
            assert_eq!(dp.to_bits(), sp.to_bits());
        }
    }

    #[test]
    fn dense_repr_convolve_matches() {
        let a = uniform(0, 8);
        let b = uniform(2, 6);
        let (DistRepr::Dense(da), DistRepr::Dense(db)) = (DistRepr::of(&a), DistRepr::of(&b))
        else {
            panic!("expected dense representations")
        };
        let dense = da.convolve_add(&db).to_dist();
        let sparse = a.convolve(&b, |x, y| x.saturating_add(y));
        assert!(dense.approx_eq(&sparse, 0.0));
    }

    #[test]
    fn infinite_values_fall_back_to_sparse() {
        let a = Dist::from_pairs([(Fin(1), 0.5), (PosInf, 0.5)]);
        let b = uniform(0, 3);
        let out = convolve_additive(&a, &b);
        let expected = a.convolve(&b, |x, y| x.saturating_add(y));
        assert!(out.approx_eq(&expected, 0.0));
        assert!(out.prob(&PosInf) > 0.0);
    }

    #[test]
    fn empty_operands() {
        let a = MonoidDist::empty();
        let b = uniform(0, 3);
        assert!(convolve_additive(&a, &b).is_empty());
        assert!(convolve_additive(&b, &a).is_empty());
    }

    #[test]
    fn convolution_output_is_trimmed() {
        let a = uniform(5, 9);
        let da = DenseDist::from_dist(&a).unwrap();
        let out = da.convolve_add_exact(&da);
        // Bounds are true support bounds: 10..=18.
        assert_eq!(out.offset(), 10);
        assert_eq!(out.len(), 9);
        assert!(out.iter().next().unwrap().1 > 0.0);
    }

    #[test]
    fn fft_crossover_is_length_driven() {
        assert!(!fft_would_run(8, 8));
        assert!(!fft_would_run(1024, 4)); // one tiny operand: direct wins
        assert!(fft_would_run(512, 512));
    }

    #[test]
    fn fft_matches_exact_within_eps() {
        let a = uniform(0, 299);
        let da = DenseDist::from_dist(&a).unwrap();
        assert!(fft_would_run(da.len(), da.len()));
        let spectral = da.convolve_add(&db_clone(&da));
        let exact = da.convolve_add_exact(&db_clone(&da));
        assert_eq!(spectral.offset(), exact.offset());
        assert_eq!(spectral.len(), exact.len());
        // Mass is renormalised to the exact product; cells agree within ε.
        assert!((spectral.total_mass() - exact.total_mass()).abs() < 1e-12);
        for ((v1, p1), (v2, p2)) in spectral.iter().zip(exact.iter()) {
            assert_eq!(v1, v2);
            assert!((p1 - p2).abs() < 1e-9, "{v1}: {p1} vs {p2}");
        }
    }

    fn db_clone(d: &DenseDist) -> DenseDist {
        d.clone()
    }

    #[test]
    fn chained_convolution_matches_round_trip_bitwise() {
        // A COUNT-style chain: fold 20 two-point tensors. Chained-dense vs
        // materialise-at-every-step must agree bit-for-bit.
        let mut scratch = Vec::new();
        let term = |p: f64| Dist::from_pairs([(Fin(0), 1.0 - p), (Fin(1), p)]);
        let mut chained = ChainVal::Sparse(term(0.3));
        let mut stepwise = term(0.3);
        for i in 1..20 {
            let p = 0.05 + 0.04 * i as f64;
            chained = convolve_additive_chained(chained, ChainVal::Sparse(term(p)), &mut scratch);
            stepwise = convolve_additive_with_scratch(&stepwise, &term(p), &mut scratch);
        }
        let chained = chained.into_dist();
        assert!(bit_equal_pub(&chained, &stepwise));
    }

    fn bit_equal_pub(a: &MonoidDist, b: &MonoidDist) -> bool {
        a.support_size() == b.support_size()
            && a.iter()
                .zip(b.iter())
                .all(|((av, ap), (bv, bp))| av == bv && ap.to_bits() == bp.to_bits())
    }

    #[test]
    fn chained_convolution_demotes_on_ineligible_pairs() {
        // A scattered operand forces the sparse path; the result must still
        // match the plain adaptive kernel bitwise.
        let mut scratch = Vec::new();
        let contiguous = uniform(0, 10);
        let scattered = Dist::from_pairs((0..40).map(|i| (Fin(i * 1_000_000), 1.0 / 40.0)));
        let dense = DenseDist::from_dist(&contiguous).unwrap();
        let out = convolve_additive_chained(
            ChainVal::Dense(dense),
            ChainVal::Sparse(scattered.clone()),
            &mut scratch,
        );
        assert!(matches!(out, ChainVal::Sparse(_)));
        let expected = convolve_additive(&contiguous, &scattered);
        assert!(bit_equal_pub(&out.into_dist(), &expected));
    }

    #[test]
    fn dense_mix_matches_sparse_mix_bitwise() {
        let a = uniform(0, 6).scale(0.4);
        let b = uniform(3, 12).scale(0.6);
        let da = DenseDist::from_dist(&a).unwrap();
        let db = DenseDist::from_dist(&b).unwrap();
        let mixed = da.mix(&db).expect("bounded union");
        assert!(bit_equal_pub(&mixed.to_dist(), &a.mix(&b)));
    }

    #[test]
    fn dense_mix_refuses_unbounded_unions() {
        let a = DenseDist::from_dist(&uniform(0, 6)).unwrap();
        let b = DenseDist::from_dist(&Dist::from_pairs([(Fin(1_000_000), 1.0)])).unwrap();
        assert!(a.mix(&b).is_none());
    }

    #[test]
    fn dense_scale_applies_drop_rule_and_trims() {
        let d = Dist::from_pairs([(Fin(0), 1e-8), (Fin(5), 0.9)]);
        let dense = DenseDist::from_dist(&d).unwrap();
        let scaled = dense.scale(0.01);
        // The first cell (1e-10) falls under PROB_EPS: dropped and trimmed.
        assert_eq!(scaled.offset(), 5);
        assert_eq!(scaled.len(), 1);
        assert!(bit_equal_pub(&scaled.to_dist(), &d.scale(0.01)));
    }
}
