//! `pvc-load`: drive a deterministic mixed workload against an in-process
//! [`pvc_serve::Server`] and print the sustained-traffic report as JSON.
//!
//! Parameters come from `key=value` arguments (any order, all optional):
//!
//! ```text
//! pvc-load clients=4 requests=50 tenants=2 shops=24 per_shop=3 \
//!          threads=0 queue_depth=64 compact_every=4 snapshot_dir=/tmp/pvc-snaps \
//!          durability=always timeout_ms=5000
//! ```
//!
//! `--timeout-ms=N` (or `timeout_ms=N`) bounds each ticket wait with
//! [`pvc_serve::Ticket::wait_timeout`]; expiries are reported as `timeouts`.
//! `durability=` selects the write-ahead-log fsync mode (`none`, `batch`,
//! `always`) when a `snapshot_dir` is configured.
//!
//! With `--metrics` (or `metrics=1`) the process-wide observability registry
//! and span counting are enabled for the run, and the output becomes
//! `{"report": <run report>, "metrics": <Server::metrics_snapshot()>}` — the
//! CI `obs_smoke` job parses this and checks the metric catalog.
//!
//! The report JSON is the `experiment_serve` record of the bench baseline
//! (see `BENCH_baseline.json`); the CI `serve_smoke` job asserts nonzero QPS,
//! zero rejections at the default depth, and an atomically written snapshot.

use pvc_serve::loadgen::{run, run_with_metrics, LoadConfig};
use pvc_serve::ServeConfig;

fn parse_usize(value: &str, key: &str) -> usize {
    value
        .parse()
        .unwrap_or_else(|_| panic!("invalid value for {key}: {value:?}"))
}

fn main() {
    let mut config = LoadConfig::default();
    let mut serve = ServeConfig::default().with_compact_every(4);
    let mut metrics = false;
    for arg in std::env::args().skip(1) {
        if arg == "--metrics" {
            metrics = true;
            continue;
        }
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("ignoring argument without '=': {arg:?}");
            continue;
        };
        let normalized = key.strip_prefix("--").unwrap_or(key).replace('-', "_");
        let key = normalized.as_str();
        match key {
            "metrics" => metrics = value == "1" || value == "true",
            "clients" => config.clients = parse_usize(value, key),
            "requests" => config.requests_per_client = parse_usize(value, key),
            "tenants" => config.tenants = parse_usize(value, key),
            "shops" => config.shops = parse_usize(value, key),
            "per_shop" => config.per_shop = parse_usize(value, key),
            "threads" => serve.threads = parse_usize(value, key),
            "queue_depth" => serve.queue_depth = parse_usize(value, key),
            "compact_every" => serve.compact_every = parse_usize(value, key) as u64,
            "compile_budget" => serve.compile_budget = Some(parse_usize(value, key)),
            "snapshot_dir" => serve = serve.with_snapshot_dir(value),
            "snapshot_interval_ms" => {
                serve.snapshot_interval =
                    std::time::Duration::from_millis(parse_usize(value, key) as u64)
            }
            "durability" => {
                serve.durability = pvc_core::Durability::parse(value)
                    .unwrap_or_else(|| panic!("invalid value for durability: {value:?}"))
            }
            "timeout_ms" => {
                config.timeout = Some(std::time::Duration::from_millis(
                    parse_usize(value, key) as u64
                ))
            }
            _ => eprintln!("ignoring unknown parameter {key:?}"),
        }
    }
    config.serve = serve;
    if metrics {
        pvc_core::obs::set_metrics_enabled(true);
        pvc_core::obs::set_tracing_enabled(true);
        match run_with_metrics(&config) {
            Ok((report, snapshot)) => {
                println!(
                    "{{\"report\": {}, \"metrics\": {}}}",
                    report.to_json(),
                    snapshot
                );
            }
            Err(e) => {
                eprintln!("pvc-load failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run(&config) {
            Ok(report) => println!("{}", report.to_json()),
            Err(e) => {
                eprintln!("pvc-load failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
