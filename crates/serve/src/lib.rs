//! # pvc-serve
//!
//! The long-lived serving runtime over the [`pvc_db::Engine`]: what turns the
//! paper's two-step pipeline from a per-call library into a process that holds
//! sustained, multi-tenant query traffic.
//!
//! A [`Server`] owns:
//!
//! * a **persistent worker pool** ([`pvc_core::WorkerPool`], `threads: 0` =
//!   one per core — the serving default) that every execution's step-II worker
//!   loops run on, instead of spawning fresh threads per query;
//! * a **bounded submission queue with admission control**: past
//!   [`ServeConfig::queue_depth`] pending requests, [`Server::submit`] returns
//!   the typed [`ServeError::Overloaded`] instead of queueing unboundedly, and
//!   an optional per-request compile budget caps pathological queries;
//! * a **cross-query batch scheduler**: each batch is stably grouped by
//!   (tenant, [`Query::structural_key`]) so structurally-related queries run
//!   back-to-back and the interner/artifact caches stay hot;
//! * **backpressure-aware streaming**: results are handed back as a
//!   [`ResultStream`] layered on the engine's bounded [`TupleStream`] channel —
//!   a slow consumer stalls its own workers, never the server's memory;
//! * per-tenant [`SharedArtifacts`] with **generation-based compaction**
//!   ([`Engine::compact_artifacts`]) run strictly between batches, so a
//!   long-lived process's expression arena stays bounded, not just its caches;
//! * a **typed write path** ([`Server::apply_delta`]): a [`pvc_db::Delta`]
//!   is admitted only while the tenant is idle (the compaction gate) and
//!   invalidates selectively, so cached artifacts over untouched tables keep
//!   answering warm across updates;
//! * a **background snapshot thread** doing periodic, atomic
//!   (temp-file + `rename`) [`Engine::save_artifacts`] saves — with
//!   retry-and-backoff and graceful degradation to WAL-only durability when
//!   storage misbehaves — so a crashed or killed server restarts **warm**
//!   from the last complete snapshot;
//! * **crash-safe durability** (see `docs/DURABILITY.md`): every acknowledged
//!   delta is appended to a per-tenant write-ahead log *before* it is applied
//!   (fsync discipline per [`ServeConfig::durability`]), logs rotate after
//!   each successful snapshot, and [`Server::start`] sweeps stale temp files,
//!   restores the newest snapshot and replays the log past its high-water
//!   mark — so a `kill -9` at any point loses no acknowledged write.
//!
//! The request lifecycle is `submit → admit → batch → pool → stream`: a
//! submitted query is admission-checked, queued, picked up by the scheduler in
//! a locality-sorted batch, executed on the shared pool, and streamed back
//! through the [`Ticket`] the submitter holds.
//!
//! ```
//! use pvc_db::{Database, Query, Schema};
//! use pvc_serve::{ServeConfig, Server};
//!
//! let mut db = Database::new();
//! db.create_table("S", Schema::new(["sid", "shop"]));
//! let (s, vars) = db.table_and_vars_mut("S").unwrap();
//! s.push_independent(vec![1i64.into(), "M&S".into()], 0.4, vars);
//!
//! let server = Server::start(vec![("t0".into(), db)], ServeConfig::default())?;
//! let ticket = server.submit("t0", Query::table("S").project(["shop"]))?;
//! let stream = ticket.wait()?;
//! let tuples: Vec<_> = stream.collect::<Result<_, _>>().unwrap();
//! assert_eq!(tuples.len(), 1);
//! assert!((tuples[0].confidence - 0.4).abs() < 1e-12);
//! server.shutdown();
//! # Ok::<(), pvc_serve::ServeError>(())
//! ```
//!
//! [`SharedArtifacts`]: pvc_core::SharedArtifacts
//! [`Engine::compact_artifacts`]: pvc_db::Engine::compact_artifacts
//! [`Engine::save_artifacts`]: pvc_db::Engine::save_artifacts
//! [`Query::structural_key`]: pvc_db::Query::structural_key
//! [`TupleStream`]: pvc_db::TupleStream

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;

use pvc_core::persist::storage::sweep_stale_temps;
use pvc_core::{obs, CacheConfig, CompactionStats, Durability, FsStorage, Storage, WorkerPool};
use pvc_db::{
    CacheStats, Database, Delta, DeltaStats, Engine, Error as DbError, EvalOptions, ProbTuple,
    Query, RecoverOptions, RecoveryReport,
};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool width shared by every execution: `0` (the serving default)
    /// resolves to one worker per available core.
    pub threads: usize,
    /// Admission-control bound: a submit finding this many requests already
    /// pending is rejected with [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum requests dispatched per scheduler batch (a batch is also the
    /// compaction epoch; smaller batches compact more often).
    pub batch_max: usize,
    /// Optional per-request d-tree node budget. A query exceeding it fails with
    /// a typed compile error instead of monopolising the pool. Note the engine
    /// disables the shared artifact cache for budgeted executions (a cached
    /// unbudgeted success must not mask the budget error), so this trades cache
    /// locality for worst-case latency bounds.
    pub compile_budget: Option<usize>,
    /// Compact every tenant's artifact store after this many batches
    /// (`0` = never). Compaction only runs for tenants with no in-flight
    /// streams — see [`Engine::compact_artifacts`](pvc_db::Engine::compact_artifacts).
    pub compact_every: u64,
    /// Entry/byte bounds for each tenant's artifact caches (and, via the
    /// engine, its step-I rewrite cache).
    pub cache: CacheConfig,
    /// Directory for durable state: periodic artifact snapshots
    /// (`<dir>/<tenant>.snap`) **and** per-tenant delta write-ahead logs
    /// (`<dir>/<tenant>.wal`). `None` disables both. On start, tenants restore
    /// warm from an existing readable snapshot and replay logged deltas past
    /// its high-water mark; an unreadable or mismatched snapshot falls back to
    /// a cold start with full replay (never an aborted server).
    pub snapshot_dir: Option<PathBuf>,
    /// Interval between background snapshot passes (ignored without
    /// [`ServeConfig::snapshot_dir`]).
    pub snapshot_interval: Duration,
    /// Fsync discipline of the per-tenant write-ahead logs (ignored without
    /// [`ServeConfig::snapshot_dir`]). [`Durability::Always`] — the default —
    /// fsyncs before a delta is acknowledged; [`Durability::Batch`] defers the
    /// fsync to the next snapshot pass or shutdown; [`Durability::None`]
    /// leaves flushing to the OS.
    pub durability: Durability,
    /// Additional attempts per tenant when a background snapshot save fails
    /// transiently (capped exponential backoff between attempts). After the
    /// last attempt the server degrades to WAL-only durability for that pass
    /// — surfaced as `persist.degraded` in [`Server::metrics_snapshot`] — and
    /// keeps serving.
    pub snapshot_retries: u32,
    /// The storage backend every durable write goes through. The default
    /// [`FsStorage`] is the real filesystem; tests inject
    /// [`pvc_core::FaultyStorage`] to exercise crash/fault paths.
    pub storage: Arc<dyn Storage>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 0,
            queue_depth: 64,
            batch_max: 32,
            compile_budget: None,
            compact_every: 8,
            cache: CacheConfig::default(),
            snapshot_dir: None,
            snapshot_interval: Duration::from_secs(30),
            durability: Durability::Always,
            snapshot_retries: 2,
            storage: FsStorage::shared(),
        }
    }
}

impl ServeConfig {
    /// Set the worker-pool width (`0` = per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the admission-control queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the per-request compile budget.
    pub fn with_compile_budget(mut self, budget: usize) -> Self {
        self.compile_budget = Some(budget);
        self
    }

    /// Compact tenant artifact stores every `batches` batches (`0` = never).
    pub fn with_compact_every(mut self, batches: u64) -> Self {
        self.compact_every = batches;
        self
    }

    /// Set the artifact-cache bounds applied to every tenant.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Enable periodic snapshots into the given directory.
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Set the background snapshot interval.
    pub fn with_snapshot_interval(mut self, interval: Duration) -> Self {
        self.snapshot_interval = interval;
        self
    }

    /// Set the write-ahead-log fsync discipline.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Set the per-tenant snapshot retry count.
    pub fn with_snapshot_retries(mut self, retries: u32) -> Self {
        self.snapshot_retries = retries;
        self
    }

    /// Set the storage backend for snapshots and write-ahead logs.
    pub fn with_storage(mut self, storage: Arc<dyn Storage>) -> Self {
        self.storage = storage;
        self
    }
}

/// Typed failures of the serving runtime.
#[derive(Debug)]
pub enum ServeError {
    /// The submission queue was at [`ServeConfig::queue_depth`]: the request
    /// was rejected, not queued. Back off and retry.
    Overloaded {
        /// Requests pending when the submit was rejected.
        queued: usize,
        /// The configured admission bound.
        limit: usize,
    },
    /// The tenant name is not one the server was started with.
    UnknownTenant(String),
    /// The server is shutting down and no longer accepts or answers requests.
    ShuttingDown,
    /// A write ([`Server::apply_delta`]) found the tenant with live result
    /// streams. Deltas only run on idle tenants (like compaction); drain or
    /// drop the streams and retry.
    TenantBusy {
        /// Result streams alive when the write was rejected.
        in_flight: usize,
    },
    /// [`Ticket::wait_timeout`] gave up before the scheduler dispatched the
    /// request. The request itself is **still queued** and will execute; only
    /// this waiter stopped listening (its result stream is dropped on arrival,
    /// cancelling the work).
    Timeout {
        /// How long the waiter was prepared to wait.
        waited: Duration,
    },
    /// The underlying engine failed (validation, compile budget, worker error…).
    Engine(DbError),
    /// The runtime itself failed to start (e.g. thread spawning).
    Runtime(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queued, limit } => write!(
                f,
                "submission rejected: {queued} requests pending (admission limit {limit})"
            ),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::TenantBusy { in_flight } => write!(
                f,
                "write rejected: tenant has {in_flight} live result streams (drain and retry)"
            ),
            ServeError::Timeout { waited } => {
                write!(f, "request not dispatched within {waited:?}")
            }
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Runtime(msg) => write!(f, "serving runtime error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for ServeError {
    fn from(e: DbError) -> Self {
        ServeError::Engine(e)
    }
}

/// Process-wide serving metrics handles (see `docs/OBSERVABILITY.md` for the
/// catalog). Registered once; every handle is a near-no-op while metrics are
/// disabled.
struct ServeMetrics {
    /// `serve.admission.rejected` — submissions rejected with
    /// [`ServeError::Overloaded`], across all tenants.
    admission_rejected: obs::Counter,
    /// `serve.queue.depth` — submission-queue depth observed at each admit
    /// (its high-water mark is the deepest the queue ever got).
    queue_depth: obs::Gauge,
    /// `serve.batch.size` — scheduler batch sizes.
    batch_size: obs::Histogram,
    /// `persist.snapshot_failures` — failed snapshot save attempts (each retry
    /// that fails counts), across all tenants.
    snapshot_failures: obs::Counter,
    /// `persist.degraded` — 1 while the server is degraded to WAL-only
    /// durability (the last snapshot pass left at least one tenant without a
    /// fresh snapshot), 0 once a pass fully succeeds again.
    degraded: obs::Gauge,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::global();
        ServeMetrics {
            admission_rejected: registry.counter("serve.admission.rejected"),
            queue_depth: registry.gauge("serve.queue.depth"),
            batch_size: registry.histogram("serve.batch.size"),
            snapshot_failures: registry.counter("persist.snapshot_failures"),
            degraded: registry.gauge("persist.degraded"),
        }
    })
}

/// Minimal JSON string escaping for tenant names in [`Server::metrics_snapshot`].
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One queued request: where it goes, what it runs, and the channel its
/// [`ResultStream`] travels back on.
struct Request {
    tenant: String,
    query: Query,
    reply: SyncSender<Result<ResultStream, ServeError>>,
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Request")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

/// The submission queue guarded by [`ServerShared::queue`].
#[derive(Debug, Default)]
struct SubmitQueue {
    pending: VecDeque<Request>,
    shutdown: bool,
}

/// Admission decision for one request: queue it or reject it. Factored out of
/// [`Server::submit`] so the policy is unit-testable without thread timing.
fn admit(queue: &mut SubmitQueue, limit: usize, request: Request) -> Result<(), ServeError> {
    if queue.shutdown {
        return Err(ServeError::ShuttingDown);
    }
    let queued = queue.pending.len();
    if queued >= limit {
        return Err(ServeError::Overloaded { queued, limit });
    }
    queue.pending.push_back(request);
    Ok(())
}

/// Per-tenant serving state.
#[derive(Debug)]
struct Tenant {
    /// The tenant's engine. The scheduler locks it per dispatch;
    /// [`Server::apply_delta`] locks it for the whole write, and its idle
    /// check runs under this lock so it can never race a dispatch.
    engine: Mutex<Engine>,
    /// Live [`ResultStream`]s of this tenant. Compaction remaps interned ids,
    /// so it only runs when this is zero (each stream's drop has already
    /// quiesced its pool jobs by the time it decrements).
    in_flight: Arc<AtomicUsize>,
    /// Batches dispatched since this tenant's store was last compacted; a
    /// compaction becomes *due* at [`ServeConfig::compact_every`] and runs at
    /// the next between-batch point that finds the tenant idle.
    batches_since_compaction: AtomicU64,
    /// The most recent compaction's before/after sizes.
    last_compaction: Mutex<Option<CompactionStats>>,
    /// Submissions for this tenant rejected with [`ServeError::Overloaded`].
    /// Always-on (one relaxed add per rejection) so [`Server::metrics_snapshot`]
    /// reports tenants even when the global registry is disabled.
    rejected: AtomicU64,
    /// High-water mark of this tenant's pending requests in the submission
    /// queue, observed at each successful admit.
    queue_hwm: AtomicUsize,
    /// Registry mirror of `rejected` (`serve.tenant.<name>.rejected`).
    rejected_metric: obs::Counter,
    /// Registry mirror of `queue_hwm` (`serve.tenant.<name>.queue_hwm`).
    queue_hwm_metric: obs::Gauge,
    /// What crash recovery found for this tenant at start (all-default when
    /// durability is disabled). Immutable after construction.
    recovery: RecoveryReport,
}

#[derive(Debug, Default)]
struct ServerCounters {
    submitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    engine_errors: AtomicU64,
    batches: AtomicU64,
    compactions: AtomicU64,
    deltas: AtomicU64,
    snapshots: AtomicU64,
    snapshot_failures: AtomicU64,
    /// 1 while the last snapshot pass left a tenant unsaved (WAL-only
    /// durability), 0 otherwise. Gauge semantics in an atomic.
    degraded: AtomicU64,
    swept_temps: AtomicU64,
    wal_replayed: AtomicU64,
}

/// State shared by the public handle, the scheduler and the snapshot thread.
#[derive(Debug)]
struct ServerShared {
    tenants: BTreeMap<String, Tenant>,
    queue: Mutex<SubmitQueue>,
    work_ready: Condvar,
    pool: Arc<WorkerPool>,
    config: ServeConfig,
    counters: ServerCounters,
    /// Snapshot-thread control: `true` = stop; the condvar interrupts the
    /// interval sleep so shutdown is prompt.
    snapshot_stop: Mutex<bool>,
    snapshot_wake: Condvar,
}

/// Counters and sizes of a running [`Server`] (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests whose [`ResultStream`] was handed to the submitter.
    pub served: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests that failed in the engine (validation, budget, …).
    pub engine_errors: u64,
    /// Scheduler batches dispatched.
    pub batches: u64,
    /// Tenant artifact-store compactions performed.
    pub compactions: u64,
    /// Deltas applied through [`Server::apply_delta`].
    pub deltas: u64,
    /// Tenant snapshots written (background + explicit).
    pub snapshots: u64,
    /// Snapshot attempts that failed (the previous snapshot stays intact).
    pub snapshot_failures: u64,
    /// Whether the server is currently degraded to WAL-only durability (the
    /// last snapshot pass could not save every tenant even with retries).
    pub degraded: bool,
    /// Stale temp files (`*.tmp.<pid>`) swept from the snapshot directory at
    /// start — litter from a previous process killed mid-publish.
    pub swept_temps: u64,
    /// Write-ahead-log records replayed across all tenants at start.
    pub wal_replayed: u64,
    /// Requests currently pending in the submission queue.
    pub queued: usize,
    /// Width of the persistent worker pool.
    pub pool_threads: usize,
    /// Jobs the pool has executed since start.
    pub pool_executed_jobs: u64,
}

/// The long-lived serving runtime. See the crate docs for the architecture.
#[derive(Debug)]
pub struct Server {
    shared: Arc<ServerShared>,
    scheduler: Option<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
}

/// The submitter's half of one request: blocks until the scheduler has
/// dispatched it (or failed it).
#[derive(Debug)]
pub struct Ticket {
    receiver: Receiver<Result<ResultStream, ServeError>>,
}

impl Ticket {
    /// Wait for the request to be dispatched, returning its result stream.
    pub fn wait(self) -> Result<ResultStream, ServeError> {
        self.receiver
            .recv()
            .unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Wait at most `timeout` for the request to be dispatched. On expiry the
    /// ticket is consumed and [`ServeError::Timeout`] is returned; the request
    /// stays queued, but its result stream is dropped on arrival (cancelling
    /// the work) since nobody holds the receiver anymore.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ResultStream, ServeError> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.receiver.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::Timeout { waited: timeout }),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }
}

/// Decrements the owning tenant's in-flight count when the stream goes away.
#[derive(Debug)]
struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A served query result: the engine's deterministic-order tuple stream plus
/// the server-side lifecycle accounting.
///
/// Backpressure is inherited from [`pvc_db::TupleStream`]'s bounded channel:
/// workers compute at most a small window ahead of this iterator, so a slow
/// consumer stalls its own pool jobs rather than buffering the result in the
/// server. Dropping the stream cancels the remaining work.
#[derive(Debug)]
pub struct ResultStream {
    // Field order matters: the inner stream must drop (cancelling and
    // quiescing its pool jobs) *before* the guard decrements the in-flight
    // count that gates compaction.
    inner: pvc_db::TupleStream,
    _in_flight: InFlightGuard,
}

impl ResultStream {
    /// Column names of the result.
    pub fn columns(&self) -> &[String] {
        self.inner.columns()
    }

    /// Total number of tuples this stream will yield.
    pub fn total_tuples(&self) -> usize {
        self.inner.total_tuples()
    }
}

impl Iterator for ResultStream {
    type Item = Result<ProbTuple, DbError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl Server {
    /// Start a server over the given tenants (name → database).
    ///
    /// When [`ServeConfig::snapshot_dir`] is set, start first sweeps stale
    /// temp files a killed predecessor left behind, then recovers each tenant:
    /// restore **warm** from `<dir>/<tenant>.snap` when it exists and
    /// verifies, replay the write-ahead log `<dir>/<tenant>.wal` past the
    /// snapshot's high-water mark, and keep the log attached for future
    /// writes. A missing, truncated or mismatched snapshot falls back to a
    /// cold start with full replay (the server still starts); only a WAL whose
    /// acknowledged records cannot be re-applied fails the start — serving a
    /// silently stale database would be data loss. The worker pool, scheduler
    /// thread and — with a snapshot dir — the background snapshot thread are
    /// all running when this returns.
    pub fn start(
        tenants: Vec<(String, Database)>,
        config: ServeConfig,
    ) -> Result<Server, ServeError> {
        let pool = Arc::new(
            WorkerPool::new(config.threads)
                .map_err(|e| ServeError::Runtime(format!("failed to start worker pool: {e}")))?,
        );
        let mut swept_temps = 0u64;
        if let Some(dir) = config.snapshot_dir.as_ref() {
            let _ = std::fs::create_dir_all(dir);
            // Litter from a process killed between staging and rename; the
            // rename either happened (the snapshot is whole) or did not (the
            // old snapshot is whole), so temps are always safe to delete.
            swept_temps = sweep_stale_temps(config.storage.as_ref(), dir).unwrap_or(0) as u64;
        }
        let mut wal_replayed = 0u64;
        let mut tenant_map = BTreeMap::new();
        for (name, db) in tenants {
            let (engine, recovery) = match wal_path(&config, &name) {
                Some(wal) => {
                    let mut options = RecoverOptions::new(wal)
                        .with_durability(config.durability)
                        .with_cache(config.cache)
                        .with_tenant(name.clone());
                    if let Some(snap) = snapshot_path(&config, &name) {
                        options = options.with_snapshot(snap);
                    }
                    Engine::recover_with(Arc::clone(&config.storage), db, &options)
                        .map_err(ServeError::Engine)?
                }
                None => (
                    Engine::with_cache_config(db, config.cache),
                    RecoveryReport::default(),
                ),
            };
            wal_replayed += recovery.wal_replayed as u64;
            let rejected_metric = obs::global().counter(&format!("serve.tenant.{name}.rejected"));
            let queue_hwm_metric = obs::global().gauge(&format!("serve.tenant.{name}.queue_hwm"));
            tenant_map.insert(
                name,
                Tenant {
                    engine: Mutex::new(engine),
                    in_flight: Arc::new(AtomicUsize::new(0)),
                    batches_since_compaction: AtomicU64::new(0),
                    last_compaction: Mutex::new(None),
                    rejected: AtomicU64::new(0),
                    queue_hwm: AtomicUsize::new(0),
                    rejected_metric,
                    queue_hwm_metric,
                    recovery,
                },
            );
        }
        let counters = ServerCounters::default();
        counters.swept_temps.store(swept_temps, Ordering::Relaxed);
        counters.wal_replayed.store(wal_replayed, Ordering::Relaxed);
        let shared = Arc::new(ServerShared {
            tenants: tenant_map,
            queue: Mutex::new(SubmitQueue::default()),
            work_ready: Condvar::new(),
            pool,
            config,
            counters,
            snapshot_stop: Mutex::new(false),
            snapshot_wake: Condvar::new(),
        });
        let scheduler_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("pvc-serve-scheduler".to_string())
            .spawn(move || scheduler_loop(&scheduler_shared))
            .map_err(|e| ServeError::Runtime(format!("failed to spawn scheduler: {e}")))?;
        let snapshotter = if shared.config.snapshot_dir.is_some() {
            let snapshot_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("pvc-serve-snapshot".to_string())
                .spawn(move || snapshot_loop(&snapshot_shared));
            match spawned {
                Ok(handle) => Some(handle),
                Err(e) => {
                    // The scheduler is already running; stop and join it
                    // before reporting, so a failed start leaks nothing.
                    shutdown_threads(&shared);
                    let _ = scheduler.join();
                    return Err(ServeError::Runtime(format!(
                        "failed to spawn snapshot thread: {e}"
                    )));
                }
            }
        } else {
            None
        };
        Ok(Server {
            shared,
            scheduler: Some(scheduler),
            snapshotter,
        })
    }

    /// Submit a query for a tenant. Admission control runs here: an unknown
    /// tenant or a full queue returns the typed error immediately; an accepted
    /// request returns a [`Ticket`] to wait on.
    pub fn submit(&self, tenant: &str, query: Query) -> Result<Ticket, ServeError> {
        let Some(tenant_state) = self.shared.tenants.get(tenant) else {
            return Err(ServeError::UnknownTenant(tenant.to_string()));
        };
        // One slot: the scheduler's reply send never blocks.
        let (reply, receiver) = std::sync::mpsc::sync_channel(1);
        let request = Request {
            tenant: tenant.to_string(),
            query,
            reply,
        };
        {
            let mut queue = self.shared.queue.lock().expect("submit queue poisoned");
            if let Err(e) = admit(&mut queue, self.shared.config.queue_depth, request) {
                if matches!(e, ServeError::Overloaded { .. }) {
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                    tenant_state.rejected.fetch_add(1, Ordering::Relaxed);
                    tenant_state.rejected_metric.inc();
                    serve_metrics().admission_rejected.inc();
                }
                return Err(e);
            }
            // Still under the queue lock: observe the depth this admit produced
            // (queues are bounded by `queue_depth`, so the scan is cheap).
            let depth = queue.pending.len();
            serve_metrics().queue_depth.set(depth as u64);
            let tenant_pending = queue.pending.iter().filter(|r| r.tenant == tenant).count();
            tenant_state
                .queue_hwm
                .fetch_max(tenant_pending, Ordering::Relaxed);
            tenant_state.queue_hwm_metric.set(tenant_pending as u64);
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.work_ready.notify_one();
        Ok(Ticket { receiver })
    }

    /// Current serving counters and sizes.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            engine_errors: c.engine_errors.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            deltas: c.deltas.load(Ordering::Relaxed),
            snapshots: c.snapshots.load(Ordering::Relaxed),
            snapshot_failures: c.snapshot_failures.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed) != 0,
            swept_temps: c.swept_temps.load(Ordering::Relaxed),
            wal_replayed: c.wal_replayed.load(Ordering::Relaxed),
            queued: self
                .shared
                .queue
                .lock()
                .expect("submit queue poisoned")
                .pending
                .len(),
            pool_threads: self.shared.pool.threads(),
            pool_executed_jobs: self.shared.pool.executed_jobs(),
        }
    }

    /// A tenant-tagged JSON snapshot of the process-wide observability state:
    /// every registered metric (cache, kernel, arena, pool, persist, serve and
    /// span counters — see `docs/OBSERVABILITY.md`) plus per-tenant admission
    /// accounting. The per-tenant section is always populated, even while the
    /// metrics registry is disabled. The JSON uses the bench dialect (objects,
    /// strings, integers) and parses with `pvc_bench::json`.
    ///
    /// Shape:
    ///
    /// ```json
    /// {"metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
    ///  "tenants": {"t0": {"queue_hwm": 3, "rejected": 1, "in_flight": 0}}}
    /// ```
    pub fn metrics_snapshot(&self) -> String {
        let mut out = String::from("{\"metrics\": ");
        out.push_str(&obs::metrics_json());
        out.push_str(", \"tenants\": {");
        for (i, (name, tenant)) in self.shared.tenants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"queue_hwm\": {}, \"rejected\": {}, \"in_flight\": {}}}",
                json_escape(name),
                tenant.queue_hwm.load(Ordering::Relaxed),
                tenant.rejected.load(Ordering::Relaxed),
                tenant.in_flight.load(Ordering::SeqCst),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Apply a typed [`Delta`] to one tenant's database between batches.
    ///
    /// The write runs under the tenant's engine lock and only when the tenant
    /// is **idle** (`in_flight == 0`, the same gate as compaction): a tenant
    /// with live [`ResultStream`]s returns [`ServeError::TenantBusy`] without
    /// touching anything — drain or drop the streams and retry. Queued but
    /// not-yet-dispatched requests are fine; they simply execute against the
    /// post-delta database. Cached artifacts whose variables are disjoint
    /// from the delta survive, so the next queries over untouched tables stay
    /// warm (see [`Engine::apply_delta`]).
    ///
    /// With a [`ServeConfig::snapshot_dir`], the delta is appended to the
    /// tenant's write-ahead log **before** it is applied: under
    /// [`Durability::Always`] an `Ok` here means the write is on stable
    /// storage and survives any crash; under [`Durability::Batch`] it is
    /// logged but only fsynced at the next snapshot pass or shutdown. An
    /// append failure refuses the delta atomically ([`ServeError::Engine`]
    /// wrapping [`pvc_db::Error::Wal`]) without touching the database.
    pub fn apply_delta(&self, tenant: &str, delta: Delta) -> Result<DeltaStats, ServeError> {
        let tenant_state = self
            .shared
            .tenants
            .get(tenant)
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        let mut engine = tenant_state.engine.lock().expect("tenant engine poisoned");
        // Sound for the same reason as compaction: dispatch increments
        // in-flight while holding the engine lock, so under this lock zero
        // means no stream's workers can be touching the artifact store.
        let in_flight = tenant_state.in_flight.load(Ordering::SeqCst);
        if in_flight > 0 {
            return Err(ServeError::TenantBusy { in_flight });
        }
        let stats = engine.apply_delta(delta)?;
        self.shared.counters.deltas.fetch_add(1, Ordering::Relaxed);
        Ok(stats)
    }

    /// Cache statistics of one tenant's engine.
    pub fn cache_stats(&self, tenant: &str) -> Result<CacheStats, ServeError> {
        self.shared
            .tenants
            .get(tenant)
            .map(|t| {
                t.engine
                    .lock()
                    .expect("tenant engine poisoned")
                    .cache_stats()
            })
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    /// What crash recovery found for one tenant at start: whether the
    /// snapshot restored, how many logged deltas replayed, and how many torn
    /// bytes the write-ahead-log open truncated. All-default when the server
    /// runs without a [`ServeConfig::snapshot_dir`].
    pub fn recovery_report(&self, tenant: &str) -> Result<RecoveryReport, ServeError> {
        self.shared
            .tenants
            .get(tenant)
            .map(|t| t.recovery.clone())
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    /// The most recent compaction of one tenant's artifact store, if any.
    pub fn last_compaction(&self, tenant: &str) -> Result<Option<CompactionStats>, ServeError> {
        self.shared
            .tenants
            .get(tenant)
            .map(|t| *t.last_compaction.lock().expect("compaction stats poisoned"))
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    /// Snapshot every tenant now (atomic per tenant), returning how many were
    /// written. Requires [`ServeConfig::snapshot_dir`].
    pub fn snapshot_now(&self) -> Result<usize, ServeError> {
        if self.shared.config.snapshot_dir.is_none() {
            return Err(ServeError::Runtime(
                "snapshotting is disabled (no snapshot_dir configured)".to_string(),
            ));
        }
        Ok(snapshot_all(&self.shared))
    }

    /// Shut down: stop accepting requests, let the scheduler drain what was
    /// already admitted, stop the snapshot thread (after one final save), join
    /// both, and release the worker pool. Returns the final counters.
    ///
    /// Releasing the pool waits for the jobs of still-live [`ResultStream`]s;
    /// drain or drop outstanding streams before calling this, or shutdown
    /// blocks until their consumers do.
    pub fn shutdown(mut self) -> ServerStats {
        shutdown_threads(&self.shared);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.snapshotter.take() {
            let _ = handle.join();
        }
        if self.shared.config.snapshot_dir.is_some() {
            // One final save so a clean shutdown restarts maximally warm.
            snapshot_all(&self.shared);
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        shutdown_threads(&self.shared);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.snapshotter.take() {
            let _ = handle.join();
        }
    }
}

/// The per-tenant snapshot file, when snapshotting is configured.
fn snapshot_path(config: &ServeConfig, tenant: &str) -> Option<PathBuf> {
    config
        .snapshot_dir
        .as_ref()
        .map(|dir| dir.join(format!("{tenant}.snap")))
}

/// The per-tenant write-ahead log, when durability is configured.
fn wal_path(config: &ServeConfig, tenant: &str) -> Option<PathBuf> {
    config
        .snapshot_dir
        .as_ref()
        .map(|dir| dir.join(format!("{tenant}.wal")))
}

/// Flag both background threads to stop and wake them.
fn shutdown_threads(shared: &ServerShared) {
    {
        let mut queue = shared.queue.lock().expect("submit queue poisoned");
        queue.shutdown = true;
    }
    shared.work_ready.notify_all();
    {
        let mut stop = shared
            .snapshot_stop
            .lock()
            .expect("snapshot control poisoned");
        *stop = true;
    }
    shared.snapshot_wake.notify_all();
}

/// The scheduler: drain batches off the submission queue, sort each for cache
/// locality, dispatch every request onto the pool, compact between batches.
/// Exits once the queue is empty *and* shutdown was requested (admitted
/// requests are always served).
fn scheduler_loop(shared: &ServerShared) {
    loop {
        let mut batch: Vec<Request> = {
            let mut queue = shared.queue.lock().expect("submit queue poisoned");
            loop {
                if !queue.pending.is_empty() {
                    let take = queue.pending.len().min(shared.config.batch_max);
                    break queue.pending.drain(..take).collect();
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .expect("submit queue poisoned");
            }
        };
        // Between batches and *before* dispatching the next one is the point
        // most likely to find tenants idle (clients have drained the previous
        // wave): run every compaction that has come due.
        compact_due_tenants(shared);
        // Cross-query batch scheduling: a stable sort groups requests by
        // tenant and structural key, so repeated/structurally-equal queries
        // run back-to-back and hit the interner & artifact caches while hot.
        // Within one group the original submission order is preserved.
        serve_metrics().batch_size.record(batch.len() as u64);
        batch.sort_by_cached_key(|r| (r.tenant.clone(), r.query.structural_key()));
        for request in batch {
            dispatch(shared, request);
        }
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        for tenant in shared.tenants.values() {
            tenant
                .batches_since_compaction
                .fetch_add(1, Ordering::Relaxed);
        }
        // A second chance right after the batch: catches tenants whose
        // streams were already dropped (e.g. abandoned tickets).
        compact_due_tenants(shared);
    }
}

/// Execute one request on its tenant's engine and hand the stream back.
fn dispatch(shared: &ServerShared, request: Request) {
    let tenant = shared
        .tenants
        .get(&request.tenant)
        .expect("tenant validated at submit");
    let mut options = EvalOptions::default()
        .with_threads(shared.config.threads)
        .with_pool(Arc::clone(&shared.pool));
    if let Some(budget) = shared.config.compile_budget {
        options = options.with_node_budget(budget);
    }
    let engine = tenant.engine.lock().expect("tenant engine poisoned");
    let outcome = engine
        .prepare(&request.query)
        .and_then(|prepared| prepared.execute_streaming(&options));
    match outcome {
        Ok(stream) => {
            // Increment in-flight *before* releasing the engine lock:
            // `Server::apply_delta` checks idleness under the same lock, so a
            // just-dispatched stream can never be missed by its gate.
            tenant.in_flight.fetch_add(1, Ordering::SeqCst);
            drop(engine);
            let stream = ResultStream {
                inner: stream,
                _in_flight: InFlightGuard(Arc::clone(&tenant.in_flight)),
            };
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            // A send error means the submitter dropped the ticket: dropping
            // the stream here cancels its pool jobs and releases the guard.
            let _ = request.reply.send(Ok(stream));
        }
        Err(e) => {
            shared
                .counters
                .engine_errors
                .fetch_add(1, Ordering::Relaxed);
            let _ = request.reply.send(Err(ServeError::Engine(e)));
        }
    }
}

/// Compact every tenant whose compaction is due **and** whose streams have all
/// quiesced. Busy tenants are skipped (not blocked on): their compaction stays
/// due and runs at the next between-batch point that finds them idle. Sound
/// because only this scheduler thread dispatches — `in_flight == 0` here means
/// no evaluation can touch the store until the next `dispatch`.
fn compact_due_tenants(shared: &ServerShared) {
    let every = shared.config.compact_every;
    if every == 0 {
        return;
    }
    for tenant in shared.tenants.values() {
        if tenant.batches_since_compaction.load(Ordering::Relaxed) >= every
            && tenant.in_flight.load(Ordering::SeqCst) == 0
        {
            let stats = tenant
                .engine
                .lock()
                .expect("tenant engine poisoned")
                .compact_artifacts();
            *tenant
                .last_compaction
                .lock()
                .expect("compaction stats poisoned") = Some(stats);
            tenant.batches_since_compaction.store(0, Ordering::Relaxed);
            shared.counters.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Base backoff between snapshot retry attempts (doubled per retry, capped).
const SNAPSHOT_BACKOFF_BASE: Duration = Duration::from_millis(25);
const SNAPSHOT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Save one tenant's snapshot with retry-and-backoff, rotating its
/// write-ahead log past the snapshotted high-water mark on success. Every
/// failed attempt counts in `snapshot_failures`; the engine lock is released
/// between attempts so serving continues while this backs off.
fn snapshot_tenant(shared: &ServerShared, tenant: &Tenant, path: &std::path::Path) -> bool {
    let mut backoff = SNAPSHOT_BACKOFF_BASE;
    for attempt in 0..=shared.config.snapshot_retries {
        let saved = {
            let mut engine = tenant.engine.lock().expect("tenant engine poisoned");
            // Flush pending Batch-durability appends first: the snapshot's
            // high-water mark must never be ahead of the durable log.
            engine
                .sync_wal()
                .and_then(|_| {
                    engine.save_artifacts_with(shared.config.storage.as_ref(), path)?;
                    Ok(engine.wal_high_water())
                })
                .map(|hwm| {
                    // The snapshot at `path` now durably covers every record
                    // up to `hwm`: drop them from the log. A rotation failure
                    // (or a crash mid-rotation) only leaves the log longer
                    // than needed — replay filters on the high-water mark, so
                    // it stays idempotent.
                    if let Some(wal) = engine.wal_mut() {
                        let _ = wal.rotate(hwm);
                    }
                })
        };
        match saved {
            Ok(()) => return true,
            Err(_) => {
                shared
                    .counters
                    .snapshot_failures
                    .fetch_add(1, Ordering::Relaxed);
                serve_metrics().snapshot_failures.inc();
                if attempt < shared.config.snapshot_retries {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(SNAPSHOT_BACKOFF_CAP);
                }
            }
        }
    }
    false
}

/// Write one snapshot per tenant (each atomic: temp file + rename, with
/// retries — see [`snapshot_tenant`]), returning how many succeeded. A tenant
/// whose save keeps failing leaves its previous snapshot intact and degrades
/// to WAL-only durability until the next pass: the server keeps serving, with
/// `persist.degraded` set to 1 so operators can see the state.
fn snapshot_all(shared: &ServerShared) -> usize {
    let mut written = 0usize;
    let mut failed = 0usize;
    for (name, tenant) in &shared.tenants {
        let Some(path) = snapshot_path(&shared.config, name) else {
            continue;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if snapshot_tenant(shared, tenant, &path) {
            written += 1;
            shared.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        } else {
            failed += 1;
        }
    }
    let degraded = failed > 0;
    shared
        .counters
        .degraded
        .store(degraded as u64, Ordering::Relaxed);
    serve_metrics().degraded.set(degraded as u64);
    written
}

/// The background snapshot thread: save every tenant each interval, promptly
/// interruptible by shutdown.
fn snapshot_loop(shared: &ServerShared) {
    let mut stop = shared
        .snapshot_stop
        .lock()
        .expect("snapshot control poisoned");
    loop {
        if *stop {
            return;
        }
        let (guard, _) = shared
            .snapshot_wake
            .wait_timeout(stop, shared.config.snapshot_interval)
            .expect("snapshot control poisoned");
        stop = guard;
        if *stop {
            // The final save belongs to `shutdown` (after the scheduler has
            // drained), not to this thread racing it.
            return;
        }
        drop(stop);
        snapshot_all(shared);
        stop = shared
            .snapshot_stop
            .lock()
            .expect("snapshot control poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_request() -> Request {
        let (reply, _receiver) = std::sync::mpsc::sync_channel(1);
        Request {
            tenant: "t".to_string(),
            query: Query::table("S"),
            reply,
        }
    }

    #[test]
    fn admission_policy_is_deterministic() {
        let mut queue = SubmitQueue::default();
        // Exactly `limit` requests are admitted; the next is rejected with the
        // observed depth, deterministically.
        for i in 0..3 {
            assert!(admit(&mut queue, 3, dummy_request()).is_ok(), "request {i}");
        }
        match admit(&mut queue, 3, dummy_request()) {
            Err(ServeError::Overloaded { queued, limit }) => {
                assert_eq!((queued, limit), (3, 3));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Draining one slot re-admits exactly one request.
        queue.pending.pop_front();
        assert!(admit(&mut queue, 3, dummy_request()).is_ok());
        assert!(matches!(
            admit(&mut queue, 3, dummy_request()),
            Err(ServeError::Overloaded { .. })
        ));
        // Shutdown beats fullness.
        queue.shutdown = true;
        assert!(matches!(
            admit(&mut queue, 3, dummy_request()),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn ticket_wait_timeout_returns_typed_errors() {
        // Nobody ever replies: the wait must come back as a typed Timeout
        // carrying the bound it honoured, not block or panic.
        let (reply, receiver) = std::sync::mpsc::sync_channel(1);
        let ticket = Ticket { receiver };
        let bound = Duration::from_millis(10);
        match ticket.wait_timeout(bound) {
            Err(ServeError::Timeout { waited }) => assert_eq!(waited, bound),
            other => panic!("expected Timeout, got {other:?}"),
        }
        drop(reply);

        // A dropped reply half (server tore down the queue) is ShuttingDown,
        // distinguishable from expiry.
        let (reply, receiver) =
            std::sync::mpsc::sync_channel::<Result<ResultStream, ServeError>>(1);
        drop(reply);
        let ticket = Ticket { receiver };
        assert!(matches!(
            ticket.wait_timeout(Duration::from_secs(1)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn depth_zero_rejects_everything() {
        let mut queue = SubmitQueue::default();
        match admit(&mut queue, 0, dummy_request()) {
            Err(ServeError::Overloaded { queued, limit }) => {
                assert_eq!((queued, limit), (0, 0));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
}
