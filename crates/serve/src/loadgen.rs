//! The `pvc-load` generator: a deterministic, closed-loop, mixed workload
//! driven against a [`Server`], measuring what the serving
//! layer is for — **sustained QPS and tail latency**, not one fast query.
//!
//! `clients` threads each submit `requests_per_client` queries (drawn
//! round-robin from a fixed mix of tractable projections, hierarchical
//! aggregates and union renderings, across `tenants` tenants), fully drain
//! every result stream, and record the submit-to-drained latency. The report
//! carries throughput, p50/p99, and the server's own counters, and serialises
//! to the same JSON dialect as the bench baselines (see `experiment_serve` in
//! `BENCH_baseline.json`).

use crate::{ServeConfig, ServeError, Server, ServerStats};
use pvc_algebra::{AggOp, CmpOp};
use pvc_db::{AggSpec, Database, Predicate, Query, Schema};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one load run. Deterministic: the same config produces the
/// same databases, the same query sequence and the same server answers
/// (timings, of course, vary).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of tenants, each with its own database and artifact store.
    pub tenants: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests each client submits (total = `clients × requests_per_client`).
    pub requests_per_client: usize,
    /// Workload database scale: number of shops.
    pub shops: usize,
    /// Workload database scale: listings per shop.
    pub per_shop: usize,
    /// Per-request dispatch timeout: `Some(t)` waits on each ticket with
    /// [`crate::Ticket::wait_timeout`] and counts an expiry as a timeout
    /// (the request is abandoned, not retried); `None` waits unboundedly.
    pub timeout: Option<Duration>,
    /// Server configuration (pool width, queue depth, compaction epoch, …).
    pub serve: ServeConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            tenants: 2,
            clients: 4,
            requests_per_client: 50,
            shops: 24,
            per_shop: 3,
            timeout: None,
            serve: ServeConfig::default().with_compact_every(4),
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted (including rejected ones).
    pub requests: u64,
    /// Requests fully served and drained.
    pub completed: u64,
    /// Requests rejected by admission control (each was retried).
    pub rejected: u64,
    /// Requests that failed in the engine.
    pub errors: u64,
    /// Requests abandoned because [`LoadConfig::timeout`] expired before
    /// dispatch (always 0 without a timeout).
    pub timeouts: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_s: f64,
    /// Completed requests per second, sustained over the whole run.
    pub qps: f64,
    /// Median submit-to-drained latency in seconds.
    pub p50_s: f64,
    /// 99th-percentile submit-to-drained latency in seconds.
    pub p99_s: f64,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Worst observed latency in seconds.
    pub max_s: f64,
    /// The server's final counters.
    pub server: ServerStats,
}

impl LoadReport {
    /// Serialise in the bench-baseline JSON dialect.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\": {}, \"completed\": {}, \"rejected\": {}, \"errors\": {}, ",
                "\"timeouts\": {}, ",
                "\"elapsed_s\": {:.6}, \"qps\": {:.3}, \"p50_s\": {:.6}, \"p99_s\": {:.6}, ",
                "\"mean_s\": {:.6}, \"max_s\": {:.6}, \"batches\": {}, \"compactions\": {}, ",
                "\"snapshots\": {}, \"pool_threads\": {}, \"pool_executed_jobs\": {}}}"
            ),
            self.requests,
            self.completed,
            self.rejected,
            self.errors,
            self.timeouts,
            self.elapsed_s,
            self.qps,
            self.p50_s,
            self.p99_s,
            self.mean_s,
            self.max_s,
            self.server.batches,
            self.server.compactions,
            self.server.snapshots,
            self.server.pool_threads,
            self.server.pool_executed_jobs,
        )
    }
}

/// The deterministic workload database: the paper's running-example shape
/// (shops, listings, two product tables) scaled by `shops × per_shop`.
pub fn workload_db(shops: usize, per_shop: usize) -> Database {
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    let num_products = (shops * per_shop / 2).max(1);
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for i in 0..shops {
            s.push_independent(
                vec![(i as i64).into(), format!("shop{i}").as_str().into()],
                0.6,
                vars,
            );
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for i in 0..shops {
            for j in 0..per_shop {
                let pid = (i * 31 + j * 7) % num_products;
                let price = 10 + ((i * 13 + j * 29) % 90) as i64;
                ps.push_independent(
                    vec![(i as i64).into(), (pid as i64).into(), price.into()],
                    0.5,
                    vars,
                );
            }
        }
    }
    for table in ["P1", "P2"] {
        let (p, vars) = db.table_and_vars_mut(table).unwrap();
        for pid in 0..num_products {
            p.push_independent(
                vec![(pid as i64).into(), ((pid % 17) as i64).into()],
                0.7,
                vars,
            );
        }
    }
    db
}

/// The fixed query mix: tractable fast-path projections, a hierarchical
/// aggregate, both renderings of a union (exercising cross-query cache hits),
/// and the paper's Q2 shape (join + union + aggregate + having).
pub fn query_mix() -> Vec<Query> {
    let q2 = |swapped: bool| {
        let products = if swapped {
            Query::table("P2").union(Query::table("P1"))
        } else {
            Query::table("P1").union(Query::table("P2"))
        };
        Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .join(
                products.rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
                &[("ps_pid", "p_pid")],
            )
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
            .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 60))
            .project(["shop"])
    };
    vec![
        Query::table("S").project(["shop"]),
        Query::table("PS").project(["ps_pid"]),
        Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]),
        Query::table("P1")
            .union(Query::table("P2"))
            .project(["pid"]),
        Query::table("P2")
            .union(Query::table("P1"))
            .project(["pid"]),
        q2(false),
        q2(true),
    ]
}

/// Nearest-rank percentile of an **ascending** latency sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the closed-loop load against a freshly started server and report
/// sustained QPS and latency percentiles.
pub fn run(config: &LoadConfig) -> Result<LoadReport, ServeError> {
    run_inner(config, false).map(|(report, _)| report)
}

/// Like [`run`], additionally capturing [`Server::metrics_snapshot`] right
/// before the server shuts down (the snapshot JSON reflects the whole run).
/// Enable the registry first ([`pvc_core::obs::set_metrics_enabled`]) or the
/// metrics section will be all zeros.
pub fn run_with_metrics(config: &LoadConfig) -> Result<(LoadReport, String), ServeError> {
    run_inner(config, true).map(|(report, metrics)| (report, metrics.unwrap_or_default()))
}

fn run_inner(
    config: &LoadConfig,
    capture_metrics: bool,
) -> Result<(LoadReport, Option<String>), ServeError> {
    let tenants: Vec<(String, Database)> = (0..config.tenants.max(1))
        .map(|t| (format!("t{t}"), workload_db(config.shops, config.per_shop)))
        .collect();
    let tenant_names: Arc<Vec<String>> =
        Arc::new(tenants.iter().map(|(name, _)| name.clone()).collect());
    let server = Arc::new(Server::start(tenants, config.serve.clone())?);
    let mix = Arc::new(query_mix());

    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.clients);
    for client in 0..config.clients.max(1) {
        let server = Arc::clone(&server);
        let mix = Arc::clone(&mix);
        let tenant_names = Arc::clone(&tenant_names);
        let requests = config.requests_per_client;
        let timeout = config.timeout;
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(requests);
            let mut rejected = 0u64;
            let mut errors = 0u64;
            let mut timeouts = 0u64;
            for i in 0..requests {
                let query = mix[(client * 3 + i) % mix.len()].clone();
                let tenant = &tenant_names[(client + i) % tenant_names.len()];
                let begin = Instant::now();
                // Closed loop with bounded retry: a rejection backs off and
                // resubmits, so the configured work always completes and the
                // rejection count measures the admission pressure.
                let stream = loop {
                    match server.submit(tenant, query.clone()) {
                        Ok(ticket) => {
                            let waited = match timeout {
                                Some(t) => ticket.wait_timeout(t),
                                None => ticket.wait(),
                            };
                            match waited {
                                Ok(stream) => break Some(stream),
                                Err(ServeError::Timeout { .. }) => {
                                    timeouts += 1;
                                    break None;
                                }
                                Err(_) => {
                                    errors += 1;
                                    break None;
                                }
                            }
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            rejected += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(_) => {
                            errors += 1;
                            break None;
                        }
                    }
                };
                if let Some(stream) = stream {
                    let mut ok = true;
                    for tuple in stream {
                        if tuple.is_err() {
                            ok = false;
                        }
                    }
                    if ok {
                        latencies.push(begin.elapsed().as_secs_f64());
                    } else {
                        errors += 1;
                    }
                }
            }
            (latencies, rejected, errors, timeouts)
        }));
    }

    let mut latencies = Vec::new();
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut timeouts = 0u64;
    for handle in handles {
        let (client_latencies, client_rejected, client_errors, client_timeouts) =
            handle.join().expect("load client panicked");
        latencies.extend(client_latencies);
        rejected += client_rejected;
        errors += client_errors;
        timeouts += client_timeouts;
    }
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let server = Arc::try_unwrap(server).expect("load clients have exited");
    // Capture before shutdown: the snapshot sees the final queue high-water
    // marks and per-tenant admission counts of this run.
    let metrics = capture_metrics.then(|| server.metrics_snapshot());
    let stats = server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies.len() as u64;
    let mean_s = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let report = LoadReport {
        requests: (config.clients.max(1) * config.requests_per_client) as u64,
        completed,
        rejected,
        errors,
        timeouts,
        elapsed_s,
        qps: completed as f64 / elapsed_s,
        p50_s: percentile(&latencies, 0.50),
        p99_s: percentile(&latencies, 0.99),
        mean_s,
        max_s: latencies.last().copied().unwrap_or(0.0),
        server: stats,
    };
    Ok((report, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(percentile(&sample, 0.50), 0.3);
        assert_eq!(percentile(&sample, 0.99), 0.5);
        assert_eq!(percentile(&sample, 0.01), 0.1);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn query_mix_is_valid_against_the_workload_db() {
        let db = workload_db(4, 2);
        let engine = pvc_db::Engine::new(db);
        for query in query_mix() {
            let prepared = engine.prepare(&query).expect("mix query must validate");
            let result = prepared
                .execute(&pvc_db::EvalOptions::default())
                .expect("mix query must execute");
            assert!(!result.columns.is_empty());
        }
    }

    #[test]
    fn small_load_run_completes_with_zero_rejections_at_default_depth() {
        let config = LoadConfig {
            tenants: 1,
            clients: 2,
            requests_per_client: 4,
            shops: 4,
            per_shop: 2,
            timeout: Some(Duration::from_secs(60)),
            serve: ServeConfig::default().with_threads(2).with_compact_every(1),
        };
        let report = run(&config).unwrap();
        assert_eq!(report.completed, report.requests);
        assert_eq!(report.errors, 0);
        // 2 clients against depth 64: admission control must never trip.
        assert_eq!(report.rejected, 0);
        assert!(report.qps > 0.0);
        assert!(report.p99_s >= report.p50_s);
        assert!(report.server.pool_executed_jobs > 0);
    }
}
