//! End-to-end tests of the serving runtime: correctness against the plain
//! engine, admission control, bounded compaction across generations, and the
//! crash/warm-restart story around atomic snapshots.

use pvc_core::{CacheConfig, Durability, FaultConfig, FaultyStorage, Storage};
use pvc_db::{Delta, Engine, EvalOptions, Query, Value};
use pvc_serve::loadgen::{query_mix, workload_db};
use pvc_serve::{ServeConfig, ServeError, Server};
use std::sync::Arc;
use std::time::Duration;

fn quick_config() -> ServeConfig {
    ServeConfig::default().with_threads(2).with_compact_every(1)
}

/// A scratch directory unique to one test, cleaned before use.
fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pvc-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn served_results_are_bit_identical_to_direct_execution() {
    let server = Server::start(vec![("t0".into(), workload_db(6, 2))], quick_config()).unwrap();
    let reference_engine = Engine::new(workload_db(6, 2));
    for query in query_mix() {
        let reference = reference_engine
            .prepare(&query)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stream = server.submit("t0", query).unwrap().wait().unwrap();
        assert_eq!(stream.total_tuples(), reference.tuples.len());
        assert_eq!(stream.columns(), &reference.columns[..]);
        let served: Vec<_> = stream.collect::<Result<_, _>>().unwrap();
        for (s, r) in served.iter().zip(&reference.tuples) {
            assert_eq!(s.values, r.values);
            assert_eq!(s.confidence.to_bits(), r.confidence.to_bits());
            assert_eq!(s.aggregate_distributions, r.aggregate_distributions);
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, query_mix().len() as u64);
    assert_eq!(stats.engine_errors, 0);
    assert!(stats.pool_executed_jobs > 0, "work must run on the pool");
}

#[test]
fn unknown_tenant_and_overload_return_typed_errors() {
    let server = Server::start(
        vec![("t0".into(), workload_db(2, 1))],
        quick_config().with_queue_depth(0),
    )
    .unwrap();
    let query = Query::table("S").project(["shop"]);
    match server.submit("nobody", query.clone()) {
        Err(ServeError::UnknownTenant(name)) => assert_eq!(name, "nobody"),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    // Depth 0 rejects deterministically, every time.
    for _ in 0..5 {
        match server.submit("t0", query.clone()) {
            Err(ServeError::Overloaded { queued, limit }) => {
                assert_eq!((queued, limit), (0, 0));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(server.stats().rejected, 5);
    server.shutdown();
}

#[test]
fn engine_errors_are_delivered_through_the_ticket() {
    let server = Server::start(vec![("t0".into(), workload_db(2, 1))], quick_config()).unwrap();
    let err = server
        .submit("t0", Query::table("missing"))
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServeError::Engine(_)), "got {err:?}");
    // The server keeps serving afterwards.
    let stream = server
        .submit("t0", Query::table("S").project(["shop"]))
        .unwrap()
        .wait()
        .unwrap();
    assert!(stream.count() > 0);
    let stats = server.shutdown();
    assert_eq!(stats.engine_errors, 1);
}

#[test]
fn compaction_keeps_artifacts_bounded_across_generations() {
    // Tiny cache bounds + compact after every batch: evictions constantly
    // leave dead interner nodes behind, and compaction must keep retiring
    // them rather than letting the arena grow monotonically.
    let config = quick_config()
        .with_cache(CacheConfig {
            max_entries: 8,
            max_bytes: usize::MAX,
        })
        .with_compact_every(1);
    let server = Server::start(vec![("t0".into(), workload_db(10, 3))], config).unwrap();
    let mix = query_mix();
    let mut interned_after = Vec::new();
    let mut waves = 0u64;
    // Run enough waves to observe two full cycles of the 7-query workload
    // through the compactor.
    while interned_after.len() < 16 && waves < 120 {
        waves += 1;
        let query = mix[(waves as usize) % mix.len()].clone();
        let stream = server.submit("t0", query).unwrap().wait().unwrap();
        // Drain and *drop* the stream so the tenant is idle at the next
        // between-batch compaction check.
        let _ = stream.collect::<Result<Vec<_>, _>>().unwrap();
        // Allow the scheduler to reach its end-of-batch compaction point.
        for _ in 0..100 {
            if let Some(stats) = server.last_compaction("t0").unwrap() {
                if stats.generation > interned_after.len() as u64 {
                    interned_after.push(stats.interned_after);
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let stats = server
        .last_compaction("t0")
        .unwrap()
        .expect("at least one compaction must have run");
    assert!(
        stats.generation >= 3,
        "expected ≥3 generations, got {stats:?}"
    );
    // Bounded: the post-compaction arena size oscillates with the workload
    // phase (different queries keep different expressions live), but it must
    // not *trend* upward — the later generations' peak stays within a small
    // factor of the earlier generations' peak instead of growing with every
    // wave served.
    assert!(
        interned_after.len() >= 8,
        "not enough compaction generations observed: {interned_after:?}"
    );
    let (early, late) = interned_after.split_at(interned_after.len() / 2);
    let early_peak = *early.iter().max().unwrap() as f64;
    let late_peak = *late.iter().max().unwrap() as f64;
    assert!(
        late_peak <= (early_peak * 1.25).max(64.0),
        "arena grew unbounded across generations: {interned_after:?}"
    );
    server.shutdown();
}

#[test]
fn kill_during_snapshot_restarts_warm_from_last_complete_snapshot() {
    let dir = scratch_dir("kill-snap");
    let config = quick_config()
        .with_snapshot_dir(&dir)
        .with_snapshot_interval(Duration::from_secs(3600)); // only explicit saves
    let query = Query::table("S").project(["shop"]);

    // First "process": serve traffic, snapshot, shut down.
    {
        let server = Server::start(vec![("t0".into(), workload_db(6, 2))], config.clone()).unwrap();
        let stream = server.submit("t0", query.clone()).unwrap().wait().unwrap();
        let _ = stream.collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(server.snapshot_now().unwrap(), 1);
        server.shutdown();
    }
    let snap = dir.join("t0.snap");
    assert!(snap.exists(), "snapshot must be on disk");
    let complete = std::fs::read(&snap).unwrap();

    // Simulate a crash *mid-save*: the atomic writer stages into a sibling
    // temp file and renames, so a kill leaves the last complete snapshot
    // intact next to a torn temp file — never a torn `.snap`.
    std::fs::write(
        dir.join("t0.snap.tmp.99999"),
        &complete[..complete.len() / 3],
    )
    .unwrap();

    // Second "process": restarts warm from the intact snapshot.
    {
        let server = Server::start(vec![("t0".into(), workload_db(6, 2))], config.clone()).unwrap();
        let stream = server.submit("t0", query.clone()).unwrap().wait().unwrap();
        let tuples: Vec<_> = stream.collect::<Result<_, _>>().unwrap();
        assert!(!tuples.is_empty());
        let cache = server.cache_stats("t0").unwrap();
        assert_eq!(
            cache.misses, 0,
            "a warm restart must answer the repeated query from the snapshot: {cache:?}"
        );
        assert!(cache.hits > 0);
        server.shutdown();
    }

    // A *torn final file* (pre-atomic-writer failure mode) must degrade to a
    // cold start, not a dead server.
    std::fs::write(&snap, &complete[..complete.len() / 2]).unwrap();
    {
        let server = Server::start(vec![("t0".into(), workload_db(6, 2))], config).unwrap();
        let stream = server.submit("t0", query).unwrap().wait().unwrap();
        assert!(stream.count() > 0);
        let cache = server.cache_stats("t0").unwrap();
        assert!(cache.misses > 0, "torn snapshot must start cold: {cache:?}");
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_snapshot_thread_writes_periodically() {
    let dir = scratch_dir("periodic-snap");
    let config = quick_config()
        .with_snapshot_dir(&dir)
        .with_snapshot_interval(Duration::from_millis(20));
    let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config).unwrap();
    let stream = server
        .submit("t0", Query::table("S").project(["shop"]))
        .unwrap()
        .wait()
        .unwrap();
    let _ = stream.collect::<Result<Vec<_>, _>>().unwrap();
    // Within a generous window the background thread must have saved at least
    // once (interval 20ms).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().snapshots == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.stats().snapshots > 0,
        "background snapshot never ran"
    );
    assert!(dir.join("t0.snap").exists());
    let stats = server.shutdown();
    assert_eq!(stats.snapshot_failures, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn apply_delta_takes_writes_between_batches_and_keeps_other_tables_warm() {
    let server = Server::start(vec![("t0".into(), workload_db(4, 2))], quick_config()).unwrap();
    let q_s = Query::table("S").project(["shop"]);
    let q_p = Query::table("P1").project(["pid"]);
    // Warm both queries.
    let s_count = server
        .submit("t0", q_s.clone())
        .unwrap()
        .wait()
        .unwrap()
        .count();
    let _ = server
        .submit("t0", q_p.clone())
        .unwrap()
        .wait()
        .unwrap()
        .count();

    // A held (un-drained) stream makes the tenant busy: the write is rejected
    // without touching anything.
    let held = server.submit("t0", q_s.clone()).unwrap().wait().unwrap();
    let delta = Delta::new().insert("P1", vec![999i64.into(), 1i64.into()], 0.7);
    match server.apply_delta("t0", delta.clone()) {
        Err(ServeError::TenantBusy { in_flight }) => assert_eq!(in_flight, 1),
        other => panic!("expected TenantBusy, got {other:?}"),
    }
    // Dropping the stream quiesces its workers and releases the in-flight
    // guard; the retry then succeeds.
    drop(held);
    let stats = server.apply_delta("t0", delta).unwrap();
    assert_eq!(stats.inserted, 1);

    // The repeated query over the *untouched* table answers with zero new
    // compilations.
    let misses_before = server.cache_stats("t0").unwrap().misses;
    let s_tuples = server
        .submit("t0", q_s.clone())
        .unwrap()
        .wait()
        .unwrap()
        .count();
    assert_eq!(s_tuples, s_count);
    let cache = server.cache_stats("t0").unwrap();
    assert_eq!(
        cache.misses, misses_before,
        "query over untouched table must stay warm after the delta: {cache:?}"
    );

    // The mutated table recomputes and sees the inserted row.
    let p_tuples: Vec<_> = server
        .submit("t0", q_p)
        .unwrap()
        .wait()
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    assert!(p_tuples.iter().any(|t| t.values[0] == Value::from(999i64)));

    // Unknown tenants are a typed error, and the delta counter advanced once.
    assert!(matches!(
        server.apply_delta("nobody", Delta::new()),
        Err(ServeError::UnknownTenant(_))
    ));
    let stats = server.shutdown();
    assert_eq!(stats.deltas, 1);
}

/// Reference confidences for `query` on `db` after applying `deltas`, as raw
/// bits so comparisons are exact.
fn reference_bits(db: pvc_db::Database, deltas: &[Delta], query: &Query) -> Vec<(Vec<Value>, u64)> {
    let mut engine = Engine::new(db);
    for delta in deltas {
        engine.apply_delta(delta.clone()).unwrap();
    }
    engine
        .prepare(query)
        .unwrap()
        .execute(&EvalOptions::default())
        .unwrap()
        .tuples
        .iter()
        .map(|t| (t.values.clone(), t.confidence.to_bits()))
        .collect()
}

/// Served confidences for `query`, as raw bits.
fn served_bits(server: &Server, query: &Query) -> Vec<(Vec<Value>, u64)> {
    server
        .submit("t0", query.clone())
        .unwrap()
        .wait()
        .unwrap()
        .map(|t| t.map(|t| (t.values, t.confidence.to_bits())))
        .collect::<Result<_, _>>()
        .unwrap()
}

#[test]
fn startup_sweeps_stale_temp_litter() {
    let dir = scratch_dir("sweep-litter");
    // Litter as left by predecessors killed mid-publish (any pid, snapshots
    // and WALs alike); a non-temp file must survive the sweep.
    std::fs::write(dir.join("t0.snap.tmp.4242"), b"torn snapshot half").unwrap();
    std::fs::write(dir.join("t0.wal.tmp.777"), b"stray").unwrap();
    std::fs::write(dir.join("README"), b"not litter").unwrap();
    let config = quick_config()
        .with_snapshot_dir(&dir)
        .with_snapshot_interval(Duration::from_secs(3600));
    let server = Server::start(vec![("t0".into(), workload_db(2, 1))], config).unwrap();
    assert_eq!(server.stats().swept_temps, 2);
    assert!(!dir.join("t0.snap.tmp.4242").exists());
    assert!(!dir.join("t0.wal.tmp.777").exists());
    assert!(dir.join("README").exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acknowledged_deltas_survive_an_unclean_restart() {
    let dir = scratch_dir("wal-restart");
    let config = quick_config()
        .with_snapshot_dir(&dir)
        .with_snapshot_interval(Duration::from_secs(3600)) // only explicit saves
        .with_durability(Durability::Always);
    let query = Query::table("P1").project(["pid", "weight"]);
    let deltas = vec![
        Delta::new().insert("P1", vec![901i64.into(), 1i64.into()], 0.7),
        Delta::new().insert("P1", vec![902i64.into(), 2i64.into()], 0.4),
        Delta::new().set_probability("P1", 0, 0.9),
    ];
    let reference = reference_bits(workload_db(4, 2), &deltas, &query);

    // First "process": acknowledge three deltas, then die without shutdown —
    // no final snapshot, no WAL rotation. Under Durability::Always the log is
    // the only durable record.
    {
        let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config.clone()).unwrap();
        for delta in &deltas {
            server.apply_delta("t0", delta.clone()).unwrap();
        }
        drop(server); // crash: Drop joins threads but persists nothing
    }
    assert!(!dir.join("t0.snap").exists(), "no snapshot must exist yet");

    // Second "process": replay rebuilds every acknowledged delta,
    // bit-identically.
    {
        let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config.clone()).unwrap();
        let report = server.recovery_report("t0").unwrap();
        assert!(!report.snapshot_restored);
        assert_eq!(report.wal_replayed, 3);
        assert_eq!(server.stats().wal_replayed, 3);
        assert_eq!(served_bits(&server, &query), reference);
        // Clean shutdown: final snapshot + WAL rotation.
        server.shutdown();
    }
    assert!(dir.join("t0.snap").exists());

    // Third "process": the snapshot now carries the deltas (its embedded
    // journal re-derives them from the base database); nothing replays from
    // the rotated log, and results are still bit-identical.
    {
        let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config).unwrap();
        let report = server.recovery_report("t0").unwrap();
        assert!(
            report.snapshot_restored,
            "post-delta snapshot must restore against the base db: {report:?}"
        );
        assert_eq!(report.wal_replayed, 0);
        assert_eq!(served_bits(&server, &query), reference);
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_drops_only_the_unacknowledged_record() {
    let dir = scratch_dir("wal-torn");
    let config = quick_config()
        .with_snapshot_dir(&dir)
        .with_snapshot_interval(Duration::from_secs(3600))
        .with_durability(Durability::Always);
    let query = Query::table("P1").project(["pid", "weight"]);
    let deltas = vec![
        Delta::new().insert("P1", vec![901i64.into(), 1i64.into()], 0.7),
        Delta::new().insert("P1", vec![902i64.into(), 2i64.into()], 0.4),
    ];
    {
        let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config.clone()).unwrap();
        for delta in &deltas {
            server.apply_delta("t0", delta.clone()).unwrap();
        }
        drop(server);
    }
    // Amputate the record the "crash" interrupted mid-append.
    let wal = dir.join("t0.wal");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config).unwrap();
    let report = server.recovery_report("t0").unwrap();
    assert_eq!(report.wal_replayed, 1, "{report:?}");
    assert!(report.wal_tail_dropped_bytes > 0);
    let reference = reference_bits(workload_db(4, 2), &deltas[..1], &query);
    assert_eq!(served_bits(&server, &query), reference);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_faults_degrade_to_wal_only_and_recover_after_restart() {
    let dir = scratch_dir("degraded");
    let faulty: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
        7,
        FaultConfig {
            torn_rename: 1.0, // every snapshot publish dies before the rename
            ..FaultConfig::none()
        },
    ));
    let config = quick_config()
        .with_snapshot_dir(&dir)
        .with_snapshot_interval(Duration::from_secs(3600))
        .with_durability(Durability::Always)
        .with_snapshot_retries(1);
    let query = Query::table("P1").project(["pid", "weight"]);
    let delta = Delta::new().insert("P1", vec![901i64.into(), 1i64.into()], 0.7);
    {
        let server = Server::start(
            vec![("t0".into(), workload_db(4, 2))],
            config.clone().with_storage(Arc::clone(&faulty)),
        )
        .unwrap();
        // WAL appends are unaffected: the delta is acknowledged durably.
        server.apply_delta("t0", delta.clone()).unwrap();
        // Every snapshot attempt (initial + retry) fails; the server degrades
        // to WAL-only durability instead of dying.
        assert_eq!(server.snapshot_now().unwrap(), 0);
        let stats = server.stats();
        assert!(
            stats.degraded,
            "failed snapshot pass must degrade: {stats:?}"
        );
        assert!(stats.snapshot_failures >= 2, "{stats:?}");
        // Still serving, with the delta visible.
        let reference = reference_bits(workload_db(4, 2), std::slice::from_ref(&delta), &query);
        assert_eq!(served_bits(&server, &query), reference);
        drop(server); // crash while degraded
    }
    assert!(!dir.join("t0.snap").exists(), "no publish ever completed");

    // Restart on healthy storage: the stranded temp litter is swept and the
    // WAL alone rebuilds the acknowledged state.
    let server = Server::start(vec![("t0".into(), workload_db(4, 2))], config).unwrap();
    let stats = server.stats();
    assert!(
        stats.swept_temps > 0,
        "torn publishes leave temps: {stats:?}"
    );
    assert!(!stats.degraded);
    assert_eq!(server.recovery_report("t0").unwrap().wal_replayed, 1);
    let reference = reference_bits(workload_db(4, 2), &[delta], &query);
    assert_eq!(served_bits(&server, &query), reference);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_admitted_requests() {
    let server = Server::start(vec![("t0".into(), workload_db(4, 2))], quick_config()).unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            server
                .submit("t0", Query::table("S").project(["shop"]))
                .unwrap()
        })
        .collect();
    let stats = server.shutdown();
    // Every admitted request was dispatched before the scheduler exited; the
    // tickets still resolve after shutdown.
    assert_eq!(stats.served + stats.engine_errors, 8);
    for ticket in tickets {
        let stream = ticket.wait().unwrap();
        let tuples: Vec<_> = stream.collect::<Result<_, _>>().unwrap();
        assert_eq!(tuples.len(), 4);
    }
}
