//! Criterion bench for Experiment E (Figure 10): two-sided expressions with different
//! aggregation monoids on each side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_workload::{ExprGenParams, ExprGenerator};

fn bench_experiment_e(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_e");
    group.sample_size(10);
    for (agg_l, agg_r) in [
        (AggOp::Min, AggOp::Max),
        (AggOp::Min, AggOp::Count),
        (AggOp::Max, AggOp::Sum),
    ] {
        for left_terms in [10usize, 40, 120] {
            let params = ExprGenParams {
                agg_left: agg_l,
                agg_right: agg_r,
                left_terms,
                right_terms: 30,
                theta: CmpOp::Le,
                constant: 100,
                max_value: 200,
                clauses_per_term: 2,
                literals_per_clause: 2,
                num_vars: 12,
                ..ExprGenParams::default()
            };
            let gen = ExprGenerator::new(params, 23).generate();
            group.bench_with_input(
                BenchmarkId::new(format!("{agg_l}_{agg_r}"), left_terms),
                &gen,
                |b, gen| {
                    b.iter(|| pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_e);
criterion_main!(benches);
