//! Bench for Experiment E (Figure 10): two-sided expressions with different
//! aggregation monoids on each side.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench experiment_e`).

use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_bench::bench_case;
use pvc_workload::{ExprGenParams, ExprGenerator};

fn main() {
    println!("experiment_e: two-sided conditionals");
    for (agg_l, agg_r) in [
        (AggOp::Min, AggOp::Max),
        (AggOp::Min, AggOp::Count),
        (AggOp::Max, AggOp::Sum),
    ] {
        for left_terms in [10usize, 40, 120] {
            let params = ExprGenParams {
                agg_left: agg_l,
                agg_right: agg_r,
                left_terms,
                right_terms: 30,
                theta: CmpOp::Le,
                constant: 100,
                max_value: 200,
                clauses_per_term: 2,
                literals_per_clause: 2,
                num_vars: 12,
                ..ExprGenParams::default()
            };
            let gen = ExprGenerator::new(params, 23).generate();
            bench_case(&format!("{agg_l}_{agg_r}/L={left_terms}"), 10, || {
                pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool);
            });
        }
    }
}
