//! Criterion bench for Experiment D (Figure 9): varying the number of literals per
//! clause and clauses per term.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_workload::{ExprGenParams, ExprGenerator};

fn bench_experiment_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_d");
    group.sample_size(10);
    let base = ExprGenParams {
        agg_left: AggOp::Min,
        theta: CmpOp::Le,
        constant: 3,
        max_value: 5,
        left_terms: 40,
        num_vars: 14,
        ..ExprGenParams::default()
    };
    for literals in [1usize, 3, 8] {
        let params = ExprGenParams {
            clauses_per_term: 3,
            literals_per_clause: literals,
            ..base.clone()
        };
        let gen = ExprGenerator::new(params, 17).generate();
        group.bench_with_input(BenchmarkId::new("literals", literals), &gen, |b, gen| {
            b.iter(|| pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool))
        });
    }
    for clauses in [1usize, 3, 8] {
        let params = ExprGenParams {
            clauses_per_term: clauses,
            literals_per_clause: 3,
            ..base.clone()
        };
        let gen = ExprGenerator::new(params, 19).generate();
        group.bench_with_input(BenchmarkId::new("clauses", clauses), &gen, |b, gen| {
            b.iter(|| pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_d);
criterion_main!(benches);
