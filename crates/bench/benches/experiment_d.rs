//! Bench for Experiment D (Figure 9): varying the number of literals per clause and
//! clauses per term.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench experiment_d`).

use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_bench::bench_case;
use pvc_workload::{ExprGenParams, ExprGenerator};

fn main() {
    println!("experiment_d: varying clause shape");
    let base = ExprGenParams {
        agg_left: AggOp::Min,
        theta: CmpOp::Le,
        constant: 3,
        max_value: 5,
        left_terms: 40,
        num_vars: 14,
        ..ExprGenParams::default()
    };
    for literals in [1usize, 3, 8] {
        let params = ExprGenParams {
            clauses_per_term: 3,
            literals_per_clause: literals,
            ..base.clone()
        };
        let gen = ExprGenerator::new(params, 17).generate();
        bench_case(&format!("literals/#l={literals}"), 10, || {
            pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool);
        });
    }
    for clauses in [1usize, 3, 8] {
        let params = ExprGenParams {
            clauses_per_term: clauses,
            literals_per_clause: 3,
            ..base.clone()
        };
        let gen = ExprGenerator::new(params, 19).generate();
        bench_case(&format!("clauses/#cl={clauses}"), 10, || {
            pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool);
        });
    }
}
