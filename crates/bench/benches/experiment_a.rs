//! Criterion bench for Experiment A (Figure 7): probability computation of one-sided
//! conditional expressions while varying the comparison constant `c`, for each
//! aggregation monoid. Representative (scaled-down) points of the paper's sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_workload::{ExprGenParams, ExprGenerator};

fn bench_experiment_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_a");
    group.sample_size(10);
    for agg in [AggOp::Min, AggOp::Max, AggOp::Count, AggOp::Sum] {
        let (terms, vars, maxv, constants): (usize, usize, i64, Vec<i64>) = match agg {
            AggOp::Min | AggOp::Max => (60, 16, 200, vec![40, 120, 240]),
            _ => (24, 10, 40, vec![0, 200, 500]),
        };
        for constant in constants {
            let params = ExprGenParams {
                agg_left: agg,
                theta: CmpOp::Le,
                constant,
                left_terms: terms,
                num_vars: vars,
                max_value: maxv,
                ..ExprGenParams::default()
            };
            let gen = ExprGenerator::new(params, 7).generate();
            group.bench_with_input(
                BenchmarkId::new(format!("{agg}"), constant),
                &gen,
                |b, gen| {
                    b.iter(|| pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_a);
criterion_main!(benches);
