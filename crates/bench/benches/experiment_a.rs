//! Bench for Experiment A (Figure 7): probability computation of one-sided
//! conditional expressions while varying the comparison constant `c`, for each
//! aggregation monoid. Representative (scaled-down) points of the paper's sweep.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench experiment_a`).

use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_bench::bench_case;
use pvc_workload::{ExprGenParams, ExprGenerator};

fn main() {
    println!("experiment_a: one-sided conditionals, varying the constant c");
    for agg in [AggOp::Min, AggOp::Max, AggOp::Count, AggOp::Sum] {
        let (terms, vars, maxv, constants): (usize, usize, i64, Vec<i64>) = match agg {
            AggOp::Min | AggOp::Max => (60, 16, 200, vec![40, 120, 240]),
            _ => (24, 10, 40, vec![0, 200, 500]),
        };
        for constant in constants {
            let params = ExprGenParams {
                agg_left: agg,
                theta: CmpOp::Le,
                constant,
                left_terms: terms,
                num_vars: vars,
                max_value: maxv,
                ..ExprGenParams::default()
            };
            let gen = ExprGenerator::new(params, 7).generate();
            bench_case(&format!("{agg}/c={constant}"), 10, || {
                pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool);
            });
        }
    }
}
