//! Micro-benchmarks of the core building blocks: convolution, read-once compilation
//! and aggregate-distribution computation.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench micro`).

use pvc_algebra::{AggOp, MonoidValue, SemiringKind};
use pvc_bench::bench_case;
use pvc_expr::{SemimoduleExpr, SemiringExpr, VarTable};
use pvc_prob::Dist;

fn bench_convolution() {
    for size in [16usize, 64, 256] {
        let a: Dist<i64> = Dist::from_pairs((0..size as i64).map(|v| (v, 1.0 / size as f64)));
        let b = a.clone();
        bench_case(&format!("convolution/sum/{size}"), 10, || {
            a.convolve(&b, |x, y| x + y);
        });
    }
}

fn bench_read_once_compilation() {
    for groups in [10usize, 50, 200] {
        // Hierarchical provenance: x_i (y_{i,1} + y_{i,2} + y_{i,3}).
        let mut vars = VarTable::new();
        let mut summands = Vec::new();
        for i in 0..groups {
            let x = vars.boolean(format!("x{i}"), 0.5);
            for j in 0..3 {
                let y = vars.boolean(format!("y{i}_{j}"), 0.5);
                summands.push(SemiringExpr::Var(x) * SemiringExpr::Var(y));
            }
        }
        let expr = SemiringExpr::sum(summands);
        bench_case(&format!("read_once_compile/{groups}"), 10, || {
            pvc_core::confidence(&expr, &vars, SemiringKind::Bool);
        });
    }
}

fn bench_min_aggregate_distribution() {
    for terms in [50usize, 200, 800] {
        let mut vars = VarTable::new();
        let expr = SemimoduleExpr::from_terms(
            AggOp::Min,
            (0..terms)
                .map(|i| {
                    let v = vars.boolean(format!("t{i}"), 0.5);
                    (SemiringExpr::Var(v), MonoidValue::Fin((i % 97) as i64))
                })
                .collect(),
        );
        bench_case(&format!("min_aggregate_distribution/{terms}"), 10, || {
            pvc_core::semimodule_distribution(&expr, &vars, SemiringKind::Bool);
        });
    }
}

fn main() {
    println!("micro benchmarks");
    bench_convolution();
    bench_read_once_compilation();
    bench_min_aggregate_distribution();
}
