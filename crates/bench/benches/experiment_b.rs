//! Criterion bench for Experiment B (Figure 8b): varying the number of terms at a
//! fixed number of variables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_workload::{ExprGenParams, ExprGenerator};

fn bench_experiment_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_b");
    group.sample_size(10);
    for agg in [AggOp::Min, AggOp::Max] {
        for terms in [25usize, 100, 400] {
            let params = ExprGenParams {
                agg_left: agg,
                theta: CmpOp::Eq,
                constant: 100,
                left_terms: terms,
                num_vars: 14,
                ..ExprGenParams::default()
            };
            let gen = ExprGenerator::new(params, 11).generate();
            group.bench_with_input(BenchmarkId::new(format!("{agg}"), terms), &gen, |b, gen| {
                b.iter(|| pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_b);
criterion_main!(benches);
