//! Bench for Experiment B (Figure 8b): varying the number of terms at a fixed
//! number of variables.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench experiment_b`).

use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_bench::bench_case;
use pvc_workload::{ExprGenParams, ExprGenerator};

fn main() {
    println!("experiment_b: varying the number of terms L");
    for agg in [AggOp::Min, AggOp::Max] {
        for terms in [25usize, 100, 400] {
            let params = ExprGenParams {
                agg_left: agg,
                theta: CmpOp::Eq,
                constant: 100,
                left_terms: terms,
                num_vars: 14,
                ..ExprGenParams::default()
            };
            let gen = ExprGenerator::new(params, 11).generate();
            bench_case(&format!("{agg}/L={terms}"), 10, || {
                pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool);
            });
        }
    }
}
