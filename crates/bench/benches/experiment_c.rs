//! Bench for Experiment C (Figure 8a): the easy/hard/easy phase transition when
//! varying the number of distinct variables at fixed expression size.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench experiment_c`).

use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_bench::bench_case;
use pvc_workload::{ExprGenParams, ExprGenerator};

fn main() {
    println!("experiment_c: varying the number of distinct variables");
    for num_vars in [6usize, 14, 32, 64] {
        let params = ExprGenParams {
            agg_left: AggOp::Min,
            theta: CmpOp::Eq,
            constant: 3,
            max_value: 5,
            left_terms: 40,
            clauses_per_term: 2,
            literals_per_clause: 2,
            num_vars,
            ..ExprGenParams::default()
        };
        let gen = ExprGenerator::new(params, 13).generate();
        bench_case(&format!("#v={num_vars}"), 10, || {
            pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool);
        });
    }
}
