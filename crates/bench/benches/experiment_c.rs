//! Criterion bench for Experiment C (Figure 8a): the easy/hard/easy phase transition
//! when varying the number of distinct variables at fixed expression size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_workload::{ExprGenParams, ExprGenerator};

fn bench_experiment_c(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_c");
    group.sample_size(10);
    for num_vars in [6usize, 14, 32, 64] {
        let params = ExprGenParams {
            agg_left: AggOp::Min,
            theta: CmpOp::Eq,
            constant: 3,
            max_value: 5,
            left_terms: 40,
            clauses_per_term: 2,
            literals_per_clause: 2,
            num_vars,
            ..ExprGenParams::default()
        };
        let gen = ExprGenerator::new(params, 13).generate();
        group.bench_with_input(BenchmarkId::from_parameter(num_vars), &gen, |b, gen| {
            b.iter(|| pvc_core::confidence(&gen.condition, &gen.vars, SemiringKind::Bool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_c);
criterion_main!(benches);
