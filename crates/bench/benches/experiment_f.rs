//! Criterion bench for Experiment F (Figure 11): TPC-H-like queries Q1 and Q2,
//! separating expression construction (⟦·⟧) from probability computation (P(·)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_db::{evaluate, tuple_confidences};
use pvc_tpch::{generate, q1, q2, TpchConfig};

fn bench_experiment_f(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_f");
    group.sample_size(10);
    for sf in [0.005f64, 0.02] {
        let db = generate(&TpchConfig {
            scale_factor: sf,
            ..TpchConfig::default()
        });
        let query = q1(1_800);
        group.bench_with_input(BenchmarkId::new("q1_rewrite", sf), &db, |b, db| {
            b.iter(|| evaluate(db, &query))
        });
        let table = evaluate(&db, &query);
        group.bench_with_input(BenchmarkId::new("q1_probability", sf), &db, |b, db| {
            b.iter(|| tuple_confidences(db, &table))
        });
    }
    for sf in [0.1f64, 0.25] {
        let db = generate(&TpchConfig {
            scale_factor: sf,
            ..TpchConfig::default()
        });
        let query = q2("ASIA", 25);
        group.bench_with_input(BenchmarkId::new("q2_rewrite", sf), &db, |b, db| {
            b.iter(|| evaluate(db, &query))
        });
        let table = evaluate(&db, &query);
        group.bench_with_input(BenchmarkId::new("q2_probability", sf), &db, |b, db| {
            b.iter(|| tuple_confidences(db, &table))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiment_f);
criterion_main!(benches);
