//! Bench for Experiment F (Figure 11): TPC-H-like queries Q1 and Q2, separating
//! expression construction (⟦·⟧) from probability computation (P(·)).
//!
//! A plain `fn main()` timing harness (`cargo bench --bench experiment_f`).

use pvc_bench::bench_case;
use pvc_db::{try_evaluate, try_tuple_confidences};
use pvc_tpch::{generate, q1, q2, TpchConfig};

fn main() {
    println!("experiment_f: TPC-H-like Q1/Q2, rewrite vs probability phases");
    for sf in [0.005f64, 0.02] {
        let db = generate(&TpchConfig {
            scale_factor: sf,
            ..TpchConfig::default()
        });
        let query = q1(1_800);
        bench_case(&format!("q1_rewrite/sf={sf}"), 10, || {
            try_evaluate(&db, &query).expect("Q1 evaluates");
        });
        let table = try_evaluate(&db, &query).expect("Q1 evaluates");
        bench_case(&format!("q1_probability/sf={sf}"), 10, || {
            try_tuple_confidences(&db, &table).expect("Q1 confidences");
        });
    }
    for sf in [0.1f64, 0.25] {
        let db = generate(&TpchConfig {
            scale_factor: sf,
            ..TpchConfig::default()
        });
        let query = q2("ASIA", 25);
        bench_case(&format!("q2_rewrite/sf={sf}"), 10, || {
            try_evaluate(&db, &query).expect("Q2 evaluates");
        });
        let table = try_evaluate(&db, &query).expect("Q2 evaluates");
        bench_case(&format!("q2_probability/sf={sf}"), 10, || {
            try_tuple_confidences(&db, &table).expect("Q2 confidences");
        });
    }
}
