//! Ablation benchmarks for the design choices called out in DESIGN.md: the structural
//! decomposition rules vs pure Shannon expansion, and pruning on vs off.
//!
//! A plain `fn main()` timing harness (`cargo bench --bench ablation`).

use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_bench::bench_case;
use pvc_core::{CompileOptions, Compiler};
use pvc_workload::{ExprGenParams, ExprGenerator, GeneratedExpr};

fn confidence_with(gen: &GeneratedExpr, options: CompileOptions) -> f64 {
    let mut compiler = Compiler::with_options(&gen.vars, SemiringKind::Bool, options);
    let tree = compiler.compile_semiring(&gen.condition).unwrap();
    tree.semiring_distribution(&gen.vars, SemiringKind::Bool)
        .unwrap()
        .iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum()
}

fn bench_rules_vs_shannon() {
    let params = ExprGenParams {
        agg_left: AggOp::Min,
        theta: CmpOp::Le,
        constant: 120,
        left_terms: 40,
        num_vars: 14,
        clauses_per_term: 2,
        literals_per_clause: 2,
        ..ExprGenParams::default()
    };
    let gen = ExprGenerator::new(params, 3).generate();
    bench_case("ablation_rules/full_rules", 10, || {
        confidence_with(&gen, CompileOptions::default());
    });
    bench_case("ablation_rules/shannon_only", 10, || {
        confidence_with(&gen, CompileOptions::shannon_only());
    });
}

fn bench_pruning() {
    let params = ExprGenParams {
        agg_left: AggOp::Min,
        theta: CmpOp::Le,
        constant: 20,
        left_terms: 60,
        num_vars: 16,
        max_value: 200,
        ..ExprGenParams::default()
    };
    let gen = ExprGenerator::new(params, 5).generate();
    let no_pruning = CompileOptions {
        pruning: false,
        ..CompileOptions::default()
    };
    bench_case("ablation_pruning/pruning_on", 10, || {
        confidence_with(&gen, CompileOptions::default());
    });
    bench_case("ablation_pruning/pruning_off", 10, || {
        confidence_with(&gen, no_pruning.clone());
    });
}

fn main() {
    println!("ablation benchmarks");
    bench_rules_vs_shannon();
    bench_pruning();
}
