//! Ablation benchmarks for the design choices called out in DESIGN.md: the structural
//! decomposition rules vs pure Shannon expansion, and pruning on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvc_algebra::{AggOp, CmpOp, SemiringKind};
use pvc_core::{CompileOptions, Compiler};
use pvc_workload::{ExprGenParams, ExprGenerator, GeneratedExpr};

fn confidence_with(gen: &GeneratedExpr, options: CompileOptions) -> f64 {
    let mut compiler = Compiler::with_options(&gen.vars, SemiringKind::Bool, options);
    let tree = compiler.compile_semiring(&gen.condition).unwrap();
    tree.semiring_distribution(&gen.vars, SemiringKind::Bool)
        .unwrap()
        .iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum()
}

fn bench_rules_vs_shannon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rules");
    group.sample_size(10);
    let params = ExprGenParams {
        agg_left: AggOp::Min,
        theta: CmpOp::Le,
        constant: 120,
        left_terms: 40,
        num_vars: 14,
        clauses_per_term: 2,
        literals_per_clause: 2,
        ..ExprGenParams::default()
    };
    let gen = ExprGenerator::new(params, 3).generate();
    group.bench_with_input(BenchmarkId::new("full_rules", 40), &gen, |b, gen| {
        b.iter(|| confidence_with(gen, CompileOptions::default()))
    });
    group.bench_with_input(BenchmarkId::new("shannon_only", 40), &gen, |b, gen| {
        b.iter(|| confidence_with(gen, CompileOptions::shannon_only()))
    });
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pruning");
    group.sample_size(10);
    let params = ExprGenParams {
        agg_left: AggOp::Min,
        theta: CmpOp::Le,
        constant: 20,
        left_terms: 60,
        num_vars: 16,
        max_value: 200,
        ..ExprGenParams::default()
    };
    let gen = ExprGenerator::new(params, 5).generate();
    let no_pruning = CompileOptions {
        pruning: false,
        ..CompileOptions::default()
    };
    group.bench_with_input(BenchmarkId::new("pruning_on", 60), &gen, |b, gen| {
        b.iter(|| confidence_with(gen, CompileOptions::default()))
    });
    group.bench_with_input(BenchmarkId::new("pruning_off", 60), &gen, |b, gen| {
        b.iter(|| confidence_with(gen, no_pruning.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_rules_vs_shannon, bench_pruning);
criterion_main!(benches);
