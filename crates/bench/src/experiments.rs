//! Drivers for the paper's Experiments A–F (Figures 7–11).
//!
//! Each `experiment_*` function runs the corresponding parameter sweep and returns one
//! row per plotted point; the `exp_*` binaries print these rows. The sweeps come in
//! two sizes: `Scale::quick()` (default; finishes in minutes) and `Scale::full()`
//! (closer to the paper's parameters; enable with `PVC_BENCH_FULL=1`).

use crate::stats::{timed_over_seeds, Measurement};
use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind};
use pvc_core::{obs, CompileOptions, Compiler};
use pvc_db::{try_evaluate, Engine, EvalOptions};
use pvc_prob::{
    convolve_additive, convolve_additive_chained, fft_would_run, ChainVal, DenseDist, Dist,
    DistRepr, MonoidDist,
};
use pvc_serve::loadgen::{LoadConfig, LoadReport};
use pvc_serve::ServeConfig;
use pvc_tpch::{deterministic_copy, generate, TpchConfig};
use pvc_workload::{ExprGenParams, ExprGenerator};

/// Which parameter scale to run the experiments at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down parameters (default): every experiment finishes in seconds to a few
    /// minutes on a laptop while preserving the shape of the paper's curves.
    Quick,
    /// Parameters close to the paper's (§7.1): substantially slower, especially for
    /// COUNT/SUM.
    Full,
}

impl Scale {
    /// Read the scale from the `PVC_BENCH_FULL` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("PVC_BENCH_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    fn is_full(self) -> bool {
        self == Scale::Full
    }
}

/// Compile a generated conditional expression and compute its probability; the timed
/// unit of work of Experiments A–E.
fn compile_and_probability(gen: &pvc_workload::GeneratedExpr) -> f64 {
    let mut compiler =
        Compiler::with_options(&gen.vars, SemiringKind::Bool, CompileOptions::default());
    let tree = compiler
        .compile_semiring(&gen.condition)
        .expect("no node budget configured");
    let dist = tree
        .semiring_distribution(&gen.vars, SemiringKind::Bool)
        .expect("semiring distribution");
    dist.iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum()
}

/// One row of an Experiment A/B/C/D/E table.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The label of the series the row belongs to (e.g. `MIN`, `MIN/COUNT`, `≤`).
    pub series: String,
    /// The x-axis value (the swept parameter).
    pub x: f64,
    /// The timing measurement at that point.
    pub measurement: Measurement,
}

impl SweepRow {
    /// Format as a table row.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.series.clone(),
            format!("{}", self.x),
            format!("{:.4}", self.measurement.mean_seconds),
            format!("{:.4}", self.measurement.std_seconds),
            format!("{}", self.measurement.runs),
        ]
    }
}

/// Header of the sweep tables.
pub const SWEEP_HEADER: [&str; 5] = ["series", "x", "mean_s", "std_s", "runs"];

fn sweep_point(params: ExprGenParams, runs: usize) -> Measurement {
    timed_over_seeds(0..runs as u64, |seed| {
        let gen = ExprGenerator::new(params.clone(), seed).generate();
        let _ = compile_and_probability(&gen);
    })
}

/// **Experiment A** (Figure 7): vary the constant `c` for each aggregation monoid and
/// comparison operator; one-sided expressions.
pub fn experiment_a(scale: Scale) -> Vec<SweepRow> {
    let full = scale.is_full();
    let mut rows = Vec::new();
    let thetas = [CmpOp::Eq, CmpOp::Le, CmpOp::Ge];
    // MIN and MAX: values in [0, maxv]; sweep c across and beyond that range.
    let minmax_cfg = |agg, theta, c| ExprGenParams {
        agg_left: agg,
        theta,
        constant: c,
        left_terms: if full { 200 } else { 60 },
        num_vars: if full { 25 } else { 16 },
        max_value: 200,
        ..ExprGenParams::default()
    };
    let c_values: Vec<i64> = if full {
        (0..=300).step_by(30).collect()
    } else {
        vec![0, 40, 80, 120, 160, 200, 240, 300]
    };
    let runs = if full { 30 } else { 3 };
    for agg in [AggOp::Min, AggOp::Max] {
        for theta in thetas {
            for &c in &c_values {
                let m = sweep_point(minmax_cfg(agg, theta, c), runs);
                rows.push(SweepRow {
                    series: format!("{agg} {theta}"),
                    x: c as f64,
                    measurement: m,
                });
            }
        }
    }
    // COUNT and SUM: smaller instances — their distributions grow with the number of
    // terms and the experiment is orders of magnitude slower (as in the paper).
    let countsum_cfg = |agg, theta, c, maxv| ExprGenParams {
        agg_left: agg,
        theta,
        constant: c,
        max_value: maxv,
        left_terms: if full { 200 } else { 30 },
        num_vars: if full { 25 } else { 12 },
        ..ExprGenParams::default()
    };
    let runs = if full { 10 } else { 2 };
    let count_cs: Vec<i64> = if full {
        (0..=300).step_by(50).collect()
    } else {
        vec![0, 5, 10, 15, 20, 25, 30]
    };
    for theta in thetas {
        for &c in &count_cs {
            let m = sweep_point(countsum_cfg(AggOp::Count, theta, c, 200), runs);
            rows.push(SweepRow {
                series: format!("COUNT {theta}"),
                x: c as f64,
                measurement: m,
            });
        }
    }
    let sum_cs: Vec<i64> = if full {
        (0..=30_000).step_by(5_000).collect()
    } else {
        vec![0, 50, 150, 300, 450, 600]
    };
    for theta in thetas {
        for &c in &sum_cs {
            let maxv = if full { 200 } else { 40 };
            let m = sweep_point(countsum_cfg(AggOp::Sum, theta, c, maxv), runs);
            rows.push(SweepRow {
                series: format!("SUM {theta}"),
                x: c as f64,
                measurement: m,
            });
        }
    }
    rows
}

/// **Experiment B** (Figure 8b): vary the number of terms `L` at a fixed number of
/// variables, for all four aggregation monoids.
pub fn experiment_b(scale: Scale) -> Vec<SweepRow> {
    let full = scale.is_full();
    let ls: Vec<usize> = if full {
        vec![10, 50, 100, 200, 400, 600, 800, 1000]
    } else {
        vec![10, 25, 50, 100, 200, 400]
    };
    let runs = if full { 10 } else { 3 };
    let mut rows = Vec::new();
    for agg in [AggOp::Min, AggOp::Max, AggOp::Count, AggOp::Sum] {
        for &l in &ls {
            let params = ExprGenParams {
                agg_left: agg,
                theta: CmpOp::Eq,
                constant: 100,
                left_terms: l,
                num_vars: if full { 25 } else { 14 },
                max_value: 200,
                clauses_per_term: 3,
                literals_per_clause: 3,
                ..ExprGenParams::default()
            };
            // COUNT/SUM grow much faster; cap their sweep earlier in quick mode.
            if !full && matches!(agg, AggOp::Count | AggOp::Sum) && l > 100 {
                continue;
            }
            let m = sweep_point(params, runs);
            rows.push(SweepRow {
                series: agg.to_string(),
                x: l as f64,
                measurement: m,
            });
        }
    }
    rows
}

/// **Experiment C** (Figure 8a): vary the number of distinct variables at fixed
/// expression size — the easy/hard/easy phase transition.
pub fn experiment_c(scale: Scale) -> Vec<SweepRow> {
    let full = scale.is_full();
    let vs: Vec<usize> = if full {
        vec![5, 10, 20, 30, 45, 60, 90, 120, 180, 240, 300]
    } else {
        vec![4, 6, 8, 10, 14, 18, 24, 32, 48, 72, 108, 160, 240]
    };
    let runs = if full { 40 } else { 3 };
    let mut rows = Vec::new();
    for &v in &vs {
        let params = ExprGenParams {
            agg_left: AggOp::Min,
            theta: CmpOp::Eq,
            constant: 3,
            max_value: 5,
            left_terms: if full { 90 } else { 24 },
            clauses_per_term: 2,
            literals_per_clause: 2,
            num_vars: v,
            ..ExprGenParams::default()
        };
        let m = sweep_point(params, runs);
        rows.push(SweepRow {
            series: "MIN =".to_string(),
            x: v as f64,
            measurement: m,
        });
    }
    rows
}

/// **Experiment D** (Figure 9): vary the number of literals per clause and of clauses
/// per term.
pub fn experiment_d(scale: Scale) -> Vec<SweepRow> {
    let full = scale.is_full();
    let runs = if full { 20 } else { 3 };
    let base = |agg| ExprGenParams {
        agg_left: agg,
        theta: CmpOp::Le,
        constant: 3,
        max_value: 5,
        left_terms: if full { 100 } else { 40 },
        num_vars: if full { 25 } else { 14 },
        ..ExprGenParams::default()
    };
    let aggs = [AggOp::Min, AggOp::Max, AggOp::Count, AggOp::Sum];
    let mut rows = Vec::new();
    // (a) vary #l with #cl = 3.
    let ls: Vec<usize> = if full {
        vec![1, 2, 3, 5, 8, 12, 16, 20]
    } else {
        vec![1, 2, 3, 5, 8, 12]
    };
    for agg in aggs {
        for &l in &ls {
            let params = ExprGenParams {
                clauses_per_term: 3,
                literals_per_clause: l,
                ..base(agg)
            };
            let m = sweep_point(params, runs);
            rows.push(SweepRow {
                series: format!("{agg} #l"),
                x: l as f64,
                measurement: m,
            });
        }
    }
    // (b) vary #cl with #l = 3.
    let cls: Vec<usize> = if full {
        vec![1, 2, 3, 5, 8, 12, 16, 20]
    } else {
        vec![1, 2, 3, 5, 8, 12]
    };
    for agg in aggs {
        for &cl in &cls {
            let params = ExprGenParams {
                clauses_per_term: cl,
                literals_per_clause: 3,
                ..base(agg)
            };
            let m = sweep_point(params, runs);
            rows.push(SweepRow {
                series: format!("{agg} #cl"),
                x: cl as f64,
                measurement: m,
            });
        }
    }
    rows
}

/// **Experiment E** (Figure 10): two-sided expressions with different aggregations on
/// each side; vary the number of terms on one side while fixing the other.
pub fn experiment_e(scale: Scale) -> Vec<SweepRow> {
    let full = scale.is_full();
    let runs = if full { 10 } else { 3 };
    let pairs = [
        (AggOp::Min, AggOp::Max),
        (AggOp::Min, AggOp::Count),
        (AggOp::Max, AggOp::Sum),
    ];
    let sizes: Vec<usize> = if full {
        vec![50, 150, 300, 600, 1000, 1500, 2000]
    } else {
        vec![10, 20, 40, 80, 120]
    };
    let fixed = if full { 150 } else { 30 };
    let base = |l: usize, r: usize, agg_l, agg_r| ExprGenParams {
        agg_left: agg_l,
        agg_right: agg_r,
        left_terms: l,
        right_terms: r,
        theta: CmpOp::Le,
        constant: 100,
        max_value: 200,
        clauses_per_term: 2,
        literals_per_clause: 2,
        num_vars: if full { 25 } else { 10 },
        ..ExprGenParams::default()
    };
    let mut rows = Vec::new();
    for (agg_l, agg_r) in pairs {
        // (a) vary L, fix R.
        for &l in &sizes {
            let m = sweep_point(base(l, fixed, agg_l, agg_r), runs);
            rows.push(SweepRow {
                series: format!("{agg_l}/{agg_r} vary L"),
                x: l as f64,
                measurement: m,
            });
        }
        // (b) vary R, fix L.
        for &r in &sizes {
            let m = sweep_point(base(fixed, r, agg_l, agg_r), runs);
            rows.push(SweepRow {
                series: format!("{agg_l}/{agg_r} vary R"),
                x: r as f64,
                measurement: m,
            });
        }
    }
    rows
}

/// One row of the Experiment F table: a query at a scale factor with the three
/// measured phases.
#[derive(Debug, Clone)]
pub struct TpchRow {
    /// `Q1` or `Q2`.
    pub query: String,
    /// The TPC-H-like scale factor.
    pub scale_factor: f64,
    /// Seconds for the deterministic baseline `Q0` (no expressions, no probabilities).
    pub deterministic_seconds: f64,
    /// Seconds for step I, the rewriting `⟦·⟧` (tuples plus expressions).
    pub rewrite_seconds: f64,
    /// Seconds for step II, probability computation `P(·)`.
    pub probability_seconds: f64,
    /// Number of result tuples.
    pub result_tuples: usize,
}

impl TpchRow {
    /// Format as a table row.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.query.clone(),
            format!("{}", self.scale_factor),
            format!("{:.4}", self.deterministic_seconds),
            format!("{:.4}", self.rewrite_seconds),
            format!("{:.4}", self.probability_seconds),
            format!("{}", self.result_tuples),
        ]
    }
}

/// Header of the Experiment F table.
pub const TPCH_HEADER: [&str; 6] = ["query", "sf", "Q0_s", "rewrite_s", "prob_s", "tuples"];

/// **Experiment F** (Figure 11): TPC-H-like queries Q1 and Q2 at increasing scale
/// factors; per query, measure the deterministic run (`Q0`), expression construction
/// (`⟦·⟧`) and probability computation (`P(·)`).
pub fn experiment_f(scale: Scale) -> Vec<TpchRow> {
    let full = scale.is_full();
    let q1_sfs: Vec<f64> = if full {
        vec![0.05, 0.1, 0.25, 0.5, 1.0, 2.0]
    } else {
        vec![0.05, 0.1, 0.25, 0.5, 1.0]
    };
    let q2_sfs: Vec<f64> = if full {
        vec![0.25, 0.5, 1.0, 2.0, 4.0]
    } else {
        vec![0.25, 0.5, 1.0, 2.0]
    };
    let mut rows = Vec::new();
    for (name, sfs) in [("Q1", q1_sfs), ("Q2", q2_sfs)] {
        for &sf in &sfs {
            let config = TpchConfig {
                scale_factor: sf,
                ..TpchConfig::default()
            };
            let db = generate(&config);
            let query = match name {
                "Q1" => pvc_tpch::q1(1_800),
                _ => pvc_tpch::q2("ASIA", 25),
            };
            // Q0: run the relational part on the deterministic copy.
            let det_db = deterministic_copy(&db);
            let start = std::time::Instant::now();
            let det_result = try_evaluate(&det_db, &query).expect("deterministic run evaluates");
            let deterministic_seconds = start.elapsed().as_secs_f64();

            // ⟦·⟧ and P(·) on the probabilistic database.
            let result = Engine::execute_once(&db, &query, &EvalOptions::default())
                .expect("probabilistic run evaluates");
            rows.push(TpchRow {
                query: name.to_string(),
                scale_factor: sf,
                deterministic_seconds,
                rewrite_seconds: result.rewrite_time.as_secs_f64(),
                probability_seconds: result.probability_time.as_secs_f64(),
                result_tuples: det_result.len().max(result.tuples.len()),
            });
        }
    }
    rows
}

/// The report of the repeated-workload cache experiment: wall-clock of the cold,
/// warm and cross-rendering executions plus the engine's [`pvc_db::CacheStats`]
/// counters at the end of the run.
#[derive(Debug, Clone)]
pub struct CacheHitReport {
    /// First execution of the prepared query (cold caches).
    pub cold_s: f64,
    /// Mean of the subsequent executions of the same prepared query.
    pub warm_s: f64,
    /// Execution of a *structurally equal query under a different rendering*
    /// (commuted union operands) — served by cross-query cache hits.
    pub cross_s: f64,
    /// `cold_s / warm_s`.
    pub warm_speedup: f64,
    /// Artifact-cache hits.
    pub hits: u64,
    /// Artifact-cache misses.
    pub misses: u64,
    /// Hits whose entry was inserted by a different query.
    pub cross_query_hits: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Cached artifact entries (confidences + aggregates) at the end of the run.
    pub entries: usize,
    /// Cached compiled d-tree arenas at the end of the run.
    pub arenas: usize,
    /// True when the warm and cross-rendering executions performed **no** new
    /// arena compilations (arena misses unchanged after the cold run) while at
    /// least one arena artifact is cached — i.e. compiled arenas were reused.
    pub arena_reused: bool,
}

impl CacheHitReport {
    /// The report as `(field name, JSON-ready value)` pairs — the single source of
    /// truth for both the smoke table and the `BENCH_baseline.json` object.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("cold_s", format!("{:.6}", self.cold_s)),
            ("warm_s", format!("{:.6}", self.warm_s)),
            ("cross_s", format!("{:.6}", self.cross_s)),
            ("warm_speedup", format!("{:.2}", self.warm_speedup)),
            ("hits", format!("{}", self.hits)),
            ("misses", format!("{}", self.misses)),
            ("cross_query_hits", format!("{}", self.cross_query_hits)),
            ("evictions", format!("{}", self.evictions)),
            ("entries", format!("{}", self.entries)),
            ("arenas", format!("{}", self.arenas)),
            ("arena_reused", format!("{}", u8::from(self.arena_reused))),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the cache experiment table.
pub const CACHE_HEADER: [&str; 11] = [
    "cold_s",
    "warm_s",
    "cross_s",
    "speedup",
    "hits",
    "misses",
    "x_query_hits",
    "evictions",
    "entries",
    "arenas",
    "arena_reuse",
];

/// The shop/offer/product database of the repeated-workload scenario: `shops` shops
/// with `per_shop` offers each, every product listed in both product tables so that
/// annotations carry non-trivial sums. Deterministic, so two calls build
/// fingerprint-identical databases (which the warm-restart scenario and the
/// `snapshot_roundtrip` smoke bin rely on).
pub fn cache_workload_db(shops: usize, per_shop: usize) -> pvc_db::Database {
    use pvc_db::{Database, Schema};
    let mut db = Database::new();
    db.create_table("S", Schema::new(["sid", "shop"]));
    db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
    db.create_table("P1", Schema::new(["pid", "weight"]));
    db.create_table("P2", Schema::new(["pid", "weight"]));
    let num_products = (shops * per_shop / 2).max(1);
    {
        let (s, vars) = db.table_and_vars_mut("S").unwrap();
        for i in 0..shops {
            s.push_independent(
                vec![(i as i64).into(), format!("shop{i}").as_str().into()],
                0.6,
                vars,
            );
        }
    }
    {
        let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
        for i in 0..shops {
            for j in 0..per_shop {
                let pid = (i * 31 + j * 7) % num_products;
                let price = 10 + ((i * 13 + j * 29) % 90) as i64;
                ps.push_independent(
                    vec![(i as i64).into(), (pid as i64).into(), price.into()],
                    0.5,
                    vars,
                );
            }
        }
    }
    for table in ["P1", "P2"] {
        let (p, vars) = db.table_and_vars_mut(table).unwrap();
        for pid in 0..num_products {
            p.push_independent(
                vec![(pid as i64).into(), ((pid % 17) as i64).into()],
                0.7,
                vars,
            );
        }
    }
    db
}

/// The paper's Q2 shape (shops whose maximal price is bounded), parameterised by the
/// union rendering: `P1 ∪ P2` when `swapped` is false, `P2 ∪ P1` otherwise. Both
/// renderings produce structurally equal provenance up to summand order.
pub fn cache_workload_query(swapped: bool) -> pvc_db::Query {
    use pvc_db::{AggSpec, Predicate, Query};
    let products = if swapped {
        Query::table("P2").union(Query::table("P1"))
    } else {
        Query::table("P1").union(Query::table("P2"))
    };
    Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .join(
            products.rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
            &[("ps_pid", "p_pid")],
        )
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 60))
        .project(["shop"])
}

/// **Cache experiment** (not in the paper): the repeated/serving workload. One
/// prepared query is executed once cold and several times warm; then a second,
/// structurally-equal query under a *different rendering* is executed and must be
/// served by cross-query cache hits thanks to canonical interning.
pub fn experiment_cache(scale: Scale) -> CacheHitReport {
    experiment_cache_threads(scale, 1)
}

/// The cache experiment with an explicit worker-thread count (`threads > 1`
/// regression-guards **cross-thread** cache sharing: workers fill the shared
/// store, warm runs and the commuted rendering must still be served from it).
pub fn experiment_cache_threads(scale: Scale, threads: usize) -> CacheHitReport {
    let full = scale == Scale::Full;
    let (shops, per_shop) = if full { (60, 8) } else { (24, 5) };
    let warm_runs = 5;
    let options = EvalOptions::default().with_threads(threads);
    let db = cache_workload_db(shops, per_shop);
    let engine = Engine::new(db);
    let qa = cache_workload_query(false);
    let qb = cache_workload_query(true);

    let pa = engine.prepare(&qa).expect("workload query prepares");
    let start = std::time::Instant::now();
    let cold = pa.execute(&options).expect("cold run");
    let cold_s = start.elapsed().as_secs_f64();
    assert!(!cold.tuples.is_empty(), "workload must produce tuples");
    let arena_misses_after_cold = engine.cache_stats().arena_misses;

    let start = std::time::Instant::now();
    for _ in 0..warm_runs {
        pa.execute(&options).expect("warm run");
    }
    let warm_s = start.elapsed().as_secs_f64() / warm_runs as f64;

    let pb = engine.prepare(&qb).expect("swapped rendering prepares");
    let start = std::time::Instant::now();
    pb.execute(&options).expect("cross run");
    let cross_s = start.elapsed().as_secs_f64();

    let stats = engine.cache_stats();
    CacheHitReport {
        cold_s,
        warm_s,
        cross_s,
        // Clamp the divisor so the ratio stays finite (and JSON-serialisable) even
        // when the warm runs measure below the clock resolution.
        warm_speedup: cold_s / warm_s.max(1e-9),
        hits: stats.hits,
        misses: stats.misses,
        cross_query_hits: stats.cross_query_hits,
        evictions: stats.evictions,
        entries: stats.confidences + stats.aggregates,
        arenas: stats.arenas,
        // Warm and cross executions must be served without compiling any new
        // arena: the miss counter may not move after the cold run.
        arena_reused: stats.arenas > 0 && stats.arena_misses == arena_misses_after_cold,
    }
}

/// The report of the warm-restart experiment: first-query latency of a cold
/// engine, of an in-process warm engine, and of a fresh engine restored
/// **from a disk snapshot** (`Engine::save_artifacts` →
/// `Engine::with_artifacts_from`), plus behavioural counters proving the
/// restored engine recompiled nothing.
#[derive(Debug, Clone)]
pub struct WarmRestartReport {
    /// First execution on a cold engine (nothing cached).
    pub cold_first_s: f64,
    /// The same query re-executed on the warm in-process engine (mean of 5).
    pub warm_live_s: f64,
    /// Wall-clock of `Engine::save_artifacts` (serialise + write).
    pub save_s: f64,
    /// Wall-clock of `Engine::with_artifacts_from` (read + decode + replay).
    pub load_s: f64,
    /// First execution on the warm-from-disk engine.
    pub warm_disk_first_s: f64,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: usize,
    /// `warm_disk_first_s / warm_live_s` — the CI gate requires ≤ 2× (after a
    /// noise floor).
    pub disk_vs_live: f64,
    /// `cold_first_s / warm_disk_first_s` — how far below cold the restored
    /// engine starts.
    pub cold_vs_disk: f64,
    /// Artifact-cache hits during the warm-from-disk first query.
    pub warm_disk_hits: u64,
    /// Distribution + arena (re)compilations during the warm-from-disk first
    /// query — must be 0: everything is served from the snapshot.
    pub warm_disk_rebuilds: u64,
}

impl WarmRestartReport {
    /// The report as `(field name, JSON-ready value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("cold_first_s", format!("{:.6}", self.cold_first_s)),
            ("warm_live_s", format!("{:.6}", self.warm_live_s)),
            ("save_s", format!("{:.6}", self.save_s)),
            ("load_s", format!("{:.6}", self.load_s)),
            (
                "warm_disk_first_s",
                format!("{:.6}", self.warm_disk_first_s),
            ),
            ("snapshot_bytes", format!("{}", self.snapshot_bytes)),
            ("disk_vs_live", format!("{:.2}", self.disk_vs_live)),
            ("cold_vs_disk", format!("{:.2}", self.cold_vs_disk)),
            ("warm_disk_hits", format!("{}", self.warm_disk_hits)),
            ("warm_disk_rebuilds", format!("{}", self.warm_disk_rebuilds)),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the warm-restart experiment table.
pub const WARM_RESTART_HEADER: [&str; 10] = [
    "cold_first_s",
    "warm_live_s",
    "save_s",
    "load_s",
    "warm_disk_first_s",
    "snapshot_bytes",
    "disk_vs_live",
    "cold_vs_disk",
    "disk_hits",
    "disk_rebuilds",
];

/// **Warm-restart experiment** (not in the paper): the serving-system restart
/// scenario. One engine runs the repeated workload cold, snapshots its compile
/// artifacts to disk, and a *fresh* engine (same deterministically rebuilt
/// database, new process in spirit) restores them and answers its first query
/// warm — the ROADMAP's "persist the arena + artifacts for warm restarts" loop,
/// measured end to end.
pub fn experiment_warm_restart(scale: Scale) -> WarmRestartReport {
    let full = scale == Scale::Full;
    let (shops, per_shop) = if full { (60, 8) } else { (24, 5) };
    let warm_runs = 5;
    let options = EvalOptions::default();
    let query = cache_workload_query(false);
    let path = std::env::temp_dir().join(format!(
        "pvc-warm-restart-{}-{shops}x{per_shop}.snap",
        std::process::id()
    ));

    let engine = Engine::new(cache_workload_db(shops, per_shop));
    let prepared = engine.prepare(&query).expect("workload query prepares");
    let start = std::time::Instant::now();
    let cold = prepared.execute(&options).expect("cold run");
    let cold_first_s = start.elapsed().as_secs_f64();
    assert!(!cold.tuples.is_empty(), "workload must produce tuples");

    let start = std::time::Instant::now();
    for _ in 0..warm_runs {
        prepared.execute(&options).expect("warm run");
    }
    let warm_live_s = start.elapsed().as_secs_f64() / warm_runs as f64;

    let start = std::time::Instant::now();
    let stats = engine.save_artifacts(&path).expect("snapshot saves");
    let save_s = start.elapsed().as_secs_f64();
    drop(engine);

    // The "restarted process": an identical database rebuilt from scratch, a
    // fresh engine warmed from the snapshot.
    let db = cache_workload_db(shops, per_shop);
    let start = std::time::Instant::now();
    let restarted = Engine::with_artifacts_from(db, &path).expect("snapshot loads");
    let load_s = start.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();

    let prepared = restarted.prepare(&query).expect("workload query prepares");
    let start = std::time::Instant::now();
    let warm = prepared.execute(&options).expect("warm-from-disk run");
    let warm_disk_first_s = start.elapsed().as_secs_f64();
    let disk_stats = restarted.cache_stats();
    assert_eq!(
        cold.tuples.len(),
        warm.tuples.len(),
        "warm-from-disk result must have every tuple"
    );
    for (a, b) in cold.tuples.iter().zip(&warm.tuples) {
        assert_eq!(
            a.confidence.to_bits(),
            b.confidence.to_bits(),
            "warm-from-disk results must be bit-identical"
        );
    }

    WarmRestartReport {
        cold_first_s,
        warm_live_s,
        save_s,
        load_s,
        warm_disk_first_s,
        snapshot_bytes: stats.bytes,
        // Clamp divisors so the ratios stay finite below clock resolution.
        disk_vs_live: warm_disk_first_s / warm_live_s.max(1e-9),
        cold_vs_disk: cold_first_s / warm_disk_first_s.max(1e-9),
        warm_disk_hits: disk_stats.hits,
        warm_disk_rebuilds: disk_stats.misses + disk_stats.arena_misses,
    }
}

/// The report of the incremental-update experiment: latency of a prepared
/// query over *untouched* tables before and after a 1-tuple `Engine::apply_delta`
/// insert into a different table, plus the counters proving the delta evicted
/// nothing the query needed.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// First execution on a cold engine.
    pub cold_first_s: f64,
    /// Mean of the subsequent fully-warm executions (mean of 5).
    pub warm_s: f64,
    /// Wall-clock of `Engine::apply_delta` (validate + mutate + selective evict).
    pub delta_apply_s: f64,
    /// First execution after the delta (the query's tables are untouched).
    pub warm_after_delta_s: f64,
    /// `warm_after_delta_s / warm_s` — the CI gate requires ≤ 2× (after a
    /// noise floor): a delta to an unrelated table must not cool the caches.
    pub after_vs_warm: f64,
    /// `cold_first_s / warm_after_delta_s` — how far below cold the post-delta
    /// query stays.
    pub cold_vs_after: f64,
    /// Artifact-cache entries the delta evicted — 0 for an insert-only delta.
    pub evicted_artifacts: u64,
    /// Artifact-cache entries the delta kept (must be > 0: the warm state
    /// survived).
    pub kept_artifacts: u64,
    /// Distribution + arena (re)compilations during the post-delta execution —
    /// must be 0: everything is served from the surviving cache entries.
    pub recompiles_after_delta: u64,
}

impl IncrementalReport {
    /// The report as `(field name, JSON-ready value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("cold_first_s", format!("{:.6}", self.cold_first_s)),
            ("warm_s", format!("{:.6}", self.warm_s)),
            ("delta_apply_s", format!("{:.6}", self.delta_apply_s)),
            (
                "warm_after_delta_s",
                format!("{:.6}", self.warm_after_delta_s),
            ),
            ("after_vs_warm", format!("{:.2}", self.after_vs_warm)),
            ("cold_vs_after", format!("{:.2}", self.cold_vs_after)),
            ("evicted_artifacts", format!("{}", self.evicted_artifacts)),
            ("kept_artifacts", format!("{}", self.kept_artifacts)),
            (
                "recompiles_after_delta",
                format!("{}", self.recompiles_after_delta),
            ),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the incremental-update experiment table.
pub const INCREMENTAL_HEADER: [&str; 9] = [
    "cold_first_s",
    "warm_s",
    "delta_apply_s",
    "after_delta_s",
    "after_vs_warm",
    "cold_vs_after",
    "evicted",
    "kept",
    "recompiles",
];

/// **Incremental-update experiment** (not in the paper): the delta-aware
/// serving scenario. A prepared aggregation query over `S ⋈ PS` runs cold,
/// then fully warm; a 1-tuple [`pvc_db::Delta`] insert lands in the unrelated
/// `P1`; the same query then re-runs and must still be answered from the
/// surviving cache entries — warm-after-delta within ~2× of fully-warm, zero
/// recompilations, bit-identical results — versus today's detach-everything
/// cold cliff.
pub fn experiment_incremental(scale: Scale) -> IncrementalReport {
    use pvc_db::{AggSpec, Delta, Predicate, Query};
    let full = scale.is_full();
    let (shops, per_shop) = if full { (60, 8) } else { (24, 5) };
    let warm_runs = 5;
    let options = EvalOptions::default();
    // Touches S and PS only; the delta below lands in P1.
    let query = Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 60))
        .project(["shop"]);

    let mut engine = Engine::new(cache_workload_db(shops, per_shop));
    let prepared = engine.prepare(&query).expect("workload query prepares");
    let start = std::time::Instant::now();
    let cold = prepared.execute(&options).expect("cold run");
    let cold_first_s = start.elapsed().as_secs_f64();
    assert!(!cold.tuples.is_empty(), "workload must produce tuples");

    let start = std::time::Instant::now();
    for _ in 0..warm_runs {
        prepared.execute(&options).expect("warm run");
    }
    let warm_s = start.elapsed().as_secs_f64() / warm_runs as f64;
    drop(prepared);

    let before = engine.cache_stats();
    let start = std::time::Instant::now();
    let delta_stats = engine
        .apply_delta(Delta::new().insert("P1", vec![10_000i64.into(), 1i64.into()], 0.7))
        .expect("delta applies");
    let delta_apply_s = start.elapsed().as_secs_f64();

    let prepared = engine.prepare(&query).expect("query re-prepares");
    let start = std::time::Instant::now();
    let after = prepared.execute(&options).expect("post-delta run");
    let warm_after_delta_s = start.elapsed().as_secs_f64();
    let stats = engine.cache_stats();

    // The query's tables are untouched: results must be bit-identical.
    assert_eq!(cold.tuples.len(), after.tuples.len());
    for (a, b) in cold.tuples.iter().zip(&after.tuples) {
        assert_eq!(
            a.confidence.to_bits(),
            b.confidence.to_bits(),
            "post-delta results over untouched tables must be bit-identical"
        );
    }

    IncrementalReport {
        cold_first_s,
        warm_s,
        delta_apply_s,
        warm_after_delta_s,
        // Clamp divisors so the ratios stay finite below clock resolution.
        after_vs_warm: warm_after_delta_s / warm_s.max(1e-9),
        cold_vs_after: cold_first_s / warm_after_delta_s.max(1e-9),
        evicted_artifacts: delta_stats.evicted_artifacts as u64,
        kept_artifacts: delta_stats.kept_artifacts as u64,
        recompiles_after_delta: (stats.misses - before.misses)
            + (stats.arena_misses - before.arena_misses),
    }
}

/// **Serving experiment** (not in the paper): sustained throughput and tail
/// latency of the long-lived `pvc-serve` runtime under a closed-loop mixed
/// workload — persistent worker pool, cross-query batching, admission control
/// and periodic compaction all engaged at once. The report is
/// [`pvc_serve::loadgen::LoadReport`]; the regression gate checks `qps > 0`,
/// `rejected == 0` at the default queue depth, and the p99 latency against the
/// committed baseline (`PVC_MAX_P99_RATIO`).
pub fn experiment_serve(scale: Scale) -> LoadReport {
    let full = scale.is_full();
    let config = LoadConfig {
        tenants: 2,
        clients: if full { 8 } else { 4 },
        requests_per_client: if full { 100 } else { 25 },
        shops: if full { 24 } else { 12 },
        per_shop: 3,
        serve: ServeConfig::default().with_compact_every(4),
        timeout: None,
    };
    pvc_serve::loadgen::run(&config).expect("load run completes")
}

/// The report of the parallel-execution experiment: cold wall-clock of the scale
/// workload at 1/2/4 worker threads (fresh engine per measurement), plus streaming
/// latency-to-first-tuple at the highest thread count.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Result tuples of the workload query.
    pub tuples: usize,
    /// `std::thread::available_parallelism()` on the machine that produced the
    /// report (speedups are only meaningful when this is > 1).
    pub cores: usize,
    /// Cold execution, `threads = 1`.
    pub cold_1t_s: f64,
    /// Cold execution, `threads = 2`.
    pub cold_2t_s: f64,
    /// Cold execution, `threads = 4`.
    pub cold_4t_s: f64,
    /// `cold_1t_s / cold_2t_s`.
    pub speedup_2v1: f64,
    /// `cold_1t_s / cold_4t_s`.
    pub speedup_4v1: f64,
    /// Cold streaming at `threads = 4`: seconds until the first tuple arrived.
    pub first_tuple_s: f64,
    /// Cold streaming at `threads = 4`: seconds until the stream was exhausted.
    pub full_stream_s: f64,
    /// Why the regression gate's parallel-speedup check will stay dormant for
    /// this report (`None` on machines with >= 4 cores, where the check is
    /// live). Recorded explicitly so a baseline produced on a small container
    /// says so in the JSON instead of silently arming nothing.
    pub skipped_reason: Option<String>,
}

impl ParallelReport {
    /// The report as `(field name, JSON-ready value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("tuples", format!("{}", self.tuples)),
            ("cores", format!("{}", self.cores)),
            ("cold_1t_s", format!("{:.6}", self.cold_1t_s)),
            ("cold_2t_s", format!("{:.6}", self.cold_2t_s)),
            ("cold_4t_s", format!("{:.6}", self.cold_4t_s)),
            ("speedup_2v1", format!("{:.2}", self.speedup_2v1)),
            ("speedup_4v1", format!("{:.2}", self.speedup_4v1)),
            ("first_tuple_s", format!("{:.6}", self.first_tuple_s)),
            ("full_stream_s", format!("{:.6}", self.full_stream_s)),
            (
                "skipped_reason",
                match &self.skipped_reason {
                    Some(reason) => {
                        format!("\"{}\"", reason.replace('\\', "\\\\").replace('"', "\\\""))
                    }
                    None => "null".to_string(),
                },
            ),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the parallel experiment table.
pub const PARALLEL_HEADER: [&str; 10] = [
    "tuples",
    "cores",
    "cold_1t_s",
    "cold_2t_s",
    "cold_4t_s",
    "speedup_2v1",
    "speedup_4v1",
    "first_tuple_s",
    "full_stream_s",
    "skipped_reason",
];

/// **Parallel experiment** (not in the paper): per-tuple d-tree compilation fanned
/// out over worker threads. The workload is the repeated-workload query (general
/// compilation — every tuple carries a conditional expression that needs a d-tree),
/// executed **cold** (fresh engine) once per thread count so no cache warmth leaks
/// between measurements. Results are verified bit-identical across thread counts
/// before any timing is reported.
pub fn experiment_parallel(scale: Scale) -> ParallelReport {
    let full = scale == Scale::Full;
    let (shops, per_shop) = if full { (96, 10) } else { (36, 6) };
    let query = cache_workload_query(false);

    let cold_run = |threads: usize| {
        let engine = Engine::new(cache_workload_db(shops, per_shop));
        let prepared = engine.prepare(&query).expect("workload query prepares");
        let options = EvalOptions::default().with_threads(threads);
        let start = std::time::Instant::now();
        let result = prepared.execute(&options).expect("cold run");
        (start.elapsed().as_secs_f64(), result)
    };

    let (cold_1t_s, reference) = cold_run(1);
    let (cold_2t_s, r2) = cold_run(2);
    let (cold_4t_s, r4) = cold_run(4);
    for (result, threads) in [(&r2, 2), (&r4, 4)] {
        assert_eq!(result.tuples.len(), reference.tuples.len());
        for (a, b) in result.tuples.iter().zip(&reference.tuples) {
            assert_eq!(
                a.confidence.to_bits(),
                b.confidence.to_bits(),
                "threads={threads} must be bit-identical to sequential"
            );
        }
    }

    // Streaming latency: cold engine, time to first tuple vs. full drain.
    let engine = Engine::new(cache_workload_db(shops, per_shop));
    let prepared = engine.prepare(&query).expect("workload query prepares");
    let start = std::time::Instant::now();
    let mut stream = prepared
        .execute_streaming(&EvalOptions::default().with_threads(4))
        .expect("streaming run");
    let first = stream
        .next()
        .expect("at least one tuple")
        .expect("tuple ok");
    let first_tuple_s = start.elapsed().as_secs_f64();
    assert_eq!(
        first.confidence.to_bits(),
        reference.tuples[0].confidence.to_bits()
    );
    for item in &mut stream {
        item.expect("tuple ok");
    }
    let full_stream_s = start.elapsed().as_secs_f64();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    ParallelReport {
        tuples: reference.tuples.len(),
        cores,
        cold_1t_s,
        cold_2t_s,
        cold_4t_s,
        speedup_2v1: cold_1t_s / cold_2t_s.max(1e-9),
        speedup_4v1: cold_1t_s / cold_4t_s.max(1e-9),
        first_tuple_s,
        full_stream_s,
        skipped_reason: (cores < 4)
            .then(|| format!("machine has {cores} core(s); the speedup gate needs >= 4")),
    }
}

/// The report of the distribution-kernel experiment: convolution
/// micro-throughput of the sparse (sorted-vector) and dense (offset-indexed)
/// representations, plus cold first-tuple latency for a threshold MIN query
/// (which exercises pruning, the arena evaluator and the one-sided CDF fold
/// end-to-end).
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Support size of the convolved operands.
    pub support: usize,
    /// Seconds per convolution on a *scattered* integer support (the sparse
    /// generate–sort–coalesce kernel).
    pub sparse_conv_s: f64,
    /// Seconds per convolution on a *contiguous* COUNT-style support through the
    /// adaptive kernel (dense direct indexing).
    pub dense_conv_s: f64,
    /// Seconds per convolution on the same contiguous support through the generic
    /// sparse kernel (what the dense path replaces).
    pub dense_input_sparse_s: f64,
    /// `dense_input_sparse_s / dense_conv_s` — the dense fast path's win on
    /// dense-friendly input.
    pub dense_speedup: f64,
    /// Whether [`DistRepr::of`] chose the dense representation for the contiguous
    /// operand (behavioural regression guard).
    pub dense_chosen: bool,
    /// Cell count of each operand in the FFT crossover probe.
    pub fft_support: usize,
    /// Seconds per convolution of the FFT-probe operands through the adaptive
    /// kernel (the spectral path past the crossover).
    pub fft_conv_s: f64,
    /// Seconds per convolution of the same operands through the exact chunked
    /// kernel (what the spectral path replaces).
    pub fft_naive_s: f64,
    /// `fft_naive_s / fft_conv_s` — the spectral path's win past the crossover.
    pub fft_speedup: f64,
    /// Whether [`fft_would_run`] selects the spectral path for the probe
    /// operands (behavioural regression guard).
    pub fft_chosen: bool,
    /// Number of terms in the dense-chain fold scenario.
    pub chain_len: usize,
    /// Seconds per full fold with the accumulator threaded through the chained
    /// kernel (dense end to end, one materialisation at the root).
    pub chain_chained_s: f64,
    /// Seconds per full fold with a dense→sparse round-trip after every step
    /// (the pre-chaining behaviour).
    pub chain_stepwise_s: f64,
    /// `chain_stepwise_s / chain_chained_s` — what staying dense buys.
    pub chain_speedup: f64,
    /// Cold streaming latency to the first tuple of the threshold MIN query.
    pub min_first_tuple_s: f64,
    /// Cold wall-clock of the full threshold MIN query.
    pub min_total_s: f64,
    /// Why the FFT speedup gate is dormant for this run (operands below the
    /// crossover), or `None` when the gate should be enforced.
    pub skipped_reason: Option<String>,
}

impl KernelReport {
    /// The report as `(field name, JSON-ready value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("support", format!("{}", self.support)),
            ("sparse_conv_s", format!("{:.9}", self.sparse_conv_s)),
            ("dense_conv_s", format!("{:.9}", self.dense_conv_s)),
            (
                "dense_input_sparse_s",
                format!("{:.9}", self.dense_input_sparse_s),
            ),
            ("dense_speedup", format!("{:.2}", self.dense_speedup)),
            ("dense_chosen", format!("{}", u8::from(self.dense_chosen))),
            ("fft_support", format!("{}", self.fft_support)),
            ("fft_conv_s", format!("{:.9}", self.fft_conv_s)),
            ("fft_naive_s", format!("{:.9}", self.fft_naive_s)),
            ("fft_speedup", format!("{:.2}", self.fft_speedup)),
            ("fft_chosen", format!("{}", u8::from(self.fft_chosen))),
            ("chain_len", format!("{}", self.chain_len)),
            ("chain_chained_s", format!("{:.9}", self.chain_chained_s)),
            ("chain_stepwise_s", format!("{:.9}", self.chain_stepwise_s)),
            ("chain_speedup", format!("{:.2}", self.chain_speedup)),
            (
                "min_first_tuple_s",
                format!("{:.6}", self.min_first_tuple_s),
            ),
            ("min_total_s", format!("{:.6}", self.min_total_s)),
            (
                "skipped_reason",
                match &self.skipped_reason {
                    Some(reason) => format!("{:?}", reason),
                    None => "null".to_string(),
                },
            ),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the kernel experiment table.
pub const KERNEL_HEADER: [&str; 18] = [
    "support",
    "sparse_conv_s",
    "dense_conv_s",
    "dense_in_sparse_s",
    "dense_speedup",
    "dense_chosen",
    "fft_support",
    "fft_conv_s",
    "fft_naive_s",
    "fft_speedup",
    "fft_chosen",
    "chain_len",
    "chain_chained_s",
    "chain_stepwise_s",
    "chain_speedup",
    "min_first_s",
    "min_total_s",
    "skipped_reason",
];

/// A uniform COUNT-style distribution over the contiguous range `0..=n`.
fn contiguous_dist(n: i64) -> MonoidDist {
    let p = 1.0 / (n + 1) as f64;
    Dist::from_pairs((0..=n).map(|v| (MonoidValue::Fin(v), p)))
}

/// A scattered integer distribution: `n + 1` values spread so far apart that the
/// adaptive kernel must stay sparse.
fn scattered_dist(n: i64) -> MonoidDist {
    let p = 1.0 / (n + 1) as f64;
    Dist::from_pairs((0..=n).map(|v| (MonoidValue::Fin(v * 1_000_003), p)))
}

fn time_per_iter(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// The shop/offer database used by the threshold-MIN latency probe, and the
/// query: the minimum offered price per shop, filtered by `MIN ≥ c` — the exact
/// shape whose evaluation the one-sided CDF fold accelerates.
fn kernel_min_query() -> pvc_db::Query {
    use pvc_db::{AggSpec, Predicate, Query};
    Query::table("S")
        .join(Query::table("PS"), &[("sid", "ps_sid")])
        .group_agg(["shop"], vec![AggSpec::new(AggOp::Min, "price", "P")])
        .select(Predicate::AggCmpConst("P".into(), CmpOp::Ge, 20))
        .project(["shop"])
}

/// **Kernel experiment** (not in the paper): micro-throughput of the convolution
/// kernel in its sparse and dense representations, plus cold first-tuple latency
/// of a threshold MIN query. Guards the flat-kernel rewrite against regressions.
pub fn experiment_kernel(scale: Scale) -> KernelReport {
    let full = scale == Scale::Full;
    let n: i64 = if full { 256 } else { 64 };
    let iters = if full { 2000 } else { 300 };

    let contiguous = contiguous_dist(n);
    let scattered = scattered_dist(n);
    assert!(
        DistRepr::of(&contiguous).is_dense(),
        "contiguous COUNT support must pick the dense representation"
    );
    assert!(
        !DistRepr::of(&scattered).is_dense(),
        "scattered support must stay sparse"
    );

    let sparse_conv_s = time_per_iter(iters, || {
        std::hint::black_box(convolve_additive(&scattered, &scattered));
    });
    let dense_conv_s = time_per_iter(iters, || {
        std::hint::black_box(convolve_additive(&contiguous, &contiguous));
    });
    let dense_input_sparse_s = time_per_iter(iters, || {
        std::hint::black_box(contiguous.convolve(&contiguous, |x, y| x.saturating_add(y)));
    });

    // FFT crossover probe: operands long enough that the adaptive kernel takes
    // the spectral path, timed against the exact chunked loop on the same
    // input. Lengths are scale-independent floors — below the crossover the
    // comparison would measure two runs of the same code.
    let fft_n: i64 = if full { 4096 } else { 2048 };
    let fft_iters = if full { 40 } else { 60 };
    let fft_operand =
        DenseDist::from_dist(&contiguous_dist(fft_n - 1)).expect("contiguous support is dense");
    let fft_chosen = fft_would_run(fft_operand.len(), fft_operand.len());
    let fft_conv_s = time_per_iter(fft_iters, || {
        std::hint::black_box(fft_operand.convolve_add(&fft_operand));
    });
    let fft_naive_s = time_per_iter(fft_iters, || {
        std::hint::black_box(fft_operand.convolve_add_exact(&fft_operand));
    });

    // Dense-chain fold: many small additive convolutions in sequence — the
    // aggregate-evaluation shape — with the accumulator either kept dense end
    // to end or round-tripped through the sparse form after every step.
    let chain_len = if full { 96 } else { 48 };
    let term = contiguous_dist(3);
    let chain_chained_s = time_per_iter(iters, || {
        let mut scratch = Vec::new();
        let mut acc = ChainVal::Sparse(term.clone());
        for _ in 1..chain_len {
            acc = convolve_additive_chained(acc, ChainVal::Sparse(term.clone()), &mut scratch);
        }
        std::hint::black_box(acc.into_dist());
    });
    let chain_stepwise_s = time_per_iter(iters, || {
        let mut acc = term.clone();
        for _ in 1..chain_len {
            acc = convolve_additive(&acc, &term);
        }
        std::hint::black_box(acc);
    });

    // Threshold MIN query: cold engine, streaming first-tuple latency plus the
    // full cold execution.
    let (shops, per_shop) = if full { (60, 8) } else { (24, 5) };
    let engine = Engine::new(cache_workload_db(shops, per_shop));
    let prepared = engine.prepare(&kernel_min_query()).expect("query prepares");
    let start = std::time::Instant::now();
    let mut stream = prepared
        .execute_streaming(&EvalOptions::default())
        .expect("streaming run");
    stream
        .next()
        .expect("at least one tuple")
        .expect("tuple ok");
    let min_first_tuple_s = start.elapsed().as_secs_f64();
    drop(stream);

    let engine = Engine::new(cache_workload_db(shops, per_shop));
    let prepared = engine.prepare(&kernel_min_query()).expect("query prepares");
    let start = std::time::Instant::now();
    let result = prepared.execute(&EvalOptions::default()).expect("cold run");
    let min_total_s = start.elapsed().as_secs_f64();
    assert!(
        !result.tuples.is_empty(),
        "threshold query must return rows"
    );

    KernelReport {
        support: (n + 1) as usize,
        sparse_conv_s,
        dense_conv_s,
        dense_input_sparse_s,
        dense_speedup: dense_input_sparse_s / dense_conv_s.max(1e-12),
        dense_chosen: DistRepr::of(&contiguous).is_dense(),
        fft_support: fft_n as usize,
        fft_conv_s,
        fft_naive_s,
        fft_speedup: fft_naive_s / fft_conv_s.max(1e-12),
        fft_chosen,
        chain_len,
        chain_chained_s,
        chain_stepwise_s,
        chain_speedup: chain_stepwise_s / chain_chained_s.max(1e-12),
        min_first_tuple_s,
        min_total_s,
        skipped_reason: (!fft_chosen).then(|| {
            format!(
                "probe operands ({fft_n} cells) sit below the FFT crossover; \
                 the fft_speedup gate needs the spectral path"
            )
        }),
    }
}

/// The report of the observability-overhead experiment: warm wall-clock of the
/// repeated workload with observability fully disabled, with the metrics
/// registry enabled, and with full span tracing + per-query profiles — plus the
/// raw span ring-buffer push throughput.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Warm execution with metrics and tracing both disabled (the default).
    pub disabled_s: f64,
    /// Warm execution with the metrics registry enabled (counters, gauges,
    /// histograms; no span tracing).
    pub metrics_s: f64,
    /// Warm execution with metrics + span tracing + per-query profile
    /// collection all enabled.
    pub tracing_s: f64,
    /// `metrics_s / disabled_s`.
    pub metrics_overhead: f64,
    /// `tracing_s / disabled_s`.
    pub tracing_overhead: f64,
    /// Nanoseconds per `start`/`finish` pair pushed through a [`obs::Trace`]
    /// ring buffer (the raw cost floor of one traced span).
    pub span_push_ns: f64,
}

impl ObsReport {
    /// The report as `(field name, JSON-ready value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("disabled_s", format!("{:.6}", self.disabled_s)),
            ("metrics_s", format!("{:.6}", self.metrics_s)),
            ("tracing_s", format!("{:.6}", self.tracing_s)),
            ("metrics_overhead", format!("{:.3}", self.metrics_overhead)),
            ("tracing_overhead", format!("{:.3}", self.tracing_overhead)),
            ("span_push_ns", format!("{:.1}", self.span_push_ns)),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the observability experiment table.
pub const OBS_HEADER: [&str; 6] = [
    "disabled_s",
    "metrics_s",
    "tracing_s",
    "metrics_overhead",
    "tracing_overhead",
    "span_push_ns",
];

/// **Observability experiment** (not in the paper): what does watching cost?
/// One engine is warmed on the repeated workload, then the same warm execution
/// is timed under three global modes: observability fully disabled, metrics
/// only, and metrics + tracing + per-query profiles. Results are asserted
/// bit-identical across modes before any timing is reported. Mutates the
/// process-wide observability flags; they are restored to disabled on return
/// (run it last, and never concurrently with other measurements).
pub fn experiment_obs(scale: Scale) -> ObsReport {
    let full = scale == Scale::Full;
    let (shops, per_shop) = if full { (60, 8) } else { (24, 5) };
    let warm_runs = if full { 10 } else { 5 };
    let engine = Engine::new(cache_workload_db(shops, per_shop));
    let prepared = engine
        .prepare(&cache_workload_query(false))
        .expect("workload query prepares");
    let options = EvalOptions::default();
    // Warm the caches once so every timed run measures the same warm path.
    let reference = prepared.execute(&options).expect("warm-up run");

    let timed = |options: &EvalOptions| -> f64 {
        let start = std::time::Instant::now();
        for _ in 0..warm_runs {
            let result = prepared.execute(options).expect("warm run");
            for (a, b) in result.tuples.iter().zip(&reference.tuples) {
                assert_eq!(
                    a.confidence.to_bits(),
                    b.confidence.to_bits(),
                    "observability must not change results"
                );
            }
        }
        start.elapsed().as_secs_f64() / warm_runs as f64
    };

    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    let disabled_s = timed(&options);

    obs::set_metrics_enabled(true);
    let metrics_s = timed(&options);

    obs::set_tracing_enabled(true);
    let profile_options = options.clone().with_profile();
    let tracing_s = timed(&profile_options);

    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset();

    // Raw span-buffer throughput: start/finish pairs against a live ring.
    let pushes = if full { 1_000_000u64 } else { 200_000u64 };
    let trace = obs::Trace::new(1024);
    let start = std::time::Instant::now();
    for _ in 0..pushes {
        let seq = trace.start("tuple");
        trace.finish(seq);
    }
    let span_push_ns = start.elapsed().as_nanos() as f64 / pushes as f64;

    ObsReport {
        disabled_s,
        metrics_s,
        tracing_s,
        metrics_overhead: metrics_s / disabled_s.max(1e-9),
        tracing_overhead: tracing_s / disabled_s.max(1e-9),
        span_push_ns,
    }
}

/// The report of the durability experiment: per-delta apply cost without a
/// log and under each WAL fsync discipline, the resulting overhead ratios,
/// full-log replay time and the recovery-to-first-warm-query latency of a
/// journalled snapshot restore.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Deltas applied per mode (`PVC_BENCH_FULL=1` uses 1000).
    pub deltas: u64,
    /// Total wall-clock of applying every delta with no WAL attached.
    pub no_wal_total_s: f64,
    /// Same deltas with a WAL under `Durability::None` (append, never fsync).
    pub wal_none_total_s: f64,
    /// Under `Durability::Batch` (one fsync at the end of the run).
    pub wal_batch_total_s: f64,
    /// Under `Durability::Always` (fsync per acknowledged delta).
    pub wal_always_total_s: f64,
    /// `wal_none_total_s / no_wal_total_s` — pure logging overhead; the CI
    /// gate bounds this (`PVC_MAX_WAL_OVERHEAD_RATIO`).
    pub overhead_none: f64,
    /// `wal_always_total_s / no_wal_total_s` — the price of per-delta fsync.
    pub overhead_always: f64,
    /// Bytes in the WAL after the `Always` run.
    pub wal_bytes: u64,
    /// Records replayed by recovery (must equal [`deltas`](Self::deltas)).
    pub replayed: u64,
    /// Wall-clock of cold recovery: open + replay the full log.
    pub replay_s: f64,
    /// Wall-clock from `Engine::recover_with` on a post-delta snapshot
    /// (journal restore, rotated log) through the first warm query.
    pub recover_first_query_s: f64,
}

impl DurabilityReport {
    /// The report as `(field name, JSON-ready value)` pairs.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        vec![
            ("deltas", format!("{}", self.deltas)),
            ("no_wal_total_s", format!("{:.6}", self.no_wal_total_s)),
            ("wal_none_total_s", format!("{:.6}", self.wal_none_total_s)),
            (
                "wal_batch_total_s",
                format!("{:.6}", self.wal_batch_total_s),
            ),
            (
                "wal_always_total_s",
                format!("{:.6}", self.wal_always_total_s),
            ),
            ("overhead_none", format!("{:.2}", self.overhead_none)),
            ("overhead_always", format!("{:.2}", self.overhead_always)),
            ("wal_bytes", format!("{}", self.wal_bytes)),
            ("replayed", format!("{}", self.replayed)),
            ("replay_s", format!("{:.6}", self.replay_s)),
            (
                "recover_first_query_s",
                format!("{:.6}", self.recover_first_query_s),
            ),
        ]
    }

    /// Format as a table row (same order as [`fields`](Self::fields)).
    pub fn cells(&self) -> Vec<String> {
        self.fields().into_iter().map(|(_, v)| v).collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Header of the durability experiment table.
pub const DURABILITY_HEADER: [&str; 11] = [
    "deltas",
    "no_wal_s",
    "wal_none_s",
    "wal_batch_s",
    "wal_always_s",
    "ovh_none",
    "ovh_always",
    "wal_bytes",
    "replayed",
    "replay_s",
    "recover_q1_s",
];

/// **Durability experiment** (not in the paper): what crash safety costs. The
/// same insert stream is applied four times — no WAL, then logged under each
/// fsync discipline — on fresh engines; the `Always` log is then recovered
/// twice: cold (full replay, timing `replay_s`) and warm from a post-delta
/// snapshot whose embedded journal re-derives the mutated state against the
/// base database, through the first query (`recover_first_query_s`).
pub fn experiment_durability(scale: Scale) -> DurabilityReport {
    use pvc_db::{Delta, DeltaWal, Durability, RecoverOptions};
    use std::sync::Arc;
    let full = scale.is_full();
    let n: u64 = if full { 1000 } else { 200 };
    let (shops, per_shop) = if full { (24, 5) } else { (12, 3) };
    let dir = std::env::temp_dir().join(format!("pvc-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let storage = pvc_core::FsStorage::shared();

    let deltas: Vec<Delta> = (0..n)
        .map(|i| {
            Delta::new().insert(
                "P1",
                vec![(100_000 + i as i64).into(), ((i % 7) as i64).into()],
                0.25 + (i % 50) as f64 / 100.0,
            )
        })
        .collect();

    // Baseline: the same applies with no log attached.
    let mut engine = Engine::new(cache_workload_db(shops, per_shop));
    let start = std::time::Instant::now();
    for delta in &deltas {
        engine.apply_delta(delta.clone()).expect("delta applies");
    }
    let no_wal_total_s = start.elapsed().as_secs_f64();
    drop(engine);

    let run_mode = |mode: Durability, name: &str| -> (f64, u64) {
        let path = dir.join(format!("{name}.wal"));
        let mut engine = Engine::new(cache_workload_db(shops, per_shop));
        let (wal, logged) =
            DeltaWal::open(Arc::clone(&storage), &path, String::new(), mode).expect("wal opens");
        assert!(logged.is_empty(), "fresh log must be empty");
        engine.attach_wal(wal);
        let start = std::time::Instant::now();
        for delta in &deltas {
            engine.apply_delta(delta.clone()).expect("delta applies");
        }
        // Under Batch this is the end-of-run fsync the serve layer issues per
        // mutation batch; under None/Always it is a no-op.
        engine.sync_wal().expect("wal syncs");
        let total = start.elapsed().as_secs_f64();
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        (total, bytes)
    };
    let (wal_none_total_s, _) = run_mode(Durability::None, "none");
    let (wal_batch_total_s, _) = run_mode(Durability::Batch, "batch");
    let (wal_always_total_s, wal_bytes) = run_mode(Durability::Always, "always");

    // Cold recovery: open the full log and replay every record.
    let options = RecoverOptions::new(dir.join("always.wal")).with_durability(Durability::Always);
    let start = std::time::Instant::now();
    let (mut engine, report) = Engine::recover_with(
        Arc::clone(&storage),
        cache_workload_db(shops, per_shop),
        &options,
    )
    .expect("cold recovery");
    let replay_s = start.elapsed().as_secs_f64();
    let replayed = report.wal_replayed as u64;
    assert_eq!(replayed, n, "every logged delta must replay");

    // Warm the workload query, snapshot (journal included), rotate the log.
    let query = cache_workload_query(false);
    let eval = EvalOptions::default();
    let reference = engine
        .prepare(&query)
        .expect("workload query prepares")
        .execute(&eval)
        .expect("warm-up run");
    let snap = dir.join("always.snap");
    engine
        .save_artifacts_with(storage.as_ref(), &snap)
        .expect("snapshot saves");
    let hwm = engine.wal_high_water();
    engine
        .wal_mut()
        .expect("wal attached")
        .rotate(hwm)
        .expect("log rotates");
    drop(engine);

    // Recovery-to-first-warm-query: journalled snapshot restore, empty log.
    let options = options.with_snapshot(&snap);
    let start = std::time::Instant::now();
    let (engine, report) = Engine::recover_with(
        Arc::clone(&storage),
        cache_workload_db(shops, per_shop),
        &options,
    )
    .expect("warm recovery");
    let first = engine
        .prepare(&query)
        .expect("workload query re-prepares")
        .execute(&eval)
        .expect("first warm query");
    let recover_first_query_s = start.elapsed().as_secs_f64();
    assert!(
        report.snapshot_restored,
        "post-delta snapshot must restore against the base db: {report:?}"
    );
    assert_eq!(report.wal_replayed, 0, "rotated log must be empty");
    assert_eq!(first.tuples.len(), reference.tuples.len());
    for (a, b) in first.tuples.iter().zip(&reference.tuples) {
        assert_eq!(
            a.confidence.to_bits(),
            b.confidence.to_bits(),
            "recovered results must be bit-identical"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    DurabilityReport {
        deltas: n,
        no_wal_total_s,
        wal_none_total_s,
        wal_batch_total_s,
        wal_always_total_s,
        // Clamp divisors so the ratios stay finite below clock resolution.
        overhead_none: wal_none_total_s / no_wal_total_s.max(1e-9),
        overhead_always: wal_always_total_s / no_wal_total_s.max(1e-9),
        wal_bytes,
        replayed,
        replay_s,
        recover_first_query_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_header_matches_report_fields() {
        let report = CacheHitReport {
            cold_s: 1.0,
            warm_s: 0.5,
            cross_s: 0.25,
            warm_speedup: 2.0,
            hits: 1,
            misses: 2,
            cross_query_hits: 3,
            evictions: 4,
            entries: 5,
            arenas: 6,
            arena_reused: true,
        };
        let names: Vec<&str> = report.fields().into_iter().map(|(k, _)| k).collect();
        // The smoke-table header labels one column per field, in the same order
        // (the header may abbreviate, so compare counts and spot-check keys).
        assert_eq!(names.len(), CACHE_HEADER.len());
        assert_eq!(names[0], CACHE_HEADER[0]);
        assert!(report.to_json().contains("\"cross_query_hits\": 3"));
    }

    #[test]
    fn cache_experiment_reports_cross_query_hits() {
        // A miniature run of the repeated-workload scenario: the commuted rendering
        // must be served by cross-query hits.
        let db = cache_workload_db(4, 3);
        let engine = Engine::new(db);
        let pa = engine.prepare(&cache_workload_query(false)).unwrap();
        pa.execute(&EvalOptions::default()).unwrap();
        let pb = engine.prepare(&cache_workload_query(true)).unwrap();
        pb.execute(&EvalOptions::default()).unwrap();
        let stats = engine.cache_stats();
        assert!(stats.cross_query_hits >= 1, "{stats:?}");
    }

    #[test]
    fn cache_experiment_shares_across_threads() {
        // A miniature multi-threaded run: the cross-rendering reuse must survive
        // workers filling the cache concurrently.
        let db = cache_workload_db(4, 3);
        let engine = Engine::new(db);
        let options = EvalOptions::default().with_threads(3);
        let pa = engine.prepare(&cache_workload_query(false)).unwrap();
        pa.execute(&options).unwrap();
        let pb = engine.prepare(&cache_workload_query(true)).unwrap();
        pb.execute(&options).unwrap();
        let stats = engine.cache_stats();
        assert!(stats.cross_query_hits >= 1, "{stats:?}");
    }

    #[test]
    fn parallel_header_matches_report_fields() {
        let report = ParallelReport {
            tuples: 10,
            cores: 4,
            cold_1t_s: 1.0,
            cold_2t_s: 0.6,
            cold_4t_s: 0.4,
            speedup_2v1: 1.67,
            speedup_4v1: 2.5,
            first_tuple_s: 0.05,
            full_stream_s: 0.4,
            skipped_reason: None,
        };
        let names: Vec<&str> = report.fields().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names.len(), PARALLEL_HEADER.len());
        assert_eq!(names[0], PARALLEL_HEADER[0]);
        assert!(report.to_json().contains("\"speedup_4v1\": 2.50"));
        assert!(report.to_json().contains("\"skipped_reason\": null"));
        let mut skipped = report.clone();
        skipped.skipped_reason = Some("machine has 1 core(s)".to_string());
        assert!(skipped
            .to_json()
            .contains("\"skipped_reason\": \"machine has 1 core(s)\""));
    }

    #[test]
    fn kernel_header_matches_report_fields() {
        let report = KernelReport {
            support: 65,
            sparse_conv_s: 1e-5,
            dense_conv_s: 1e-6,
            dense_input_sparse_s: 5e-6,
            dense_speedup: 5.0,
            dense_chosen: true,
            fft_support: 2048,
            fft_conv_s: 2e-4,
            fft_naive_s: 1e-3,
            fft_speedup: 5.0,
            fft_chosen: true,
            chain_len: 48,
            chain_chained_s: 1e-4,
            chain_stepwise_s: 3e-4,
            chain_speedup: 3.0,
            min_first_tuple_s: 0.01,
            min_total_s: 0.05,
            skipped_reason: None,
        };
        let names: Vec<&str> = report.fields().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names.len(), KERNEL_HEADER.len());
        assert_eq!(names[0], KERNEL_HEADER[0]);
        assert!(report.to_json().contains("\"dense_chosen\": 1"));
        assert!(report.to_json().contains("\"fft_chosen\": 1"));
        assert!(report.to_json().contains("\"skipped_reason\": null"));
        let mut skipped = report.clone();
        skipped.skipped_reason = Some("below the crossover".to_string());
        assert!(skipped
            .to_json()
            .contains("\"skipped_reason\": \"below the crossover\""));
    }

    #[test]
    fn kernel_fft_probe_shapes_cross_the_cutoff() {
        // Both scales' probe operands must actually reach the spectral path,
        // or the fft_speedup gate silently compares the exact kernel to itself.
        for n in [2048usize, 4096] {
            assert!(fft_would_run(n, n), "{n}-cell probe fell below the cutoff");
        }
    }

    #[test]
    fn kernel_representation_choices() {
        assert!(DistRepr::of(&contiguous_dist(16)).is_dense());
        assert!(!DistRepr::of(&scattered_dist(16)).is_dense());
        // The adaptive and generic kernels agree on both shapes.
        for d in [contiguous_dist(8), scattered_dist(8)] {
            let adaptive = convolve_additive(&d, &d);
            let generic = d.convolve(&d, |x, y| x.saturating_add(y));
            assert!(adaptive.approx_eq(&generic, 0.0));
        }
    }

    #[test]
    fn kernel_min_query_runs() {
        let engine = Engine::new(cache_workload_db(4, 3));
        let prepared = engine.prepare(&kernel_min_query()).unwrap();
        let result = prepared.execute(&EvalOptions::default()).unwrap();
        assert!(!result.tuples.is_empty());
    }

    #[test]
    fn cache_experiment_reports_arena_reuse() {
        let report = experiment_cache_threads(Scale::Quick, 1);
        assert!(report.arenas > 0, "{report:?}");
        assert!(report.arena_reused, "{report:?}");
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        std::env::remove_var("PVC_BENCH_FULL");
        assert_eq!(Scale::from_env(), Scale::Quick);
    }

    #[test]
    fn single_sweep_point_runs() {
        let params = ExprGenParams {
            left_terms: 10,
            num_vars: 8,
            agg_left: AggOp::Min,
            theta: CmpOp::Le,
            constant: 100,
            ..ExprGenParams::default()
        };
        let m = sweep_point(params, 2);
        assert_eq!(m.runs, 2);
        assert!(m.mean_seconds >= 0.0);
    }

    #[test]
    fn experiment_f_smallest_point_runs() {
        let config = TpchConfig {
            scale_factor: 0.005,
            ..TpchConfig::default()
        };
        let db = generate(&config);
        let result = Engine::execute_once(&db, &pvc_tpch::q1(1_800), &EvalOptions::default())
            .expect("Q1 evaluates");
        assert!(!result.tuples.is_empty());
        for t in &result.tuples {
            assert!(t.confidence > 0.0 && t.confidence <= 1.0 + 1e-9);
        }
    }
}
