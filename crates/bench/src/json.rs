//! A minimal JSON reader — just enough to load `BENCH_baseline.json` in the
//! `bench_regression` gate without adding an external dependency (the workspace is
//! zero-dependency by policy).
//!
//! Supports the full JSON value grammar (objects, arrays, strings with the common
//! escapes, numbers, booleans, null). Numbers are parsed as `f64`, which is exact
//! for every counter the baseline stores (they are far below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is not preserved (lookups only).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document. Trailing whitespace is allowed, trailing content is
    /// an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing content after JSON value"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let end = start + 4;
                            let hex = self
                                .bytes
                                .get(start..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for the baseline file;
                            // map unpaired surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end - 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences arrive as raw
                    // bytes; re-validate via str boundaries).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -1.5e3 ").unwrap(), Json::Number(-1500.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::String("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"scale": "Quick", "rows": [{"x": 1, "ok": true}, {"x": 2.5}], "empty": [], "none": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("scale").and_then(Json::as_str), Some("Quick"));
        let rows = v.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("x").and_then(Json::as_f64), Some(1.0));
        assert_eq!(rows[1].get("x").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("empty").and_then(Json::as_array), Some(&[][..]));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("null"));
    }

    #[test]
    fn parses_the_committed_baseline_shape() {
        let doc = r#"{
  "scale": "Quick",
  "experiment_a": [
    {"series": "MIN =", "x": 0, "mean_s": 0.000113, "std_s": 0.0, "runs": 1}
  ],
  "experiment_cache": {"cold_s": 0.23, "warm_s": 0.0001, "cross_query_hits": 24}
}"#;
        let v = Json::parse(doc).unwrap();
        let cache = v.get("experiment_cache").unwrap();
        assert_eq!(
            cache.get("cross_query_hits").and_then(Json::as_f64),
            Some(24.0)
        );
        let a = v.get("experiment_a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].get("series").and_then(Json::as_str), Some("MIN ="));
    }
}
