//! The benchmark regression gate: compares a freshly generated baseline JSON
//! against the committed `BENCH_baseline.json` and reports violations.
//!
//! The gate is deliberately conservative about wall-clock noise:
//!
//! * timings are compared as a **slowdown ratio** with a configurable tolerance
//!   (default 1.5×, `PVC_BENCH_TOLERANCE`);
//! * both sides of every ratio are floored (default 50 ms,
//!   `PVC_BENCH_TIME_FLOOR_S`), so sub-resolution measurements — where scheduler
//!   jitter dominates — can never fail the gate;
//! * behavioural counters are compared exactly: zero cross-query cache hits is a
//!   hard failure regardless of timing, sweep points that disappeared from the
//!   fresh run fail as coverage regressions, the distribution kernel must keep
//!   choosing the dense representation for contiguous supports at a speedup of at
//!   least `PVC_MIN_DENSE_SPEEDUP` (default break-even), and warm executions must
//!   keep reusing cached compiled arenas (`arena_reused`);
//! * the parallel speedup is only enforced on machines with ≥ 4 cores (the fresh
//!   report records `cores`), with its own threshold
//!   (`PVC_MIN_PARALLEL_SPEEDUP`, default 1.3× at 4 threads — slightly below the
//!   ≥ 1.5× the baseline records, to absorb runner variance);
//! * the warm-restart loop must stay warm: a fresh engine restored from a disk
//!   snapshot must answer its first query with cache hits and **zero**
//!   recompilations, within `PVC_MAX_DISK_WARM_RATIO` (default 2×) of the
//!   in-process warm latency (floored at `PVC_WARM_FLOOR_S`, default 5 ms) and
//!   below the cold first query;
//! * updates must invalidate selectively: after `experiment_incremental`'s
//!   1-tuple delta into an unrelated table, the repeated query must run with
//!   **zero** recompilations, with surviving cache entries, within
//!   `PVC_MAX_DELTA_WARM_RATIO` (default 2×) of the fully-warm latency
//!   (floored at `PVC_WARM_FLOOR_S`);
//! * the serving runtime must sustain traffic: `experiment_serve` must report
//!   nonzero QPS, zero admission rejections at the default queue depth, zero
//!   engine errors, and a p99 submit-to-drained latency within
//!   `PVC_MAX_P99_RATIO` (default 3×) of the committed baseline's p99 (floored
//!   at `PVC_WARM_FLOOR_S` — tail latencies sit below the global noise floor,
//!   and tails are noisier than means, hence the looser default ratio);
//! * durability must stay affordable and complete: `experiment_durability`'s
//!   un-fsynced WAL appends must keep the delta run within
//!   `PVC_MAX_WAL_OVERHEAD_RATIO` (default 3×) of the log-free run, every
//!   logged delta must replay (exact counter), and the fsync-heavy totals plus
//!   replay/recovery latencies ride the ordinary floored slowdown check.

use crate::json::Json;

/// Tunable thresholds of the gate (see the module docs for the matching
/// environment variables).
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated slowdown ratio for timing comparisons.
    pub tolerance: f64,
    /// Floor (seconds) applied to both sides of every timing ratio.
    pub time_floor_s: f64,
    /// Minimum required cold-execution speedup at `threads = 4`, enforced only
    /// when the fresh run's machine has at least four cores.
    pub min_parallel_speedup: f64,
    /// Minimum required dense-vs-sparse convolution speedup on dense-friendly
    /// input in `experiment_kernel` (`PVC_MIN_DENSE_SPEEDUP`). The direct-index
    /// path must at least not lose to the sort-based kernel it replaces.
    pub min_dense_speedup: f64,
    /// Minimum required FFT-vs-exact convolution speedup past the adaptive
    /// crossover in `experiment_kernel` (`PVC_MIN_FFT_SPEEDUP`, default
    /// break-even). Dormant — with the fresh report's own `skipped_reason` —
    /// when the probe operands sit below the crossover (`fft_chosen = 0`), so
    /// the check never compares two runs of the same exact kernel.
    pub min_fft_speedup: f64,
    /// Maximum tolerated ratio of warm-from-disk first-query latency over the
    /// in-process warm latency in `experiment_warm_restart`
    /// (`PVC_MAX_DISK_WARM_RATIO`). A restored engine must answer its first
    /// query from the snapshot, not by recompiling.
    pub max_disk_warm_ratio: f64,
    /// Floor (seconds) applied to both sides of the warm-restart ratios
    /// (`PVC_WARM_FLOOR_S`). Warm latencies are sub-millisecond, so the global
    /// [`time_floor_s`](Self::time_floor_s) would make the check vacuous; this
    /// tighter floor still absorbs scheduler jitter while catching a disk-warm
    /// path that silently falls back to full recompilation.
    pub warm_floor_s: f64,
    /// Maximum tolerated ratio of the first-query latency *after* an unrelated
    /// 1-tuple delta over the fully-warm latency in `experiment_incremental`
    /// (`PVC_MAX_DELTA_WARM_RATIO`). A delta to one table must not cool the
    /// cached artifacts of queries over other tables.
    pub max_delta_warm_ratio: f64,
    /// Maximum tolerated ratio of the fresh `experiment_serve` p99 latency over
    /// the committed baseline's p99 (`PVC_MAX_P99_RATIO`). Looser than the mean
    /// tolerance because tails are dominated by the slowest query in the mix
    /// and by scheduler jitter on shared runners.
    pub max_p99_ratio: f64,
    /// Maximum tolerated ratio of the fresh `experiment_obs` disabled-mode warm
    /// latency over the committed baseline's (`PVC_MAX_OBS_OVERHEAD_RATIO`,
    /// default 1.05x — disabled observability must stay within 5% of free).
    /// Floored at [`warm_floor_s`](Self::warm_floor_s) like the other warm
    /// ratios. Falls back to the baseline's `experiment_cache.warm_s` when the
    /// committed baseline predates `experiment_obs`.
    pub max_obs_overhead_ratio: f64,
    /// Maximum tolerated ratio of `experiment_durability`'s logged
    /// (`Durability::None`) apply total over the no-WAL apply total
    /// (`PVC_MAX_WAL_OVERHEAD_RATIO`, default 3x). This bounds the pure
    /// serialization + append cost of write-ahead logging; fsync cost is
    /// hardware-dependent and rides the ordinary floored slowdown check
    /// against the committed baseline instead. Floored at
    /// [`warm_floor_s`](Self::warm_floor_s), since a short run's apply totals
    /// sit near clock resolution.
    pub max_wal_overhead_ratio: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance: 1.5,
            time_floor_s: 0.05,
            min_parallel_speedup: 1.3,
            min_dense_speedup: 1.0,
            min_fft_speedup: 1.0,
            max_disk_warm_ratio: 2.0,
            max_delta_warm_ratio: 2.0,
            warm_floor_s: 0.005,
            max_p99_ratio: 3.0,
            max_obs_overhead_ratio: 1.05,
            max_wal_overhead_ratio: 3.0,
        }
    }
}

impl GateConfig {
    /// Read overrides from the environment.
    pub fn from_env() -> Self {
        let read = |name: &str, default: f64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let defaults = Self::default();
        GateConfig {
            tolerance: read("PVC_BENCH_TOLERANCE", defaults.tolerance),
            time_floor_s: read("PVC_BENCH_TIME_FLOOR_S", defaults.time_floor_s),
            min_parallel_speedup: read("PVC_MIN_PARALLEL_SPEEDUP", defaults.min_parallel_speedup),
            min_dense_speedup: read("PVC_MIN_DENSE_SPEEDUP", defaults.min_dense_speedup),
            min_fft_speedup: read("PVC_MIN_FFT_SPEEDUP", defaults.min_fft_speedup),
            max_disk_warm_ratio: read("PVC_MAX_DISK_WARM_RATIO", defaults.max_disk_warm_ratio),
            max_delta_warm_ratio: read("PVC_MAX_DELTA_WARM_RATIO", defaults.max_delta_warm_ratio),
            warm_floor_s: read("PVC_WARM_FLOOR_S", defaults.warm_floor_s),
            max_p99_ratio: read("PVC_MAX_P99_RATIO", defaults.max_p99_ratio),
            max_obs_overhead_ratio: read(
                "PVC_MAX_OBS_OVERHEAD_RATIO",
                defaults.max_obs_overhead_ratio,
            ),
            max_wal_overhead_ratio: read(
                "PVC_MAX_WAL_OVERHEAD_RATIO",
                defaults.max_wal_overhead_ratio,
            ),
        }
    }
}

fn number(doc: &Json, section: &str, field: &str) -> Option<f64> {
    doc.get(section)?.get(field)?.as_f64()
}

/// `Some(ratio)` when the floored slowdown exceeds the tolerance.
fn slowdown_violation(cfg: &GateConfig, baseline: f64, fresh: f64) -> Option<f64> {
    let ratio = fresh.max(cfg.time_floor_s) / baseline.max(cfg.time_floor_s);
    (ratio > cfg.tolerance).then_some(ratio)
}

/// Compare a fresh baseline document against the committed one. Returns the list
/// of violations (empty = gate passes) and a human-readable summary of what was
/// checked.
pub fn compare(baseline: &Json, fresh: &Json, cfg: &GateConfig) -> (Vec<String>, String) {
    let mut violations = Vec::new();
    let mut compared_timings = 0usize;
    let mut floored_timings = 0usize;

    // --- cache behaviour: counters are exact, timings are ratio-checked. -------
    match number(fresh, "experiment_cache", "cross_query_hits") {
        Some(hits) if hits > 0.0 => {}
        Some(_) => violations.push(
            "experiment_cache: zero cross-query cache hits (canonical-interning regression)"
                .to_string(),
        ),
        None => {
            violations.push("experiment_cache: fresh run is missing `cross_query_hits`".to_string())
        }
    }
    for field in ["cold_s", "warm_s", "cross_s"] {
        let (Some(base), Some(new)) = (
            number(baseline, "experiment_cache", field),
            number(fresh, "experiment_cache", field),
        ) else {
            continue;
        };
        if new.max(base) < cfg.time_floor_s {
            floored_timings += 1;
            continue;
        }
        compared_timings += 1;
        if let Some(ratio) = slowdown_violation(cfg, base, new) {
            violations.push(format!(
                "experiment_cache.{field}: {ratio:.2}x slowdown ({base:.4}s -> {new:.4}s, \
                 tolerance {:.2}x)",
                cfg.tolerance
            ));
        }
    }

    // --- arena reuse: cached compiled arenas must keep serving warm runs. ------
    if let Some(section) = fresh.get("experiment_cache") {
        match section.get("arena_reused").and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            Some(_) => violations.push(
                "experiment_cache: compiled arenas were re-built during warm runs \
                 (arena-cache regression)"
                    .to_string(),
            ),
            // A baseline/fresh pair predating the arena cache carries no field;
            // only enforce once the fresh run reports it.
            None => {}
        }
    }

    // --- kernel behaviour: dense path chosen and at least break-even. ----------
    if let Some(section) = fresh.get("experiment_kernel") {
        match section.get("dense_chosen").and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            Some(_) => violations.push(
                "experiment_kernel: adaptive kernel no longer chooses the dense \
                 representation for contiguous supports"
                    .to_string(),
            ),
            None => violations
                .push("experiment_kernel: fresh run is missing `dense_chosen`".to_string()),
        }
        match section.get("dense_speedup").and_then(Json::as_f64) {
            Some(s) if s >= cfg.min_dense_speedup => {}
            Some(s) => violations.push(format!(
                "experiment_kernel: dense_speedup = {s:.2}x (required >= {:.2}x)",
                cfg.min_dense_speedup
            )),
            None => violations
                .push("experiment_kernel: fresh run is missing `dense_speedup`".to_string()),
        }
        // FFT crossover: once the adaptive kernel selects the spectral path for
        // the probe operands, it must actually beat the exact loop it replaces.
        // Below the crossover the fresh report explains the dormancy itself
        // (`skipped_reason`); a baseline predating the probe carries no
        // `fft_chosen` and the gate stays off until one is committed.
        let fft_chosen = section.get("fft_chosen").and_then(Json::as_f64);
        match (
            fft_chosen,
            section.get("fft_speedup").and_then(Json::as_f64),
        ) {
            (Some(chosen), Some(s)) if chosen >= 1.0 && s < cfg.min_fft_speedup => {
                violations.push(format!(
                    "experiment_kernel: fft_speedup = {s:.2}x past the crossover \
                     (required >= {:.2}x)",
                    cfg.min_fft_speedup
                ));
            }
            (Some(chosen), None) if chosen >= 1.0 => {
                violations.push("experiment_kernel: fresh run is missing `fft_speedup`".to_string())
            }
            _ => {}
        }
        // Latency fields ride the normal floored ratio check.
        for field in ["min_first_tuple_s", "min_total_s"] {
            let (Some(base), Some(new)) = (
                number(baseline, "experiment_kernel", field),
                number(fresh, "experiment_kernel", field),
            ) else {
                continue;
            };
            if new.max(base) < cfg.time_floor_s {
                floored_timings += 1;
                continue;
            }
            compared_timings += 1;
            if let Some(ratio) = slowdown_violation(cfg, base, new) {
                violations.push(format!(
                    "experiment_kernel.{field}: {ratio:.2}x slowdown ({base:.4}s -> {new:.4}s, \
                     tolerance {:.2}x)",
                    cfg.tolerance
                ));
            }
        }
    }

    // --- warm restart: the persistence loop must stay warm. --------------------
    // Behavioural counters are exact (zero rebuilds, nonzero hits); the latency
    // ratios use the tighter `warm_floor_s`, since warm executions sit far below
    // the global noise floor.
    if let Some(section) = fresh.get("experiment_warm_restart") {
        match section.get("warm_disk_hits").and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            Some(_) => violations.push(
                "experiment_warm_restart: zero cache hits after restoring from disk \
                 (snapshot is not serving the warm run)"
                    .to_string(),
            ),
            None => violations
                .push("experiment_warm_restart: fresh run is missing `warm_disk_hits`".to_string()),
        }
        match section.get("warm_disk_rebuilds").and_then(Json::as_f64) {
            Some(v) if v <= 0.0 => {}
            Some(v) => violations.push(format!(
                "experiment_warm_restart: {v} artifacts were recompiled during the \
                 warm-from-disk first query (must be 0)"
            )),
            None => violations.push(
                "experiment_warm_restart: fresh run is missing `warm_disk_rebuilds`".to_string(),
            ),
        }
        let disk = number(fresh, "experiment_warm_restart", "warm_disk_first_s");
        let live = number(fresh, "experiment_warm_restart", "warm_live_s");
        let cold = number(fresh, "experiment_warm_restart", "cold_first_s");
        match (disk, live) {
            (Some(disk), Some(live)) => {
                let ratio = disk.max(cfg.warm_floor_s) / live.max(cfg.warm_floor_s);
                if ratio > cfg.max_disk_warm_ratio {
                    violations.push(format!(
                        "experiment_warm_restart: warm-from-disk first query is {ratio:.2}x the \
                         in-process warm latency ({disk:.4}s vs {live:.4}s, tolerance {:.2}x)",
                        cfg.max_disk_warm_ratio
                    ));
                } else {
                    compared_timings += 1;
                }
            }
            _ => violations
                .push("experiment_warm_restart: fresh run is missing warm latencies".to_string()),
        }
        if let (Some(disk), Some(cold)) = (disk, cold) {
            // "Far below cold": the restored first query must not cost a cold
            // compile. Floored on both sides like every other timing.
            if disk.max(cfg.warm_floor_s) > cold.max(cfg.warm_floor_s) {
                violations.push(format!(
                    "experiment_warm_restart: warm-from-disk first query ({disk:.4}s) is not \
                     below the cold first query ({cold:.4}s)"
                ));
            }
        }
        // The absolute cold/save/load timings ride the normal floored ratio check.
        for field in ["cold_first_s", "save_s", "load_s"] {
            let (Some(base), Some(new)) = (
                number(baseline, "experiment_warm_restart", field),
                number(fresh, "experiment_warm_restart", field),
            ) else {
                continue;
            };
            if new.max(base) < cfg.time_floor_s {
                floored_timings += 1;
                continue;
            }
            compared_timings += 1;
            if let Some(ratio) = slowdown_violation(cfg, base, new) {
                violations.push(format!(
                    "experiment_warm_restart.{field}: {ratio:.2}x slowdown ({base:.4}s -> \
                     {new:.4}s, tolerance {:.2}x)",
                    cfg.tolerance
                ));
            }
        }
    }

    // --- incremental updates: a delta must invalidate selectively. -------------
    // Behavioural counters are exact (zero recompilations, surviving cache
    // entries); the post-delta latency ratio uses the tighter `warm_floor_s`
    // like the other warm paths.
    if let Some(section) = fresh.get("experiment_incremental") {
        match section.get("recompiles_after_delta").and_then(Json::as_f64) {
            Some(v) if v <= 0.0 => {}
            Some(v) => violations.push(format!(
                "experiment_incremental: {v} artifacts were recompiled after a delta into \
                 an unrelated table (selective invalidation must keep this at 0)"
            )),
            None => violations.push(
                "experiment_incremental: fresh run is missing `recompiles_after_delta`".to_string(),
            ),
        }
        match section.get("kept_artifacts").and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            Some(_) => violations.push(
                "experiment_incremental: zero cached artifacts survived the delta \
                 (invalidation is not selective)"
                    .to_string(),
            ),
            None => violations
                .push("experiment_incremental: fresh run is missing `kept_artifacts`".to_string()),
        }
        match (
            number(fresh, "experiment_incremental", "warm_after_delta_s"),
            number(fresh, "experiment_incremental", "warm_s"),
        ) {
            (Some(after), Some(warm)) => {
                let ratio = after.max(cfg.warm_floor_s) / warm.max(cfg.warm_floor_s);
                if ratio > cfg.max_delta_warm_ratio {
                    violations.push(format!(
                        "experiment_incremental: post-delta query is {ratio:.2}x the fully-warm \
                         latency ({after:.4}s vs {warm:.4}s, tolerance {:.2}x)",
                        cfg.max_delta_warm_ratio
                    ));
                } else {
                    compared_timings += 1;
                }
            }
            _ => violations
                .push("experiment_incremental: fresh run is missing warm latencies".to_string()),
        }
        // The absolute cold/apply timings ride the normal floored ratio check.
        for field in ["cold_first_s", "delta_apply_s"] {
            let (Some(base), Some(new)) = (
                number(baseline, "experiment_incremental", field),
                number(fresh, "experiment_incremental", field),
            ) else {
                continue;
            };
            if new.max(base) < cfg.time_floor_s {
                floored_timings += 1;
                continue;
            }
            compared_timings += 1;
            if let Some(ratio) = slowdown_violation(cfg, base, new) {
                violations.push(format!(
                    "experiment_incremental.{field}: {ratio:.2}x slowdown ({base:.4}s -> \
                     {new:.4}s, tolerance {:.2}x)",
                    cfg.tolerance
                ));
            }
        }
    }

    // --- serving: sustained throughput, clean admission, bounded tail. ---------
    // Counters are exact; only the p99 rides a ratio check (against its own,
    // looser threshold — tails are noisier than means), floored at the warm
    // floor since served queries complete in milliseconds.
    if let Some(section) = fresh.get("experiment_serve") {
        match section.get("qps").and_then(Json::as_f64) {
            Some(q) if q > 0.0 => {}
            Some(_) => violations
                .push("experiment_serve: zero sustained QPS (server served nothing)".to_string()),
            None => violations.push("experiment_serve: fresh run is missing `qps`".to_string()),
        }
        match section.get("rejected").and_then(Json::as_f64) {
            Some(r) if r <= 0.0 => {}
            Some(r) => violations.push(format!(
                "experiment_serve: {r} request(s) rejected at the default queue depth \
                 (admission control must not trip; must be 0)"
            )),
            None => {
                violations.push("experiment_serve: fresh run is missing `rejected`".to_string())
            }
        }
        match section.get("errors").and_then(Json::as_f64) {
            Some(e) if e <= 0.0 => {}
            Some(e) => violations.push(format!(
                "experiment_serve: {e} request(s) failed in the engine (must be 0)"
            )),
            None => violations.push("experiment_serve: fresh run is missing `errors`".to_string()),
        }
        if let (Some(base), Some(new)) = (
            number(baseline, "experiment_serve", "p99_s"),
            number(fresh, "experiment_serve", "p99_s"),
        ) {
            compared_timings += 1;
            let ratio = new.max(cfg.warm_floor_s) / base.max(cfg.warm_floor_s);
            if ratio > cfg.max_p99_ratio {
                violations.push(format!(
                    "experiment_serve: p99 latency is {ratio:.2}x the baseline \
                     ({base:.4}s -> {new:.4}s, tolerance {:.2}x)",
                    cfg.max_p99_ratio
                ));
            }
        }
        // The central latencies ride the normal floored ratio check.
        for field in ["p50_s", "mean_s"] {
            let (Some(base), Some(new)) = (
                number(baseline, "experiment_serve", field),
                number(fresh, "experiment_serve", field),
            ) else {
                continue;
            };
            if new.max(base) < cfg.time_floor_s {
                floored_timings += 1;
                continue;
            }
            compared_timings += 1;
            if let Some(ratio) = slowdown_violation(cfg, base, new) {
                violations.push(format!(
                    "experiment_serve.{field}: {ratio:.2}x slowdown ({base:.4}s -> {new:.4}s, \
                     tolerance {:.2}x)",
                    cfg.tolerance
                ));
            }
        }
    }

    // --- durability: logging must stay cheap, recovery must stay complete. -----
    // The WAL-append overhead is a self-contained ratio of the fresh run (both
    // totals measured on the same machine in the same process); replay and
    // recovery latencies ride the ordinary floored slowdown check.
    if let Some(section) = fresh.get("experiment_durability") {
        match (
            section.get("wal_none_total_s").and_then(Json::as_f64),
            section.get("no_wal_total_s").and_then(Json::as_f64),
        ) {
            (Some(logged), Some(bare)) => {
                let ratio = logged.max(cfg.warm_floor_s) / bare.max(cfg.warm_floor_s);
                if ratio > cfg.max_wal_overhead_ratio {
                    violations.push(format!(
                        "experiment_durability: WAL appends make deltas {ratio:.2}x slower \
                         ({bare:.4}s -> {logged:.4}s over the run, tolerance {:.2}x)",
                        cfg.max_wal_overhead_ratio
                    ));
                } else {
                    compared_timings += 1;
                }
            }
            _ => violations
                .push("experiment_durability: fresh run is missing apply totals".to_string()),
        }
        // Replay completeness is exact: recovery that silently drops
        // acknowledged deltas must never pass the gate.
        match (
            section.get("replayed").and_then(Json::as_f64),
            section.get("deltas").and_then(Json::as_f64),
        ) {
            (Some(replayed), Some(deltas)) if replayed >= deltas => {}
            (Some(replayed), Some(deltas)) => violations.push(format!(
                "experiment_durability: only {replayed} of {deltas} logged deltas replayed"
            )),
            _ => violations
                .push("experiment_durability: fresh run is missing replay counters".to_string()),
        }
        for field in ["wal_always_total_s", "replay_s", "recover_first_query_s"] {
            let (Some(base), Some(new)) = (
                number(baseline, "experiment_durability", field),
                number(fresh, "experiment_durability", field),
            ) else {
                continue;
            };
            if new.max(base) < cfg.time_floor_s {
                floored_timings += 1;
                continue;
            }
            compared_timings += 1;
            if let Some(ratio) = slowdown_violation(cfg, base, new) {
                violations.push(format!(
                    "experiment_durability.{field}: {ratio:.2}x slowdown ({base:.4}s -> \
                     {new:.4}s, tolerance {:.2}x)",
                    cfg.tolerance
                ));
            }
        }
    }

    // --- sweep rows (experiments A and B): match by (series, x). ---------------
    for section in ["experiment_a", "experiment_b"] {
        let (Some(base_rows), Some(fresh_rows)) = (
            baseline.get(section).and_then(Json::as_array),
            fresh.get(section).and_then(Json::as_array),
        ) else {
            continue;
        };
        let lookup = |rows: &[Json], series: &str, x: f64| -> Option<f64> {
            rows.iter()
                .find(|r| {
                    r.get("series").and_then(Json::as_str) == Some(series)
                        && r.get("x").and_then(Json::as_f64) == Some(x)
                })
                .and_then(|r| r.get("mean_s").and_then(Json::as_f64))
        };
        for row in base_rows {
            let (Some(series), Some(x), Some(base_mean)) = (
                row.get("series").and_then(Json::as_str),
                row.get("x").and_then(Json::as_f64),
                row.get("mean_s").and_then(Json::as_f64),
            ) else {
                continue;
            };
            let Some(fresh_mean) = lookup(fresh_rows, series, x) else {
                violations.push(format!(
                    "{section}: point (\"{series}\", x={x}) disappeared from the fresh run"
                ));
                continue;
            };
            if fresh_mean.max(base_mean) < cfg.time_floor_s {
                floored_timings += 1;
                continue;
            }
            compared_timings += 1;
            if let Some(ratio) = slowdown_violation(cfg, base_mean, fresh_mean) {
                violations.push(format!(
                    "{section} (\"{series}\", x={x}): {ratio:.2}x slowdown \
                     ({base_mean:.4}s -> {fresh_mean:.4}s)"
                ));
            }
        }
    }

    // --- observability: disabled mode must stay within 5% of free. -------------
    // The reference is the committed baseline's own disabled-mode warm latency
    // (or, for baselines predating `experiment_obs`, the cache experiment's
    // warm latency — the same workload, warm, without any observability code).
    if let Some(new) = number(fresh, "experiment_obs", "disabled_s") {
        let reference = number(baseline, "experiment_obs", "disabled_s")
            .or_else(|| number(baseline, "experiment_cache", "warm_s"));
        if let Some(base) = reference {
            compared_timings += 1;
            let ratio = new.max(cfg.warm_floor_s) / base.max(cfg.warm_floor_s);
            if ratio > cfg.max_obs_overhead_ratio {
                violations.push(format!(
                    "experiment_obs: disabled-observability warm latency is {ratio:.3}x the \
                     baseline ({base:.4}s -> {new:.4}s, tolerance {:.2}x)",
                    cfg.max_obs_overhead_ratio
                ));
            }
        }
    }

    // --- parallel scaling. -----------------------------------------------------
    // Enforced only when BOTH machines have >= 4 cores: the fresh machine must be
    // able to scale at all, and the committed baseline must itself come from
    // multi-core hardware (a baseline recorded on a small dev box would otherwise
    // arm a threshold that was never demonstrated there). Once a multi-core
    // baseline is committed, the check self-activates on multi-core runners.
    let fresh_cores = number(fresh, "experiment_parallel", "cores").unwrap_or(1.0);
    let base_cores = number(baseline, "experiment_parallel", "cores").unwrap_or(1.0);
    let speedup = number(fresh, "experiment_parallel", "speedup_4v1");
    let parallel_note = match (fresh_cores >= 4.0 && base_cores >= 4.0, speedup) {
        (true, Some(s)) if s < cfg.min_parallel_speedup => {
            violations.push(format!(
                "experiment_parallel: speedup_4v1 = {s:.2}x on a {fresh_cores}-core machine \
                 (required >= {:.2}x)",
                cfg.min_parallel_speedup
            ));
            format!("parallel speedup {s:.2}x CHECKED")
        }
        (true, Some(s)) => format!("parallel speedup {s:.2}x CHECKED"),
        (true, None) => {
            violations.push("experiment_parallel: fresh run is missing `speedup_4v1`".to_string());
            "parallel speedup MISSING".to_string()
        }
        (false, Some(s)) => {
            // The fresh report says in its own words why the gate is dormant.
            let reason = fresh
                .get("experiment_parallel")
                .and_then(|section| section.get("skipped_reason"))
                .and_then(Json::as_str)
                .map(|r| format!(" — {r}"))
                .unwrap_or_default();
            format!(
                "parallel speedup {s:.2}x SKIPPED (fresh: {fresh_cores} core(s), baseline: \
                 {base_cores} core(s) — both need >= 4){reason}"
            )
        }
        (false, None) => "parallel speedup SKIPPED (section missing)".to_string(),
    };

    let summary = format!(
        "{compared_timings} timing(s) compared, {floored_timings} below the {:.0} ms floor, {}",
        cfg.time_floor_s * 1000.0,
        parallel_note
    );
    (violations, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    const BASE: &str = r#"{
      "experiment_a": [
        {"series": "MIN =", "x": 40, "mean_s": 0.2, "std_s": 0.0, "runs": 1},
        {"series": "MIN =", "x": 80, "mean_s": 0.001, "std_s": 0.0, "runs": 1}
      ],
      "experiment_cache": {"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}
    }"#;

    #[test]
    fn identical_runs_pass() {
        let base = doc(BASE);
        let (violations, summary) = compare(&base, &base, &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        assert!(summary.contains("compared"));
    }

    #[test]
    fn zero_cross_query_hits_fail() {
        let fresh = doc(&BASE.replace("\"cross_query_hits\": 24", "\"cross_query_hits\": 0"));
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("cross-query")));
    }

    #[test]
    fn fft_speedup_below_threshold_fails_once_the_spectral_path_is_chosen() {
        let fresh = doc(
            r#"{"experiment_kernel": {"dense_chosen": 1, "dense_speedup": 2.0,
                "fft_chosen": 1, "fft_speedup": 0.8}}"#,
        );
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("fft_speedup")),
            "{violations:?}"
        );
    }

    #[test]
    fn fft_gate_is_dormant_below_the_crossover() {
        // fft_chosen = 0: the probe never reached the spectral path, so a low
        // "speedup" is two runs of the same exact kernel — not a regression.
        let fresh = doc(
            r#"{"experiment_kernel": {"dense_chosen": 1, "dense_speedup": 2.0,
                "fft_chosen": 0, "fft_speedup": 0.5,
                "skipped_reason": "probe operands sit below the FFT crossover"}}"#,
        );
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(
            !violations.iter().any(|v| v.contains("fft_speedup")),
            "{violations:?}"
        );
    }

    #[test]
    fn fft_gate_stays_off_when_the_fresh_run_predates_the_probe() {
        let fresh = doc(r#"{"experiment_kernel": {"dense_chosen": 1, "dense_speedup": 2.0}}"#);
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(
            !violations.iter().any(|v| v.contains("fft")),
            "{violations:?}"
        );
    }

    #[test]
    fn large_slowdown_fails_but_floored_noise_passes() {
        // 0.2s -> 0.5s on a measurable point: fail.
        let fresh = doc(&BASE.replace("\"mean_s\": 0.2", "\"mean_s\": 0.5"));
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("slowdown")),
            "{violations:?}"
        );
        // 1ms -> 40ms is a 40x "slowdown" but entirely below the floor: pass.
        let fresh = doc(&BASE.replace("\"mean_s\": 0.001", "\"mean_s\": 0.04"));
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn missing_sweep_point_fails() {
        let fresh = doc(r#"{
          "experiment_a": [
            {"series": "MIN =", "x": 40, "mean_s": 0.2, "std_s": 0.0, "runs": 1}
          ],
          "experiment_cache": {"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}
        }"#);
        let (violations, _) = compare(&doc(BASE), &fresh, &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("disappeared")));
    }

    #[test]
    fn kernel_gate_checks_dense_path_and_arena_reuse() {
        let with_kernel = |dense_chosen: u8, speedup: f64, reused: u8| {
            doc(&format!(
                r#"{{
              "experiment_cache": {{"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001,
                                    "cross_query_hits": 24, "arena_reused": {reused}}},
              "experiment_kernel": {{"dense_chosen": {dense_chosen}, "dense_speedup": {speedup},
                                     "min_first_tuple_s": 0.2, "min_total_s": 0.2}}
            }}"#
            ))
        };
        let base = with_kernel(1, 3.0, 1);
        let (violations, _) = compare(&base, &with_kernel(1, 3.0, 1), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        // Dense representation no longer chosen: fail.
        let (violations, _) = compare(&base, &with_kernel(0, 3.0, 1), &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("dense")),
            "{violations:?}"
        );
        // Dense slower than sparse: fail.
        let (violations, _) = compare(&base, &with_kernel(1, 0.5, 1), &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("dense_speedup")));
        // Arena rebuilt during warm runs: fail.
        let (violations, _) = compare(&base, &with_kernel(1, 3.0, 0), &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("arena")));
        // Kernel latency regression above the floor: fail.
        let slow = doc(r#"{
              "experiment_cache": {"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001,
                                    "cross_query_hits": 24, "arena_reused": 1},
              "experiment_kernel": {"dense_chosen": 1, "dense_speedup": 3.0,
                                     "min_first_tuple_s": 0.9, "min_total_s": 0.2}
            }"#);
        let (violations, _) = compare(&base, &slow, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("min_first_tuple_s")),
            "{violations:?}"
        );
    }

    #[test]
    fn warm_restart_gate_checks_hits_rebuilds_and_latency_ratio() {
        let with_restart = |hits: u64, rebuilds: u64, disk_s: f64| {
            doc(&format!(
                r#"{{
              "experiment_cache": {{"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}},
              "experiment_warm_restart": {{"cold_first_s": 0.2, "warm_live_s": 0.001,
                                           "save_s": 0.01, "load_s": 0.01,
                                           "warm_disk_first_s": {disk_s},
                                           "warm_disk_hits": {hits},
                                           "warm_disk_rebuilds": {rebuilds}}}
            }}"#
            ))
        };
        let base = with_restart(30, 0, 0.002);
        let (violations, _) = compare(&base, &with_restart(30, 0, 0.002), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        // No hits after restoring: the snapshot is not serving anything.
        let (violations, _) = compare(&base, &with_restart(0, 0, 0.002), &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("zero cache hits")));
        // Recompilation during the warm-from-disk run: fail.
        let (violations, _) = compare(&base, &with_restart(30, 3, 0.002), &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("recompiled")));
        // Disk-warm latency way above the in-process warm path (and the 2x
        // tolerance after the 5 ms floor): fail.
        let (violations, _) = compare(&base, &with_restart(30, 0, 0.05), &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("warm-from-disk")),
            "{violations:?}"
        );
        // Sub-floor jitter on both sides: pass.
        let (violations, _) = compare(&base, &with_restart(30, 0, 0.004), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        // Disk-warm above the cold first query: fail.
        let (violations, _) = compare(&base, &with_restart(30, 0, 0.3), &GateConfig::default());
        assert!(violations
            .iter()
            .any(|v| v.contains("not") && v.contains("cold")));
    }

    #[test]
    fn incremental_gate_checks_recompiles_kept_artifacts_and_latency_ratio() {
        let with_incremental = |recompiles: u64, kept: u64, after_s: f64| {
            doc(&format!(
                r#"{{
              "experiment_cache": {{"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}},
              "experiment_incremental": {{"cold_first_s": 0.2, "warm_s": 0.001,
                                          "delta_apply_s": 0.001,
                                          "warm_after_delta_s": {after_s},
                                          "evicted_artifacts": 0,
                                          "kept_artifacts": {kept},
                                          "recompiles_after_delta": {recompiles}}}
            }}"#
            ))
        };
        let base = with_incremental(0, 4, 0.002);
        let (violations, _) = compare(
            &base,
            &with_incremental(0, 4, 0.002),
            &GateConfig::default(),
        );
        assert!(violations.is_empty(), "{violations:?}");
        // Recompilation after a delta into an unrelated table: fail.
        let (violations, _) = compare(
            &base,
            &with_incremental(2, 4, 0.002),
            &GateConfig::default(),
        );
        assert!(
            violations.iter().any(|v| v.contains("recompiled")),
            "{violations:?}"
        );
        // Everything evicted: invalidation is not selective.
        let (violations, _) = compare(
            &base,
            &with_incremental(0, 0, 0.002),
            &GateConfig::default(),
        );
        assert!(violations.iter().any(|v| v.contains("survived")));
        // Post-delta latency way above the warm path (2x tolerance after the
        // 5 ms floor): fail.
        let (violations, _) = compare(&base, &with_incremental(0, 4, 0.05), &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("post-delta")),
            "{violations:?}"
        );
        // Sub-floor jitter on both sides: pass.
        let (violations, _) = compare(
            &base,
            &with_incremental(0, 4, 0.004),
            &GateConfig::default(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn serve_gate_checks_qps_rejections_errors_and_p99() {
        let with_serve = |qps: f64, rejected: u64, errors: u64, p99_s: f64| {
            doc(&format!(
                r#"{{
              "experiment_cache": {{"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}},
              "experiment_serve": {{"qps": {qps}, "rejected": {rejected}, "errors": {errors},
                                    "p99_s": {p99_s}, "p50_s": 0.003, "mean_s": 0.004}}
            }}"#
            ))
        };
        let base = with_serve(120.0, 0, 0, 0.02);
        let (violations, _) = compare(&base, &with_serve(90.0, 0, 0, 0.03), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        // Zero throughput: the server served nothing.
        let (violations, _) = compare(&base, &with_serve(0.0, 0, 0, 0.02), &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("QPS")),
            "{violations:?}"
        );
        // Admission control tripping at the default depth: fail.
        let (violations, _) = compare(
            &base,
            &with_serve(120.0, 3, 0, 0.02),
            &GateConfig::default(),
        );
        assert!(violations.iter().any(|v| v.contains("rejected")));
        // Engine errors under load: fail.
        let (violations, _) = compare(
            &base,
            &with_serve(120.0, 0, 2, 0.02),
            &GateConfig::default(),
        );
        assert!(violations
            .iter()
            .any(|v| v.contains("failed in the engine")));
        // p99 blowing past the 3x tolerance: fail.
        let (violations, _) = compare(
            &base,
            &with_serve(120.0, 0, 0, 0.09),
            &GateConfig::default(),
        );
        assert!(
            violations.iter().any(|v| v.contains("p99")),
            "{violations:?}"
        );
        // Sub-floor p99 jitter on both sides: pass (5 ms warm floor).
        let tiny = with_serve(120.0, 0, 0, 0.004);
        let (violations, _) = compare(
            &tiny,
            &with_serve(120.0, 0, 0, 0.001),
            &GateConfig::default(),
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn durability_gate_checks_overhead_and_replay_completeness() {
        let with_durability = |none_total: f64, replayed: u64| {
            doc(&format!(
                r#"{{
              "experiment_cache": {{"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}},
              "experiment_durability": {{"deltas": 200, "no_wal_total_s": 0.05,
                                         "wal_none_total_s": {none_total},
                                         "wal_always_total_s": 0.4,
                                         "replayed": {replayed},
                                         "replay_s": 0.1, "recover_first_query_s": 0.05}}
            }}"#
            ))
        };
        let base = with_durability(0.08, 200);
        let (violations, _) = compare(&base, &with_durability(0.08, 200), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        // Logging blowing past 3x the log-free run: fail.
        let (violations, _) = compare(&base, &with_durability(0.4, 200), &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("WAL appends")),
            "{violations:?}"
        );
        // Dropped acknowledged deltas during replay: fail regardless of timing.
        let (violations, _) = compare(&base, &with_durability(0.08, 199), &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("replayed")),
            "{violations:?}"
        );
    }

    #[test]
    fn parallel_speedup_enforced_only_on_multicore() {
        let with_parallel = |cores: f64, speedup: f64| {
            doc(&format!(
                r#"{{
              "experiment_cache": {{"cold_s": 0.2, "warm_s": 0.0001, "cross_s": 0.001, "cross_query_hits": 24}},
              "experiment_parallel": {{"cores": {cores}, "speedup_4v1": {speedup}}}
            }}"#
            ))
        };
        let base = with_parallel(8.0, 2.0);
        // Single-core fresh machine: skipped.
        let (violations, summary) =
            compare(&base, &with_parallel(1.0, 0.9), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
        assert!(summary.contains("SKIPPED"));
        // Baseline recorded on a single-core machine: skipped even on a multi-core
        // fresh runner (the threshold was never demonstrated by that baseline).
        let (violations, summary) = compare(
            &with_parallel(1.0, 0.9),
            &with_parallel(8.0, 1.0),
            &GateConfig::default(),
        );
        assert!(violations.is_empty(), "{violations:?}");
        assert!(summary.contains("SKIPPED"));
        // Multi-core machine below the threshold: fail.
        let (violations, _) = compare(&base, &with_parallel(8.0, 1.0), &GateConfig::default());
        assert!(violations.iter().any(|v| v.contains("speedup_4v1")));
        // Multi-core machine above the threshold: pass.
        let (violations, _) = compare(&base, &with_parallel(8.0, 1.9), &GateConfig::default());
        assert!(violations.is_empty(), "{violations:?}");
    }
}
