//! Runs every experiment (A–F) in sequence and prints all tables. This is the
//! one-shot driver used to populate EXPERIMENTS.md.

fn main() {
    let scale = pvc_bench::Scale::from_env();
    for (name, rows) in [
        ("Experiment A (Figure 7)", pvc_bench::experiment_a(scale)),
        ("Experiment B (Figure 8b)", pvc_bench::experiment_b(scale)),
        ("Experiment C (Figure 8a)", pvc_bench::experiment_c(scale)),
        ("Experiment D (Figure 9)", pvc_bench::experiment_d(scale)),
        ("Experiment E (Figure 10)", pvc_bench::experiment_e(scale)),
    ] {
        println!("\n== {name} ==");
        let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
        pvc_bench::print_table(&pvc_bench::experiments::SWEEP_HEADER, &cells);
    }
    println!("\n== Experiment F (Figure 11) ==");
    let rows = pvc_bench::experiment_f(scale);
    let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
    pvc_bench::print_table(&pvc_bench::experiments::TPCH_HEADER, &cells);
}
