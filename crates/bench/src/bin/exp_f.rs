//! Regenerates Experiment F (Figure 11): TPC-H-like queries Q1 and Q2 across scale
//! factors, reporting the deterministic baseline, expression construction and
//! probability computation times. Set `PVC_BENCH_FULL=1` for the larger sweep.

fn main() {
    let scale = pvc_bench::Scale::from_env();
    eprintln!("running experiment F at {scale:?} scale ...");
    let rows = pvc_bench::experiment_f(scale);
    let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
    pvc_bench::print_table(&pvc_bench::experiments::TPCH_HEADER, &cells);
}
