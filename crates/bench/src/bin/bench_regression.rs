//! The CI performance-regression gate: compares a freshly generated baseline JSON
//! (produced by the `baseline` bin) against the committed `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release --bin baseline > BENCH_fresh.json
//! cargo run --release --bin bench_regression BENCH_baseline.json BENCH_fresh.json
//! ```
//!
//! Exit code 1 (with one line per violation) when:
//!
//! * the fresh run reports **zero cross-query cache hits**, or
//! * a timing above the noise floor slowed down by more than the tolerance
//!   (default 1.5×), or a sweep point disappeared, or
//! * on a machine with ≥ 4 cores, the cold `threads = 4` execution is not at
//!   least `PVC_MIN_PARALLEL_SPEEDUP`× (default 1.3×) faster than `threads = 1`.
//!
//! Thresholds: `PVC_BENCH_TOLERANCE`, `PVC_BENCH_TIME_FLOOR_S`,
//! `PVC_MIN_PARALLEL_SPEEDUP`.

use pvc_bench::json::Json;
use pvc_bench::regression::{compare, GateConfig};

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("FAIL: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("FAIL: `{path}` is not valid JSON: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_fresh.json".into());
    let config = GateConfig::from_env();
    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let (violations, summary) = compare(&baseline, &fresh, &config);
    println!("bench-regression: {baseline_path} vs {fresh_path}");
    println!("bench-regression: {summary}");
    if violations.is_empty() {
        println!(
            "OK: no regressions beyond the {:.2}x tolerance",
            config.tolerance
        );
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        std::process::exit(1);
    }
}
