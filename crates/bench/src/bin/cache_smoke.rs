//! CI smoke check for the compilation-cache subsystem: runs the repeated-workload
//! cache experiment and **fails (exit 1)** if the engine reports zero cross-query
//! cache hits (canonical interning stopped unifying structurally-equal provenance
//! across query renderings) **or** if cached compiled d-tree arenas were not
//! reused across executions (the arena-miss counter moved after the cold run).
//!
//! Set `PVC_SMOKE_THREADS=<n>` to run the workload on `n` worker threads: the same
//! check then regression-guards **cross-thread** sharing of the artifact store
//! (workers fill it, the commuted rendering must still be served from it).
//!
//! ```text
//! cargo run --release --bin cache_smoke
//! PVC_SMOKE_THREADS=4 cargo run --release --bin cache_smoke
//! ```

use pvc_bench::{experiment_cache_threads, Scale, CACHE_HEADER};

fn main() {
    let threads: usize = std::env::var("PVC_SMOKE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let report = experiment_cache_threads(Scale::from_env(), threads);
    println!("threads\t{}", CACHE_HEADER.join("\t"));
    println!("{threads}\t{}", report.cells().join("\t"));
    if report.cross_query_hits == 0 {
        eprintln!(
            "FAIL: zero cross-query cache hits at threads={threads} — the canonical \
             compilation cache is not unifying structurally-equal renderings"
        );
        std::process::exit(1);
    }
    if !report.arena_reused {
        eprintln!(
            "FAIL: compiled d-tree arenas were re-built during warm/cross executions at \
             threads={threads} (arenas cached: {}) — the arena cache is not being reused",
            report.arenas
        );
        std::process::exit(1);
    }
    if report.warm_s > report.cold_s {
        // Informational only: timing inversions can happen on noisy CI machines.
        eprintln!(
            "warning: warm execution ({:.4}s) was not faster than cold ({:.4}s)",
            report.warm_s, report.cold_s
        );
    }
    println!(
        "OK: {} cross-query hits at threads={threads}, warm speedup {:.1}x, {} cached \
         arenas reused",
        report.cross_query_hits, report.warm_speedup, report.arenas
    );
}
