//! CI smoke check for the compilation-cache subsystem: runs the repeated-workload
//! cache experiment and **fails (exit 1) if the engine reports zero cross-query
//! cache hits** — i.e. if canonical interning stopped unifying structurally-equal
//! provenance across query renderings.
//!
//! ```text
//! cargo run --release --bin cache_smoke
//! ```

use pvc_bench::{experiment_cache, Scale, CACHE_HEADER};

fn main() {
    let report = experiment_cache(Scale::from_env());
    println!("{}", CACHE_HEADER.join("\t"));
    println!("{}", report.cells().join("\t"));
    if report.cross_query_hits == 0 {
        eprintln!(
            "FAIL: zero cross-query cache hits — the canonical compilation cache is \
             not unifying structurally-equal renderings"
        );
        std::process::exit(1);
    }
    if report.warm_s > report.cold_s {
        // Informational only: timing inversions can happen on noisy CI machines.
        eprintln!(
            "warning: warm execution ({:.4}s) was not faster than cold ({:.4}s)",
            report.warm_s, report.cold_s
        );
    }
    println!(
        "OK: {} cross-query hits, warm speedup {:.1}x",
        report.cross_query_hits, report.warm_speedup
    );
}
