//! CI smoke check for the compile-artifact persistence subsystem: runs the
//! repeated-workload scenario on one engine, snapshots its artifacts to disk
//! (`Engine::save_artifacts`), restores them into a **fresh** engine over an
//! identically rebuilt database (`Engine::with_artifacts_from`), re-runs the
//! workload and **fails (exit 1)** if
//!
//! * any result differs bit-for-bit from the original run,
//! * the restored engine recompiled anything (distribution misses or arena
//!   rebuilds during the warm run — the snapshot must serve everything), or
//! * the commuted query rendering is not served by cross-query hits (the
//!   canonical ids — and their scope tags — must survive the round trip).
//!
//! ```text
//! cargo run --release --bin snapshot_roundtrip
//! ```

use pvc_bench::{cache_workload_db, cache_workload_query, Scale};
use pvc_db::{Engine, EvalOptions};

fn fail(message: &str) -> ! {
    eprintln!("FAIL: {message}");
    std::process::exit(1);
}

fn main() {
    let scale = Scale::from_env();
    let (shops, per_shop) = if scale == Scale::Full {
        (60, 8)
    } else {
        (24, 5)
    };
    let options = EvalOptions::default();
    let qa = cache_workload_query(false);
    let qb = cache_workload_query(true);
    let path = std::env::temp_dir().join(format!(
        "pvc-snapshot-roundtrip-{}.snap",
        std::process::id()
    ));

    // Warm up one engine and snapshot it.
    let writer = Engine::new(cache_workload_db(shops, per_shop));
    let reference = writer
        .prepare(&qa)
        .expect("workload query prepares")
        .execute(&options)
        .expect("cold run");
    let stats = writer
        .save_artifacts(&path)
        .unwrap_or_else(|e| fail(&format!("save_artifacts: {e}")));
    drop(writer);
    println!(
        "snapshot: {} bytes, {} interned nodes, {} distributions, {} arenas, {} rewrites",
        stats.bytes, stats.interned, stats.distributions, stats.arenas, stats.rewrites
    );
    if stats.distributions == 0 || stats.arenas == 0 {
        fail("the snapshot is missing artifacts (nothing was cached?)");
    }

    // "Restart": identical database, fresh engine, artifacts from disk.
    let restored = Engine::with_artifacts_from(cache_workload_db(shops, per_shop), &path)
        .unwrap_or_else(|e| fail(&format!("with_artifacts_from: {e}")));
    std::fs::remove_file(&path).ok();
    let warm = restored
        .prepare(&qa)
        .expect("workload query prepares")
        .execute(&options)
        .expect("warm-from-disk run");

    if warm.tuples.len() != reference.tuples.len() {
        fail(&format!(
            "result size changed across the round trip: {} vs {}",
            reference.tuples.len(),
            warm.tuples.len()
        ));
    }
    for (a, b) in reference.tuples.iter().zip(&warm.tuples) {
        if a.values != b.values || a.confidence.to_bits() != b.confidence.to_bits() {
            fail("warm-from-disk results are not bit-identical to the original run");
        }
    }

    let after = restored.cache_stats();
    if after.misses + after.arena_misses > 0 {
        fail(&format!(
            "the restored engine recompiled {} artifacts during the warm run \
             (misses: {}, arena rebuilds: {}) — the snapshot is not serving it",
            after.misses + after.arena_misses,
            after.misses,
            after.arena_misses
        ));
    }
    if after.hits == 0 {
        fail("zero cache hits after restoring from disk");
    }

    // The commuted rendering must hit the restored entries across scopes.
    restored
        .prepare(&qb)
        .expect("swapped rendering prepares")
        .execute(&options)
        .expect("cross run");
    let cross = restored.cache_stats();
    if cross.cross_query_hits == 0 {
        fail("zero cross-query hits after the round trip — scope tags or canonical ids broke");
    }

    println!(
        "OK: bit-identical warm restart with {} hits, 0 rebuilds, {} cross-query hits",
        after.hits, cross.cross_query_hits
    );
}
