//! Crash-recovery smoke: SIGKILL a delta-applying process at seeded random
//! points and prove that restart recovers **every acknowledged delta** with
//! bit-identical query results — the CI teeth behind `docs/DURABILITY.md`.
//!
//! The binary re-executes itself as the victim. The child recovers whatever
//! state the scratch directory holds (snapshot + WAL), then applies the
//! deterministic delta stream under `Durability::Always`, appending each
//! acknowledged sequence number to `acked.log` *after* `apply_delta` returns —
//! so the log of acks can only ever lag durable state, never lead it. Every
//! 25 deltas it snapshots and rotates the WAL, putting kill points inside the
//! append, publish and rotate windows alike. The parent kills it after a
//! seeded random delay, re-runs recovery in-process, and asserts:
//!
//! * recovered high-water ≥ the last acknowledged sequence (no silent loss);
//! * a `P1` scan is bit-identical to a fresh engine that applied the same
//!   prefix of the stream (no corruption);
//! * stale temp litter never accumulates past the sweep.
//!
//! Knobs: `PVC_CRASH_TRIALS` (default 6 kills), `PVC_CRASH_DELTAS` (default
//! 2000 — roughly a second of appends, so the seeded kills land mid-stream),
//! `PVC_CRASH_SEED` (default 0xC0FFEE).

use pvc_bench::cache_workload_db;
use pvc_core::persist::storage::sweep_stale_temps;
use pvc_db::{Database, Delta, Durability, Engine, EvalOptions, Query, RecoverOptions};
use pvc_prob::SeededRng;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SNAPSHOT_EVERY: u64 = 25;

fn base_db() -> Database {
    cache_workload_db(12, 3)
}

/// The deterministic delta stream: `seq` is 1-based (WAL numbering).
fn delta_for(seq: u64) -> Delta {
    Delta::new().insert(
        "P1",
        vec![(200_000 + seq as i64).into(), ((seq % 11) as i64).into()],
        0.2 + (seq % 60) as f64 / 100.0,
    )
}

fn scan_query() -> Query {
    Query::table("P1").project(["pid", "weight"])
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn recover(dir: &Path) -> (Engine, pvc_db::RecoveryReport) {
    let storage = pvc_core::FsStorage::shared();
    sweep_stale_temps(storage.as_ref(), dir).expect("sweep succeeds");
    let mut options = RecoverOptions::new(dir.join("t.wal")).with_durability(Durability::Always);
    let snap = dir.join("t.snap");
    if snap.exists() {
        options = options.with_snapshot(&snap);
    }
    Engine::recover_with(Arc::clone(&storage), base_db(), &options).expect("recovery succeeds")
}

/// The victim: recover, then apply the stream from wherever durable state
/// ends, acknowledging each delta only after `apply_delta` returned.
fn run_child(dir: &Path, total: u64) {
    let storage = pvc_core::FsStorage::shared();
    let (mut engine, report) = recover(dir);
    let mut acked = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acked.log"))
        .expect("acked log opens");
    let snap = dir.join("t.snap");
    for seq in report.high_water + 1..=total {
        engine.apply_delta(delta_for(seq)).expect("delta applies");
        writeln!(acked, "{seq}").expect("ack writes");
        acked.sync_all().expect("ack syncs");
        if seq % SNAPSHOT_EVERY == 0 {
            engine
                .save_artifacts_with(storage.as_ref(), &snap)
                .expect("snapshot saves");
            let hwm = engine.wal_high_water();
            engine
                .wal_mut()
                .expect("wal attached")
                .rotate(hwm)
                .expect("log rotates");
        }
    }
}

/// Last fully-written (newline-terminated) sequence number in `acked.log` —
/// a kill can tear the final line, which simply means that delta was durable
/// but never acknowledged.
fn last_acked(dir: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(dir.join("acked.log")) else {
        return 0;
    };
    text.split_inclusive('\n')
        .filter(|line| line.ends_with('\n'))
        .filter_map(|line| line.trim().parse().ok())
        .next_back()
        .unwrap_or(0)
}

/// Bits of the `P1` scan under default evaluation options.
fn scan_bits(engine: &Engine) -> Vec<u64> {
    engine
        .prepare(&scan_query())
        .expect("scan prepares")
        .execute(&EvalOptions::default())
        .expect("scan executes")
        .tuples
        .iter()
        .map(|t| t.confidence.to_bits())
        .collect()
}

/// Assert recovery holds exactly the first `high_water` deltas, bit-identically.
fn verify(dir: &Path, acked: u64) -> u64 {
    let (engine, report) = recover(dir);
    let recovered = report.high_water;
    assert!(
        recovered >= acked,
        "acknowledged delta lost: recovered only seq <= {recovered} of {acked} acked \
         (report: {report:?})"
    );
    let mut reference = Engine::new(base_db());
    for seq in 1..=recovered {
        reference
            .apply_delta(delta_for(seq))
            .expect("reference applies");
    }
    assert_eq!(
        scan_bits(&engine),
        scan_bits(&reference),
        "recovered state diverges from a clean re-application of seq 1..={recovered}"
    );
    recovered
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("child") {
        let dir = PathBuf::from(args.get(2).expect("child needs the scratch dir"));
        let total = args
            .get(3)
            .and_then(|v| v.parse().ok())
            .expect("child needs the delta count");
        run_child(&dir, total);
        return;
    }

    let trials = env_u64("PVC_CRASH_TRIALS", 6);
    let total = env_u64("PVC_CRASH_DELTAS", 2000);
    let seed = env_u64("PVC_CRASH_SEED", 0xC0FFEE);
    let mut rng = SeededRng::seed_from_u64(seed);
    let dir = std::env::temp_dir().join(format!("pvc-crash-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let exe = std::env::current_exe().expect("own path");

    for trial in 1..=trials {
        let mut child = std::process::Command::new(&exe)
            .arg("child")
            .arg(&dir)
            .arg(total.to_string())
            .spawn()
            .expect("child spawns");
        // Long enough to reach the apply loop, short enough to land kills
        // inside appends, snapshot publishes and rotations.
        let delay_ms = rng.gen_range(5..160u32) as u64;
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        let _ = child.kill(); // SIGKILL; may race a clean exit — both are fine
        let status = child.wait().expect("child reaped");
        let acked = last_acked(&dir);
        let recovered = verify(&dir, acked);
        println!(
            "trial {trial}/{trials}: killed after {delay_ms}ms ({status}), acked {acked}, \
             recovered {recovered} — consistent"
        );
        if recovered >= total {
            break;
        }
    }

    // Final uninterrupted run: the stream must complete and recover exactly.
    let status = std::process::Command::new(&exe)
        .arg("child")
        .arg(&dir)
        .arg(total.to_string())
        .status()
        .expect("final child runs");
    assert!(status.success(), "uninterrupted child failed: {status}");
    let acked = last_acked(&dir);
    assert_eq!(acked, total, "clean run must acknowledge every delta");
    let recovered = verify(&dir, acked);
    assert_eq!(recovered, total);
    let _ = std::fs::remove_dir_all(&dir);
    println!("crash-recovery smoke OK: {total} deltas survived {trials} seeded kills");
}
