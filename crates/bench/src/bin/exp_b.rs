//! Regenerates Experiment B of the paper (see EXPERIMENTS.md for the figure
//! mapping). Set `PVC_BENCH_FULL=1` for paper-scale parameters.

fn main() {
    let scale = pvc_bench::Scale::from_env();
    eprintln!("running experiment B at {scale:?} scale ...");
    let rows = pvc_bench::experiment_b(scale);
    let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
    pvc_bench::print_table(&pvc_bench::experiments::SWEEP_HEADER, &cells);
}
