//! CI smoke check for the delta-update path: runs the incremental-update
//! experiment (warm a query, apply a 1-tuple delta into an *unrelated* table,
//! re-run) and **fails (exit 1)** if the delta triggered any recompilation of
//! the repeated query's artifacts, or if no cached artifacts survived the
//! delta at all (invalidation fell back to dropping everything).
//!
//! ```text
//! cargo run --release --bin delta_smoke
//! ```

use pvc_bench::{experiment_incremental, Scale, INCREMENTAL_HEADER};

fn main() {
    let report = experiment_incremental(Scale::from_env());
    println!("{}", INCREMENTAL_HEADER.join("\t"));
    println!("{}", report.cells().join("\t"));
    if report.recompiles_after_delta > 0 {
        eprintln!(
            "FAIL: {} artifacts were recompiled after a 1-tuple delta into an unrelated \
             table — selective invalidation is not keeping disjoint queries warm",
            report.recompiles_after_delta
        );
        std::process::exit(1);
    }
    if report.kept_artifacts == 0 {
        eprintln!(
            "FAIL: zero cached artifacts survived the delta (evicted: {}) — invalidation \
             dropped everything instead of invalidating by var-set overlap",
            report.evicted_artifacts
        );
        std::process::exit(1);
    }
    if report.warm_after_delta_s > report.cold_first_s {
        // Informational only: timing inversions can happen on noisy CI machines.
        eprintln!(
            "warning: post-delta query ({:.4}s) was not faster than the cold first query \
             ({:.4}s)",
            report.warm_after_delta_s, report.cold_first_s
        );
    }
    println!(
        "OK: delta applied in {:.4}s, {} artifacts kept ({} evicted), post-delta query \
         {:.4}s at {:.2}x warm with 0 recompilations",
        report.delta_apply_s,
        report.kept_artifacts,
        report.evicted_artifacts,
        report.warm_after_delta_s,
        report.after_vs_warm
    );
}
