//! Emits a machine-readable JSON baseline of Experiments A and B (quick scale) on
//! stdout. The committed `BENCH_baseline.json` at the repository root is produced by
//! this binary; future PRs re-run it to track the perf trajectory:
//!
//! ```text
//! cargo run --release --bin baseline > BENCH_baseline.json
//! ```

use pvc_bench::experiments::SweepRow;
use pvc_bench::Scale;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_json(rows: &[SweepRow], out: &mut String) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"series\": \"{}\", \"x\": {}, \"mean_s\": {:.6}, \"std_s\": {:.6}, \"runs\": {}}}",
            escape(&row.series),
            row.x,
            row.measurement.mean_seconds,
            row.measurement.std_seconds,
            row.measurement.runs
        ));
    }
    out.push_str("\n  ]");
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("running experiments A and B at {scale:?} scale ...");
    let a = pvc_bench::experiment_a(scale);
    let b = pvc_bench::experiment_b(scale);
    eprintln!("running the repeated-workload cache experiment ...");
    let cache = pvc_bench::experiment_cache(scale);
    eprintln!("running the parallel-execution experiment ...");
    let parallel = pvc_bench::experiment_parallel(scale);
    eprintln!("running the distribution-kernel experiment ...");
    let kernel = pvc_bench::experiment_kernel(scale);
    eprintln!("running the warm-restart experiment ...");
    let warm_restart = pvc_bench::experiment_warm_restart(scale);
    eprintln!("running the incremental-update experiment ...");
    let incremental = pvc_bench::experiment_incremental(scale);
    eprintln!("running the serving experiment ...");
    let serve = pvc_bench::experiment_serve(scale);
    eprintln!("running the durability experiment ...");
    let durability = pvc_bench::experiment_durability(scale);
    // Last: it toggles the process-wide observability flags while it measures.
    eprintln!("running the observability-overhead experiment ...");
    let obs = pvc_bench::experiment_obs(scale);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"experiment_a\": ");
    rows_json(&a, &mut out);
    out.push_str(",\n  \"experiment_b\": ");
    rows_json(&b, &mut out);
    out.push_str(",\n  \"experiment_cache\": ");
    out.push_str(&cache.to_json());
    out.push_str(",\n  \"experiment_parallel\": ");
    out.push_str(&parallel.to_json());
    out.push_str(",\n  \"experiment_kernel\": ");
    out.push_str(&kernel.to_json());
    out.push_str(",\n  \"experiment_warm_restart\": ");
    out.push_str(&warm_restart.to_json());
    out.push_str(",\n  \"experiment_incremental\": ");
    out.push_str(&incremental.to_json());
    out.push_str(",\n  \"experiment_serve\": ");
    out.push_str(&serve.to_json());
    out.push_str(",\n  \"experiment_durability\": ");
    out.push_str(&durability.to_json());
    out.push_str(",\n  \"experiment_obs\": ");
    out.push_str(&obs.to_json());
    out.push_str("\n}\n");
    print!("{out}");
}
