//! Small measurement utilities shared by the experiment drivers: repeated timing with
//! outlier trimming (the paper reports averages over `#runs` with the slowest and
//! fastest runs discarded) and aligned table printing.

use std::time::Instant;

/// A timing measurement aggregated over several runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Mean wall-clock seconds (after trimming the fastest and slowest run).
    pub mean_seconds: f64,
    /// Estimated standard deviation of the trimmed runs.
    pub std_seconds: f64,
    /// Number of runs that entered the mean.
    pub runs: usize,
}

/// Mean and standard deviation of a slice.
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (mean, var.sqrt())
}

/// Run `f` once per seed in `seeds`, timing each run, and aggregate the timings the
/// way the paper does: discard the slowest and the fastest run (when there are more
/// than two runs) and report mean and standard deviation of the rest.
pub fn timed_over_seeds(
    seeds: impl IntoIterator<Item = u64>,
    mut f: impl FnMut(u64),
) -> Measurement {
    let mut times: Vec<f64> = Vec::new();
    for seed in seeds {
        let start = Instant::now();
        f(seed);
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let trimmed: &[f64] = if times.len() > 2 {
        &times[1..times.len() - 1]
    } else {
        &times
    };
    let (mean_seconds, std_seconds) = mean_std(trimmed);
    Measurement {
        mean_seconds,
        std_seconds,
        runs: trimmed.len(),
    }
}

/// Time a closure `iters` times (after one untimed warm-up run) and print a single
/// aligned result line. This is the minimal harness behind the `benches/` targets,
/// which are plain `fn main()` programs rather than users of an external benchmark
/// framework.
pub fn bench_case(label: &str, iters: usize, mut f: impl FnMut()) -> Measurement {
    f(); // warm-up
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_secs_f64());
    }
    let (mean_seconds, std_seconds) = mean_std(&times);
    println!("{label:<48} {mean_seconds:>12.6}s ± {std_seconds:>10.6}s  ({iters} iters)");
    Measurement {
        mean_seconds,
        std_seconds,
        runs: iters,
    }
}

/// Print rows as an aligned text table with a header.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn timing_trims_extremes() {
        let mut calls = 0;
        let m = timed_over_seeds(0..5, |_| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(m.runs, 3);
        assert!(m.mean_seconds >= 0.0);
    }

    #[test]
    fn timing_with_two_runs_keeps_both() {
        let m = timed_over_seeds(0..2, |_| {});
        assert_eq!(m.runs, 2);
    }
}
