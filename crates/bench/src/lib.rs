//! # pvc-bench
//!
//! The benchmark harness that regenerates every figure of the paper's experimental
//! evaluation (§7): Experiments A–E on randomly generated expressions (Figures 7–10)
//! and Experiment F on TPC-H-like data (Figure 11), plus micro- and ablation
//! benchmarks that are not in the paper but quantify the design choices called out in
//! `DESIGN.md`.
//!
//! Each experiment is a function returning the rows of the corresponding figure's
//! series; the `exp_*` binaries print them as aligned tables (and CSV), and the
//! Criterion benches time representative points of the same sweeps.
//!
//! The default parameter sets are scaled down from the paper's so that the whole
//! harness completes in minutes on a laptop; set the environment variable
//! `PVC_BENCH_FULL=1` to run closer to the paper's parameters. The *shape* of every
//! curve (who wins, where run time saturates, where the phase transitions sit) is
//! preserved at either scale; absolute times are not comparable to the paper's 2012
//! hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod regression;
pub mod stats;

pub use experiments::{
    cache_workload_db, cache_workload_query, experiment_a, experiment_b, experiment_c,
    experiment_cache, experiment_cache_threads, experiment_d, experiment_durability, experiment_e,
    experiment_f, experiment_incremental, experiment_kernel, experiment_obs, experiment_parallel,
    experiment_serve, experiment_warm_restart, CacheHitReport, DurabilityReport, IncrementalReport,
    KernelReport, ObsReport, ParallelReport, Scale, WarmRestartReport, CACHE_HEADER,
    DURABILITY_HEADER, INCREMENTAL_HEADER, KERNEL_HEADER, OBS_HEADER, PARALLEL_HEADER,
    WARM_RESTART_HEADER,
};
pub use json::{Json, JsonError};
pub use stats::{bench_case, mean_std, print_table, Measurement};
