//! Semiring expressions `Φ ∈ K` over a set of random variables (Fig. 2 of the paper).
//!
//! ```text
//! Φ ::= x | Φ + Φ | Φ · Φ | [α θ α] | [Φ θ Φ] | s
//! ```
//!
//! Expressions are kept as owned trees with *n-ary* sums and products: the rewriting
//! of Fig. 4 produces wide, flat sums of products (one summand per contributing input
//! tuple), and the compiler's partitioning rules work directly on those child lists.

use crate::semimodule_expr::SemimoduleExpr;
use crate::vars::{Var, VarSet};
use pvc_algebra::{CmpOp, SemiringKind, SemiringValue};
use std::collections::BTreeMap;
use std::fmt;

/// A semiring expression over random variables (the `Φ` non-terminal of Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub enum SemiringExpr {
    /// A random-variable symbol `x ∈ X`.
    Var(Var),
    /// A constant `s ∈ S`.
    Const(SemiringValue),
    /// An n-ary sum `Φ_1 + … + Φ_n`.
    Add(Vec<SemiringExpr>),
    /// An n-ary product `Φ_1 · … · Φ_n`.
    Mul(Vec<SemiringExpr>),
    /// A conditional expression `[Φ θ Ψ]` comparing two semiring expressions.
    CmpSS(CmpOp, Box<SemiringExpr>, Box<SemiringExpr>),
    /// A conditional expression `[α θ β]` comparing two semimodule expressions.
    CmpMM(CmpOp, Box<SemimoduleExpr>, Box<SemimoduleExpr>),
}

impl SemiringExpr {
    /// The constant `1_S` of the given semiring.
    pub fn one(kind: SemiringKind) -> Self {
        SemiringExpr::Const(kind.one())
    }

    /// The constant `0_S` of the given semiring.
    pub fn zero(kind: SemiringKind) -> Self {
        SemiringExpr::Const(kind.zero())
    }

    /// An n-ary sum, flattening nested sums and skipping neutral summands.
    pub fn sum(children: Vec<SemiringExpr>) -> Self {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SemiringExpr::Add(grand) => flat.extend(grand),
                SemiringExpr::Const(v) if v.is_zero() => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            1 => flat.pop().unwrap(),
            _ => SemiringExpr::Add(flat),
        }
    }

    /// An n-ary product, flattening nested products and skipping neutral factors.
    pub fn product(children: Vec<SemiringExpr>) -> Self {
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SemiringExpr::Mul(grand) => flat.extend(grand),
                SemiringExpr::Const(v) if v.is_one() => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            1 => flat.pop().unwrap(),
            _ => SemiringExpr::Mul(flat),
        }
    }

    /// A conditional `[Φ θ Ψ]` on semiring expressions.
    pub fn cmp_ss(theta: CmpOp, lhs: SemiringExpr, rhs: SemiringExpr) -> Self {
        SemiringExpr::CmpSS(theta, Box::new(lhs), Box::new(rhs))
    }

    /// A conditional `[α θ β]` on semimodule expressions.
    pub fn cmp_mm(theta: CmpOp, lhs: SemimoduleExpr, rhs: SemimoduleExpr) -> Self {
        SemiringExpr::CmpMM(theta, Box::new(lhs), Box::new(rhs))
    }

    /// The constant value, if this expression is a constant.
    pub fn as_const(&self) -> Option<SemiringValue> {
        match self {
            SemiringExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the expression contains no variable symbols. A short-circuiting
    /// scan — no allocation, unlike [`vars`](Self::vars).
    pub fn is_ground(&self) -> bool {
        match self {
            SemiringExpr::Var(_) => false,
            SemiringExpr::Const(_) => true,
            SemiringExpr::Add(cs) | SemiringExpr::Mul(cs) => cs.iter().all(|c| c.is_ground()),
            SemiringExpr::CmpSS(_, a, b) => a.is_ground() && b.is_ground(),
            SemiringExpr::CmpMM(_, a, b) => {
                a.terms.iter().all(|t| t.coeff.is_ground())
                    && b.terms.iter().all(|t| t.coeff.is_ground())
            }
        }
    }

    /// Collect the set of variables occurring in the expression.
    pub fn vars(&self) -> VarSet {
        let mut buf = Vec::new();
        self.collect_vars(&mut buf);
        VarSet::from_iter_of(buf)
    }

    /// Push every variable occurrence (with duplicates) onto `out`. This is the
    /// allocation-light primitive behind [`vars`](Self::vars), useful when the
    /// caller batches several expressions into one buffer.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            SemiringExpr::Var(v) => out.push(*v),
            SemiringExpr::Const(_) => {}
            SemiringExpr::Add(cs) | SemiringExpr::Mul(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
            SemiringExpr::CmpSS(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            SemiringExpr::CmpMM(_, a, b) => {
                for t in a.terms.iter().chain(&b.terms) {
                    t.coeff.collect_vars(out);
                }
            }
        }
    }

    /// Count how often each variable occurs (used by the compiler's
    /// most-occurrences heuristic for choosing the ⊔ variable).
    pub fn count_occurrences(&self, out: &mut BTreeMap<Var, usize>) {
        match self {
            SemiringExpr::Var(v) => *out.entry(*v).or_insert(0) += 1,
            SemiringExpr::Const(_) => {}
            SemiringExpr::Add(cs) | SemiringExpr::Mul(cs) => {
                for c in cs {
                    c.count_occurrences(out);
                }
            }
            SemiringExpr::CmpSS(_, a, b) => {
                a.count_occurrences(out);
                b.count_occurrences(out);
            }
            SemiringExpr::CmpMM(_, a, b) => {
                a.count_occurrences(out);
                b.count_occurrences(out);
            }
        }
    }

    /// The number of AST nodes (a size measure used in statistics and tests).
    pub fn num_nodes(&self) -> usize {
        match self {
            SemiringExpr::Var(_) | SemiringExpr::Const(_) => 1,
            SemiringExpr::Add(cs) | SemiringExpr::Mul(cs) => {
                1 + cs.iter().map(|c| c.num_nodes()).sum::<usize>()
            }
            SemiringExpr::CmpSS(_, a, b) => 1 + a.num_nodes() + b.num_nodes(),
            SemiringExpr::CmpMM(_, a, b) => 1 + a.num_nodes() + b.num_nodes(),
        }
    }

    /// Substitute a constant for every occurrence of a variable: `Φ|x←s` (Eq. 10).
    pub fn substitute(&self, var: Var, value: SemiringValue) -> SemiringExpr {
        match self {
            SemiringExpr::Var(v) if *v == var => SemiringExpr::Const(value),
            SemiringExpr::Var(_) | SemiringExpr::Const(_) => self.clone(),
            SemiringExpr::Add(cs) => {
                SemiringExpr::Add(cs.iter().map(|c| c.substitute(var, value)).collect())
            }
            SemiringExpr::Mul(cs) => {
                SemiringExpr::Mul(cs.iter().map(|c| c.substitute(var, value)).collect())
            }
            SemiringExpr::CmpSS(op, a, b) => SemiringExpr::CmpSS(
                *op,
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
            SemiringExpr::CmpMM(op, a, b) => SemiringExpr::CmpMM(
                *op,
                Box::new(a.substitute(var, value)),
                Box::new(b.substitute(var, value)),
            ),
        }
    }

    /// Evaluate the expression under a total valuation of its variables
    /// (the semiring homomorphism extending the valuation, §3 of the paper).
    ///
    /// `kind` fixes the ambient semiring used for the `0_S`/`1_S` results of
    /// conditional sub-expressions and for empty sums/products.
    pub fn eval(
        &self,
        valuation: &dyn Fn(Var) -> SemiringValue,
        kind: SemiringKind,
    ) -> SemiringValue {
        match self {
            SemiringExpr::Var(v) => valuation(*v),
            SemiringExpr::Const(c) => *c,
            SemiringExpr::Add(cs) => cs
                .iter()
                .map(|c| c.eval(valuation, kind))
                .fold(kind.zero(), |a, b| a.add(&b)),
            SemiringExpr::Mul(cs) => cs
                .iter()
                .map(|c| c.eval(valuation, kind))
                .fold(kind.one(), |a, b| a.mul(&b)),
            SemiringExpr::CmpSS(op, a, b) => {
                let va = a.eval(valuation, kind);
                let vb = b.eval(valuation, kind);
                if op.eval(&va, &vb) {
                    kind.one()
                } else {
                    kind.zero()
                }
            }
            SemiringExpr::CmpMM(op, a, b) => {
                let va = a.eval(valuation, kind);
                let vb = b.eval(valuation, kind);
                if op.eval(&va, &vb) {
                    kind.one()
                } else {
                    kind.zero()
                }
            }
        }
    }

    /// Simplify by constant folding: flatten sums/products, drop neutral elements,
    /// short-circuit annihilating zeros, and evaluate ground conditional expressions.
    pub fn simplify(&self, kind: SemiringKind) -> SemiringExpr {
        match self {
            SemiringExpr::Var(_) | SemiringExpr::Const(_) => self.clone(),
            SemiringExpr::Add(cs) => {
                let mut const_acc = kind.zero();
                let mut rest = Vec::new();
                for c in cs {
                    match c.simplify(kind) {
                        SemiringExpr::Const(v) => const_acc = const_acc.add(&v),
                        SemiringExpr::Add(grand) => rest.extend(grand),
                        other => rest.push(other),
                    }
                }
                if !const_acc.is_zero() || rest.is_empty() {
                    rest.push(SemiringExpr::Const(const_acc));
                }
                if rest.len() == 1 {
                    rest.pop().unwrap()
                } else {
                    SemiringExpr::Add(rest)
                }
            }
            SemiringExpr::Mul(cs) => {
                let mut const_acc = kind.one();
                let mut rest = Vec::new();
                for c in cs {
                    match c.simplify(kind) {
                        SemiringExpr::Const(v) => {
                            if v.is_zero() {
                                return SemiringExpr::Const(kind.zero());
                            }
                            const_acc = const_acc.mul(&v);
                        }
                        SemiringExpr::Mul(grand) => rest.extend(grand),
                        other => rest.push(other),
                    }
                }
                if !const_acc.is_one() || rest.is_empty() {
                    rest.push(SemiringExpr::Const(const_acc));
                }
                if rest.len() == 1 {
                    rest.pop().unwrap()
                } else {
                    SemiringExpr::Mul(rest)
                }
            }
            SemiringExpr::CmpSS(op, a, b) => {
                let sa = a.simplify(kind);
                let sb = b.simplify(kind);
                if let (Some(ca), Some(cb)) = (sa.as_const(), sb.as_const()) {
                    let holds = op.eval(&ca, &cb);
                    return SemiringExpr::Const(if holds { kind.one() } else { kind.zero() });
                }
                SemiringExpr::CmpSS(*op, Box::new(sa), Box::new(sb))
            }
            SemiringExpr::CmpMM(op, a, b) => {
                let sa = a.simplify(kind);
                let sb = b.simplify(kind);
                if let (Some(ca), Some(cb)) = (sa.as_const(), sb.as_const()) {
                    let holds = op.eval(&ca, &cb);
                    return SemiringExpr::Const(if holds { kind.one() } else { kind.zero() });
                }
                SemiringExpr::CmpMM(*op, Box::new(sa), Box::new(sb))
            }
        }
    }

    /// `Φ|x←s` followed by constant folding, in **one** tree rebuild.
    ///
    /// Produces exactly the same expression as
    /// `self.substitute(var, value).simplify(kind)` (the compiler's Shannon
    /// expansion relies on this equality) while walking and allocating the tree
    /// once instead of twice — the dominant cost of `⊔` expansion.
    pub fn substitute_simplify(
        &self,
        var: Var,
        value: SemiringValue,
        kind: SemiringKind,
    ) -> SemiringExpr {
        match self {
            SemiringExpr::Var(v) if *v == var => SemiringExpr::Const(value),
            SemiringExpr::Var(_) | SemiringExpr::Const(_) => self.clone(),
            SemiringExpr::Add(cs) => {
                let mut const_acc = kind.zero();
                let mut rest = Vec::new();
                for c in cs {
                    match c.substitute_simplify(var, value, kind) {
                        SemiringExpr::Const(v) => const_acc = const_acc.add(&v),
                        SemiringExpr::Add(grand) => rest.extend(grand),
                        other => rest.push(other),
                    }
                }
                if !const_acc.is_zero() || rest.is_empty() {
                    rest.push(SemiringExpr::Const(const_acc));
                }
                if rest.len() == 1 {
                    rest.pop().unwrap()
                } else {
                    SemiringExpr::Add(rest)
                }
            }
            SemiringExpr::Mul(cs) => {
                let mut const_acc = kind.one();
                let mut rest = Vec::new();
                for c in cs {
                    match c.substitute_simplify(var, value, kind) {
                        SemiringExpr::Const(v) => {
                            if v.is_zero() {
                                return SemiringExpr::Const(kind.zero());
                            }
                            const_acc = const_acc.mul(&v);
                        }
                        SemiringExpr::Mul(grand) => rest.extend(grand),
                        other => rest.push(other),
                    }
                }
                if !const_acc.is_one() || rest.is_empty() {
                    rest.push(SemiringExpr::Const(const_acc));
                }
                if rest.len() == 1 {
                    rest.pop().unwrap()
                } else {
                    SemiringExpr::Mul(rest)
                }
            }
            SemiringExpr::CmpSS(op, a, b) => {
                let sa = a.substitute_simplify(var, value, kind);
                let sb = b.substitute_simplify(var, value, kind);
                if let (Some(ca), Some(cb)) = (sa.as_const(), sb.as_const()) {
                    let holds = op.eval(&ca, &cb);
                    return SemiringExpr::Const(if holds { kind.one() } else { kind.zero() });
                }
                SemiringExpr::CmpSS(*op, Box::new(sa), Box::new(sb))
            }
            SemiringExpr::CmpMM(op, a, b) => {
                let sa = a.substitute_simplify(var, value, kind);
                let sb = b.substitute_simplify(var, value, kind);
                if let (Some(ca), Some(cb)) = (sa.as_const(), sb.as_const()) {
                    let holds = op.eval(&ca, &cb);
                    return SemiringExpr::Const(if holds { kind.one() } else { kind.zero() });
                }
                SemiringExpr::CmpMM(*op, Box::new(sa), Box::new(sb))
            }
        }
    }
}

impl From<Var> for SemiringExpr {
    fn from(v: Var) -> Self {
        SemiringExpr::Var(v)
    }
}

impl From<SemiringValue> for SemiringExpr {
    fn from(v: SemiringValue) -> Self {
        SemiringExpr::Const(v)
    }
}

impl std::ops::Add for SemiringExpr {
    type Output = SemiringExpr;
    fn add(self, rhs: SemiringExpr) -> SemiringExpr {
        SemiringExpr::sum(vec![self, rhs])
    }
}

impl std::ops::Mul for SemiringExpr {
    type Output = SemiringExpr;
    fn mul(self, rhs: SemiringExpr) -> SemiringExpr {
        SemiringExpr::product(vec![self, rhs])
    }
}

impl fmt::Display for SemiringExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemiringExpr::Var(v) => write!(f, "{v}"),
            SemiringExpr::Const(c) => write!(f, "{c}"),
            SemiringExpr::Add(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            SemiringExpr::Mul(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    match c {
                        SemiringExpr::Add(_) => write!(f, "{c}")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                Ok(())
            }
            SemiringExpr::CmpSS(op, a, b) => write!(f, "[{a} {op} {b}]"),
            SemiringExpr::CmpMM(op, a, b) => write!(f, "[{a} {op} {b}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarTable;
    use pvc_algebra::MonoidValue;

    fn v(i: u32) -> SemiringExpr {
        SemiringExpr::Var(Var(i))
    }

    #[test]
    fn builders_flatten() {
        let e = SemiringExpr::sum(vec![
            v(1),
            SemiringExpr::sum(vec![v(2), v(3)]),
            SemiringExpr::zero(SemiringKind::Bool),
        ]);
        match &e {
            SemiringExpr::Add(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected sum, got {other:?}"),
        }
        let p = SemiringExpr::product(vec![v(1), SemiringExpr::product(vec![v(2), v(3)])]);
        match &p {
            SemiringExpr::Mul(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected product, got {other:?}"),
        }
        // Singleton sums/products collapse to the child.
        assert_eq!(SemiringExpr::sum(vec![v(7)]), v(7));
        assert_eq!(SemiringExpr::product(vec![v(7)]), v(7));
    }

    #[test]
    fn vars_and_occurrences() {
        let e = (v(1) * v(2) + v(1) * v(3)) * v(4);
        let vars = e.vars();
        assert_eq!(vars.len(), 4);
        let mut occ = BTreeMap::new();
        e.count_occurrences(&mut occ);
        assert_eq!(occ[&Var(1)], 2);
        assert_eq!(occ[&Var(4)], 1);
        assert_eq!(e.num_nodes(), 9);
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let e = v(1) * (v(2) + v(1));
        let s = e.substitute(Var(1), SemiringValue::Bool(true));
        assert!(!s.vars().contains(Var(1)));
        assert!(s.vars().contains(Var(2)));
    }

    #[test]
    fn eval_boolean_annotation() {
        // x1·y11·(z1 + z5) from Figure 1d of the paper.
        let mut vt = VarTable::new();
        let x1 = vt.boolean("x1", 0.5);
        let y11 = vt.boolean("y11", 0.5);
        let z1 = vt.boolean("z1", 0.5);
        let z5 = vt.boolean("z5", 0.5);
        let e = SemiringExpr::Var(x1)
            * SemiringExpr::Var(y11)
            * (SemiringExpr::Var(z1) + SemiringExpr::Var(z5));
        let world = |truth: Vec<(Var, bool)>| {
            move |v: Var| {
                SemiringValue::Bool(
                    truth
                        .iter()
                        .find(|(w, _)| *w == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(false),
                )
            }
        };
        let all = world(vec![(x1, true), (y11, true), (z1, true), (z5, false)]);
        assert_eq!(e.eval(&all, SemiringKind::Bool), SemiringValue::Bool(true));
        let no_z = world(vec![(x1, true), (y11, true)]);
        assert_eq!(
            e.eval(&no_z, SemiringKind::Bool),
            SemiringValue::Bool(false)
        );
    }

    #[test]
    fn eval_bag_semantics() {
        // Under N the same expression computes multiplicities.
        let e = v(0) * (v(1) + v(2));
        let val = |x: Var| SemiringValue::Nat([2, 3, 4][x.0 as usize]);
        assert_eq!(e.eval(&val, SemiringKind::Nat), SemiringValue::Nat(14));
    }

    #[test]
    fn simplify_constant_folding() {
        let kind = SemiringKind::Bool;
        // ⊤ · (x + ⊥) simplifies to x.
        let e = SemiringExpr::one(kind) * (v(1) + SemiringExpr::zero(kind));
        assert_eq!(e.simplify(kind), v(1));
        // ⊥ · x simplifies to ⊥.
        let e = SemiringExpr::product(vec![SemiringExpr::Const(SemiringValue::Bool(false)), v(1)]);
        assert_eq!(
            e.simplify(kind),
            SemiringExpr::Const(SemiringValue::Bool(false))
        );
        // A ground conditional folds to a constant.
        let c = SemiringExpr::cmp_ss(
            CmpOp::Le,
            SemiringExpr::Const(SemiringValue::Nat(3)),
            SemiringExpr::Const(SemiringValue::Nat(5)),
        );
        assert_eq!(
            c.simplify(SemiringKind::Nat),
            SemiringExpr::Const(SemiringValue::Nat(1))
        );
    }

    #[test]
    fn simplify_nat_constant_accumulation() {
        let kind = SemiringKind::Nat;
        let e = SemiringExpr::sum(vec![
            SemiringExpr::Const(SemiringValue::Nat(2)),
            v(1),
            SemiringExpr::Const(SemiringValue::Nat(3)),
        ]);
        match e.simplify(kind) {
            SemiringExpr::Add(cs) => {
                assert_eq!(cs.len(), 2);
                assert!(cs.contains(&SemiringExpr::Const(SemiringValue::Nat(5))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conditional_on_semimodule_expressions() {
        // [x⊗10 +min y⊗20 ≤ 15] — evaluates per Eq. (2).
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.5);
        let y = vt.boolean("y", 0.5);
        let alpha = SemimoduleExpr::from_terms(
            pvc_algebra::AggOp::Min,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(10)),
                (SemiringExpr::Var(y), MonoidValue::Fin(20)),
            ],
        );
        let beta = SemimoduleExpr::constant(pvc_algebra::AggOp::Min, MonoidValue::Fin(15));
        let cond = SemiringExpr::cmp_mm(CmpOp::Le, alpha, beta);
        let world =
            |xv: bool, yv: bool| move |v: Var| SemiringValue::Bool(if v == x { xv } else { yv });
        assert_eq!(
            cond.eval(&world(true, false), SemiringKind::Bool),
            SemiringValue::Bool(true)
        );
        // Neither present: the MIN is +∞ which is not ≤ 15.
        assert_eq!(
            cond.eval(&world(false, false), SemiringKind::Bool),
            SemiringValue::Bool(false)
        );
        // Only y: min is 20, not ≤ 15.
        assert_eq!(
            cond.eval(&world(false, true), SemiringKind::Bool),
            SemiringValue::Bool(false)
        );
    }

    #[test]
    fn display_is_readable() {
        let e = v(1) * (v(2) + v(3));
        assert_eq!(e.to_string(), "v1·(v2 + v3)");
    }
}
