//! Hash-consed expression arena: interning of [`SemiringExpr`] / [`SemimoduleExpr`]
//! trees into compact ids with **O(1) structural equality** and a **canonical 64-bit
//! hash** that is stable under commutative reordering of `+`/`·` operands and of
//! semimodule terms.
//!
//! The paper's pipeline compiles the *same* sub-provenance over and over: identical
//! annotations recur across result tuples, across executions, and across queries
//! whose rewritings merely enumerate summands in a different order. Keying caches on
//! rendered expression strings (as the first engine iteration did) misses all of the
//! latter. The [`Interner`] fixes this:
//!
//! * every distinct expression *structure* is stored once in an arena and identified
//!   by an [`ExprId`] / [`AggExprId`] — two expressions are structurally equal iff
//!   their ids are equal;
//! * n-ary sums, products and semimodule term lists are **canonicalised** at intern
//!   time (children sorted by canonical hash), so `x·(y + z)` and `(z + y)·x` intern
//!   to the *same* id. This is sound for caching compilation artifacts because the
//!   ambient semirings (`B`, `N`) are commutative: distributions and confidences are
//!   invariant under operand reordering;
//! * every node carries a precomputed [canonical hash](Interner::hash) (a structural
//!   fingerprint independent of id-assignment order, usable across interner
//!   instances) and its [variable set](Interner::var_set) (so independence analyses
//!   need not re-walk the tree).
//!
//! The arena only ever grows; it is intended to live alongside a bounded
//! `CompilationCache` (see `pvc-core`) which stores the expensive artifacts and can
//! evict freely, while ids stay valid for the lifetime of the interner.

use crate::semimodule_expr::{SemimoduleExpr, SmTerm};
use crate::semiring_expr::SemiringExpr;
use crate::vars::{Var, VarSet};
use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringValue};
use std::collections::HashMap;

/// Id of an interned [`SemiringExpr`] (index into the [`Interner`] arena).
///
/// Ids are canonical under commutative reordering: equal ids ⇔ structurally equal
/// expressions up to `+`/`·` operand order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// Id of an interned [`SemimoduleExpr`] (index into the [`Interner`] arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggExprId(pub u32);

/// An interned semiring-expression node: the same shape as [`SemiringExpr`] with
/// child subtrees replaced by arena ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InternedExpr {
    /// A random variable.
    Var(Var),
    /// A semiring constant.
    Const(SemiringValue),
    /// An n-ary sum; children in canonical order.
    Add(Vec<ExprId>),
    /// An n-ary product; children in canonical order.
    Mul(Vec<ExprId>),
    /// A conditional comparing two semiring expressions.
    CmpSS(CmpOp, ExprId, ExprId),
    /// A conditional comparing two semimodule expressions.
    CmpMM(CmpOp, AggExprId, AggExprId),
}

/// An interned semimodule expression: a `+op` sum of `(coefficient, value)` terms in
/// canonical order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternedAgg {
    /// The aggregation monoid.
    pub op: AggOp,
    /// The terms `Φ ⊗ m` with interned coefficients, in canonical order.
    pub terms: Vec<(ExprId, MonoidValue)>,
}

// ---------------------------------------------------------------------------
// Canonical structural hashing (stable across processes and interner instances —
// no RandomState anywhere near these values).
// ---------------------------------------------------------------------------

const TAG_VAR: u64 = 0x9144_2d2e_07ad_6711;
const TAG_CONST: u64 = 0x5851_f42d_4c95_7f2d;
const TAG_ADD: u64 = 0x27d4_eb2f_1656_67c5;
const TAG_MUL: u64 = 0xc2b2_ae3d_27d4_eb4f;
const TAG_CMP_SS: u64 = 0x1656_67b1_9e37_79f9;
const TAG_CMP_MM: u64 = 0x85eb_ca6b_27d4_eb2f;
const TAG_AGG: u64 = 0x2545_f491_4f6c_dd1d;

/// The splitmix64 finaliser: a cheap, well-mixing bijection on `u64`.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sequentially combine (order-sensitive).
fn chain(seed: u64, x: u64) -> u64 {
    mix(seed ^ mix(x))
}

fn hash_semiring_value(v: &SemiringValue) -> u64 {
    match v {
        SemiringValue::Bool(b) => mix(TAG_CONST ^ (*b as u64)),
        SemiringValue::Nat(n) => mix(TAG_CONST.wrapping_add(mix(*n ^ 0xb001))),
    }
}

fn hash_monoid_value(v: &MonoidValue) -> u64 {
    match v {
        MonoidValue::NegInf => mix(0x006e_6567_5f69_6e66u64),
        MonoidValue::PosInf => mix(0x0070_6f73_5f69_6e66u64),
        MonoidValue::Fin(n) => mix(0xf17e ^ (*n as u64)),
    }
}

/// Commutatively fold child fingerprints: the wrapping sum of mixed hashes is
/// invariant under reordering but (thanks to the per-child `mix`) still sensitive to
/// the multiset of children.
fn commutative_fold(tag: u64, hashes: impl Iterator<Item = u64>) -> u64 {
    let mut acc = 0u64;
    let mut n = 0u64;
    for h in hashes {
        acc = acc.wrapping_add(mix(h ^ tag));
        n += 1;
    }
    mix(tag ^ acc.wrapping_add(mix(n)))
}

// ---------------------------------------------------------------------------
// The arena
// ---------------------------------------------------------------------------

/// A hash-consing arena for semiring and semimodule expressions.
///
/// See the [module documentation](self) for the canonicalisation contract.
#[derive(Debug, Default)]
pub struct Interner {
    nodes: Vec<InternedExpr>,
    hashes: Vec<u64>,
    var_sets: Vec<VarSet>,
    // Dedup index keyed by the canonical hash; candidates are compared against the
    // arena, so every node is stored exactly once (the bucket list absorbs the
    // rare structural hash collision).
    dedup: HashMap<u64, Vec<ExprId>>,

    agg_nodes: Vec<InternedAgg>,
    agg_hashes: Vec<u64>,
    agg_var_sets: Vec<VarSet>,
    agg_dedup: HashMap<u64, Vec<AggExprId>>,
}

// The interner is shared across worker threads (behind a mutex in
// `pvc_core::cache::SharedArtifacts`); keep it free of interior mutability and
// thread-bound types so `Send + Sync` cannot regress silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Interner>();
    assert_send_sync::<ExprId>();
    assert_send_sync::<AggExprId>();
};

impl Interner {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned semiring nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct interned semimodule nodes.
    pub fn agg_len(&self) -> usize {
        self.agg_nodes.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.agg_nodes.is_empty()
    }

    /// The interned node behind an id.
    pub fn node(&self, id: ExprId) -> &InternedExpr {
        &self.nodes[id.0 as usize]
    }

    /// The interned semimodule node behind an id.
    pub fn agg_node(&self, id: AggExprId) -> &InternedAgg {
        &self.agg_nodes[id.0 as usize]
    }

    /// The canonical structural hash of an interned expression. Stable across
    /// interner instances and processes; invariant under commutative reordering.
    pub fn hash(&self, id: ExprId) -> u64 {
        self.hashes[id.0 as usize]
    }

    /// The canonical structural hash of an interned semimodule expression.
    pub fn agg_hash(&self, id: AggExprId) -> u64 {
        self.agg_hashes[id.0 as usize]
    }

    /// The set of variables occurring in an interned expression (precomputed).
    pub fn var_set(&self, id: ExprId) -> &VarSet {
        &self.var_sets[id.0 as usize]
    }

    /// The set of variables occurring in an interned semimodule expression.
    pub fn agg_var_set(&self, id: AggExprId) -> &VarSet {
        &self.agg_var_sets[id.0 as usize]
    }

    /// All interned semiring nodes in id order (`nodes()[i]` is the node behind
    /// `ExprId(i)`). Children always have smaller ids than their parents, so the
    /// slice is a valid bottom-up replay order — the property the snapshot codec
    /// of `pvc-core::persist` relies on.
    pub fn nodes(&self) -> &[InternedExpr] {
        &self.nodes
    }

    /// All interned semimodule nodes in id order (see [`nodes`](Self::nodes)).
    pub fn agg_nodes(&self) -> &[InternedAgg] {
        &self.agg_nodes
    }

    /// Intern an already-structured node whose children are ids of **this**
    /// interner. Canonicalises n-ary operand order exactly like
    /// [`intern`](Self::intern), so replaying another interner's nodes (with
    /// remapped child ids) through this method reproduces canonical structures —
    /// the load half of the snapshot codec.
    pub fn intern_node(&mut self, node: InternedExpr) -> ExprId {
        match node {
            InternedExpr::Add(children) => self.intern_add(children),
            InternedExpr::Mul(children) => self.intern_mul(children),
            other => self.insert_node(other),
        }
    }

    /// Intern a semiring expression tree, returning its canonical id.
    pub fn intern(&mut self, expr: &SemiringExpr) -> ExprId {
        match expr {
            SemiringExpr::Var(v) => self.insert_node(InternedExpr::Var(*v)),
            SemiringExpr::Const(c) => self.insert_node(InternedExpr::Const(*c)),
            SemiringExpr::Add(children) => {
                let ids: Vec<ExprId> = children.iter().map(|c| self.intern(c)).collect();
                self.intern_add(ids)
            }
            SemiringExpr::Mul(children) => {
                let ids: Vec<ExprId> = children.iter().map(|c| self.intern(c)).collect();
                self.intern_mul(ids)
            }
            SemiringExpr::CmpSS(op, a, b) => {
                let ia = self.intern(a);
                let ib = self.intern(b);
                self.insert_node(InternedExpr::CmpSS(*op, ia, ib))
            }
            SemiringExpr::CmpMM(op, a, b) => {
                let ia = self.intern_semimodule(a);
                let ib = self.intern_semimodule(b);
                self.insert_node(InternedExpr::CmpMM(*op, ia, ib))
            }
        }
    }

    /// Intern a semimodule expression, returning its canonical id.
    pub fn intern_semimodule(&mut self, expr: &SemimoduleExpr) -> AggExprId {
        let terms: Vec<(ExprId, MonoidValue)> = expr
            .terms
            .iter()
            .map(|t| (self.intern(&t.coeff), t.value))
            .collect();
        self.intern_agg(expr.op, terms)
    }

    /// Intern an n-ary sum from already-interned children (canonicalising order).
    /// A singleton sum collapses to its only child, mirroring
    /// [`SemiringExpr::sum`]'s builder behaviour.
    pub fn intern_add(&mut self, mut children: Vec<ExprId>) -> ExprId {
        if children.len() == 1 {
            return children[0];
        }
        self.sort_canonical(&mut children);
        self.insert_node(InternedExpr::Add(children))
    }

    /// Intern an n-ary product from already-interned children (canonicalising order).
    pub fn intern_mul(&mut self, mut children: Vec<ExprId>) -> ExprId {
        if children.len() == 1 {
            return children[0];
        }
        self.sort_canonical(&mut children);
        self.insert_node(InternedExpr::Mul(children))
    }

    /// Intern a semimodule sum from already-interned terms (canonicalising order).
    pub fn intern_agg(&mut self, op: AggOp, mut terms: Vec<(ExprId, MonoidValue)>) -> AggExprId {
        terms.sort_by_key(|(coeff, value)| (self.hash(*coeff), *coeff, *value));
        let node = InternedAgg { op, terms };
        let hash = commutative_fold(
            chain(TAG_AGG, op as u64),
            node.terms
                .iter()
                .map(|(c, v)| chain(self.hash(*c), hash_monoid_value(v))),
        );
        if let Some(candidates) = self.agg_dedup.get(&hash) {
            for &c in candidates {
                if self.agg_nodes[c.0 as usize] == node {
                    return c;
                }
            }
        }
        let vars = node
            .terms
            .iter()
            .fold(VarSet::new(), |acc, (c, _)| acc.union(self.var_set(*c)));
        let id = AggExprId(self.agg_nodes.len() as u32);
        self.agg_nodes.push(node);
        self.agg_hashes.push(hash);
        self.agg_var_sets.push(vars);
        self.agg_dedup.entry(hash).or_default().push(id);
        id
    }

    /// Materialise the owned expression tree behind an id (in canonical operand
    /// order — a deterministic rendering of the equivalence class).
    pub fn resolve(&self, id: ExprId) -> SemiringExpr {
        match self.node(id) {
            InternedExpr::Var(v) => SemiringExpr::Var(*v),
            InternedExpr::Const(c) => SemiringExpr::Const(*c),
            InternedExpr::Add(children) => {
                SemiringExpr::Add(children.iter().map(|c| self.resolve(*c)).collect())
            }
            InternedExpr::Mul(children) => {
                SemiringExpr::Mul(children.iter().map(|c| self.resolve(*c)).collect())
            }
            InternedExpr::CmpSS(op, a, b) => {
                SemiringExpr::CmpSS(*op, Box::new(self.resolve(*a)), Box::new(self.resolve(*b)))
            }
            InternedExpr::CmpMM(op, a, b) => SemiringExpr::CmpMM(
                *op,
                Box::new(self.resolve_semimodule(*a)),
                Box::new(self.resolve_semimodule(*b)),
            ),
        }
    }

    /// Materialise the owned semimodule expression behind an id.
    pub fn resolve_semimodule(&self, id: AggExprId) -> SemimoduleExpr {
        let node = self.agg_node(id);
        SemimoduleExpr {
            op: node.op,
            terms: node
                .terms
                .iter()
                .map(|(c, v)| SmTerm::new(self.resolve(*c), *v))
                .collect(),
        }
    }

    /// Sort children into canonical order: by canonical hash, ties broken by id
    /// (within one interner, equal structure ⇒ equal id, so the order is total on
    /// distinct structures and permutations of a multiset sort identically).
    fn sort_canonical(&self, children: &mut [ExprId]) {
        children.sort_by_key(|c| (self.hash(*c), *c));
    }

    fn insert_node(&mut self, node: InternedExpr) -> ExprId {
        let hash = match &node {
            InternedExpr::Var(v) => mix(TAG_VAR ^ v.0 as u64),
            InternedExpr::Const(c) => hash_semiring_value(c),
            InternedExpr::Add(cs) => commutative_fold(TAG_ADD, cs.iter().map(|c| self.hash(*c))),
            InternedExpr::Mul(cs) => commutative_fold(TAG_MUL, cs.iter().map(|c| self.hash(*c))),
            InternedExpr::CmpSS(op, a, b) => chain(
                chain(chain(TAG_CMP_SS, *op as u64), self.hash(*a)),
                self.hash(*b),
            ),
            InternedExpr::CmpMM(op, a, b) => chain(
                chain(chain(TAG_CMP_MM, *op as u64), self.agg_hash(*a)),
                self.agg_hash(*b),
            ),
        };
        if let Some(candidates) = self.dedup.get(&hash) {
            for &c in candidates {
                if self.nodes[c.0 as usize] == node {
                    return c;
                }
            }
        }
        let vars = match &node {
            InternedExpr::Var(v) => VarSet::singleton(*v),
            InternedExpr::Const(_) => VarSet::new(),
            InternedExpr::Add(cs) | InternedExpr::Mul(cs) => cs
                .iter()
                .fold(VarSet::new(), |acc, c| acc.union(self.var_set(*c))),
            InternedExpr::CmpSS(_, a, b) => self.var_set(*a).union(self.var_set(*b)),
            InternedExpr::CmpMM(_, a, b) => self.agg_var_set(*a).union(self.agg_var_set(*b)),
        };
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.hashes.push(hash);
        self.var_sets.push(vars);
        self.dedup.entry(hash).or_default().push(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarTable;
    use pvc_algebra::MonoidValue::Fin;

    fn v(i: u32) -> SemiringExpr {
        SemiringExpr::Var(Var(i))
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let mut it = Interner::new();
        let a = it.intern(&(v(1) * (v(2) + v(3))));
        let b = it.intern(&(v(1) * (v(2) + v(3))));
        assert_eq!(a, b);
        let c = it.intern(&(v(1) * (v(2) + v(4))));
        assert_ne!(a, c);
        // Shared sub-structure is stored once: v1, v2, v3, v4, (v2+v3), (v2+v4),
        // and the two products — 8 nodes, not 10.
        assert_eq!(it.len(), 8);
    }

    #[test]
    fn commutative_reordering_is_canonicalised() {
        let mut it = Interner::new();
        let a = it.intern(&(v(1) * (v(2) + v(3))));
        let b = it.intern(&((v(3) + v(2)) * v(1)));
        assert_eq!(a, b, "operand order must not matter");
        assert_eq!(it.hash(a), it.hash(b));
        // Also across nesting: x·y·z in any association/order (the n-ary builders
        // flatten, so all renderings produce one Mul node).
        let p = it.intern(&SemiringExpr::product(vec![v(5), v(6), v(7)]));
        let q = it.intern(&SemiringExpr::product(vec![v(7), v(5), v(6)]));
        assert_eq!(p, q);
    }

    #[test]
    fn canonical_hash_is_stable_across_interners() {
        let e = (v(1) + v(2)) * v(3);
        let mut it1 = Interner::new();
        let mut it2 = Interner::new();
        // Interning unrelated expressions first shifts id assignment in it2, but the
        // canonical hash only depends on structure.
        it2.intern(&(v(9) * v(8) + v(7)));
        let h1 = {
            let id = it1.intern(&e);
            it1.hash(id)
        };
        let h2 = {
            let id = it2.intern(&((v(2) + v(1)) * v(3)));
            it2.hash(id)
        };
        assert_eq!(h1, h2);
    }

    #[test]
    fn distinct_structures_get_distinct_hashes() {
        // Not a collision-freeness proof, just a smoke test over a family of
        // related expressions.
        let mut it = Interner::new();
        let exprs = vec![
            v(1) + v(2),
            v(1) * v(2),
            v(1) + v(2) + v(3),
            v(1) * (v(2) + v(3)),
            (v(1) * v(2)) + v(3),
            SemiringExpr::cmp_ss(CmpOp::Le, v(1), v(2)),
            SemiringExpr::cmp_ss(CmpOp::Ge, v(1), v(2)),
            SemiringExpr::Const(SemiringValue::Bool(true)),
            SemiringExpr::Const(SemiringValue::Nat(1)),
        ];
        let hashes: Vec<u64> = exprs
            .iter()
            .map(|e| {
                let id = it.intern(e);
                it.hash(id)
            })
            .collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn semimodule_terms_are_canonicalised() {
        let mut it = Interner::new();
        let a = SemimoduleExpr::from_terms(AggOp::Min, vec![(v(1), Fin(10)), (v(2), Fin(20))]);
        let b = SemimoduleExpr::from_terms(AggOp::Min, vec![(v(2), Fin(20)), (v(1), Fin(10))]);
        let ia = it.intern_semimodule(&a);
        let ib = it.intern_semimodule(&b);
        assert_eq!(ia, ib);
        assert_eq!(it.agg_hash(ia), it.agg_hash(ib));
        // A different monoid or value is a different expression.
        let c = SemimoduleExpr::from_terms(AggOp::Max, vec![(v(1), Fin(10)), (v(2), Fin(20))]);
        assert_ne!(it.intern_semimodule(&c), ia);
    }

    #[test]
    fn resolve_round_trips_semantics() {
        // The resolved tree may reorder operands but must evaluate identically.
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.5);
        let y = vt.boolean("y", 0.5);
        let z = vt.boolean("z", 0.5);
        let e = SemiringExpr::Var(z) * (SemiringExpr::Var(y) + SemiringExpr::Var(x));
        let mut it = Interner::new();
        let id = it.intern(&e);
        let back = it.resolve(id);
        let worlds = [
            (false, false, true),
            (true, false, false),
            (true, true, true),
        ];
        for (xv, yv, zv) in worlds {
            let val = |v: Var| {
                SemiringValue::Bool(if v == x {
                    xv
                } else if v == y {
                    yv
                } else {
                    zv
                })
            };
            assert_eq!(
                e.eval(&val, pvc_algebra::SemiringKind::Bool),
                back.eval(&val, pvc_algebra::SemiringKind::Bool)
            );
        }
        // Re-interning the resolved form is a fixed point.
        assert_eq!(it.intern(&back), id);
    }

    #[test]
    fn var_sets_are_precomputed() {
        let mut it = Interner::new();
        let id = it.intern(&(v(1) * (v(2) + v(3))));
        let vs = it.var_set(id);
        assert_eq!(vs.len(), 3);
        assert!(vs.contains(Var(2)));
        let alpha = SemimoduleExpr::from_terms(AggOp::Sum, vec![(v(7), Fin(1))]);
        let aid = it.intern_semimodule(&alpha);
        assert_eq!(it.agg_var_set(aid).as_slice(), &[Var(7)]);
    }
}
