//! Brute-force probability computation by possible-world enumeration.
//!
//! This is the ground-truth oracle (exponential in the number of variables) used
//! throughout the test suites to validate the decomposition-tree computation, and the
//! reference implementation of the semantics of Eq. (3) of the paper:
//! `P_Φ[s] = Σ_{ν : ν(Φ)=s} Pr(ν)`.

use crate::semimodule_expr::SemimoduleExpr;
use crate::semiring_expr::SemiringExpr;
use crate::vars::{Var, VarSet, VarTable};
use pvc_algebra::{MonoidValue, SemiringKind, SemiringValue};
use pvc_prob::{Dist, MonoidDist, SemiringDist};
use std::collections::BTreeMap;

/// Enumerate every valuation of the given variables (restricted to their support) with
/// its probability mass. Exponential; intended for small variable sets in tests.
pub fn enumerate_worlds(
    vars: &VarSet,
    table: &VarTable,
) -> Vec<(BTreeMap<Var, SemiringValue>, f64)> {
    let mut worlds: Vec<(BTreeMap<Var, SemiringValue>, f64)> = vec![(BTreeMap::new(), 1.0)];
    for v in vars.iter() {
        let dist = table.dist(v);
        let mut next = Vec::with_capacity(worlds.len() * dist.support_size());
        for (valuation, p) in &worlds {
            for (value, pv) in dist.iter() {
                let mut valuation = valuation.clone();
                valuation.insert(v, *value);
                next.push((valuation, p * pv));
            }
        }
        worlds = next;
    }
    worlds
}

/// The exact probability distribution of a semiring expression, by enumeration.
pub fn semiring_dist_by_enumeration(
    expr: &SemiringExpr,
    table: &VarTable,
    kind: SemiringKind,
) -> SemiringDist {
    let vars = expr.vars();
    Dist::from_pairs(enumerate_worlds(&vars, table).into_iter().map(|(val, p)| {
        let lookup = |v: Var| val.get(&v).copied().unwrap_or_else(|| kind.zero());
        (expr.eval(&lookup, kind), p)
    }))
}

/// The exact probability distribution of a semimodule expression, by enumeration.
pub fn semimodule_dist_by_enumeration(
    expr: &SemimoduleExpr,
    table: &VarTable,
    kind: SemiringKind,
) -> MonoidDist {
    let vars = expr.vars();
    Dist::from_pairs(enumerate_worlds(&vars, table).into_iter().map(|(val, p)| {
        let lookup = |v: Var| val.get(&v).copied().unwrap_or_else(|| kind.zero());
        (expr.eval(&lookup, kind), p)
    }))
}

/// The probability that a semiring expression does **not** evaluate to `0_S` — the
/// tuple confidence of a pvc-table tuple annotated with this expression.
pub fn confidence_by_enumeration(expr: &SemiringExpr, table: &VarTable, kind: SemiringKind) -> f64 {
    semiring_dist_by_enumeration(expr, table, kind)
        .iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum()
}

/// The exact joint distribution of a pair of expressions (used to validate the joint
/// compilation of §5 "Compiling Joint Probability Distributions").
pub fn joint_dist_by_enumeration(
    exprs: &[SemimoduleExpr],
    table: &VarTable,
    kind: SemiringKind,
) -> Dist<Vec<MonoidValue>> {
    let vars: VarSet = exprs
        .iter()
        .map(|e| e.vars())
        .fold(VarSet::new(), |acc, s| acc.union(&s));
    Dist::from_pairs(enumerate_worlds(&vars, table).into_iter().map(|(val, p)| {
        let lookup = |v: Var| val.get(&v).copied().unwrap_or_else(|| kind.zero());
        let tuple: Vec<MonoidValue> = exprs.iter().map(|e| e.eval(&lookup, kind)).collect();
        (tuple, p)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, CmpOp, MonoidValue::Fin};

    #[test]
    fn enumeration_size_is_product_of_supports() {
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.5);
        let y = vt.natural("y", &[(0, 0.2), (1, 0.3), (2, 0.5)]);
        let vars: VarSet = [x, y].into_iter().collect();
        let worlds = enumerate_worlds(&vars, &vt);
        assert_eq!(worlds.len(), 6);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjunction_probability() {
        // P[x + y ≠ ⊥] = 1 − (1−px)(1−py), Example 2.
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.3);
        let y = vt.boolean("y", 0.6);
        let expr = SemiringExpr::Var(x) + SemiringExpr::Var(y);
        let conf = confidence_by_enumeration(&expr, &vt, SemiringKind::Bool);
        assert!((conf - (1.0 - 0.7 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn aggregate_distribution_of_min() {
        // MIN over two optional values 10 and 20.
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.5);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            vec![
                (SemiringExpr::Var(a), Fin(10)),
                (SemiringExpr::Var(b), Fin(20)),
            ],
        );
        let dist = semimodule_dist_by_enumeration(&alpha, &vt, SemiringKind::Bool);
        assert!((dist.prob(&Fin(10)) - 0.5).abs() < 1e-12);
        assert!((dist.prob(&Fin(20)) - 0.25).abs() < 1e-12);
        assert!((dist.prob(&MonoidValue::PosInf) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conditional_expression_distribution() {
        // [a⊗10 +sum b⊗20 ≤ 15]: holds unless b is present together with a... actually
        // holds iff b is absent (sum ∈ {0, 10} ≤ 15) — check via enumeration.
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.4);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Var(a), Fin(10)),
                (SemiringExpr::Var(b), Fin(20)),
            ],
        );
        let cond = SemiringExpr::cmp_mm(
            CmpOp::Le,
            alpha,
            SemimoduleExpr::constant(AggOp::Sum, Fin(15)),
        );
        let p = confidence_by_enumeration(&cond, &vt, SemiringKind::Bool);
        assert!((p - 0.6).abs() < 1e-12);
    }

    #[test]
    fn joint_distribution() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let sum = SemimoduleExpr::tensor(AggOp::Sum, SemiringExpr::Var(a), Fin(3));
        let count = SemimoduleExpr::tensor(AggOp::Count, SemiringExpr::Var(a), Fin(1));
        let joint = joint_dist_by_enumeration(&[sum, count], &vt, SemiringKind::Bool);
        assert!((joint.prob(&vec![Fin(3), Fin(1)]) - 0.5).abs() < 1e-12);
        assert!((joint.prob(&vec![Fin(0), Fin(0)]) - 0.5).abs() < 1e-12);
        assert_eq!(joint.support_size(), 2);
    }
}
