//! Random variables and variable sets.
//!
//! Every expression in a pvc-table is built over a finite set `X` of independent
//! random variables (§2.1 of the paper). The [`VarTable`] registers each variable's
//! human-readable name and its discrete probability distribution; expressions refer to
//! variables by the lightweight id [`Var`].

use pvc_algebra::{SemiringKind, SemiringValue};
use pvc_prob::{make, Dist, SemiringDist};
use std::collections::BTreeSet;
use std::fmt;

/// A random-variable identifier (index into a [`VarTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The registry of random variables: names and probability distributions.
///
/// The table induces the probability space `Ω` of Definition 1: variables are
/// independent and each world draws one value per variable.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
    dists: Vec<SemiringDist>,
}

impl VarTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a fresh variable with an arbitrary distribution over semiring values.
    pub fn fresh(&mut self, name: impl Into<String>, dist: SemiringDist) -> Var {
        let id = self.names.len() as u32;
        self.names.push(name.into());
        self.dists.push(dist);
        Var(id)
    }

    /// Register a Boolean tuple-presence variable with `P[⊤] = p`.
    pub fn boolean(&mut self, name: impl Into<String>, p: f64) -> Var {
        self.fresh(name, make::bernoulli(p))
    }

    /// Register a natural-number-valued variable from `(value, probability)` pairs.
    pub fn natural(&mut self, name: impl Into<String>, pairs: &[(u64, f64)]) -> Var {
        self.fresh(
            name,
            Dist::from_pairs(pairs.iter().map(|(v, p)| (SemiringValue::Nat(*v), *p))),
        )
    }

    /// The number of registered variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a variable.
    pub fn name(&self, var: Var) -> &str {
        &self.names[var.0 as usize]
    }

    /// The probability distribution of a variable.
    pub fn dist(&self, var: Var) -> &SemiringDist {
        &self.dists[var.0 as usize]
    }

    /// The probability that a Boolean variable is `⊤` (convenience accessor).
    pub fn prob_true(&self, var: Var) -> f64 {
        self.dist(var).prob(&SemiringValue::Bool(true))
    }

    /// The semiring the variable's values are drawn from, determined by inspecting its
    /// distribution. Mixed-kind distributions are rejected at registration time by all
    /// constructors in this module, so the first support value decides.
    pub fn kind(&self, var: Var) -> SemiringKind {
        self.dist(var)
            .support()
            .next()
            .map(|v| v.kind())
            .unwrap_or(SemiringKind::Bool)
    }

    /// Iterate over all variables.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }

    /// Replace the distribution of an existing variable.
    pub fn set_dist(&mut self, var: Var, dist: SemiringDist) {
        self.dists[var.0 as usize] = dist;
    }

    /// Reduce every variable to a Boolean presence variable: `P[⊥] = P_x[0_S]`,
    /// `P[⊤] = 1 − P[⊥]`. This is the reduction used by Proposition 2 of the paper for
    /// MIN/MAX aggregation over `N`-valued variables.
    pub fn booleanized(&self) -> VarTable {
        let mut out = VarTable::new();
        for v in self.iter() {
            let p_zero: f64 = self
                .dist(v)
                .iter()
                .filter(|(val, _)| val.is_zero())
                .map(|(_, p)| p)
                .sum();
            out.boolean(self.name(v).to_string(), 1.0 - p_zero);
        }
        out
    }

    /// A stable 64-bit fingerprint of the registered variables: names,
    /// distribution supports and exact probability bits (FNV-1a over a canonical
    /// byte rendering). Two tables built by the same deterministic loading code
    /// fingerprint identically across processes; any change to a name, value or
    /// probability changes the fingerprint.
    ///
    /// The engine's compile-artifact snapshots (`pvc-core::persist`) embed this
    /// value so that a snapshot recorded against one probability space is refused
    /// when loaded against another.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.names.len() as u64).to_le_bytes());
        for (name, dist) in self.names.iter().zip(&self.dists) {
            eat(&(name.len() as u64).to_le_bytes());
            eat(name.as_bytes());
            eat(&(dist.support_size() as u64).to_le_bytes());
            for (value, p) in dist.iter() {
                match value {
                    SemiringValue::Bool(b) => {
                        eat(&[0, *b as u8]);
                    }
                    SemiringValue::Nat(n) => {
                        eat(&[1]);
                        eat(&n.to_le_bytes());
                    }
                }
                eat(&p.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// The total number of possible worlds induced by the registered variables.
    pub fn num_worlds(&self) -> u128 {
        self.dists
            .iter()
            .map(|d| d.support_size() as u128)
            .product()
    }
}

/// A set of variables, kept sorted and deduplicated.
///
/// Independence of two expressions is (syntactic) disjointness of their variable sets
/// (§5 of the paper), so this type is on the hot path of the compiler.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VarSet(Vec<Var>);

impl VarSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton set.
    pub fn singleton(v: Var) -> Self {
        VarSet(vec![v])
    }

    /// Build from an iterator (sorted, deduplicated).
    pub fn from_iter_of(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut v: Vec<Var> = vars.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        VarSet(v)
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: Var) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    /// Insert a variable.
    pub fn insert(&mut self, v: Var) {
        if let Err(pos) = self.0.binary_search(&v) {
            self.0.insert(pos, v);
        }
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
        out.sort_unstable();
        out.dedup();
        VarSet(out)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        VarSet(
            self.0
                .iter()
                .filter(|v| other.contains(**v))
                .copied()
                .collect(),
        )
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        VarSet(
            self.0
                .iter()
                .filter(|v| !other.contains(**v))
                .copied()
                .collect(),
        )
    }

    /// True if the two sets share no variable — the syntactic independence test.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        // Merge-style scan over the two sorted vectors.
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Iterate over the variables in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.0.iter().copied()
    }

    /// The variables as a slice.
    pub fn as_slice(&self) -> &[Var] {
        &self.0
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        VarSet::from_iter_of(iter)
    }
}

impl From<BTreeSet<Var>> for VarSet {
    fn from(set: BTreeSet<Var>) -> Self {
        VarSet(set.into_iter().collect())
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_table_registration() {
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.4);
        let y = vt.natural("y", &[(0, 0.5), (2, 0.5)]);
        assert_eq!(vt.len(), 2);
        assert_eq!(vt.name(x), "x");
        assert_eq!(vt.name(y), "y");
        assert_eq!(vt.kind(x), SemiringKind::Bool);
        assert_eq!(vt.kind(y), SemiringKind::Nat);
        assert!((vt.prob_true(x) - 0.4).abs() < 1e-12);
        assert_eq!(vt.num_worlds(), 4);
    }

    #[test]
    fn booleanization_reduces_to_presence() {
        // Prop. 2: P[⊥] = P_x[0], P[⊤] = 1 − P[⊥].
        let mut vt = VarTable::new();
        let y = vt.natural("y", &[(0, 0.25), (1, 0.5), (3, 0.25)]);
        let reduced = vt.booleanized();
        assert_eq!(reduced.kind(y), SemiringKind::Bool);
        assert!((reduced.prob_true(y) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn varset_basic_ops() {
        let a = VarSet::from_iter_of([Var(3), Var(1), Var(3)]);
        assert_eq!(a.len(), 2);
        assert!(a.contains(Var(1)));
        assert!(!a.contains(Var(2)));
        let b = VarSet::from_iter_of([Var(2), Var(3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).len(), 1);
        assert_eq!(a.difference(&b).as_slice(), &[Var(1)]);
        assert!(!a.is_disjoint(&b));
        let c = VarSet::from_iter_of([Var(10)]);
        assert!(a.is_disjoint(&c));
        assert!(VarSet::new().is_disjoint(&a));
    }

    #[test]
    fn varset_insert_keeps_order() {
        let mut s = VarSet::new();
        s.insert(Var(5));
        s.insert(Var(1));
        s.insert(Var(5));
        assert_eq!(s.as_slice(), &[Var(1), Var(5)]);
        assert_eq!(s.to_string(), "{v1, v5}");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let build = |p: f64| {
            let mut vt = VarTable::new();
            vt.boolean("x", p);
            vt.natural("y", &[(0, 0.5), (2, 0.5)]);
            vt
        };
        assert_eq!(build(0.4).fingerprint(), build(0.4).fingerprint());
        assert_ne!(build(0.4).fingerprint(), build(0.5).fingerprint());
        let mut renamed = VarTable::new();
        renamed.boolean("z", 0.4);
        renamed.natural("y", &[(0, 0.5), (2, 0.5)]);
        assert_ne!(build(0.4).fingerprint(), renamed.fingerprint());
        assert_ne!(VarTable::new().fingerprint(), build(0.4).fingerprint());
    }

    #[test]
    fn set_dist_replaces() {
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.5);
        vt.set_dist(x, make::bernoulli(0.9));
        assert!((vt.prob_true(x) - 0.9).abs() < 1e-12);
    }
}
