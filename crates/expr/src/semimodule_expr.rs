//! Semimodule expressions `α ∈ K ⊗ M` (Fig. 2 of the paper):
//!
//! ```text
//! α ::= Φ⊗m {+op Φ⊗m} | m
//! ```
//!
//! A semimodule expression is a `+op`-sum of terms `Φ ⊗ m`, where `Φ` is a semiring
//! expression and `m` a value of the aggregation monoid. We keep exactly this flat
//! shape; constants `m` are represented as terms with coefficient `1_S`
//! ([`SmTerm::is_constant`] recognises them).

use crate::semiring_expr::SemiringExpr;
use crate::vars::{Var, VarSet};
use pvc_algebra::{AggOp, MonoidValue, SemiringKind, SemiringValue};
use std::collections::BTreeMap;
use std::fmt;

/// One term `Φ ⊗ m` of a semimodule expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SmTerm {
    /// The semiring coefficient `Φ`.
    pub coeff: SemiringExpr,
    /// The aggregated monoid value `m`.
    pub value: MonoidValue,
}

impl SmTerm {
    /// A term with an explicit coefficient.
    pub fn new(coeff: SemiringExpr, value: MonoidValue) -> Self {
        SmTerm { coeff, value }
    }

    /// True if the coefficient is the constant `1_S`, i.e. the term is simply the
    /// monoid constant `m`.
    pub fn is_constant(&self) -> bool {
        self.coeff.as_const().map(|c| c.is_one()).unwrap_or(false)
    }

    /// The variables occurring in the coefficient.
    pub fn vars(&self) -> VarSet {
        self.coeff.vars()
    }
}

/// A semimodule expression: a `+op` sum of `Φ ⊗ m` terms over one aggregation monoid.
#[derive(Debug, Clone, PartialEq)]
pub struct SemimoduleExpr {
    /// The aggregation monoid in which the terms are summed.
    pub op: AggOp,
    /// The terms of the sum. An empty list denotes the neutral element `0_M`.
    pub terms: Vec<SmTerm>,
}

impl SemimoduleExpr {
    /// The neutral element `0_M` of the monoid.
    pub fn zero(op: AggOp) -> Self {
        SemimoduleExpr { op, terms: vec![] }
    }

    /// A constant monoid value `m` (coefficient `1_S`; the ambient semiring does not
    /// matter for constants, we use the Boolean `⊤`).
    pub fn constant(op: AggOp, value: MonoidValue) -> Self {
        SemimoduleExpr {
            op,
            terms: vec![SmTerm::new(
                SemiringExpr::Const(SemiringValue::Bool(true)),
                value,
            )],
        }
    }

    /// A constant in an explicitly chosen semiring (used when the engine runs under
    /// bag semantics and `1_S = 1 ∈ N`).
    pub fn constant_in(op: AggOp, value: MonoidValue, kind: SemiringKind) -> Self {
        SemimoduleExpr {
            op,
            terms: vec![SmTerm::new(SemiringExpr::Const(kind.one()), value)],
        }
    }

    /// A single term `Φ ⊗ m`.
    pub fn tensor(op: AggOp, coeff: SemiringExpr, value: MonoidValue) -> Self {
        SemimoduleExpr {
            op,
            terms: vec![SmTerm::new(coeff, value)],
        }
    }

    /// Build from a list of `(coefficient, value)` pairs.
    pub fn from_terms(op: AggOp, terms: Vec<(SemiringExpr, MonoidValue)>) -> Self {
        SemimoduleExpr {
            op,
            terms: terms.into_iter().map(|(c, v)| SmTerm::new(c, v)).collect(),
        }
    }

    /// Append a term to the sum.
    pub fn push(&mut self, coeff: SemiringExpr, value: MonoidValue) {
        self.terms.push(SmTerm::new(coeff, value));
    }

    /// The `+op` sum of two semimodule expressions over the same monoid.
    ///
    /// Panics if the monoids differ — summing across monoids is not defined.
    pub fn add(&self, other: &SemimoduleExpr) -> SemimoduleExpr {
        assert_eq!(self.op, other.op, "cannot sum across different monoids");
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        SemimoduleExpr { op: self.op, terms }
    }

    /// Scalar multiplication `Φ ⊗ α`, distributing the coefficient over the terms
    /// (by the semimodule law `(s1·s2) ⊗ m = s1 ⊗ (s2 ⊗ m)`).
    pub fn scale(&self, coeff: &SemiringExpr) -> SemimoduleExpr {
        SemimoduleExpr {
            op: self.op,
            terms: self
                .terms
                .iter()
                .map(|t| SmTerm::new(coeff.clone() * t.coeff.clone(), t.value))
                .collect(),
        }
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The number of AST nodes, counting each term's coefficient tree plus the value.
    pub fn num_nodes(&self) -> usize {
        1 + self
            .terms
            .iter()
            .map(|t| t.coeff.num_nodes() + 1)
            .sum::<usize>()
    }

    /// The set of variables occurring in the expression.
    pub fn vars(&self) -> VarSet {
        let mut buf = Vec::new();
        for t in &self.terms {
            t.coeff.collect_vars(&mut buf);
        }
        VarSet::from_iter_of(buf)
    }

    /// True if no coefficient contains a variable symbol (short-circuiting, no
    /// allocation).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.coeff.is_ground())
    }

    /// Count variable occurrences across all coefficients.
    pub fn count_occurrences(&self, out: &mut BTreeMap<Var, usize>) {
        for t in &self.terms {
            t.coeff.count_occurrences(out);
        }
    }

    /// Substitute a constant for every occurrence of a variable: `α|x←s`.
    pub fn substitute(&self, var: Var, value: SemiringValue) -> SemimoduleExpr {
        SemimoduleExpr {
            op: self.op,
            terms: self
                .terms
                .iter()
                .map(|t| SmTerm::new(t.coeff.substitute(var, value), t.value))
                .collect(),
        }
    }

    /// Evaluate under a total valuation: apply the scalar action term-wise and fold in
    /// the monoid (the monoid homomorphism of §3 / Example 6 of the paper).
    pub fn eval(
        &self,
        valuation: &dyn Fn(Var) -> SemiringValue,
        kind: SemiringKind,
    ) -> MonoidValue {
        self.terms
            .iter()
            .map(|t| {
                let c = t.coeff.eval(valuation, kind);
                self.op.scalar_action(&c, &t.value)
            })
            .fold(self.op.identity(), |a, b| self.op.combine(&a, &b))
    }

    /// Simplify every coefficient and fold terms whose coefficient became a constant.
    ///
    /// Terms with coefficient `0_S` vanish (they contribute the neutral element);
    /// constant coefficients are applied to their value via the scalar action, and all
    /// resulting constants are folded into a single constant term.
    pub fn simplify(&self, kind: SemiringKind) -> SemimoduleExpr {
        let mut const_acc: Option<MonoidValue> = None;
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            let coeff = t.coeff.simplify(kind);
            match coeff.as_const() {
                Some(c) if c.is_zero() => {}
                Some(c) => {
                    let v = self.op.scalar_action(&c, &t.value);
                    const_acc = Some(match const_acc {
                        None => v,
                        Some(acc) => self.op.combine(&acc, &v),
                    });
                }
                None => terms.push(SmTerm::new(coeff, t.value)),
            }
        }
        if let Some(c) = const_acc {
            // Keep the folded constant unless it is the monoid's neutral element and
            // other terms remain.
            if c != self.op.identity() || terms.is_empty() {
                terms.push(SmTerm::new(SemiringExpr::Const(kind.one()), c));
            }
        }
        SemimoduleExpr { op: self.op, terms }
    }

    /// `α|x←s` followed by coefficient simplification, in one term-list rebuild.
    ///
    /// Produces exactly the same expression as
    /// `self.substitute(var, value).simplify(kind)` while visiting every
    /// coefficient tree once — the hot step of the compiler's `⊔` expansion over
    /// semimodule expressions.
    pub fn substitute_simplify(
        &self,
        var: Var,
        value: SemiringValue,
        kind: SemiringKind,
    ) -> SemimoduleExpr {
        let mut const_acc: Option<MonoidValue> = None;
        let mut terms = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            let coeff = t.coeff.substitute_simplify(var, value, kind);
            match coeff.as_const() {
                Some(c) if c.is_zero() => {}
                Some(c) => {
                    let v = self.op.scalar_action(&c, &t.value);
                    const_acc = Some(match const_acc {
                        None => v,
                        Some(acc) => self.op.combine(&acc, &v),
                    });
                }
                None => terms.push(SmTerm::new(coeff, t.value)),
            }
        }
        if let Some(c) = const_acc {
            if c != self.op.identity() || terms.is_empty() {
                terms.push(SmTerm::new(SemiringExpr::Const(kind.one()), c));
            }
        }
        SemimoduleExpr { op: self.op, terms }
    }

    /// The single constant value, if the whole expression is ground.
    pub fn as_const(&self) -> Option<MonoidValue> {
        if !self.is_ground() {
            return None;
        }
        // Ground expression: evaluate directly with an empty valuation.
        Some(self.eval(&|_| SemiringValue::Bool(false), SemiringKind::Bool))
    }
}

impl fmt::Display for SemimoduleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0_{}", self.op);
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " +{} ", self.op.to_string().to_lowercase())?;
            }
            if t.is_constant() {
                write!(f, "{}", t.value)?;
            } else {
                write!(f, "{}⊗{}", t.coeff, t.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars::VarTable;
    use pvc_algebra::MonoidValue::Fin;

    fn valuation(pairs: Vec<(Var, SemiringValue)>) -> impl Fn(Var) -> SemiringValue {
        move |v| {
            pairs
                .iter()
                .find(|(w, _)| *w == v)
                .map(|(_, s)| *s)
                .unwrap_or(SemiringValue::Bool(false))
        }
    }

    #[test]
    fn example_5_aggregation_over_weights() {
        // α = z1⊗4 + z2⊗8 + z3⊗7 + z4⊗6 over relation P1 of Figure 1.
        let mut vt = VarTable::new();
        let zs: Vec<Var> = (1..=4).map(|i| vt.boolean(format!("z{i}"), 0.5)).collect();
        let weights = [4, 8, 7, 6];
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Sum,
            zs.iter()
                .zip(weights)
                .map(|(z, w)| (SemiringExpr::Var(*z), Fin(w)))
                .collect(),
        );
        assert_eq!(alpha.num_terms(), 4);
        // Example 6 continuation: SUM with z1,z2 ↦ 2 (bag) and z3,z4 ↦ 0 gives 24.
        let nat_val = |v: Var| {
            if v == zs[0] || v == zs[1] {
                SemiringValue::Nat(2)
            } else {
                SemiringValue::Nat(0)
            }
        };
        assert_eq!(alpha.eval(&nat_val, SemiringKind::Nat), Fin(24));
        // MIN with z1 ↦ ⊥ and the rest ⊤ gives 6.
        let min_alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            zs.iter()
                .zip(weights)
                .map(|(z, w)| (SemiringExpr::Var(*z), Fin(w)))
                .collect(),
        );
        let bool_val = valuation(vec![
            (zs[1], SemiringValue::Bool(true)),
            (zs[2], SemiringValue::Bool(true)),
            (zs[3], SemiringValue::Bool(true)),
        ]);
        assert_eq!(min_alpha.eval(&bool_val, SemiringKind::Bool), Fin(6));
        // All variables mapped to 0_S give the neutral element (+∞ for MIN).
        let none = valuation(vec![]);
        assert_eq!(
            min_alpha.eval(&none, SemiringKind::Bool),
            MonoidValue::PosInf
        );
        assert_eq!(alpha.eval(&none, SemiringKind::Bool), Fin(0));
    }

    #[test]
    fn example_6_monoid_homomorphism() {
        // α = xy ⊗ 5 +min (x+z) ⊗ 10 with x ↦ 2, y ↦ 3, z ↦ 0 evaluates to 5.
        let mut vt = VarTable::new();
        let x = vt.natural("x", &[(2, 1.0)]);
        let y = vt.natural("y", &[(3, 1.0)]);
        let z = vt.natural("z", &[(0, 1.0)]);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            vec![
                (SemiringExpr::Var(x) * SemiringExpr::Var(y), Fin(5)),
                (SemiringExpr::Var(x) + SemiringExpr::Var(z), Fin(10)),
            ],
        );
        let val = |v: Var| {
            SemiringValue::Nat(match v {
                w if w == x => 2,
                w if w == y => 3,
                _ => 0,
            })
        };
        assert_eq!(alpha.eval(&val, SemiringKind::Nat), Fin(5));
    }

    #[test]
    fn substitution_and_simplification() {
        let mut vt = VarTable::new();
        let a = vt.boolean("a", 0.5);
        let b = vt.boolean("b", 0.5);
        // a⊗10 +sum b⊗20, substitute a ← ⊤.
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Var(a), Fin(10)),
                (SemiringExpr::Var(b), Fin(20)),
            ],
        );
        let subst = alpha.substitute(a, SemiringValue::Bool(true));
        let simp = subst.simplify(SemiringKind::Bool);
        // The first term became the constant 10; b⊗20 remains symbolic.
        assert_eq!(simp.num_terms(), 2);
        assert!(simp
            .terms
            .iter()
            .any(|t| t.is_constant() && t.value == Fin(10)));
        // Substituting ⊥ removes the term entirely.
        let gone = alpha
            .substitute(a, SemiringValue::Bool(false))
            .simplify(SemiringKind::Bool);
        assert_eq!(gone.num_terms(), 1);
    }

    #[test]
    fn scale_distributes() {
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.5);
        let y = vt.boolean("y", 0.5);
        let z = vt.boolean("z", 0.5);
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Max,
            vec![
                (SemiringExpr::Var(y), Fin(1)),
                (SemiringExpr::Var(z), Fin(2)),
            ],
        );
        let scaled = alpha.scale(&SemiringExpr::Var(x));
        assert_eq!(scaled.num_terms(), 2);
        for t in &scaled.terms {
            assert!(t.vars().contains(x));
        }
    }

    #[test]
    fn add_requires_same_monoid() {
        let a = SemimoduleExpr::constant(AggOp::Min, Fin(1));
        let b = SemimoduleExpr::constant(AggOp::Min, Fin(2));
        assert_eq!(a.add(&b).num_terms(), 2);
    }

    #[test]
    #[should_panic(expected = "different monoids")]
    fn add_across_monoids_panics() {
        let a = SemimoduleExpr::constant(AggOp::Min, Fin(1));
        let b = SemimoduleExpr::constant(AggOp::Max, Fin(2));
        let _ = a.add(&b);
    }

    #[test]
    fn ground_expressions_fold_to_constants() {
        let e = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Const(SemiringValue::Bool(true)), Fin(3)),
                (SemiringExpr::Const(SemiringValue::Bool(true)), Fin(4)),
            ],
        );
        assert_eq!(e.as_const(), Some(Fin(7)));
        let simp = e.simplify(SemiringKind::Bool);
        assert_eq!(simp.num_terms(), 1);
        assert_eq!(simp.terms[0].value, Fin(7));
        // Zero of the monoid.
        assert_eq!(
            SemimoduleExpr::zero(AggOp::Min).as_const(),
            Some(MonoidValue::PosInf)
        );
    }

    #[test]
    fn display() {
        let mut vt = VarTable::new();
        let x = vt.boolean("x", 0.5);
        let e = SemimoduleExpr::from_terms(AggOp::Min, vec![(SemiringExpr::Var(x), Fin(10))])
            .add(&SemimoduleExpr::constant(AggOp::Min, Fin(20)));
        assert_eq!(e.to_string(), "v0⊗10 +min 20");
    }
}
