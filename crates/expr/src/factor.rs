//! Factorisation helpers used by the compiler's independent-product and ⊗ rules:
//! extracting factors common to every summand of a sum, which is how read-once
//! expressions (and the provenance of hierarchical queries, Example 14 of the paper)
//! are decomposed without Shannon expansion.

use crate::semiring_expr::SemiringExpr;
use crate::vars::{Var, VarSet};
use std::collections::BTreeSet;

/// The variables that appear as *top-level multiplicative factors* of an expression.
///
/// For `Var(x)` this is `{x}`; for a product it is the union of the factor variables
/// of its children that are plain variables; for anything else it is empty. Only such
/// "guaranteed factors" can be pulled out of a sum without algebraic rewriting beyond
/// associativity/commutativity/distributivity.
pub fn top_level_factor_vars(expr: &SemiringExpr) -> BTreeSet<Var> {
    match expr {
        SemiringExpr::Var(v) => std::iter::once(*v).collect(),
        SemiringExpr::Mul(children) => children
            .iter()
            .filter_map(|c| match c {
                SemiringExpr::Var(v) => Some(*v),
                _ => None,
            })
            .collect(),
        _ => BTreeSet::new(),
    }
}

/// The set of variables that occur as a top-level factor in *every* one of the given
/// expressions. Pulling these out of a sum `Σ_i Φ_i` yields the factorisation
/// `(Π common) · Σ_i (Φ_i / common)`.
pub fn common_factor_vars(exprs: &[SemiringExpr]) -> VarSet {
    common_factor_vars_of(exprs.iter())
}

/// As [`common_factor_vars`], over any iterator of borrowed expressions — lets the
/// compiler intersect the coefficient factors of a semimodule sum without cloning
/// the coefficients into a temporary vector. Short-circuits once the running
/// intersection is empty.
pub fn common_factor_vars_of<'a>(exprs: impl Iterator<Item = &'a SemiringExpr>) -> VarSet {
    let mut common: Option<BTreeSet<Var>> = None;
    for e in exprs {
        let fv = top_level_factor_vars(e);
        common = Some(match common {
            None => fv,
            Some(acc) => acc.intersection(&fv).copied().collect(),
        });
        if matches!(&common, Some(c) if c.is_empty()) {
            return VarSet::new();
        }
    }
    common.map(|c| c.into_iter().collect()).unwrap_or_default()
}

/// Divide an expression by a set of variables that are known to be top-level factors
/// of it (one occurrence each is removed). Returns `None` when nothing remains, i.e.
/// the quotient is the constant `1_S`.
///
/// Precondition: every variable of `divisors` is a top-level factor of `expr`
/// (as reported by [`top_level_factor_vars`]); this is checked with a debug assertion.
pub fn divide_by_vars(expr: &SemiringExpr, divisors: &VarSet) -> Option<SemiringExpr> {
    if divisors.is_empty() {
        return Some(expr.clone());
    }
    match expr {
        SemiringExpr::Var(v) => {
            debug_assert!(divisors.contains(*v), "divisor {v:?} is not a factor");
            None
        }
        SemiringExpr::Mul(children) => {
            let mut remaining: Vec<SemiringExpr> = Vec::with_capacity(children.len());
            let mut to_remove: Vec<Var> = divisors.iter().collect();
            for c in children {
                match c {
                    SemiringExpr::Var(v) => {
                        if let Some(pos) = to_remove.iter().position(|d| d == v) {
                            to_remove.swap_remove(pos);
                        } else {
                            remaining.push(c.clone());
                        }
                    }
                    _ => remaining.push(c.clone()),
                }
            }
            debug_assert!(
                to_remove.is_empty(),
                "divisors {to_remove:?} were not factors"
            );
            match remaining.len() {
                0 => None,
                1 => Some(remaining.pop().unwrap()),
                _ => Some(SemiringExpr::Mul(remaining)),
            }
        }
        _ => {
            debug_assert!(false, "divide_by_vars called on a non-product expression");
            Some(expr.clone())
        }
    }
}

/// Factor a sum's children by their common variables: returns `(common, quotients)`
/// where `common` is the set of variables occurring as a factor in every child and
/// `quotients[i]` is `children[i]` with those factors removed (`None` = `1_S`).
///
/// Returns `None` if there is no common factor (the sum cannot be factored this way).
pub fn factor_sum(children: &[SemiringExpr]) -> Option<(VarSet, Vec<Option<SemiringExpr>>)> {
    if children.len() < 2 {
        return None;
    }
    let common = common_factor_vars(children);
    if common.is_empty() {
        return None;
    }
    let quotients = children
        .iter()
        .map(|c| divide_by_vars(c, &common))
        .collect();
    Some((common, quotients))
}

/// A conservative syntactic read-once check: an expression is *read-once* if every
/// variable occurs at most once in it. Read-once expressions always admit d-trees of
/// linear size built with the first three decomposition rules only (§5 / ref. 18).
pub fn is_read_once(expr: &SemiringExpr) -> bool {
    let mut occ = std::collections::BTreeMap::new();
    expr.count_occurrences(&mut occ);
    occ.values().all(|&n| n <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> SemiringExpr {
        SemiringExpr::Var(Var(i))
    }

    #[test]
    fn top_level_factors() {
        assert_eq!(top_level_factor_vars(&v(1)), [Var(1)].into());
        let prod = v(1) * v(2) * (v(3) + v(4));
        assert_eq!(top_level_factor_vars(&prod), [Var(1), Var(2)].into());
        let sum = v(1) + v(2);
        assert!(top_level_factor_vars(&sum).is_empty());
    }

    #[test]
    fn common_factors_across_summands() {
        // x1·y11 and x1·y12 share the factor x1 (Example 14 shape).
        let children = vec![v(1) * v(11), v(1) * v(12)];
        let common = common_factor_vars(&children);
        assert_eq!(common.as_slice(), &[Var(1)]);

        // No factor shared by all three.
        let children = vec![v(1) * v(11), v(1) * v(12), v(2) * v(21)];
        assert!(common_factor_vars(&children).is_empty());
    }

    #[test]
    fn divide_removes_one_occurrence() {
        let prod = v(1) * v(2) * v(3);
        let quot = divide_by_vars(&prod, &VarSet::singleton(Var(2))).unwrap();
        assert_eq!(quot.vars().as_slice(), &[Var(1), Var(3)]);
        // Dividing a single variable by itself leaves nothing.
        assert!(divide_by_vars(&v(5), &VarSet::singleton(Var(5))).is_none());
        // Dividing by the empty set is the identity.
        assert_eq!(divide_by_vars(&prod, &VarSet::new()), Some(prod));
    }

    #[test]
    fn divide_keeps_repeated_variables() {
        // x·x divided by x leaves x.
        let prod = SemiringExpr::Mul(vec![v(1), v(1)]);
        let quot = divide_by_vars(&prod, &VarSet::singleton(Var(1))).unwrap();
        assert_eq!(quot, v(1));
    }

    #[test]
    fn factor_sum_factors_read_once_provenance() {
        // x1·y11 + x1·y12  ⇒  x1 · (y11 + y12).
        let children = vec![v(1) * v(11), v(1) * v(12)];
        let (common, quotients) = factor_sum(&children).unwrap();
        assert_eq!(common.as_slice(), &[Var(1)]);
        assert_eq!(quotients.len(), 2);
        assert_eq!(quotients[0], Some(v(11)));
        assert_eq!(quotients[1], Some(v(12)));
    }

    #[test]
    fn factor_sum_none_when_unfactorable() {
        let children = vec![v(1) * v(11), v(2) * v(12)];
        assert!(factor_sum(&children).is_none());
        assert!(factor_sum(&[v(1)]).is_none());
    }

    #[test]
    fn factor_sum_with_unit_quotient() {
        // x + x·y ⇒ x · (1 + y): first quotient is None (the unit).
        let children = vec![v(1), v(1) * v(2)];
        let (common, quotients) = factor_sum(&children).unwrap();
        assert_eq!(common.as_slice(), &[Var(1)]);
        assert_eq!(quotients[0], None);
        assert_eq!(quotients[1], Some(v(2)));
    }

    #[test]
    fn read_once_detection() {
        assert!(is_read_once(&(v(1) * (v(2) + v(3)))));
        assert!(!is_read_once(&(v(1) * v(2) + v(1) * v(3))));
        assert!(is_read_once(&SemiringExpr::Const(
            pvc_algebra::SemiringValue::Bool(true)
        )));
    }
}
