//! # pvc-expr
//!
//! Semiring and semimodule **expressions** over independent random variables — the
//! annotation language of pvc-tables (Fig. 2 of the paper) — together with the
//! syntactic analyses the knowledge compiler is built on:
//!
//! * [`VarTable`] / [`Var`] — the registry of random variables and their
//!   distributions (the induced probability space of §2.1);
//! * [`SemiringExpr`] — expressions `Φ ::= x | Φ+Φ | Φ·Φ | [αθα] | [ΦθΦ] | s`;
//! * [`SemimoduleExpr`] — expressions `α ::= Φ⊗m {+op Φ⊗m} | m`;
//! * substitution `Φ|x←s`, evaluation under valuations (the semiring/monoid
//!   homomorphisms of §3), variable-occurrence counting;
//! * [`independence`] — connected components of the variable co-occurrence graph;
//! * [`factor`] — common-factor extraction / read-once detection;
//! * [`intern`] — the hash-consed expression arena: canonical ids with O(1)
//!   structural equality and reorder-stable 64-bit hashes (the cache-key substrate
//!   of the engine's compilation cache);
//! * [`oracle`] — brute-force possible-world enumeration (the correctness oracle).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factor;
pub mod independence;
pub mod intern;
pub mod oracle;
pub mod semimodule_expr;
pub mod semiring_expr;
pub mod vars;

pub use intern::{AggExprId, ExprId, InternedAgg, InternedExpr, Interner};
pub use semimodule_expr::{SemimoduleExpr, SmTerm};
pub use semiring_expr::SemiringExpr;
pub use vars::{Var, VarSet, VarTable};
