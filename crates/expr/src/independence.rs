//! Syntactic independence analysis: partitioning the summands of an expression into
//! groups that share no variables (§5 of the paper).
//!
//! Two expressions are (syntactically) independent if their variable sets are
//! disjoint; independent expressions denote independent random variables, which is
//! what justifies the convolution rules at ⊕/⊙/⊗ nodes of a decomposition tree. The
//! compiler's first rule splits a sum by the connected components of the *variable
//! co-occurrence graph* over its summands, implemented here with a union–find.

use crate::vars::{Var, VarSet};
use std::collections::BTreeMap;

/// A classic union–find (disjoint-set) structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Find the representative of `i`, with path compression.
    pub fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    /// Union the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }

    /// Group the elements `0..n` by representative.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let root = self.find(i);
            by_root.entry(root).or_default().push(i);
        }
        by_root.into_values().collect()
    }
}

/// Partition the indices `0..sets.len()` into connected components of the variable
/// co-occurrence graph: indices `i` and `j` are connected if `sets[i]` and `sets[j]`
/// share a variable (possibly transitively).
///
/// Runs in `O(Σ|sets[i]| · α)` — each variable links its occurrences together — rather
/// than comparing all pairs of sets.
pub fn connected_components(sets: &[VarSet]) -> Vec<Vec<usize>> {
    let n = sets.len();
    if n == 0 {
        return vec![];
    }
    let mut uf = UnionFind::new(n);
    let mut first_seen: BTreeMap<Var, usize> = BTreeMap::new();
    for (i, set) in sets.iter().enumerate() {
        for v in set.iter() {
            match first_seen.get(&v) {
                Some(&j) => uf.union(i, j),
                None => {
                    first_seen.insert(v, i);
                }
            }
        }
    }
    uf.groups()
}

/// True if the variable sets are pairwise disjoint (i.e. every index is its own
/// component).
pub fn all_independent(sets: &[VarSet]) -> bool {
    connected_components(sets).len() == sets.len()
}

/// Connected components over flat variable-*occurrence* lists: item `i`'s
/// occurrences are `occurrences[spans[i].0 .. spans[i].1]`, unsorted and possibly
/// with duplicates.
///
/// Equivalent partition to [`connected_components`] on the deduplicated sets, but
/// without materialising a sorted [`VarSet`] per item — the compiler calls this at
/// every recursion level of a hard compilation, where per-item set construction
/// used to dominate. `num_vars` bounds the variable ids (a `Var(id)` with
/// `id >= num_vars` is tolerated via a slow path growing the seen-table).
///
/// Components are ordered by their smallest member index; members are ascending.
pub fn components_of_occurrences(
    spans: &[(usize, usize)],
    occurrences: &[Var],
    num_vars: usize,
) -> Vec<Vec<usize>> {
    let mut first_seen = vec![OCC_UNSEEN; num_vars];
    components_of_occurrences_with(spans, occurrences, &mut first_seen)
}

const OCC_UNSEEN: usize = usize::MAX;

/// As [`components_of_occurrences`], with a caller-provided `first_seen` scratch
/// table (indexed by `Var` id, grown on demand, entries reset to unseen before
/// returning). Reusing one table across calls makes the per-call cost
/// `O(occurrences)` instead of `O(num_vars + occurrences)` — the compiler calls
/// this at every recursion level, where deep sub-expressions touch only a
/// handful of variables.
pub fn components_of_occurrences_with(
    spans: &[(usize, usize)],
    occurrences: &[Var],
    first_seen: &mut Vec<usize>,
) -> Vec<Vec<usize>> {
    let n = spans.len();
    if n == 0 {
        return vec![];
    }
    debug_assert!(first_seen.iter().all(|&s| s == OCC_UNSEEN));
    let mut uf = UnionFind::new(n);
    for (i, &(start, end)) in spans.iter().enumerate() {
        for v in &occurrences[start..end] {
            let slot = v.0 as usize;
            if slot >= first_seen.len() {
                first_seen.resize(slot + 1, OCC_UNSEEN);
            }
            match first_seen[slot] {
                OCC_UNSEEN => first_seen[slot] = i,
                j => uf.union(i, j),
            }
        }
    }
    // Reset only the touched entries so the table can be reused.
    for v in occurrences {
        first_seen[v.0 as usize] = OCC_UNSEEN;
    }
    // Group by representative, ordering components by smallest member.
    let mut comp_of = vec![OCC_UNSEEN; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = uf.find(i);
        if comp_of[root] == OCC_UNSEEN {
            comp_of[root] = groups.len();
            groups.push(Vec::new());
        }
        groups[comp_of[root]].push(i);
    }
    groups
}

/// Split a list of items into independent groups according to their variable sets.
///
/// Returns one `Vec` of items per connected component, preserving the original
/// relative order inside each group.
pub fn group_by_independence<T>(items: Vec<T>, var_set_of: impl Fn(&T) -> VarSet) -> Vec<Vec<T>> {
    let sets: Vec<VarSet> = items.iter().map(&var_set_of).collect();
    let components = connected_components(&sets);
    if components.len() <= 1 {
        return vec![items];
    }
    // Map index -> component id.
    let mut comp_of = vec![0usize; items.len()];
    for (cid, comp) in components.iter().enumerate() {
        for &i in comp {
            comp_of[i] = cid;
        }
    }
    let mut out: Vec<Vec<T>> = (0..components.len()).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[comp_of[i]].push(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> VarSet {
        ids.iter().map(|i| Var(*i)).collect()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        let groups = uf.groups();
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn components_of_disjoint_sets() {
        let sets = vec![vs(&[1, 2]), vs(&[3]), vs(&[4, 5])];
        let comps = connected_components(&sets);
        assert_eq!(comps.len(), 3);
        assert!(all_independent(&sets));
    }

    #[test]
    fn components_of_chained_sets() {
        // {1,2}, {2,3}, {3,4} are all one component; {9} is separate.
        let sets = vec![vs(&[1, 2]), vs(&[2, 3]), vs(&[3, 4]), vs(&[9])];
        let comps = connected_components(&sets);
        assert_eq!(comps.len(), 2);
        let big = comps.iter().find(|c| c.len() == 3).unwrap();
        assert_eq!(*big, vec![0, 1, 2]);
        assert!(!all_independent(&sets));
    }

    #[test]
    fn paper_query_annotation_splits_per_supplier() {
        // x1y11 + x1y12 + x2y21 + x2y22 + x3y33 + x3y34 (Example 14): three components,
        // one per supplier variable x1, x2, x3.
        let sets = vec![
            vs(&[1, 11]),
            vs(&[1, 12]),
            vs(&[2, 21]),
            vs(&[2, 22]),
            vs(&[3, 33]),
            vs(&[3, 34]),
        ];
        let comps = connected_components(&sets);
        assert_eq!(comps.len(), 3);
        for c in comps {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn empty_sets_are_isolated() {
        let sets = vec![vs(&[]), vs(&[1]), vs(&[])];
        let comps = connected_components(&sets);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn group_by_independence_preserves_items() {
        let items = vec![(vs(&[1]), "a"), (vs(&[2]), "b"), (vs(&[1, 2]), "c")];
        let grouped = group_by_independence(items, |(s, _)| s.clone());
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].len(), 3);

        let items = vec![(vs(&[1]), "a"), (vs(&[2]), "b")];
        let grouped = group_by_independence(items, |(s, _)| s.clone());
        assert_eq!(grouped.len(), 2);
        let labels: Vec<&str> = grouped.iter().map(|g| g[0].1).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn no_items() {
        let comps = connected_components(&[]);
        assert!(comps.is_empty());
    }
}
