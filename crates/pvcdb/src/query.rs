//! The query language `Q` (§2.3, Definition 5 of the paper): positive relational
//! algebra (rename, selection, projection, product, union) extended with the `$`
//! operator for grouping and aggregation, subject to the restriction that projection,
//! union and grouping are never applied to aggregation attributes.

use crate::database::Database;
use crate::schema::{Column, Schema};
use crate::value::Value;
use pvc_algebra::{AggOp, CmpOp};
use std::fmt;

/// One aggregation `alias ← AGG(column)` inside a `$` operator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregation monoid.
    pub op: AggOp,
    /// The aggregated column. `None` for COUNT (which aggregates the constant 1).
    pub column: Option<String>,
    /// The name of the resulting aggregation attribute.
    pub alias: String,
}

impl AggSpec {
    /// `alias ← AGG(column)`.
    pub fn new(op: AggOp, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggSpec {
            op,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `alias ← COUNT(*)`.
    pub fn count(alias: impl Into<String>) -> Self {
        AggSpec {
            op: AggOp::Count,
            column: None,
            alias: alias.into(),
        }
    }
}

/// Selection predicates. Predicates over data columns filter tuples; predicates that
/// involve aggregation attributes become conditional expressions multiplied onto the
/// annotation (the `σ` rule of Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `A = B` on data columns.
    ColEqCol(String, String),
    /// `A θ c` on a data column and a constant.
    ColCmpConst(String, CmpOp, Value),
    /// `α θ c` where `α` is an aggregation attribute and `c` an integer constant.
    AggCmpConst(String, CmpOp, i64),
    /// `α θ β` where both sides are aggregation attributes.
    AggCmpAgg(String, CmpOp, String),
    /// `α θ A` where `α` is an aggregation attribute and `A` a data column.
    AggCmpCol(String, CmpOp, String),
    /// Conjunction of predicates.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor `A = B`.
    pub fn eq_col(a: impl Into<String>, b: impl Into<String>) -> Self {
        Predicate::ColEqCol(a.into(), b.into())
    }

    /// Convenience constructor `A = c`.
    pub fn eq_const(a: impl Into<String>, c: impl Into<Value>) -> Self {
        Predicate::ColCmpConst(a.into(), CmpOp::Eq, c.into())
    }

    /// The columns this predicate references.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            Predicate::ColEqCol(a, b)
            | Predicate::AggCmpAgg(a, _, b)
            | Predicate::AggCmpCol(a, _, b) => {
                vec![a, b]
            }
            Predicate::ColCmpConst(a, _, _) | Predicate::AggCmpConst(a, _, _) => vec![a],
            Predicate::And(ps) => ps.iter().flat_map(|p| p.columns()).collect(),
        }
    }
}

/// A query in the language `Q`.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A base relation.
    Table(String),
    /// `σ_φ(Q)`.
    Select(Predicate, Box<Query>),
    /// `π_{A̅}(Q)` (duplicate-eliminating; annotations of merged tuples are summed).
    Project(Vec<String>, Box<Query>),
    /// `Q1 × Q2`.
    Product(Box<Query>, Box<Query>),
    /// `Q1 ∪ Q2`.
    Union(Box<Query>, Box<Query>),
    /// `δ_{B←A}(Q)` — rename columns (old name → new name pairs).
    Rename(Vec<(String, String)>, Box<Query>),
    /// `$_{A̅; α1←AGG1(B1), …}(Q)` — group by `A̅` and aggregate.
    GroupAgg {
        /// Group-by attributes `A̅` (may be empty).
        group_by: Vec<String>,
        /// The aggregations to compute.
        aggs: Vec<AggSpec>,
        /// The input query.
        input: Box<Query>,
    },
}

/// Errors raised when a query violates the well-formedness rules of Definition 5 or
/// references unknown tables/columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A referenced base table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in the operand schema.
    UnknownColumn(String),
    /// Projection or grouping on an aggregation attribute (violates constraint 1).
    ProjectionOnAggregate(String),
    /// Union over operands containing aggregation attributes (violates constraint 2).
    UnionOnAggregate(String),
    /// Union operands have different schemas.
    UnionSchemaMismatch,
    /// An aggregation references an aggregation attribute as its input column.
    AggregationOfAggregate(String),
    /// A predicate used a column with the wrong sort: an `Agg*` predicate over a data
    /// column, or a plain comparison over an aggregation attribute.
    PredicateSortMismatch(String),
    /// A product (or a rename) would produce two columns with the same name.
    DuplicateColumn(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            QueryError::ProjectionOnAggregate(c) => {
                write!(f, "projection/grouping on aggregation attribute `{c}`")
            }
            QueryError::UnionOnAggregate(c) => {
                write!(f, "union operand contains aggregation attribute `{c}`")
            }
            QueryError::UnionSchemaMismatch => write!(f, "union operands have different schemas"),
            QueryError::AggregationOfAggregate(c) => {
                write!(f, "aggregation over aggregation attribute `{c}`")
            }
            QueryError::PredicateSortMismatch(c) => {
                write!(f, "predicate uses column `{c}` with the wrong sort")
            }
            QueryError::DuplicateColumn(c) => {
                write!(f, "duplicate column `{c}`; rename one side first")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// A base-table scan.
    pub fn table(name: impl Into<String>) -> Self {
        Query::Table(name.into())
    }

    /// `σ_φ(self)`.
    pub fn select(self, predicate: Predicate) -> Self {
        Query::Select(predicate, Box::new(self))
    }

    /// `π_{columns}(self)`.
    pub fn project<S: Into<String>>(self, columns: impl IntoIterator<Item = S>) -> Self {
        Query::Project(
            columns.into_iter().map(Into::into).collect(),
            Box::new(self),
        )
    }

    /// `self × other`.
    pub fn product(self, other: Query) -> Self {
        Query::Product(Box::new(self), Box::new(other))
    }

    /// Equi-join: `σ_{a=b}(self × other)`.
    pub fn join(self, other: Query, on: &[(&str, &str)]) -> Self {
        let product = self.product(other);
        let preds: Vec<Predicate> = on.iter().map(|(a, b)| Predicate::eq_col(*a, *b)).collect();
        product.select(Predicate::And(preds))
    }

    /// `self ∪ other`.
    pub fn union(self, other: Query) -> Self {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// `δ` — rename columns.
    pub fn rename(self, mapping: &[(&str, &str)]) -> Self {
        Query::Rename(
            mapping
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            Box::new(self),
        )
    }

    /// `$_{group_by; aggs}(self)`.
    pub fn group_agg<S: Into<String>>(
        self,
        group_by: impl IntoIterator<Item = S>,
        aggs: Vec<AggSpec>,
    ) -> Self {
        Query::GroupAgg {
            group_by: group_by.into_iter().map(Into::into).collect(),
            aggs,
            input: Box::new(self),
        }
    }

    /// The base tables referenced by the query, with multiplicity.
    pub fn base_tables(&self) -> Vec<&str> {
        match self {
            Query::Table(name) => vec![name],
            Query::Select(_, q) | Query::Project(_, q) | Query::Rename(_, q) => q.base_tables(),
            Query::GroupAgg { input, .. } => input.base_tables(),
            Query::Product(a, b) | Query::Union(a, b) => {
                let mut v = a.base_tables();
                v.extend(b.base_tables());
                v
            }
        }
    }

    /// A compact **canonical structural key** of the query: a tagged, length-prefixed
    /// byte encoding of the AST, suitable for keying caches (the engine's step-I
    /// rewrite cache uses it).
    ///
    /// Unlike the `Debug` rendering (the previous cache key), the encoding is
    /// unambiguous — every field is length-prefixed, so no two distinct queries
    /// share a key — independent of formatting-code changes, and cheaper to build
    /// and compare. Operand *order* is preserved: `A ∪ B` and `B ∪ A` get different
    /// keys because the rewriting materialises their result tuples in different
    /// orders (it is the canonical *expression* interning downstream that unifies
    /// their provenance).
    pub fn structural_key(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode(&mut out);
        out
    }

    fn encode(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        fn put_value(out: &mut Vec<u8>, v: &Value) {
            match v {
                Value::Str(s) => {
                    out.push(0);
                    put_str(out, s);
                }
                Value::Int(i) => {
                    out.push(1);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                // Aggregate expressions never occur in query constants; encode the
                // display form defensively so the key stays total.
                Value::Agg(_) => {
                    out.push(2);
                    put_str(out, &v.to_string());
                }
            }
        }
        fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
            match p {
                Predicate::ColEqCol(a, b) => {
                    out.push(0);
                    put_str(out, a);
                    put_str(out, b);
                }
                Predicate::ColCmpConst(a, op, v) => {
                    out.push(1);
                    put_str(out, a);
                    out.push(*op as u8);
                    put_value(out, v);
                }
                Predicate::AggCmpConst(a, op, c) => {
                    out.push(2);
                    put_str(out, a);
                    out.push(*op as u8);
                    out.extend_from_slice(&c.to_le_bytes());
                }
                Predicate::AggCmpAgg(a, op, b) => {
                    out.push(3);
                    put_str(out, a);
                    out.push(*op as u8);
                    put_str(out, b);
                }
                Predicate::AggCmpCol(a, op, b) => {
                    out.push(4);
                    put_str(out, a);
                    out.push(*op as u8);
                    put_str(out, b);
                }
                Predicate::And(ps) => {
                    out.push(5);
                    out.extend_from_slice(&(ps.len() as u32).to_le_bytes());
                    for p in ps {
                        put_predicate(out, p);
                    }
                }
            }
        }
        match self {
            Query::Table(name) => {
                out.push(0);
                put_str(out, name);
            }
            Query::Select(pred, input) => {
                out.push(1);
                put_predicate(out, pred);
                input.encode(out);
            }
            Query::Project(columns, input) => {
                out.push(2);
                out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                for c in columns {
                    put_str(out, c);
                }
                input.encode(out);
            }
            Query::Product(a, b) => {
                out.push(3);
                a.encode(out);
                b.encode(out);
            }
            Query::Union(a, b) => {
                out.push(4);
                a.encode(out);
                b.encode(out);
            }
            Query::Rename(mapping, input) => {
                out.push(5);
                out.extend_from_slice(&(mapping.len() as u32).to_le_bytes());
                for (old, new) in mapping {
                    put_str(out, old);
                    put_str(out, new);
                }
                input.encode(out);
            }
            Query::GroupAgg {
                group_by,
                aggs,
                input,
            } => {
                out.push(6);
                out.extend_from_slice(&(group_by.len() as u32).to_le_bytes());
                for g in group_by {
                    put_str(out, g);
                }
                out.extend_from_slice(&(aggs.len() as u32).to_le_bytes());
                for a in aggs {
                    out.push(a.op as u8);
                    match &a.column {
                        Some(c) => {
                            out.push(1);
                            put_str(out, c);
                        }
                        None => out.push(0),
                    }
                    put_str(out, &a.alias);
                }
                input.encode(out);
            }
        }
    }

    /// True if no base relation occurs more than once (the *non-repeating* property
    /// assumed by the tractability results of §6).
    pub fn is_non_repeating(&self) -> bool {
        let mut tables = self.base_tables();
        tables.sort_unstable();
        let before = tables.len();
        tables.dedup();
        tables.len() == before
    }

    /// Validate the query against a database and compute its output schema,
    /// enforcing the constraints of Definition 5.
    pub fn output_schema(&self, db: &Database) -> Result<Schema, QueryError> {
        match self {
            Query::Table(name) => db
                .table(name)
                .map(|t| t.schema.clone())
                .ok_or_else(|| QueryError::UnknownTable(name.clone())),
            Query::Rename(mapping, input) => {
                let mut schema = input.output_schema(db)?;
                for (old, new) in mapping {
                    if schema.index_of(old).is_none() {
                        return Err(QueryError::UnknownColumn(old.clone()));
                    }
                    if new != old && schema.index_of(new).is_some() {
                        return Err(QueryError::DuplicateColumn(new.clone()));
                    }
                    schema = schema
                        .try_rename(old, new)
                        .map_err(QueryError::UnknownColumn)?;
                }
                Ok(schema)
            }
            Query::Select(pred, input) => {
                let schema = input.output_schema(db)?;
                validate_predicate(pred, &schema)?;
                Ok(schema)
            }
            Query::Project(cols, input) => {
                let schema = input.output_schema(db)?;
                for c in cols {
                    match schema.index_of(c) {
                        None => return Err(QueryError::UnknownColumn(c.clone())),
                        Some(_) if schema.is_aggregation(c) => {
                            return Err(QueryError::ProjectionOnAggregate(c.clone()))
                        }
                        Some(_) => {}
                    }
                }
                schema.try_project(cols).map_err(QueryError::UnknownColumn)
            }
            Query::Product(a, b) => {
                let sa = a.output_schema(db)?;
                let sb = b.output_schema(db)?;
                sa.try_concat(&sb).map_err(QueryError::DuplicateColumn)
            }
            Query::Union(a, b) => {
                let sa = a.output_schema(db)?;
                let sb = b.output_schema(db)?;
                for c in sa.columns().iter().chain(sb.columns()) {
                    if c.is_aggregation {
                        return Err(QueryError::UnionOnAggregate(c.name.clone()));
                    }
                }
                if sa.names() != sb.names() {
                    return Err(QueryError::UnionSchemaMismatch);
                }
                Ok(sa)
            }
            Query::GroupAgg {
                group_by,
                aggs,
                input,
            } => {
                let schema = input.output_schema(db)?;
                for c in group_by {
                    match schema.index_of(c) {
                        None => return Err(QueryError::UnknownColumn(c.clone())),
                        Some(_) if schema.is_aggregation(c) => {
                            return Err(QueryError::ProjectionOnAggregate(c.clone()))
                        }
                        Some(_) => {}
                    }
                }
                for a in aggs {
                    if let Some(col) = &a.column {
                        match schema.index_of(col) {
                            None => return Err(QueryError::UnknownColumn(col.clone())),
                            Some(_) if schema.is_aggregation(col) => {
                                return Err(QueryError::AggregationOfAggregate(col.clone()))
                            }
                            Some(_) => {}
                        }
                    }
                }
                let mut columns: Vec<Column> = group_by
                    .iter()
                    .map(|c| schema.columns()[schema.require_index(c)].clone())
                    .collect();
                columns.extend(aggs.iter().map(|a| Column::aggregation(a.alias.clone())));
                Ok(Schema::from_columns(columns))
            }
        }
    }
}

/// Validate that a predicate references existing columns with the right sorts: the
/// `Agg*` predicates must name aggregation attributes, the plain comparisons data
/// columns.
fn validate_predicate(pred: &Predicate, schema: &Schema) -> Result<(), QueryError> {
    let exists = |c: &str| -> Result<(), QueryError> {
        if schema.index_of(c).is_none() {
            Err(QueryError::UnknownColumn(c.to_string()))
        } else {
            Ok(())
        }
    };
    let data = |c: &str| -> Result<(), QueryError> {
        exists(c)?;
        if schema.is_aggregation(c) {
            Err(QueryError::PredicateSortMismatch(c.to_string()))
        } else {
            Ok(())
        }
    };
    let agg = |c: &str| -> Result<(), QueryError> {
        exists(c)?;
        if schema.is_aggregation(c) {
            Ok(())
        } else {
            Err(QueryError::PredicateSortMismatch(c.to_string()))
        }
    };
    match pred {
        Predicate::ColEqCol(a, b) => {
            data(a)?;
            data(b)
        }
        Predicate::ColCmpConst(a, _, _) => data(a),
        Predicate::AggCmpConst(alpha, _, _) => agg(alpha),
        Predicate::AggCmpAgg(alpha, _, beta) => {
            agg(alpha)?;
            agg(beta)
        }
        Predicate::AggCmpCol(alpha, _, col) => {
            agg(alpha)?;
            data(col)
        }
        Predicate::And(ps) => {
            for p in ps {
                validate_predicate(p, schema)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid", "shop"]));
        db.create_table("PS", Schema::new(["psid", "pid", "price"]));
        db
    }

    #[test]
    fn builders_compose() {
        let q = Query::table("S")
            .join(Query::table("PS"), &[("sid", "psid")])
            .project(["shop", "price"]);
        assert_eq!(q.base_tables(), vec!["S", "PS"]);
        assert!(q.is_non_repeating());
        let schema = q.output_schema(&sample_db()).unwrap();
        assert_eq!(schema.names(), vec!["shop", "price"]);
    }

    #[test]
    fn repeated_tables_detected() {
        let q = Query::table("S")
            .product(Query::table("S").rename(&[("sid", "sid2"), ("shop", "shop2")]));
        assert!(!q.is_non_repeating());
    }

    #[test]
    fn group_agg_schema_marks_aggregation_columns() {
        let q = Query::table("PS").group_agg(
            ["pid"],
            vec![
                AggSpec::new(AggOp::Min, "price", "min_price"),
                AggSpec::count("cnt"),
            ],
        );
        let schema = q.output_schema(&sample_db()).unwrap();
        assert_eq!(schema.names(), vec!["pid", "min_price", "cnt"]);
        assert!(schema.is_aggregation("min_price"));
        assert!(schema.is_aggregation("cnt"));
        assert!(!schema.is_aggregation("pid"));
    }

    #[test]
    fn definition5_constraint_1_projection() {
        // Projecting on the aggregation attribute is rejected.
        let q = Query::table("PS")
            .group_agg(["pid"], vec![AggSpec::new(AggOp::Sum, "price", "total")])
            .project(["total"]);
        assert_eq!(
            q.output_schema(&sample_db()),
            Err(QueryError::ProjectionOnAggregate("total".to_string()))
        );
        // Grouping by an aggregation attribute is rejected too.
        let q = Query::table("PS")
            .group_agg(["pid"], vec![AggSpec::new(AggOp::Sum, "price", "total")])
            .group_agg(["total"], vec![AggSpec::count("c")]);
        assert!(matches!(
            q.output_schema(&sample_db()),
            Err(QueryError::ProjectionOnAggregate(_))
        ));
    }

    #[test]
    fn definition5_constraint_2_union() {
        // The paper's example: R ∪ $_{A; β←SUM(B)}(S) is not in Q.
        let mut db = Database::new();
        db.create_table("R", Schema::new(["pid", "beta"]));
        db.create_table("S2", Schema::new(["pid", "b"]));
        let q = Query::table("R").union(
            Query::table("S2").group_agg(["pid"], vec![AggSpec::new(AggOp::Sum, "b", "beta")]),
        );
        assert!(matches!(
            q.output_schema(&db),
            Err(QueryError::UnionOnAggregate(_))
        ));
        // But projecting both sides to data attributes first is valid.
        let q = Query::table("R").project(["pid"]).union(
            Query::table("S2")
                .group_agg(["pid"], vec![AggSpec::new(AggOp::Sum, "b", "beta")])
                .select(Predicate::AggCmpConst("beta".into(), CmpOp::Ge, 5))
                .project(["pid"]),
        );
        assert!(q.output_schema(&db).is_ok());
    }

    #[test]
    fn unknown_references_are_reported() {
        let db = sample_db();
        assert_eq!(
            Query::table("missing").output_schema(&db),
            Err(QueryError::UnknownTable("missing".to_string()))
        );
        assert_eq!(
            Query::table("S").project(["nope"]).output_schema(&db),
            Err(QueryError::UnknownColumn("nope".to_string()))
        );
        assert_eq!(
            Query::table("S")
                .select(Predicate::eq_const("nope", 1i64))
                .output_schema(&db),
            Err(QueryError::UnknownColumn("nope".to_string()))
        );
    }

    #[test]
    fn union_schema_mismatch() {
        let db = sample_db();
        let q = Query::table("S").union(Query::table("PS"));
        assert_eq!(q.output_schema(&db), Err(QueryError::UnionSchemaMismatch));
    }

    #[test]
    fn aggregation_of_aggregate_rejected() {
        let db = sample_db();
        let q = Query::table("PS")
            .group_agg(["pid"], vec![AggSpec::new(AggOp::Sum, "price", "total")])
            .group_agg(["pid"], vec![AggSpec::new(AggOp::Max, "total", "m")]);
        assert!(matches!(
            q.output_schema(&db),
            Err(QueryError::AggregationOfAggregate(_))
        ));
    }

    #[test]
    fn predicate_columns() {
        let p = Predicate::And(vec![
            Predicate::eq_col("a", "b"),
            Predicate::AggCmpConst("g".into(), CmpOp::Le, 5),
        ]);
        assert_eq!(p.columns(), vec!["a", "b", "g"]);
    }
}
