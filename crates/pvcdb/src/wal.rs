//! The engine-level write-ahead log: serialization of [`Delta`] batches into
//! the `pvc_core::persist::wal` record format, plus [`DeltaWal`] — the handle
//! an [`Engine`](crate::Engine) appends to **before** applying a delta.
//!
//! # WAL-before-apply
//!
//! [`Engine::apply_delta`](crate::Engine::apply_delta) with an attached
//! `DeltaWal` logs the (already validated) delta and only then mutates the
//! database. The ordering is the whole durability argument:
//!
//! * an acknowledged delta is on stable storage (under
//!   [`Durability::Always`]) *before* the caller hears `Ok`, so a crash at any
//!   later point replays it;
//! * a crash *between* append and in-memory apply replays a delta the caller
//!   never saw acknowledged — harmless, since the mutation was valid and its
//!   effect is exactly what the caller asked for;
//! * an append failure refuses the mutation atomically ([`Error::Wal`]), so
//!   the database never holds state the log does not.
//!
//! Replay applies records through the same validated path but **without**
//! re-logging (see [`Engine::recover_with`](crate::Engine::recover_with)).

use crate::engine::{Delta, DeltaKind, DeltaOp};
use crate::error::Error;
use crate::snapshot::{put_value, take_value};
use pvc_core::persist::storage::Storage;
use pvc_core::persist::wal::{Durability, WalRecord, WalRecovery, WalWriter};
use pvc_core::persist::{PersistError, Reader, Writer};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_SET_PROBABILITY: u8 = 2;

/// Serialize a delta into a WAL record payload.
pub fn encode_delta(delta: &Delta) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(delta.ops.len() as u64);
    for op in &delta.ops {
        w.put_str(&op.table);
        match &op.kind {
            DeltaKind::Insert {
                values,
                probability,
            } => {
                w.put_u8(OP_INSERT);
                w.put_f64(*probability);
                w.put_u64(values.len() as u64);
                for value in values {
                    put_value(&mut w, value);
                }
            }
            DeltaKind::Delete { row } => {
                w.put_u8(OP_DELETE);
                w.put_u64(*row as u64);
            }
            DeltaKind::SetProbability { row, probability } => {
                w.put_u8(OP_SET_PROBABILITY);
                w.put_u64(*row as u64);
                w.put_f64(*probability);
            }
        }
    }
    w.into_bytes()
}

/// Decode a delta from a WAL record payload. Structural damage surfaces as a
/// typed [`PersistError::Format`] — the record checksum already guards against
/// accidental corruption, this guards against logic errors and crafted bytes.
pub fn decode_delta(payload: &[u8]) -> Result<Delta, PersistError> {
    let mut r = Reader::new(payload);
    let n_ops = r.take_count(2)?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let table = r.take_str()?.to_string();
        let kind = match r.take_u8()? {
            OP_INSERT => {
                let probability = r.take_f64()?;
                let n_values = r.take_count(1)?;
                let mut values = Vec::with_capacity(n_values);
                for _ in 0..n_values {
                    values.push(take_value(&mut r)?);
                }
                DeltaKind::Insert {
                    values,
                    probability,
                }
            }
            OP_DELETE => DeltaKind::Delete {
                row: r.take_u64()? as usize,
            },
            OP_SET_PROBABILITY => DeltaKind::SetProbability {
                row: r.take_u64()? as usize,
                probability: r.take_f64()?,
            },
            other => {
                return Err(PersistError::Format(format!(
                    "unknown delta op tag {other}"
                )))
            }
        };
        ops.push(DeltaOp { table, kind });
    }
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the delta payload",
            r.remaining()
        )));
    }
    Ok(Delta { ops })
}

/// One recovered log entry: a decoded delta with its sequence number and
/// tenant tag.
#[derive(Debug, Clone)]
pub struct LoggedDelta {
    /// The record's monotonic sequence number.
    pub seq: u64,
    /// The tenant tag it was logged under.
    pub tenant: String,
    /// The mutation itself.
    pub delta: Delta,
}

fn decode_records(records: &[WalRecord]) -> Result<Vec<LoggedDelta>, Error> {
    records
        .iter()
        .map(|r| {
            Ok(LoggedDelta {
                seq: r.seq,
                tenant: r.tenant.clone(),
                delta: decode_delta(&r.payload).map_err(Error::Wal)?,
            })
        })
        .collect()
}

/// A delta write-ahead log over one file: [`Engine`](crate::Engine) attaches
/// one (via [`Engine::attach_wal`](crate::Engine::attach_wal)) and logs every
/// applied delta to it, tagged with this log's tenant name.
#[derive(Debug)]
pub struct DeltaWal {
    writer: WalWriter,
    tenant: String,
    recovered_tail_dropped: u64,
}

impl DeltaWal {
    /// Open (or create) the delta log at `path`, recovering what it already
    /// holds: torn tails are truncated (see `pvc_core::persist::wal`), whole
    /// records are decoded into [`LoggedDelta`]s for the caller to replay.
    /// `tenant` tags every record this handle appends (`""` is fine for
    /// single-tenant embedders).
    pub fn open(
        storage: Arc<dyn Storage>,
        path: impl Into<PathBuf>,
        tenant: impl Into<String>,
        durability: Durability,
    ) -> Result<(DeltaWal, Vec<LoggedDelta>), Error> {
        let (writer, recovery) = WalWriter::open(storage, path, durability).map_err(Error::Wal)?;
        let logged = decode_records(&recovery.records)?;
        Ok((
            DeltaWal {
                writer,
                tenant: tenant.into(),
                recovered_tail_dropped: recovery.tail_dropped_bytes,
            },
            logged,
        ))
    }

    /// Bytes the open dropped as a torn/corrupt tail (0 for a clean log).
    pub fn recovered_tail_dropped_bytes(&self) -> u64 {
        self.recovered_tail_dropped
    }

    /// Read the log without opening a writer (no truncation, no header write).
    pub fn peek(
        storage: &dyn Storage,
        path: &Path,
    ) -> Result<(Vec<LoggedDelta>, WalRecovery), Error> {
        let recovery = pvc_core::persist::wal::read_wal(storage, path).map_err(Error::Wal)?;
        let logged = decode_records(&recovery.records)?;
        Ok((logged, recovery))
    }

    /// Append one delta; under [`Durability::Always`] it is fsynced before
    /// this returns. Returns the assigned sequence number.
    pub fn log(&mut self, delta: &Delta) -> Result<u64, Error> {
        let payload = encode_delta(delta);
        self.writer
            .append(&self.tenant, &payload)
            .map_err(Error::Wal)
    }

    /// Flush pending appends (meaningful under [`Durability::Batch`] only).
    pub fn sync(&mut self) -> Result<(), Error> {
        self.writer.sync().map_err(Error::Wal)
    }

    /// Drop every record with `seq <= up_to` (call after a snapshot with that
    /// high-water mark has been durably published).
    pub fn rotate(&mut self, up_to: u64) -> Result<(), Error> {
        self.writer.rotate(up_to).map_err(Error::Wal)
    }

    /// Sequence number of the last record logged (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.writer.last_seq()
    }

    /// Advance the sequence counter to at least `seq` — used after restoring
    /// a snapshot whose high-water mark is ahead of the (rotated) log, so new
    /// appends never reuse an already-snapshotted sequence number.
    pub fn set_last_seq(&mut self, seq: u64) {
        self.writer.set_last_seq(seq);
    }

    /// The tenant tag this handle appends under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        self.writer.path()
    }

    /// The fsync discipline of this log.
    pub fn durability(&self) -> Durability {
        self.writer.durability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn delta_payload_roundtrip() {
        let delta = Delta::new()
            .insert("offers", vec![Value::from("M&S"), Value::from(10i64)], 0.9)
            .delete("offers", 3)
            .set_probability("stock", 1, 0.25);
        let decoded = decode_delta(&encode_delta(&delta)).unwrap();
        assert_eq!(decoded.len(), 3);
        // Re-encoding the decoded delta must be byte-identical (stable codec).
        assert_eq!(encode_delta(&decoded), encode_delta(&delta));
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let delta = Delta::new().insert("t", vec![Value::from(1i64)], 0.5);
        let bytes = encode_delta(&delta);
        for cut in 0..bytes.len() {
            match decode_delta(&bytes[..cut]) {
                Err(PersistError::Format(_)) => {}
                Ok(_) => panic!("truncated payload (cut at {cut}) decoded successfully"),
                Err(e) => panic!("unexpected error kind at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn unknown_op_tag_is_refused() {
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_str("t");
        w.put_u8(99);
        assert!(matches!(
            decode_delta(&w.into_bytes()),
            Err(PersistError::Format(_))
        ));
    }
}
