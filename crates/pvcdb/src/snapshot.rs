//! The engine's half of the compile-artifact snapshot format: the **database
//! fingerprint** that gates loading, and the codec for the step-I **rewrite
//! cache** (the `⟦·⟧` result tables keyed by [`Query::structural_key`]), which
//! rides in the snapshot's opaque *extra* section.
//!
//! The artifact sections themselves (interned expressions, cached distributions
//! and compiled d-tree arenas) are handled by [`pvc_core::persist`]; this module
//! only adds what `pvc-core` cannot know about: relational tables. See
//! `docs/SNAPSHOT_FORMAT.md` for the full layout and the compatibility policy,
//! and [`Engine::save_artifacts`](crate::Engine::save_artifacts) /
//! [`Engine::with_artifacts_from`](crate::Engine::with_artifacts_from) for the
//! public API.
//!
//! [`Query::structural_key`]: crate::Query::structural_key

use crate::database::Database;
use crate::relation::PvcTable;
use crate::schema::{Column, Schema};
use crate::value::Value;
use pvc_core::persist::{
    put_agg_op, put_cmp_op, put_monoid_value, put_semiring_value, take_agg_op, take_cmp_op,
    take_monoid_value, take_semiring_value, PersistError, Reader, Writer,
};
use pvc_expr::{SemimoduleExpr, SemiringExpr, SmTerm, Var};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Expression trees (owned, not interned — the rewrite tables store real trees)
// ---------------------------------------------------------------------------

const EXPR_VAR: u8 = 0;
const EXPR_CONST: u8 = 1;
const EXPR_ADD: u8 = 2;
const EXPR_MUL: u8 = 3;
const EXPR_CMP_SS: u8 = 4;
const EXPR_CMP_MM: u8 = 5;

fn put_semiring_expr(w: &mut Writer, expr: &SemiringExpr) {
    match expr {
        SemiringExpr::Var(v) => {
            w.put_u8(EXPR_VAR);
            w.put_u32(v.0);
        }
        SemiringExpr::Const(c) => {
            w.put_u8(EXPR_CONST);
            put_semiring_value(w, c);
        }
        SemiringExpr::Add(children) => {
            w.put_u8(EXPR_ADD);
            w.put_u64(children.len() as u64);
            for c in children {
                put_semiring_expr(w, c);
            }
        }
        SemiringExpr::Mul(children) => {
            w.put_u8(EXPR_MUL);
            w.put_u64(children.len() as u64);
            for c in children {
                put_semiring_expr(w, c);
            }
        }
        SemiringExpr::CmpSS(op, a, b) => {
            w.put_u8(EXPR_CMP_SS);
            put_cmp_op(w, *op);
            put_semiring_expr(w, a);
            put_semiring_expr(w, b);
        }
        SemiringExpr::CmpMM(op, a, b) => {
            w.put_u8(EXPR_CMP_MM);
            put_cmp_op(w, *op);
            put_semimodule_expr(w, a);
            put_semimodule_expr(w, b);
        }
    }
}

fn take_semiring_expr(r: &mut Reader<'_>) -> Result<SemiringExpr, PersistError> {
    Ok(match r.take_u8()? {
        EXPR_VAR => SemiringExpr::Var(Var(r.take_u32()?)),
        EXPR_CONST => SemiringExpr::Const(take_semiring_value(r)?),
        tag @ (EXPR_ADD | EXPR_MUL) => {
            let n = r.take_count(1)?;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(take_semiring_expr(r)?);
            }
            if tag == EXPR_ADD {
                SemiringExpr::Add(children)
            } else {
                SemiringExpr::Mul(children)
            }
        }
        EXPR_CMP_SS => {
            let op = take_cmp_op(r)?;
            let a = take_semiring_expr(r)?;
            let b = take_semiring_expr(r)?;
            SemiringExpr::CmpSS(op, Box::new(a), Box::new(b))
        }
        EXPR_CMP_MM => {
            let op = take_cmp_op(r)?;
            let a = take_semimodule_expr(r)?;
            let b = take_semimodule_expr(r)?;
            SemiringExpr::CmpMM(op, Box::new(a), Box::new(b))
        }
        t => {
            return Err(PersistError::Format(format!(
                "bad rewrite-expression tag {t}"
            )))
        }
    })
}

fn put_semimodule_expr(w: &mut Writer, expr: &SemimoduleExpr) {
    put_agg_op(w, expr.op);
    w.put_u64(expr.terms.len() as u64);
    for term in &expr.terms {
        put_semiring_expr(w, &term.coeff);
        put_monoid_value(w, &term.value);
    }
}

fn take_semimodule_expr(r: &mut Reader<'_>) -> Result<SemimoduleExpr, PersistError> {
    let op = take_agg_op(r)?;
    let n = r.take_count(2)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        let coeff = take_semiring_expr(r)?;
        let value = take_monoid_value(r)?;
        terms.push(SmTerm::new(coeff, value));
    }
    Ok(SemimoduleExpr { op, terms })
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

pub(crate) fn put_value(w: &mut Writer, value: &Value) {
    match value {
        Value::Str(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        Value::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Value::Agg(e) => {
            w.put_u8(2);
            put_semimodule_expr(w, e);
        }
    }
}

pub(crate) fn take_value(r: &mut Reader<'_>) -> Result<Value, PersistError> {
    Ok(match r.take_u8()? {
        0 => Value::Str(r.take_str()?.to_string()),
        1 => Value::Int(r.take_i64()?),
        2 => Value::Agg(take_semimodule_expr(r)?),
        t => return Err(PersistError::Format(format!("bad cell-value tag {t}"))),
    })
}

fn put_table(w: &mut Writer, table: &PvcTable) {
    w.put_str(&table.name);
    let columns = table.schema.columns();
    w.put_u64(columns.len() as u64);
    for column in columns {
        w.put_str(&column.name);
        w.put_u8(column.is_aggregation as u8);
    }
    w.put_u64(table.tuples.len() as u64);
    for tuple in &table.tuples {
        for value in &tuple.values {
            put_value(w, value);
        }
        put_semiring_expr(w, &tuple.annotation);
    }
}

fn take_table(r: &mut Reader<'_>) -> Result<PvcTable, PersistError> {
    let name = r.take_str()?.to_string();
    let n_columns = r.take_count(2)?;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let column_name = r.take_str()?.to_string();
        columns.push(match r.take_u8()? {
            0 => Column::data(column_name),
            1 => Column::aggregation(column_name),
            t => return Err(PersistError::Format(format!("bad column tag {t}"))),
        });
    }
    let schema = Schema::from_columns(columns);
    let mut table = PvcTable::new(name, schema);
    let n_tuples = r.take_count(1)?;
    for _ in 0..n_tuples {
        let mut values = Vec::with_capacity(table.schema.arity());
        for _ in 0..table.schema.arity() {
            values.push(take_value(r)?);
        }
        let annotation = take_semiring_expr(r)?;
        table
            .tuples
            .push(crate::relation::Tuple::new(values, annotation));
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// The rewrite-cache section (the snapshot's `extra` payload)
// ---------------------------------------------------------------------------

/// The serialized size of one rewrite table — the byte measure the bounded
/// rewrite cache charges per entry (exact for what a snapshot would write, and
/// a close proxy for in-memory footprint).
pub(crate) fn table_bytes(table: &PvcTable) -> usize {
    let mut w = Writer::new();
    put_table(&mut w, table);
    w.into_bytes().len()
}

/// A step-I rewrite cache in snapshot form: structural key → (result table,
/// the base tables its rewriting read).
pub(crate) type RewriteMap = BTreeMap<Vec<u8>, (Arc<PvcTable>, Vec<String>)>;

/// Encode the step-I rewrite cache. The base-table list is what lets a
/// delta-aware loader keep rewrites whose inputs did not change and drop only
/// the rest.
pub(crate) fn encode_rewrites(rewrites: &RewriteMap) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(rewrites.len() as u64);
    for (key, (table, base_tables)) in rewrites {
        w.put_bytes(key);
        w.put_u64(base_tables.len() as u64);
        for base in base_tables {
            w.put_str(base);
        }
        put_table(&mut w, table);
    }
    w.into_bytes()
}

/// Decode a rewrite cache written by [`encode_rewrites`], refusing tables that
/// reference variables `>= var_count` (the checksum only protects against
/// accidents; an out-of-range variable would panic at evaluation time).
pub(crate) fn decode_rewrites(bytes: &[u8], var_count: usize) -> Result<RewriteMap, PersistError> {
    let mut r = Reader::new(bytes);
    let n = r.take_count(2)?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let key = r.take_bytes()?.to_vec();
        let n_bases = r.take_count(8)?;
        let mut base_tables = Vec::with_capacity(n_bases);
        for _ in 0..n_bases {
            base_tables.push(r.take_str()?.to_string());
        }
        let table = take_table(&mut r)?;
        verify_table_variables(&table, var_count)?;
        out.insert(key, (Arc::new(table), base_tables));
    }
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the rewrite section",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Encode the engine's applied-delta **journal**: every delta applied since
/// the base database, with its WAL sequence number. Snapshots embed it so a
/// restart handed the *base* database (the normal crash-recovery setup —
/// tenant data is rebuilt by deterministic loading code, not persisted) can
/// re-derive the exact snapshotted state before fingerprint verification,
/// which is what makes WAL rotation after a snapshot safe: the snapshot, not
/// the truncated log, now carries those acknowledged deltas.
pub(crate) fn encode_journal(journal: &[(u64, crate::engine::Delta)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(journal.len() as u64);
    for (seq, delta) in journal {
        w.put_u64(*seq);
        w.put_bytes(&crate::wal::encode_delta(delta));
    }
    w.into_bytes()
}

/// Decode a journal written by [`encode_journal`].
pub(crate) fn decode_journal(
    bytes: &[u8],
) -> Result<Vec<(u64, crate::engine::Delta)>, PersistError> {
    let mut r = Reader::new(bytes);
    let count = r.take_u64()? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let seq = r.take_u64()?;
        let payload = r.take_bytes()?;
        out.push((seq, crate::wal::decode_delta(payload)?));
    }
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the delta journal",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Encode the engine's snapshot **extra section** (format v3): the WAL
/// sequence high-water mark — the last delta sequence number the snapshotted
/// state already contains, so replay-on-startup skips everything at or below
/// it — then the applied-delta journal (see [`encode_journal`]), then the
/// step-I rewrite cache.
pub(crate) fn encode_extra(
    wal_high_water: u64,
    journal: &[(u64, crate::engine::Delta)],
    rewrites: &RewriteMap,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(wal_high_water);
    w.put_bytes(&encode_journal(journal));
    w.put_bytes(&encode_rewrites(rewrites));
    w.into_bytes()
}

/// Decode an extra section written by [`encode_extra`]: the WAL high-water
/// mark, the raw journal bytes (pass them to [`decode_journal`]) and the raw
/// rewrite bytes (pass them to [`decode_rewrites`]).
pub(crate) fn decode_extra(extra: &[u8]) -> Result<(u64, &[u8], &[u8]), PersistError> {
    let mut r = Reader::new(extra);
    let hwm = r.take_u64()?;
    let journal = r.take_bytes()?;
    let rewrites = r.take_bytes()?;
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the extra section",
            r.remaining()
        )));
    }
    Ok((hwm, journal, rewrites))
}

/// Refuse a restored rewrite table whose annotations or aggregate values
/// mention a variable the target database does not have.
fn verify_table_variables(table: &PvcTable, var_count: usize) -> Result<(), PersistError> {
    let check = |vars: pvc_expr::VarSet| -> Result<(), PersistError> {
        match vars.as_slice().last() {
            Some(v) if (v.0 as usize) >= var_count => Err(PersistError::Format(format!(
                "restored rewrite table references variable {v}, but the database has only \
                 {var_count} variables"
            ))),
            _ => Ok(()),
        }
    };
    for tuple in &table.tuples {
        check(tuple.annotation.vars())?;
        for value in &tuple.values {
            if let Value::Agg(agg) = value {
                for term in &agg.terms {
                    check(term.vars())?;
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Database fingerprints (whole-database, per-table, per-partition)
// ---------------------------------------------------------------------------

/// Row-count granularity of partition fingerprints: tables are digested in
/// fixed-size row chunks so a localised mutation of a large table re-hashes
/// only the affected chunks (plus the cheap fold combining them).
pub(crate) const PARTITION_ROWS: usize = 1024;

/// The set of variables a table's annotations and aggregate cell values
/// mention — the lineage footprint a delta to this table can possibly touch.
pub(crate) fn table_var_set(table: &PvcTable) -> pvc_expr::VarSet {
    let mut vars = pvc_expr::VarSet::new();
    for tuple in &table.tuples {
        vars = vars.union(&tuple.annotation.vars());
        for value in &tuple.values {
            if let Value::Agg(agg) = value {
                for term in &agg.terms {
                    vars = vars.union(&term.vars());
                }
            }
        }
    }
    vars
}

/// Digest of one fixed-size row partition: the tuples' values and annotations,
/// byte-exact.
fn partition_fingerprint(rows: &[crate::relation::Tuple]) -> u64 {
    let mut w = Writer::new();
    for tuple in rows {
        for value in &tuple.values {
            put_value(&mut w, value);
        }
        put_semiring_expr(&mut w, &tuple.annotation);
    }
    pvc_core::persist::fnv64(&w.into_bytes())
}

/// A stable 64-bit digest of everything artifacts over **one table** depend
/// on: its name and schema, its content (folded from [`PARTITION_ROWS`]-sized
/// partition digests) and the exact distribution bits of every variable the
/// table mentions. A `set_probability` on a referenced variable, an insert and
/// a delete all change the fingerprint; mutations of *other* tables (including
/// fresh variables they register) do not — the property the delta-aware
/// snapshot loader relies on to keep per-table artifacts selectively.
pub(crate) fn table_fingerprint(db: &Database, table: &PvcTable) -> u64 {
    let mut w = Writer::new();
    w.put_str(&table.name);
    let columns = table.schema.columns();
    w.put_u64(columns.len() as u64);
    for column in columns {
        w.put_str(&column.name);
        w.put_u8(column.is_aggregation as u8);
    }
    w.put_u64(table.tuples.len() as u64);
    for chunk in table.tuples.chunks(PARTITION_ROWS.max(1)) {
        w.put_u64(partition_fingerprint(chunk));
    }
    let vars = table_var_set(table);
    w.put_u64(vars.len() as u64);
    for v in vars.iter() {
        w.put_u32(v.0);
        if (v.0 as usize) < db.vars.len() {
            w.put_str(db.vars.name(v));
            let dist = db.vars.dist(v);
            w.put_u64(dist.support_size() as u64);
            for (value, p) in dist.iter() {
                put_semiring_value(&mut w, value);
                w.put_f64(p);
            }
        }
    }
    pvc_core::persist::fnv64(&w.into_bytes())
}

/// The per-table fingerprint vector of a database, in table-name order — the
/// refinement persisted in snapshots so a loader can pinpoint which tables
/// diverged.
pub(crate) fn database_table_fingerprints(db: &Database) -> Vec<(String, u64)> {
    db.table_names()
        .into_iter()
        .map(|name| {
            let table = db.table(name).expect("listed table exists");
            (name.to_string(), table_fingerprint(db, table))
        })
        .collect()
}

/// A stable 64-bit digest of everything the cached artifacts depend on,
/// composed from the annotation semiring and the per-table fingerprints (which
/// cover table contents and the distributions of every referenced variable).
/// A database rebuilt by the same deterministic loading code fingerprints
/// identically across processes; any content or probability change refuses (or,
/// with a partial per-table match, selectively invalidates) the snapshot.
pub(crate) fn database_fingerprint(db: &Database) -> u64 {
    let mut w = Writer::new();
    w.put_u8(match db.kind {
        pvc_algebra::SemiringKind::Bool => 0,
        pvc_algebra::SemiringKind::Nat => 1,
    });
    let tables = database_table_fingerprints(db);
    w.put_u64(tables.len() as u64);
    for (name, fp) in &tables {
        w.put_str(name);
        w.put_u64(*fp);
    }
    pvc_core::persist::fnv64(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringValue};
    use pvc_expr::VarTable;

    fn sample_table() -> PvcTable {
        let mut vars = VarTable::new();
        let mut table = PvcTable::new(
            "result",
            Schema::from_columns(vec![Column::data("shop"), Column::aggregation("total")]),
        );
        let x = vars.boolean("x", 0.5);
        let y = vars.boolean("y", 0.25);
        let agg = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(10)),
                (SemiringExpr::Var(y), MonoidValue::Fin(-3)),
            ],
        );
        let annotation = SemiringExpr::cmp_mm(
            CmpOp::Le,
            agg.clone(),
            SemimoduleExpr::constant(AggOp::Sum, MonoidValue::Fin(5)),
        ) * (SemiringExpr::Var(x)
            + SemiringExpr::Const(SemiringValue::Bool(false)));
        table
            .try_push(vec!["M&S".into(), agg.into()], annotation)
            .unwrap();
        table
    }

    #[test]
    fn rewrites_roundtrip_exactly() {
        let mut rewrites = BTreeMap::new();
        rewrites.insert(
            vec![1u8, 2, 3],
            (Arc::new(sample_table()), vec!["S".to_string()]),
        );
        rewrites.insert(
            vec![9u8],
            (
                Arc::new(PvcTable::new("empty", Schema::new(["a"]))),
                Vec::new(),
            ),
        );
        let bytes = encode_rewrites(&rewrites);
        let back = decode_rewrites(&bytes, 2).unwrap();
        assert_eq!(back.len(), 2);
        for (key, (table, bases)) in &rewrites {
            assert_eq!(back[key].0.as_ref(), table.as_ref());
            assert_eq!(&back[key].1, bases);
        }
        // Truncation surfaces as a typed error, not a panic.
        assert!(decode_rewrites(&bytes[..bytes.len() - 3], 2).is_err());
        assert!(decode_rewrites(&[0xff; 4], 2).is_err());
        // Out-of-range variables are refused, not deferred to a panic later.
        let err = decode_rewrites(&bytes, 1).unwrap_err();
        assert!(matches!(err, PersistError::Format(ref m) if m.contains("variable")));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let build = |p: f64, price: i64| {
            let mut db = Database::new();
            db.create_table("S", Schema::new(["sid", "price"]));
            let (s, vars) = db.table_and_vars_mut("S").unwrap();
            s.push_independent(vec![1i64.into(), price.into()], p, vars);
            db
        };
        assert_eq!(
            database_fingerprint(&build(0.5, 10)),
            database_fingerprint(&build(0.5, 10))
        );
        // A probability change and a data change both change the fingerprint.
        assert_ne!(
            database_fingerprint(&build(0.5, 10)),
            database_fingerprint(&build(0.6, 10))
        );
        assert_ne!(
            database_fingerprint(&build(0.5, 10)),
            database_fingerprint(&build(0.5, 11))
        );
    }

    #[test]
    fn table_fingerprints_are_independent_per_table() {
        // Two tables; mutating one leaves the other's fingerprint untouched even
        // though the variable table grows.
        let build = |s_rows: usize, ps_rows: usize, s_p: f64| {
            let mut db = Database::new();
            db.create_table("S", Schema::new(["sid"]));
            db.create_table("PS", Schema::new(["pid"]));
            {
                let (s, vars) = db.table_and_vars_mut("S").unwrap();
                for i in 0..s_rows {
                    s.push_independent(vec![(i as i64).into()], s_p, vars);
                }
            }
            {
                let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
                for i in 0..ps_rows {
                    ps.push_independent(vec![(i as i64).into()], 0.5, vars);
                }
            }
            db
        };
        let base = build(2, 2, 0.3);
        let fp = |db: &Database, name: &str| table_fingerprint(db, db.table(name).unwrap());

        // Insert into S (in place, as a delta would — the fresh variable is
        // appended at the end): S's fingerprint changes, PS's does not.
        let mut more_s = base.clone();
        {
            let (s, vars) = more_s.table_and_vars_mut("S").unwrap();
            s.push_independent(vec![99i64.into()], 0.3, vars);
        }
        assert_ne!(fp(&base, "S"), fp(&more_s, "S"));
        assert_eq!(fp(&base, "PS"), fp(&more_s, "PS"));

        // Probability change in S: same story.
        let mut hotter_s = base.clone();
        let x = match &hotter_s.table("S").unwrap().tuples[0].annotation {
            SemiringExpr::Var(v) => *v,
            other => panic!("unexpected annotation {other:?}"),
        };
        hotter_s.vars.set_dist(x, pvc_prob::make::bernoulli(0.9));
        assert_ne!(fp(&base, "S"), fp(&hotter_s, "S"));
        assert_eq!(fp(&base, "PS"), fp(&hotter_s, "PS"));

        // The whole-database digest changes whenever any table's does.
        assert_ne!(database_fingerprint(&base), database_fingerprint(&more_s));
        assert_ne!(database_fingerprint(&base), database_fingerprint(&hotter_s));

        // The published vector refines the digest: one mismatched entry.
        let v_base = database_table_fingerprints(&base);
        let v_more = database_table_fingerprints(&more_s);
        assert_eq!(v_base.len(), 2);
        let diffs = v_base.iter().zip(&v_more).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn set_probability_via_vars_changes_referencing_table_only() {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid"]));
        db.create_table("PS", Schema::new(["pid"]));
        let x = {
            let (s, vars) = db.table_and_vars_mut("S").unwrap();
            s.push_independent(vec![1i64.into()], 0.4, vars);
            match &s.tuples[0].annotation {
                SemiringExpr::Var(v) => *v,
                other => panic!("unexpected annotation {other:?}"),
            }
        };
        {
            let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
            ps.push_independent(vec![7i64.into()], 0.6, vars);
        }
        let s_before = table_fingerprint(&db, db.table("S").unwrap());
        let ps_before = table_fingerprint(&db, db.table("PS").unwrap());
        db.vars.set_dist(x, pvc_prob::make::bernoulli(0.8));
        assert_ne!(s_before, table_fingerprint(&db, db.table("S").unwrap()));
        assert_eq!(ps_before, table_fingerprint(&db, db.table("PS").unwrap()));
    }

    #[test]
    fn partitions_digest_large_tables_chunkwise() {
        let build = |rows: usize, flip_last: bool| {
            let mut db = Database::new();
            db.create_table("big", Schema::new(["k"]));
            let (t, vars) = db.table_and_vars_mut("big").unwrap();
            for i in 0..rows {
                let key = if flip_last && i == rows - 1 {
                    -1
                } else {
                    i as i64
                };
                t.push_independent(vec![key.into()], 0.5, vars);
            }
            db
        };
        let rows = PARTITION_ROWS + 7;
        let a = build(rows, false);
        let b = build(rows, true);
        let fp = |db: &Database| table_fingerprint(db, db.table("big").unwrap());
        assert_eq!(fp(&a), fp(&build(rows, false)));
        assert_ne!(
            fp(&a),
            fp(&b),
            "a one-row change in the tail partition must show"
        );
    }
}
