//! The engine's half of the compile-artifact snapshot format: the **database
//! fingerprint** that gates loading, and the codec for the step-I **rewrite
//! cache** (the `⟦·⟧` result tables keyed by [`Query::structural_key`]), which
//! rides in the snapshot's opaque *extra* section.
//!
//! The artifact sections themselves (interned expressions, cached distributions
//! and compiled d-tree arenas) are handled by [`pvc_core::persist`]; this module
//! only adds what `pvc-core` cannot know about: relational tables. See
//! `docs/SNAPSHOT_FORMAT.md` for the full layout and the compatibility policy,
//! and [`Engine::save_artifacts`](crate::Engine::save_artifacts) /
//! [`Engine::with_artifacts_from`](crate::Engine::with_artifacts_from) for the
//! public API.
//!
//! [`Query::structural_key`]: crate::Query::structural_key

use crate::database::Database;
use crate::relation::PvcTable;
use crate::schema::{Column, Schema};
use crate::value::Value;
use pvc_core::persist::{
    put_agg_op, put_cmp_op, put_monoid_value, put_semiring_value, take_agg_op, take_cmp_op,
    take_monoid_value, take_semiring_value, PersistError, Reader, Writer,
};
use pvc_expr::{SemimoduleExpr, SemiringExpr, SmTerm, Var};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Expression trees (owned, not interned — the rewrite tables store real trees)
// ---------------------------------------------------------------------------

const EXPR_VAR: u8 = 0;
const EXPR_CONST: u8 = 1;
const EXPR_ADD: u8 = 2;
const EXPR_MUL: u8 = 3;
const EXPR_CMP_SS: u8 = 4;
const EXPR_CMP_MM: u8 = 5;

fn put_semiring_expr(w: &mut Writer, expr: &SemiringExpr) {
    match expr {
        SemiringExpr::Var(v) => {
            w.put_u8(EXPR_VAR);
            w.put_u32(v.0);
        }
        SemiringExpr::Const(c) => {
            w.put_u8(EXPR_CONST);
            put_semiring_value(w, c);
        }
        SemiringExpr::Add(children) => {
            w.put_u8(EXPR_ADD);
            w.put_u64(children.len() as u64);
            for c in children {
                put_semiring_expr(w, c);
            }
        }
        SemiringExpr::Mul(children) => {
            w.put_u8(EXPR_MUL);
            w.put_u64(children.len() as u64);
            for c in children {
                put_semiring_expr(w, c);
            }
        }
        SemiringExpr::CmpSS(op, a, b) => {
            w.put_u8(EXPR_CMP_SS);
            put_cmp_op(w, *op);
            put_semiring_expr(w, a);
            put_semiring_expr(w, b);
        }
        SemiringExpr::CmpMM(op, a, b) => {
            w.put_u8(EXPR_CMP_MM);
            put_cmp_op(w, *op);
            put_semimodule_expr(w, a);
            put_semimodule_expr(w, b);
        }
    }
}

fn take_semiring_expr(r: &mut Reader<'_>) -> Result<SemiringExpr, PersistError> {
    Ok(match r.take_u8()? {
        EXPR_VAR => SemiringExpr::Var(Var(r.take_u32()?)),
        EXPR_CONST => SemiringExpr::Const(take_semiring_value(r)?),
        tag @ (EXPR_ADD | EXPR_MUL) => {
            let n = r.take_count(1)?;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(take_semiring_expr(r)?);
            }
            if tag == EXPR_ADD {
                SemiringExpr::Add(children)
            } else {
                SemiringExpr::Mul(children)
            }
        }
        EXPR_CMP_SS => {
            let op = take_cmp_op(r)?;
            let a = take_semiring_expr(r)?;
            let b = take_semiring_expr(r)?;
            SemiringExpr::CmpSS(op, Box::new(a), Box::new(b))
        }
        EXPR_CMP_MM => {
            let op = take_cmp_op(r)?;
            let a = take_semimodule_expr(r)?;
            let b = take_semimodule_expr(r)?;
            SemiringExpr::CmpMM(op, Box::new(a), Box::new(b))
        }
        t => {
            return Err(PersistError::Format(format!(
                "bad rewrite-expression tag {t}"
            )))
        }
    })
}

fn put_semimodule_expr(w: &mut Writer, expr: &SemimoduleExpr) {
    put_agg_op(w, expr.op);
    w.put_u64(expr.terms.len() as u64);
    for term in &expr.terms {
        put_semiring_expr(w, &term.coeff);
        put_monoid_value(w, &term.value);
    }
}

fn take_semimodule_expr(r: &mut Reader<'_>) -> Result<SemimoduleExpr, PersistError> {
    let op = take_agg_op(r)?;
    let n = r.take_count(2)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        let coeff = take_semiring_expr(r)?;
        let value = take_monoid_value(r)?;
        terms.push(SmTerm::new(coeff, value));
    }
    Ok(SemimoduleExpr { op, terms })
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

fn put_value(w: &mut Writer, value: &Value) {
    match value {
        Value::Str(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        Value::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Value::Agg(e) => {
            w.put_u8(2);
            put_semimodule_expr(w, e);
        }
    }
}

fn take_value(r: &mut Reader<'_>) -> Result<Value, PersistError> {
    Ok(match r.take_u8()? {
        0 => Value::Str(r.take_str()?.to_string()),
        1 => Value::Int(r.take_i64()?),
        2 => Value::Agg(take_semimodule_expr(r)?),
        t => return Err(PersistError::Format(format!("bad cell-value tag {t}"))),
    })
}

fn put_table(w: &mut Writer, table: &PvcTable) {
    w.put_str(&table.name);
    let columns = table.schema.columns();
    w.put_u64(columns.len() as u64);
    for column in columns {
        w.put_str(&column.name);
        w.put_u8(column.is_aggregation as u8);
    }
    w.put_u64(table.tuples.len() as u64);
    for tuple in &table.tuples {
        for value in &tuple.values {
            put_value(w, value);
        }
        put_semiring_expr(w, &tuple.annotation);
    }
}

fn take_table(r: &mut Reader<'_>) -> Result<PvcTable, PersistError> {
    let name = r.take_str()?.to_string();
    let n_columns = r.take_count(2)?;
    let mut columns = Vec::with_capacity(n_columns);
    for _ in 0..n_columns {
        let column_name = r.take_str()?.to_string();
        columns.push(match r.take_u8()? {
            0 => Column::data(column_name),
            1 => Column::aggregation(column_name),
            t => return Err(PersistError::Format(format!("bad column tag {t}"))),
        });
    }
    let schema = Schema::from_columns(columns);
    let mut table = PvcTable::new(name, schema);
    let n_tuples = r.take_count(1)?;
    for _ in 0..n_tuples {
        let mut values = Vec::with_capacity(table.schema.arity());
        for _ in 0..table.schema.arity() {
            values.push(take_value(r)?);
        }
        let annotation = take_semiring_expr(r)?;
        table
            .tuples
            .push(crate::relation::Tuple::new(values, annotation));
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// The rewrite-cache section (the snapshot's `extra` payload)
// ---------------------------------------------------------------------------

/// The serialized size of one rewrite table — the byte measure the bounded
/// rewrite cache charges per entry (exact for what a snapshot would write, and
/// a close proxy for in-memory footprint).
pub(crate) fn table_bytes(table: &PvcTable) -> usize {
    let mut w = Writer::new();
    put_table(&mut w, table);
    w.into_bytes().len()
}

/// Encode the step-I rewrite cache (structural keys → result tables).
pub(crate) fn encode_rewrites(rewrites: &BTreeMap<Vec<u8>, Arc<PvcTable>>) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(rewrites.len() as u64);
    for (key, table) in rewrites {
        w.put_bytes(key);
        put_table(&mut w, table);
    }
    w.into_bytes()
}

/// Decode a rewrite cache written by [`encode_rewrites`], refusing tables that
/// reference variables `>= var_count` (the checksum only protects against
/// accidents; an out-of-range variable would panic at evaluation time).
pub(crate) fn decode_rewrites(
    bytes: &[u8],
    var_count: usize,
) -> Result<BTreeMap<Vec<u8>, Arc<PvcTable>>, PersistError> {
    let mut r = Reader::new(bytes);
    let n = r.take_count(2)?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let key = r.take_bytes()?.to_vec();
        let table = take_table(&mut r)?;
        verify_table_variables(&table, var_count)?;
        out.insert(key, Arc::new(table));
    }
    if !r.is_empty() {
        return Err(PersistError::Format(format!(
            "{} trailing bytes after the rewrite section",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Refuse a restored rewrite table whose annotations or aggregate values
/// mention a variable the target database does not have.
fn verify_table_variables(table: &PvcTable, var_count: usize) -> Result<(), PersistError> {
    let check = |vars: pvc_expr::VarSet| -> Result<(), PersistError> {
        match vars.as_slice().last() {
            Some(v) if (v.0 as usize) >= var_count => Err(PersistError::Format(format!(
                "restored rewrite table references variable {v}, but the database has only \
                 {var_count} variables"
            ))),
            _ => Ok(()),
        }
    };
    for tuple in &table.tuples {
        check(tuple.annotation.vars())?;
        for value in &tuple.values {
            if let Value::Agg(agg) = value {
                for term in &agg.terms {
                    check(term.vars())?;
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Database fingerprint
// ---------------------------------------------------------------------------

/// A stable 64-bit digest of everything the cached artifacts depend on: the
/// annotation semiring, the variable table (names + exact distribution bits,
/// via [`pvc_expr::VarTable::fingerprint`]) and the full content of every
/// table (the rewrite cache depends on table data, not just the probability
/// space). A database rebuilt by the same deterministic loading code
/// fingerprints identically across processes; any change refuses the snapshot.
pub(crate) fn database_fingerprint(db: &Database) -> u64 {
    let mut w = Writer::new();
    w.put_u8(match db.kind {
        pvc_algebra::SemiringKind::Bool => 0,
        pvc_algebra::SemiringKind::Nat => 1,
    });
    w.put_u64(db.vars.fingerprint());
    let names = db.table_names();
    w.put_u64(names.len() as u64);
    for name in names {
        let table = db.table(name).expect("listed table exists");
        put_table(&mut w, table);
    }
    pvc_core::persist::fnv64(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringValue};
    use pvc_expr::VarTable;

    fn sample_table() -> PvcTable {
        let mut vars = VarTable::new();
        let mut table = PvcTable::new(
            "result",
            Schema::from_columns(vec![Column::data("shop"), Column::aggregation("total")]),
        );
        let x = vars.boolean("x", 0.5);
        let y = vars.boolean("y", 0.25);
        let agg = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(10)),
                (SemiringExpr::Var(y), MonoidValue::Fin(-3)),
            ],
        );
        let annotation = SemiringExpr::cmp_mm(
            CmpOp::Le,
            agg.clone(),
            SemimoduleExpr::constant(AggOp::Sum, MonoidValue::Fin(5)),
        ) * (SemiringExpr::Var(x)
            + SemiringExpr::Const(SemiringValue::Bool(false)));
        table.push(vec!["M&S".into(), agg.into()], annotation);
        table
    }

    #[test]
    fn rewrites_roundtrip_exactly() {
        let mut rewrites = BTreeMap::new();
        rewrites.insert(vec![1u8, 2, 3], Arc::new(sample_table()));
        rewrites.insert(
            vec![9u8],
            Arc::new(PvcTable::new("empty", Schema::new(["a"]))),
        );
        let bytes = encode_rewrites(&rewrites);
        let back = decode_rewrites(&bytes, 2).unwrap();
        assert_eq!(back.len(), 2);
        for (key, table) in &rewrites {
            assert_eq!(back[key].as_ref(), table.as_ref());
        }
        // Truncation surfaces as a typed error, not a panic.
        assert!(decode_rewrites(&bytes[..bytes.len() - 3], 2).is_err());
        assert!(decode_rewrites(&[0xff; 4], 2).is_err());
        // Out-of-range variables are refused, not deferred to a panic later.
        let err = decode_rewrites(&bytes, 1).unwrap_err();
        assert!(matches!(err, PersistError::Format(ref m) if m.contains("variable")));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let build = |p: f64, price: i64| {
            let mut db = Database::new();
            db.create_table("S", Schema::new(["sid", "price"]));
            let (s, vars) = db.table_and_vars_mut("S").unwrap();
            s.push_independent(vec![1i64.into(), price.into()], p, vars);
            db
        };
        assert_eq!(
            database_fingerprint(&build(0.5, 10)),
            database_fingerprint(&build(0.5, 10))
        );
        // A probability change and a data change both change the fingerprint.
        assert_ne!(
            database_fingerprint(&build(0.5, 10)),
            database_fingerprint(&build(0.6, 10))
        );
        assert_ne!(
            database_fingerprint(&build(0.5, 10)),
            database_fingerprint(&build(0.5, 11))
        );
    }
}
