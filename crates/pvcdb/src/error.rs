//! The single error type of the `pvc-db` public API.
//!
//! Every fallible operation of the query engine — table lookup, query validation,
//! d-tree compilation, distribution extraction — reports failures through [`Error`],
//! so callers match on one enum instead of a zoo of panics.

use crate::query::QueryError;
use pvc_core::{BudgetExceeded, DTreeError, EvalError, PersistError};
use std::fmt;

/// Errors returned by the `pvc-db` engine and its fallible entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A table was looked up by a name the database does not contain.
    UnknownTable {
        /// The requested table name.
        name: String,
        /// The names the database does contain (for diagnostics).
        available: Vec<String>,
    },
    /// The query failed the well-formedness checks of Definition 5 (or referenced an
    /// unknown table/column). Raised by [`crate::Engine::prepare`].
    Validation(QueryError),
    /// Knowledge compilation aborted because the configured d-tree node budget was
    /// exceeded (see [`pvc_core::CompileOptions::node_budget`]).
    Compile(BudgetExceeded),
    /// A compiled d-tree produced values of the wrong sort while computing a
    /// distribution. Indicates a malformed tree; trees produced by the compiler on
    /// validated queries never trigger this.
    Distribution(DTreeError),
    /// A cell value had the wrong type for the requested operation (e.g. aggregating
    /// a string column, or comparing an aggregate against a non-integer column).
    /// Detected at evaluation time, since pvc-table schemas carry no value types.
    TypeMismatch {
        /// The offending column.
        column: String,
        /// What the operation required of it.
        expected: &'static str,
    },
    /// A parallel tuple worker could not be spawned, or terminated without
    /// delivering its results (a panic in a worker thread). Streaming surfaces this
    /// instead of silently truncating the result.
    Worker(String),
    /// Saving or loading a compile-artifact snapshot failed: I/O, a corrupted or
    /// truncated file, a mismatched format version, or a snapshot recorded
    /// against a different database (see [`pvc_core::persist`] and
    /// [`crate::Engine::save_artifacts`] / [`crate::Engine::with_artifacts_from`]).
    Snapshot(PersistError),
    /// A write-ahead-log operation failed: the append of a delta record (the
    /// delta was **not** applied — WAL-before-apply means a mutation that
    /// cannot be made durable is refused atomically), a log rotation, or the
    /// decode of a logged record during replay (see [`crate::wal`]).
    Wal(PersistError),
    /// A [`Delta`](crate::Delta) failed validation (bad arity, out-of-range row,
    /// non-probability, or a `set_probability` on a tuple whose annotation is not
    /// a single presence variable). Validation runs before anything is mutated,
    /// so the database and the caches are untouched when this is returned.
    Delta {
        /// The table the offending operation targeted.
        table: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable { name, available } => {
                write!(
                    f,
                    "table `{name}` not found; available tables: {available:?}"
                )
            }
            Error::Validation(e) => write!(f, "invalid query: {e}"),
            Error::Compile(e) => write!(f, "compilation failed: {e}"),
            Error::Distribution(e) => write!(f, "distribution computation failed: {e}"),
            Error::TypeMismatch { column, expected } => {
                write!(f, "column `{column}` does not hold {expected}")
            }
            Error::Worker(detail) => write!(f, "parallel execution failed: {detail}"),
            Error::Snapshot(e) => write!(f, "artifact snapshot failed: {e}"),
            Error::Wal(e) => write!(f, "write-ahead log operation failed: {e}"),
            Error::Delta { table, message } => {
                write!(f, "invalid delta against table `{table}`: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Validation(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Validation(e)
    }
}

impl From<BudgetExceeded> for Error {
    fn from(e: BudgetExceeded) -> Self {
        Error::Compile(e)
    }
}

impl From<DTreeError> for Error {
    fn from(e: DTreeError) -> Self {
        Error::Distribution(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Budget(b) => Error::Compile(b),
            EvalError::Tree(t) => Error::Distribution(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::UnknownTable {
            name: "missing".into(),
            available: vec!["S".into()],
        };
        assert!(e.to_string().contains("`missing` not found"));
        let e = Error::Validation(QueryError::UnknownColumn("c".into()));
        assert!(e.to_string().contains("invalid query"));
        let e = Error::Compile(BudgetExceeded { nodes_produced: 7 });
        assert!(e.to_string().contains("7 nodes"));
    }

    #[test]
    fn conversions() {
        let e: Error = QueryError::UnionSchemaMismatch.into();
        assert!(matches!(e, Error::Validation(_)));
        let e: Error = BudgetExceeded { nodes_produced: 1 }.into();
        assert!(matches!(e, Error::Compile(_)));
    }
}
