//! The query engine: a fallible, plan-aware, reusable front-end over the two-step
//! evaluation pipeline of the paper (step I: the `⟦·⟧` rewriting of Fig. 4; step II:
//! d-tree compilation and probability computation, §5).
//!
//! The flow is *prepare once, execute many*:
//!
//! 1. [`Engine::new`] takes ownership of a [`Database`] and sets up the engine's
//!    compile-artifact caches;
//! 2. [`Engine::prepare`] validates a query **once** (the well-formedness checks of
//!    Definition 5), computes its output schema, classifies it against the
//!    tractability classes of §6 (`Q_ind` / `Q_hie` / general) and records the chosen
//!    evaluation strategy in an inspectable [`Plan`];
//! 3. [`PreparedQuery::execute`] runs steps I+II under explicit [`EvalOptions`],
//!    reusing the cached rewrite of the same query and the cached confidences /
//!    aggregate distributions of previously compiled expressions.
//!
//! For queries classified `Q_ind`/`Q_hie` over a Boolean tuple-independent database,
//! tuple confidences are computed by a **read-once fast path** that never builds a
//! d-tree: the provenance of hierarchical non-repeating queries factorises into
//! variable-disjoint sums and products, whose probabilities multiply directly. The
//! same gate covers MIN/MAX aggregate distributions over pairwise-independent terms,
//! which are assembled by the Proposition 1 closed form instead of a d-tree. The
//! fast path is self-checking (it bails out to full compilation on any expression
//! that is not of the required shape), so enabling it never changes results — only
//! speed.
//!
//! ## Parallel and streaming execution
//!
//! Step II compiles **one d-tree per result tuple** — an embarrassingly parallel
//! workload. [`EvalOptions::threads`] selects how many worker threads share it
//! (`1` = sequential, `0` = one per core), and
//! [`PreparedQuery::execute_streaming`] returns a [`TupleStream`] that yields
//! [`ProbTuple`]s **in deterministic tuple order as they are computed**, so large
//! results can be consumed incrementally. [`PreparedQuery::execute`] is the
//! materialising wrapper over the same per-tuple pipeline. Parallel output is
//! bit-identical to sequential output: tuples are pure functions of their
//! annotations, workers only share the compile-artifact caches (which can only
//! substitute values the computation would have produced anyway), and the stream
//! re-establishes tuple order before yielding.
//!
//! ## Caching & reuse
//!
//! The engine's compile-artifact caches are built on the hash-consed expression
//! arena of [`pvc_expr::intern`] and the bounded cache of [`pvc_core::cache`],
//! combined into a thread-safe, `Arc`-shared [`SharedArtifacts`] store: every
//! annotation and aggregate expression is interned into a **canonical id** (stable
//! under commutative operand reordering), and the computed distributions are
//! memoised under that id with an LRU entry/byte bound ([`CacheConfig`], see
//! [`Engine::with_cache_config`]). Structurally-equal provenance therefore shares
//! one cache entry even when different queries render it in different operand
//! orders, and [`CacheStats`] reports hits, misses, evictions and *cross-query*
//! hits. One `Arc<SharedArtifacts>` can back several engines
//! ([`Engine::with_shared_artifacts`]) for multi-tenant serving over a shared
//! database. Step-I rewrites are cached per engine under the query's
//! [canonical structural key](Query::structural_key).
//!
//! ## Persistence (warm restarts)
//!
//! All of the above survives a process restart: [`Engine::save_artifacts`]
//! snapshots the arena, the artifact cache and the rewrite cache into one
//! versioned, checksummed file, and [`Engine::with_artifacts_from`] brings a
//! fresh engine up warm from it (fingerprint-gated to the exact database, with
//! interned-id remapping so [`Engine::restore_artifacts`] can also merge into a
//! live store). See `docs/SNAPSHOT_FORMAT.md`.

use crate::database::Database;
use crate::error::Error;
use crate::prob_eval::{ProbTuple, QueryResult};
use crate::query::Query;
use crate::relation::PvcTable;
use crate::schema::Schema;
use crate::tractable::{classify, QueryClass};
use crate::value::Value;
use crate::wal::DeltaWal;
use pvc_algebra::{AggOp, MonoidValue, SemiringKind, SemiringValue};
use pvc_core::obs;
use pvc_core::parallel::{resolve_threads, OrderedReassembly, WorkerPool};
use pvc_core::{
    confidence_of, CacheConfig, CompactionStats, CompileOptions, Compiler, SharedArtifacts,
};
use pvc_expr::{SemimoduleExpr, SemiringExpr, VarSet, VarTable};
use pvc_prob::{Dist, MonoidDist, SemiringDist};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Options controlling one execution of a prepared query: how expressions are
/// compiled, whether the §6 tractable fast path may be used, how many worker
/// threads share the per-tuple work, and how much of the result is materialised.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Options forwarded to the d-tree compiler (rule selection, node budget).
    pub compile: CompileOptions,
    /// Allow the read-once fast path for tuple confidences when the plan classified
    /// the query as tractable (`Q_ind`/`Q_hie`). On by default; results are identical
    /// either way.
    pub tractable_fast_path: bool,
    /// Materialise the exact distribution of every aggregation attribute. Disable
    /// (see [`EvalOptions::confidence_only`]) to skip the semimodule compilation when
    /// only tuple confidences are needed.
    pub aggregate_distributions: bool,
    /// Worker threads for step II (per-tuple d-tree compilation): `1` (the default)
    /// runs sequentially in the calling thread, `0` spawns one worker per available
    /// core, any other value spawns exactly that many workers. Results are
    /// **bit-identical** for every setting — tuple order, confidences and aggregate
    /// distributions do not depend on the worker count.
    pub threads: usize,
    /// Collect a per-query [`ExecutionProfile`](obs::ExecutionProfile) on the
    /// returned [`QueryResult`]: a span tree covering the rewrite and the
    /// per-tuple evaluation, with cache outcomes per independent sub-d-tree and
    /// the kernel path taken per tuple. Off by default; results are bit-identical
    /// either way, and the profile's [`shape`](obs::ExecutionProfile::shape) is
    /// deterministic across runs and thread counts (given identical cache state).
    pub profile: bool,
    /// A persistent [`WorkerPool`] to run step II on instead of spawning fresh
    /// threads per execution. When set, parallel executions submit their worker
    /// loops as pool jobs (at most [`WorkerPool::threads`] of them), amortising
    /// thread start-up across every query of a long-lived process — the serving
    /// default (`pvc-serve` sets this together with `threads: 0`). Results remain
    /// bit-identical to the spawning path; `None` (the default) preserves the
    /// per-execution spawn behaviour.
    pub pool: Option<Arc<WorkerPool>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalOptions {
    /// The default options: full compilation rules, fast path enabled, aggregate
    /// distributions materialised, sequential execution.
    pub fn new() -> Self {
        EvalOptions {
            compile: CompileOptions::default(),
            tractable_fast_path: true,
            aggregate_distributions: true,
            threads: 1,
            profile: false,
            pool: None,
        }
    }

    /// Compute tuple confidences only, skipping aggregate-distribution compilation —
    /// the cheapest useful result shape.
    pub fn confidence_only() -> Self {
        EvalOptions {
            aggregate_distributions: false,
            ..Self::new()
        }
    }

    /// Replace the compiler options (e.g. for ablations or to set a node budget).
    pub fn with_compile(mut self, compile: CompileOptions) -> Self {
        self.compile = compile;
        self
    }

    /// Set a d-tree node budget; compilation beyond it returns [`Error::Compile`].
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.compile.node_budget = Some(budget);
        self
    }

    /// Disable the tractable fast path (every confidence goes through a d-tree).
    pub fn without_fast_path(mut self) -> Self {
        self.tractable_fast_path = false;
        self
    }

    /// Set the worker-thread count for step II (`0` = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Run step II on a persistent [`WorkerPool`] instead of spawning threads per
    /// execution (see [`EvalOptions::pool`]).
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Collect a per-query [`ExecutionProfile`](obs::ExecutionProfile) on the
    /// result (see [`EvalOptions::profile`]).
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }
}

/// The evaluation strategy recorded in a [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The query is in `Q_ind` (Definition 8): result tuples are pairwise
    /// independent and confidences are computed by read-once evaluation.
    IndependentFastPath,
    /// The query is in `Q_hie` (Definition 9): hierarchical provenance, compiled
    /// without Shannon expansion (read-once fast path for confidences).
    HierarchicalFastPath,
    /// No syntactic tractability guarantee: full knowledge compilation (which may
    /// still be fast — the classification is conservative).
    GeneralCompilation,
}

impl Strategy {
    /// True for the two strategies backed by the §6 tractability results.
    pub fn is_tractable(self) -> bool {
        !matches!(self, Strategy::GeneralCompilation)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::IndependentFastPath => write!(f, "independent fast path (Q_ind)"),
            Strategy::HierarchicalFastPath => write!(f, "hierarchical fast path (Q_hie)"),
            Strategy::GeneralCompilation => write!(f, "general knowledge compilation"),
        }
    }
}

/// The inspectable plan produced by [`Engine::prepare`]: what the validator and the
/// tractability analysis concluded about a query, before anything is executed.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The syntactic tractability class of §6.
    pub class: QueryClass,
    /// The evaluation strategy the engine will use.
    pub strategy: Strategy,
    /// The validated output schema.
    pub schema: Schema,
    /// Base tables referenced by the query, with multiplicity.
    pub base_tables: Vec<String>,
    /// Whether no base table occurs more than once (precondition of §6).
    pub non_repeating: bool,
    /// Whether every referenced base table is tuple-independent (precondition of §6).
    pub tuple_independent_input: bool,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: {}", self.strategy)?;
        writeln!(f, "  class:  {:?}", self.class)?;
        writeln!(f, "  schema: {}", self.schema)?;
        writeln!(
            f,
            "  tables: {:?} (non-repeating: {}, tuple-independent: {})",
            self.base_tables, self.non_repeating, self.tuple_independent_input
        )
    }
}

/// Sizes and behaviour counters of the engine's compile-artifact caches (see
/// [`Engine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cached step-I rewrites, keyed by the query's canonical structural key.
    pub rewrites: usize,
    /// Approximate (serialized-size) bytes held by the step-I rewrite cache,
    /// bounded by the same [`CacheConfig`] as the artifact caches.
    pub rewrite_bytes: usize,
    /// Cached annotation distributions/confidences, keyed by canonical expression id.
    pub confidences: usize,
    /// Cached aggregate distributions, keyed by canonical semimodule-expression id.
    pub aggregates: usize,
    /// Distinct nodes in the hash-consed expression arena (semiring + semimodule).
    pub interned: usize,
    /// Approximate payload bytes held by the artifact caches.
    pub bytes: usize,
    /// Artifact-cache lookups answered from the cache.
    pub hits: u64,
    /// Artifact-cache lookups that had to compute.
    pub misses: u64,
    /// Hits whose entry was inserted while executing a *different* query — the
    /// cross-query reuse enabled by canonical interning.
    pub cross_query_hits: u64,
    /// Entries evicted by the LRU bounds.
    pub evictions: u64,
    /// Cached compiled d-tree arenas (flattened evaluation artifacts).
    pub arenas: usize,
    /// Arena lookups answered from the cache (each hit skips a full d-tree
    /// compilation; only the arena evaluation runs).
    pub arena_hits: u64,
    /// Arena lookups that had to compile.
    pub arena_misses: u64,
}

/// What one snapshot save or restore moved between the engine and disk (see
/// [`Engine::save_artifacts`] / [`Engine::restore_artifacts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Interned expression nodes (semiring + semimodule) written / replayed.
    pub interned: usize,
    /// Cached distributions (confidences + aggregates) written / inserted.
    pub distributions: usize,
    /// Compiled d-tree arenas written / inserted.
    pub arenas: usize,
    /// Step-I rewrite tables written / installed.
    pub rewrites: usize,
    /// Total snapshot size in bytes.
    pub bytes: usize,
}

/// Where [`Engine::recover_with`] looks for durable state and how it opens
/// the log.
#[derive(Debug, Clone)]
pub struct RecoverOptions {
    /// The snapshot to restore warm from, if one may exist. `None` (or a
    /// missing/invalid file) starts cold and replays the whole log.
    pub snapshot_path: Option<std::path::PathBuf>,
    /// The delta write-ahead log (created if missing).
    pub wal_path: std::path::PathBuf,
    /// Fsync discipline for the re-opened log.
    pub durability: pvc_core::Durability,
    /// Cache bounds for a **cold** start (a restored snapshot carries its own).
    pub cache: CacheConfig,
    /// Tenant tag for records appended after recovery.
    pub tenant: String,
}

impl RecoverOptions {
    /// Options with the given log path, no snapshot, default cache bounds,
    /// [`pvc_core::Durability::Always`] and an empty tenant tag.
    pub fn new(wal_path: impl Into<std::path::PathBuf>) -> Self {
        RecoverOptions {
            snapshot_path: None,
            wal_path: wal_path.into(),
            durability: pvc_core::Durability::Always,
            cache: CacheConfig::default(),
            tenant: String::new(),
        }
    }

    /// Restore from this snapshot when it exists and verifies.
    pub fn with_snapshot(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Set the log's fsync discipline.
    pub fn with_durability(mut self, durability: pvc_core::Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Set the cold-start cache bounds.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Set the tenant tag.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }
}

/// What [`Engine::recover_with`] found and did: whether the snapshot served,
/// what the WAL contributed, and where the durable high-water mark ended up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when the snapshot existed, verified and restored warm.
    pub snapshot_restored: bool,
    /// The typed error (rendered) when a snapshot existed but was refused —
    /// recovery then proceeded **cold-with-replay** instead of failing.
    pub snapshot_error: Option<String>,
    /// Logged deltas re-applied (sequence numbers past the snapshot's
    /// high-water mark).
    pub wal_replayed: usize,
    /// Logged deltas skipped because the snapshot already contained them.
    pub wal_skipped: usize,
    /// Bytes amputated from the log as a torn/corrupt tail.
    pub wal_tail_dropped_bytes: u64,
    /// The durable high-water mark after recovery (next append is `+1`).
    pub high_water: u64,
}

/// A typed batch of mutations against the engine's database, built with
/// [`Delta::insert`] / [`Delta::delete`] / [`Delta::set_probability`] and applied
/// atomically by [`Engine::apply_delta`] — the replacement for the
/// detach-everything [`Engine::database_mut`] escape hatch.
///
/// Row indices refer to the table **as it is when the delta is applied** (before
/// any of the delta's own operations): probability updates run first, then
/// deletes (highest row first, so the indices stay meaningful), then inserts are
/// appended. Validation runs before anything is mutated, so an `Err` from
/// `apply_delta` leaves the database and every cache untouched.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    pub(crate) ops: Vec<DeltaOp>,
}

#[derive(Debug, Clone)]
pub(crate) struct DeltaOp {
    pub(crate) table: String,
    pub(crate) kind: DeltaKind,
}

#[derive(Debug, Clone)]
pub(crate) enum DeltaKind {
    Insert {
        values: Vec<Value>,
        probability: f64,
    },
    Delete {
        row: usize,
    },
    SetProbability {
        row: usize,
        probability: f64,
    },
}

impl Delta {
    /// An empty delta (applying it is a no-op).
    pub fn new() -> Self {
        Delta::default()
    }

    /// Append a tuple-independent insert: a fresh presence variable with
    /// `P[⊤] = probability` annotates `values` (exactly like
    /// [`PvcTable::push_independent`]).
    pub fn insert(
        mut self,
        table: impl Into<String>,
        values: Vec<Value>,
        probability: f64,
    ) -> Self {
        self.ops.push(DeltaOp {
            table: table.into(),
            kind: DeltaKind::Insert {
                values,
                probability,
            },
        });
        self
    }

    /// Delete the tuple at `row` (pre-delta index). The tuple's presence
    /// variable stays registered — interned expressions may still mention it —
    /// but no longer annotates anything.
    pub fn delete(mut self, table: impl Into<String>, row: usize) -> Self {
        self.ops.push(DeltaOp {
            table: table.into(),
            kind: DeltaKind::Delete { row },
        });
        self
    }

    /// Re-weight the tuple at `row` (pre-delta index) to `P[⊤] = probability`.
    /// The tuple's annotation must be a single presence variable (as produced by
    /// [`PvcTable::push_independent`]); anything else is a validation error.
    pub fn set_probability(
        mut self,
        table: impl Into<String>,
        row: usize,
        probability: f64,
    ) -> Self {
        self.ops.push(DeltaOp {
            table: table.into(),
            kind: DeltaKind::SetProbability { row, probability },
        });
        self
    }

    /// True when the delta holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations in the delta.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// What one [`Engine::apply_delta`] changed and — the point of the API — what it
/// managed to **keep**: every cache entry whose variable set (artifacts) or base
/// tables (rewrites) were disjoint from the delta survives verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Tuples inserted.
    pub inserted: usize,
    /// Tuples deleted.
    pub deleted: usize,
    /// Tuples whose presence probability was updated.
    pub reprobed: usize,
    /// Distinct tables the delta touched.
    pub tables_touched: usize,
    /// Size of the touched variable set (`set_probability` targets plus the
    /// variables of deleted tuples; inserts only create fresh variables and
    /// touch nothing).
    pub touched_vars: usize,
    /// Artifact-cache entries (distributions + compiled arenas) evicted because
    /// their variable set intersected the delta.
    pub evicted_artifacts: usize,
    /// Artifact-cache entries kept (disjoint variable sets).
    pub kept_artifacts: usize,
    /// Step-I rewrites evicted because a base table was touched.
    pub evicted_rewrites: usize,
    /// Step-I rewrites kept.
    pub kept_rewrites: usize,
}

/// Cumulative [`Engine::apply_delta`] activity (see [`EngineStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaTotals {
    /// Deltas applied successfully.
    pub applied: u64,
    /// Tuples inserted across all deltas.
    pub inserted: u64,
    /// Tuples deleted across all deltas.
    pub deleted: u64,
    /// Probability updates across all deltas.
    pub reprobed: u64,
    /// Artifact-cache entries evicted by delta invalidation.
    pub evicted_artifacts: u64,
    /// Step-I rewrites evicted by delta invalidation.
    pub evicted_rewrites: u64,
}

/// Cumulative snapshot activity of this engine (see [`EngineStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotTotals {
    /// Snapshot files written by [`Engine::save_artifacts`].
    pub saves: u64,
    /// Snapshots loaded into this engine ([`Engine::with_artifacts_from`] counts
    /// as one restore on the new engine).
    pub restores: u64,
    /// Bytes written across all saves.
    pub bytes_written: u64,
    /// Bytes read across all restores.
    pub bytes_read: u64,
}

/// Every counter the engine keeps, in one struct: cache/arena behaviour, delta
/// activity and snapshot activity (see [`Engine::stats`]). The older
/// [`Engine::cache_stats`] getter remains as a thin delegate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Sizes and hit/miss/eviction counters of the compile-artifact caches.
    pub cache: CacheStats,
    /// Cumulative [`Engine::apply_delta`] counters.
    pub deltas: DeltaTotals,
    /// Cumulative snapshot save/restore counters.
    pub snapshots: SnapshotTotals,
}

/// Interior-mutability counters backing [`EngineStats`] (updated from `&self`
/// methods like [`Engine::save_artifacts`]).
#[derive(Debug, Default)]
struct EngineCounters {
    deltas_applied: std::sync::atomic::AtomicU64,
    delta_inserted: std::sync::atomic::AtomicU64,
    delta_deleted: std::sync::atomic::AtomicU64,
    delta_reprobed: std::sync::atomic::AtomicU64,
    delta_evicted_artifacts: std::sync::atomic::AtomicU64,
    delta_evicted_rewrites: std::sync::atomic::AtomicU64,
    snapshot_saves: std::sync::atomic::AtomicU64,
    snapshot_restores: std::sync::atomic::AtomicU64,
    snapshot_bytes_written: std::sync::atomic::AtomicU64,
    snapshot_bytes_read: std::sync::atomic::AtomicU64,
}

impl EngineCounters {
    fn add(counter: &std::sync::atomic::AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// One step-I rewrite held by the bounded [`RewriteCache`].
#[derive(Debug)]
struct RewriteEntry {
    table: Arc<PvcTable>,
    /// The base tables the rewrite was computed from (the plan's, with
    /// multiplicity collapsed) — the invalidation key for [`Engine::apply_delta`]:
    /// a delta against any of them evicts this entry, a delta against none keeps
    /// it verbatim.
    base_tables: Vec<String>,
    /// Serialized size, the byte measure charged against the cache bound.
    bytes: usize,
    /// Recency stamp for LRU eviction (monotone per cache).
    last_used: u64,
}

/// The step-I rewrite cache, keyed by [`Query::structural_key`] and bounded by
/// the **same** entry/byte [`CacheConfig`] as the artifact caches — a long-lived
/// serving process running an open-ended query mix must not grow it without
/// bound. Eviction is least-recently-used; a `get` refreshes recency.
#[derive(Debug)]
struct RewriteCache {
    entries: BTreeMap<Vec<u8>, RewriteEntry>,
    bytes: usize,
    stamp: u64,
    config: CacheConfig,
}

impl RewriteCache {
    fn new(config: CacheConfig) -> Self {
        RewriteCache {
            entries: BTreeMap::new(),
            bytes: 0,
            stamp: 0,
            config,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    fn get(&mut self, key: &[u8]) -> Option<Arc<PvcTable>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(key).map(|e| {
            e.last_used = stamp;
            Arc::clone(&e.table)
        })
    }

    fn insert(&mut self, key: Vec<u8>, table: Arc<PvcTable>, base_tables: Vec<String>) {
        self.stamp += 1;
        let bytes = crate::snapshot::table_bytes(&table);
        if let Some(old) = self.entries.insert(
            key,
            RewriteEntry {
                table,
                base_tables,
                bytes,
                last_used: self.stamp,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.evict_to_bounds();
    }

    /// Insert only if the key is absent (snapshot restore must not displace live
    /// entries), still charging the bounds.
    fn insert_if_absent(&mut self, key: Vec<u8>, table: Arc<PvcTable>, base_tables: Vec<String>) {
        if !self.entries.contains_key(&key) {
            self.insert(key, table, base_tables);
        }
    }

    /// Drop every entry whose base tables intersect `touched`, keep the rest
    /// verbatim — the step-I half of delta invalidation. Returns
    /// `(evicted, kept)`.
    fn evict_tables(&mut self, touched: &std::collections::BTreeSet<String>) -> (usize, usize) {
        let before = self.entries.len();
        let mut freed = 0usize;
        self.entries.retain(|_, e| {
            let stale = e.base_tables.iter().any(|t| touched.contains(t));
            if stale {
                freed += e.bytes;
            }
            !stale
        });
        self.bytes -= freed;
        (before - self.entries.len(), self.entries.len())
    }

    /// Evict least-recently-used entries until both bounds hold. An entry larger
    /// than `max_bytes` on its own is evicted too — the bound is honoured even
    /// when that means not caching at all.
    fn evict_to_bounds(&mut self) {
        while self.entries.len() > self.config.max_entries || self.bytes > self.config.max_bytes {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.bytes -= evicted.bytes;
            }
        }
    }

    /// A snapshot view for the persistence codec (cheap: clones `Arc`s only).
    fn tables(&self) -> BTreeMap<Vec<u8>, (Arc<PvcTable>, Vec<String>)> {
        self.entries
            .iter()
            .map(|(k, e)| (k.clone(), (Arc::clone(&e.table), e.base_tables.clone())))
            .collect()
    }
}

#[derive(Debug)]
struct Caches {
    /// Step-I rewrites, keyed by [`Query::structural_key`], LRU-bounded. Behind a
    /// `Mutex` (reads refresh recency, so even lookups write); held only for
    /// map operations, never across a rewrite computation.
    rewrites: Mutex<RewriteCache>,
    /// The thread-safe artifact store, shared with every worker thread (and
    /// possibly with other engines, see [`Engine::with_shared_artifacts`]).
    artifacts: Arc<SharedArtifacts>,
}

impl Default for Caches {
    fn default() -> Self {
        Self::with_artifacts(Arc::new(SharedArtifacts::default()))
    }
}

impl Caches {
    fn with_artifacts(artifacts: Arc<SharedArtifacts>) -> Self {
        Caches {
            rewrites: Mutex::new(RewriteCache::new(artifacts.config())),
            artifacts,
        }
    }

    fn with_config(config: CacheConfig) -> Self {
        Self::with_artifacts(Arc::new(SharedArtifacts::new(config)))
    }

    fn rewrites(&self) -> std::sync::MutexGuard<'_, RewriteCache> {
        self.rewrites.lock().expect("rewrite cache lock poisoned")
    }

    /// Drop the rewrites and swap in a **fresh** artifact store (same bounds).
    ///
    /// Detaching — rather than clearing the shared store in place — is what keeps
    /// concurrency sound around database mutation: in-flight [`TupleStream`]
    /// workers hold the *old* store together with the *old* database snapshot
    /// (mutually consistent, harmlessly dropped when the streams finish), and
    /// engines sharing the old store keep artifacts that are still valid for
    /// their own, unmutated databases. Clearing in place would let those workers
    /// repopulate the store with distributions computed from the old variable
    /// table, poisoning post-mutation queries.
    fn detach(&mut self) {
        self.rewrites().clear();
        self.artifacts = Arc::new(SharedArtifacts::new(self.artifacts.config()));
    }
}

/// FNV-1a over a byte string: the stable scope tag used to attribute cache entries
/// to the query that inserted them (for cross-query hit accounting).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The table names on which a saved per-table fingerprint vector disagrees with
/// the live one: differing digests, or present on only one side. Empty iff the
/// vectors agree entry-for-entry.
fn mismatched_tables(saved: &[(String, u64)], live: &[(String, u64)]) -> BTreeSet<String> {
    let saved_map: BTreeMap<&str, u64> = saved.iter().map(|(n, f)| (n.as_str(), *f)).collect();
    let live_map: BTreeMap<&str, u64> = live.iter().map(|(n, f)| (n.as_str(), *f)).collect();
    let mut mismatch = BTreeSet::new();
    for (name, fp) in &saved_map {
        if live_map.get(name) != Some(fp) {
            mismatch.insert(name.to_string());
        }
    }
    for name in live_map.keys() {
        if !saved_map.contains_key(name) {
            mismatch.insert(name.to_string());
        }
    }
    mismatch
}

/// Decide how much of a snapshot is loadable against `db`: `Ok(empty set)` for
/// an exact fingerprint match, `Ok(mismatched tables)` for a usable partial
/// per-table match (at least one live table agrees), `Err` when nothing is
/// salvageable — every table diverged, or the divergence is invisible to the
/// per-table vector (e.g. a different semiring kind).
fn partial_match(
    snapshot: &pvc_core::Snapshot,
    db: &Database,
    fingerprint: u64,
) -> Result<BTreeSet<String>, Error> {
    if snapshot.fingerprint() == fingerprint {
        return Ok(BTreeSet::new());
    }
    let live = crate::snapshot::database_table_fingerprints(db);
    let mismatch = mismatched_tables(snapshot.table_fingerprints(), &live);
    let matched = live.iter().filter(|(n, _)| !mismatch.contains(n)).count();
    if mismatch.is_empty() || matched == 0 {
        // Refuse with the honest fingerprint diagnosis.
        snapshot.verify_fingerprint(fingerprint)?;
    }
    Ok(mismatch)
}

/// The union of the variable sets of the **live** mismatched tables: every
/// variable a snapshot/database divergence can possibly have re-weighted.
/// (Variables referenced by no live table cannot appear in any future query's
/// provenance, so entries over them are unreachable and need no eviction.)
fn mismatch_var_set(db: &Database, mismatch: &BTreeSet<String>) -> VarSet {
    let mut touched = VarSet::new();
    for name in mismatch {
        if let Some(table) = db.table(name) {
            touched = touched.union(&crate::snapshot::table_var_set(table));
        }
    }
    touched
}

/// The query engine: owns a [`Database`] and a cache of compile artifacts, and hands
/// out validated [`PreparedQuery`] values.
#[derive(Debug)]
pub struct Engine {
    db: Arc<Database>,
    caches: Caches,
    counters: EngineCounters,
    /// The attached delta write-ahead log, if any ([`Engine::attach_wal`]).
    wal: Option<DeltaWal>,
    /// High-water mark of the durable state this engine was built from: the
    /// last WAL sequence number already reflected in the database (restored
    /// snapshot hwm, advanced by replay and by logged applies). Atomic so the
    /// `&self` snapshot/restore paths can read and advance it.
    wal_seq: std::sync::atomic::AtomicU64,
    /// Every delta applied since the base database, with its sequence number:
    /// restored from a snapshot's extra section, extended by replay and by
    /// [`Engine::apply_delta`]. Snapshots embed this journal so a restart
    /// handed the base database can re-derive the snapshotted state — without
    /// it, rotating the WAL after a snapshot would discard the only durable
    /// record of those deltas. Cleared by [`Engine::database_mut`] (direct
    /// mutation makes delta provenance meaningless; the fingerprint then
    /// honestly refuses a stale snapshot at recovery).
    journal: Vec<(u64, Delta)>,
}

impl Engine {
    /// Create an engine owning the given database (default cache bounds).
    pub fn new(db: Database) -> Self {
        Engine {
            db: Arc::new(db),
            caches: Caches::default(),
            counters: EngineCounters::default(),
            wal: None,
            wal_seq: std::sync::atomic::AtomicU64::new(0),
            journal: Vec::new(),
        }
    }

    /// Create an engine with explicit compile-artifact cache bounds (entry and byte
    /// LRU limits; see [`CacheConfig`]).
    pub fn with_cache_config(db: Database, config: CacheConfig) -> Self {
        Engine {
            db: Arc::new(db),
            caches: Caches::with_config(config),
            counters: EngineCounters::default(),
            wal: None,
            wal_seq: std::sync::atomic::AtomicU64::new(0),
            journal: Vec::new(),
        }
    }

    /// Create an engine backed by an **existing** artifact store, so several engines
    /// over the same database share one arena and one artifact cache (the
    /// multi-tenant serving setup).
    ///
    /// Correctness contract: cached artifacts are functions of (expression
    /// structure, variable distributions, semiring). Sharing is only sound between
    /// engines whose databases agree on the variable table and semiring — e.g.
    /// clones of one database. [`Engine::database_mut`] **detaches** that engine
    /// from the shared store (it continues with a fresh, private one); the other
    /// sharers keep the old store, whose artifacts remain valid for their own,
    /// unmutated databases.
    pub fn with_shared_artifacts(db: Database, artifacts: Arc<SharedArtifacts>) -> Self {
        Engine {
            db: Arc::new(db),
            caches: Caches::with_artifacts(artifacts),
            counters: EngineCounters::default(),
            wal: None,
            wal_seq: std::sync::atomic::AtomicU64::new(0),
            journal: Vec::new(),
        }
    }

    /// A handle to the engine's thread-safe artifact store, for sharing with other
    /// engines (see [`Engine::with_shared_artifacts`]).
    pub fn shared_artifacts(&self) -> Arc<SharedArtifacts> {
        Arc::clone(&self.caches.artifacts)
    }

    /// The owned database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database. Invalidates every cached compile artifact
    /// of **this engine** by detaching it onto a fresh store, since cached
    /// rewrites and probabilities are only valid against the data and variable
    /// distributions they were computed from.
    ///
    /// In-flight [`TupleStream`]s keep executing against the pre-mutation snapshot
    /// of the database *and* the pre-mutation artifact store (they hold their own
    /// references to both, which stay mutually consistent); engines sharing the
    /// old store via [`Engine::with_shared_artifacts`] likewise keep it, together
    /// with their own unmutated databases.
    ///
    /// Deprecated: this is the detach-*everything* escape hatch. Prefer
    /// [`Engine::apply_delta`], which applies a typed batch of mutations and
    /// keeps every cache entry the delta cannot have invalidated.
    #[deprecated(
        since = "0.2.0",
        note = "use `Engine::apply_delta`, which invalidates selectively instead of detaching everything"
    )]
    pub fn database_mut(&mut self) -> &mut Database {
        self.caches.detach();
        self.journal.clear();
        Arc::make_mut(&mut self.db)
    }

    /// Apply a typed batch of mutations — inserts, deletes, probability updates
    /// (see [`Delta`]) — and invalidate **only** what the delta can have touched:
    ///
    /// * artifact-cache entries (cached distributions and compiled d-tree
    ///   arenas) are evicted iff their interned variable set intersects the
    ///   delta's touched variables (`set_probability` targets and the variables
    ///   of deleted tuples; inserts create only fresh variables and touch
    ///   nothing), via [`SharedArtifacts::evict_touching`];
    /// * step-I rewrites are evicted iff one of their base tables was mutated
    ///   (a rewrite depends on table *content*, so any mutation of a base table
    ///   invalidates it);
    /// * everything else — the overwhelming majority under localized updates —
    ///   is kept verbatim, so a prepared query over untouched tables answers
    ///   with zero recompilations.
    ///
    /// Validation runs first and nothing is mutated on error. Ordering within
    /// one delta: probability updates, then deletes (descending row order), then
    /// inserts; all row indices refer to the pre-delta tables.
    ///
    /// Concurrency contract (as for [`Engine::compact_artifacts`]): when the
    /// artifact store is shared via [`Engine::with_shared_artifacts`], no
    /// execution may be in flight on any sharer while a delta that deletes or
    /// re-weights tuples is applied — a concurrent worker could re-insert a
    /// distribution computed from the pre-delta variable table. Insert-only
    /// deltas are safe under sharing (fresh variables cannot collide).
    /// `pvc-serve` enforces this by gating writes on `in_flight == 0`.
    pub fn apply_delta(&mut self, delta: Delta) -> Result<DeltaStats, Error> {
        if delta.is_empty() {
            return Ok(DeltaStats::default());
        }

        // -- Validate everything against the pre-delta database; build the
        // -- mutation plan. Nothing is mutated until validation has passed.
        fn valid_probability(p: f64) -> bool {
            p.is_finite() && (0.0..=1.0).contains(&p)
        }
        let mut inserts: Vec<(String, Vec<Value>, f64)> = Vec::new();
        let mut deletes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut reprobes: Vec<(pvc_expr::Var, f64)> = Vec::new();
        let mut touched_tables: BTreeSet<String> = BTreeSet::new();
        let mut touched = VarSet::new();
        for op in &delta.ops {
            let table = self.db.table_or_err(&op.table)?;
            touched_tables.insert(op.table.clone());
            let delta_err = |message: String| Error::Delta {
                table: op.table.clone(),
                message,
            };
            match &op.kind {
                DeltaKind::Insert {
                    values,
                    probability,
                } => {
                    if values.len() != table.schema.arity() {
                        return Err(delta_err(format!(
                            "insert arity {} does not match schema arity {}",
                            values.len(),
                            table.schema.arity()
                        )));
                    }
                    if !valid_probability(*probability) {
                        return Err(delta_err(format!(
                            "insert probability {probability} is not in [0, 1]"
                        )));
                    }
                    inserts.push((op.table.clone(), values.clone(), *probability));
                }
                DeltaKind::Delete { row } => {
                    if *row >= table.len() {
                        return Err(delta_err(format!(
                            "delete row {row} out of range (table has {} tuples)",
                            table.len()
                        )));
                    }
                    let rows = deletes.entry(op.table.clone()).or_default();
                    if rows.contains(row) {
                        return Err(delta_err(format!("row {row} deleted twice")));
                    }
                    rows.push(*row);
                    let tuple = &table.tuples[*row];
                    touched = touched.union(&tuple.annotation.vars());
                    for value in &tuple.values {
                        if let Value::Agg(agg) = value {
                            for term in &agg.terms {
                                touched = touched.union(&term.vars());
                            }
                        }
                    }
                }
                DeltaKind::SetProbability { row, probability } => {
                    if *row >= table.len() {
                        return Err(delta_err(format!(
                            "set_probability row {row} out of range (table has {} tuples)",
                            table.len()
                        )));
                    }
                    if !valid_probability(*probability) {
                        return Err(delta_err(format!(
                            "probability {probability} is not in [0, 1]"
                        )));
                    }
                    let var = match &table.tuples[*row].annotation {
                        SemiringExpr::Var(v) => *v,
                        other => {
                            return Err(delta_err(format!(
                                "set_probability requires a single presence variable; \
                                 row {row} is annotated with {other}"
                            )));
                        }
                    };
                    if self.db.vars.kind(var) != SemiringKind::Bool {
                        return Err(delta_err(format!(
                            "set_probability requires a Boolean presence variable; \
                             `{}` is natural-valued",
                            self.db.vars.name(var)
                        )));
                    }
                    reprobes.push((var, *probability));
                    touched.insert(var);
                }
            }
        }

        // -- WAL-before-apply: the validated delta reaches the log (and, under
        // -- `Durability::Always`, stable storage) before any mutation. An
        // -- append failure refuses the whole delta — the database never holds
        // -- state the log does not, so every acknowledged delta is replayable.
        let seq = match self.wal.as_mut() {
            Some(wal) => wal.log(&delta)?,
            // No log attached (plain engines, and replay — which must not
            // re-log): the delta still gets the next sequence number, so the
            // journal and high-water mark stay aligned with any log attached
            // later ([`Engine::attach_wal`] seeds the log from `wal_seq`).
            None => self.wal_seq.load(std::sync::atomic::Ordering::Relaxed) + 1,
        };
        self.wal_seq
            .fetch_max(seq, std::sync::atomic::Ordering::Relaxed);

        // -- Mutate (clone-on-write if the database Arc is shared with streams).
        let stats_reprobed = reprobes.len();
        let mut stats_deleted = 0usize;
        let db = Arc::make_mut(&mut self.db);
        for (var, p) in reprobes {
            db.vars.set_dist(var, pvc_prob::make::bernoulli(p));
        }
        for (name, mut rows) in deletes {
            rows.sort_unstable_by(|a, b| b.cmp(a)); // descending: indices stay valid
            let table = db.table_mut(&name).expect("validated table exists");
            for row in rows {
                table.tuples.remove(row);
                stats_deleted += 1;
            }
        }
        let stats_inserted = inserts.len();
        for (name, values, p) in inserts {
            let (table, vars) = db
                .table_and_vars_mut(&name)
                .expect("validated table exists");
            table.push_independent(values, p, vars);
        }

        // -- Invalidate selectively: artifacts by variable set, rewrites by base
        // -- table. Disjoint entries survive verbatim.
        let eviction = self.caches.artifacts.evict_touching(&touched);
        let (evicted_rewrites, kept_rewrites) =
            self.caches.rewrites().evict_tables(&touched_tables);

        self.journal.push((seq, delta));
        EngineCounters::add(&self.counters.deltas_applied, 1);
        EngineCounters::add(&self.counters.delta_inserted, stats_inserted as u64);
        EngineCounters::add(&self.counters.delta_deleted, stats_deleted as u64);
        EngineCounters::add(&self.counters.delta_reprobed, stats_reprobed as u64);
        EngineCounters::add(
            &self.counters.delta_evicted_artifacts,
            eviction.evicted as u64,
        );
        EngineCounters::add(
            &self.counters.delta_evicted_rewrites,
            evicted_rewrites as u64,
        );
        Ok(DeltaStats {
            inserted: stats_inserted,
            deleted: stats_deleted,
            reprobed: stats_reprobed,
            tables_touched: touched_tables.len(),
            touched_vars: touched.len(),
            evicted_artifacts: eviction.evicted,
            kept_artifacts: eviction.kept,
            evicted_rewrites,
            kept_rewrites,
        })
    }

    /// Attach a delta write-ahead log: every subsequent [`Engine::apply_delta`]
    /// appends the validated delta to `wal` **before** mutating the database
    /// (see [`crate::wal`] for the ordering argument). The log's sequence
    /// counter is advanced to this engine's durable high-water mark first, so
    /// appends never reuse a sequence number an earlier snapshot already
    /// covers.
    pub fn attach_wal(&mut self, mut wal: DeltaWal) {
        wal.set_last_seq(self.wal_seq.load(Ordering::Relaxed));
        self.wal_seq.fetch_max(wal.last_seq(), Ordering::Relaxed);
        self.wal = Some(wal);
    }

    /// Detach and return the write-ahead log (subsequent deltas are no longer
    /// logged).
    pub fn detach_wal(&mut self) -> Option<DeltaWal> {
        self.wal.take()
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&DeltaWal> {
        self.wal.as_ref()
    }

    /// Mutable access to the attached log (e.g. to [`DeltaWal::sync`] a batch
    /// or [`DeltaWal::rotate`] it after an external snapshot).
    pub fn wal_mut(&mut self) -> Option<&mut DeltaWal> {
        self.wal.as_mut()
    }

    /// The last WAL sequence number reflected in this engine's database: the
    /// restored snapshot's high-water mark, advanced by replay and by every
    /// logged [`Engine::apply_delta`]. Embedded in snapshots so a restart
    /// knows where replay starts.
    pub fn wal_high_water(&self) -> u64 {
        self.wal_seq.load(Ordering::Relaxed)
    }

    /// Flush pending WAL appends to stable storage — a no-op unless the
    /// attached log runs under [`pvc_core::persist::wal::Durability::Batch`]
    /// with unsynced appends (the serve layer calls this once per mutation
    /// batch).
    pub fn sync_wal(&mut self) -> Result<(), Error> {
        match self.wal.as_mut() {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Crash recovery: rebuild a warm engine from the newest snapshot (when
    /// one exists and is valid), replay every delta in the WAL past the
    /// snapshot's high-water mark, and attach the log for future writes.
    ///
    /// Degradation is graceful at every stage, never silent:
    /// * a missing snapshot starts cold (all WAL records replay);
    /// * a torn/corrupt/mismatched snapshot also starts **cold-with-replay**,
    ///   and the typed error is reported in [`RecoveryReport::snapshot_error`];
    /// * a torn WAL tail is truncated by the open (counted in
    ///   [`RecoveryReport::wal_tail_dropped_bytes`]);
    /// * a logged delta that fails to re-apply is a hard [`Error`] — that is
    ///   acknowledged data the engine cannot reconstruct, and serving a
    ///   silently stale database would be wrong in exactly the way this
    ///   subsystem exists to prevent.
    pub fn recover_with(
        storage: Arc<dyn pvc_core::Storage>,
        db: Database,
        options: &RecoverOptions,
    ) -> Result<(Engine, RecoveryReport), Error> {
        let mut report = RecoveryReport::default();
        let mut engine = match options.snapshot_path.as_deref() {
            Some(path) if storage.exists(path) => {
                match Engine::with_artifacts_from_storage(db.clone(), path, storage.as_ref()) {
                    Ok(engine) => {
                        report.snapshot_restored = true;
                        engine
                    }
                    Err(e) => {
                        report.snapshot_error = Some(e.to_string());
                        Engine::with_cache_config(db, options.cache)
                    }
                }
            }
            _ => Engine::with_cache_config(db, options.cache),
        };
        let hwm = engine.wal_high_water();
        let (mut wal, logged) = DeltaWal::open(
            storage,
            &options.wal_path,
            options.tenant.clone(),
            options.durability,
        )?;
        report.wal_tail_dropped_bytes = wal.recovered_tail_dropped_bytes();
        for entry in logged {
            if entry.seq <= hwm {
                report.wal_skipped += 1;
                continue;
            }
            // No WAL is attached yet, so replay applies without re-logging;
            // pre-advancing the counter journals the delta under its original
            // sequence number.
            engine.wal_seq.fetch_max(entry.seq - 1, Ordering::Relaxed);
            engine.apply_delta(entry.delta)?;
            report.wal_replayed += 1;
        }
        report.high_water = engine.wal_high_water().max(wal.last_seq()).max(hwm);
        wal.set_last_seq(report.high_water);
        engine.attach_wal(wal);
        Ok((engine, report))
    }

    /// Consume the engine, returning the database.
    pub fn into_database(self) -> Database {
        Arc::try_unwrap(self.db).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Compact this engine's artifact store: rebuild the hash-consed expression
    /// arena from the **live** cache entries only, retiring every interned node
    /// that no longer backs a cached distribution or compiled d-tree arena (see
    /// [`SharedArtifacts::compact`]). This is what keeps a long-lived serving
    /// process bounded: the LRU bounds cap the *cache* maps, compaction caps the
    /// *arena* they interned into.
    ///
    /// Returns before/after sizes and the new compaction generation.
    ///
    /// Concurrency contract (inherited from [`SharedArtifacts::compact`]): no
    /// execution may be in flight on this store — interned ids are remapped by
    /// the rebuild. `pvc-serve` calls this strictly between batches; with plain
    /// engines, do not call it while a [`TupleStream`] is live.
    pub fn compact_artifacts(&self) -> CompactionStats {
        self.caches.artifacts.compact()
    }

    /// Every counter the engine keeps, in one struct: cache/arena sizes and
    /// behaviour, cumulative delta activity and cumulative snapshot activity.
    /// This is the consolidated retrieval surface; [`Engine::cache_stats`]
    /// remains as a thin delegate to the `cache` section.
    pub fn stats(&self) -> EngineStats {
        let artifacts = &self.caches.artifacts;
        let counters = artifacts.counters();
        let (rewrites, rewrite_bytes) = {
            let rw = self.caches.rewrites();
            (rw.len(), rw.bytes())
        };
        let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        EngineStats {
            cache: CacheStats {
                rewrites,
                rewrite_bytes,
                confidences: artifacts.semiring_entries(),
                aggregates: artifacts.aggregate_entries(),
                interned: artifacts.interned_nodes(),
                bytes: artifacts.bytes(),
                hits: counters.hits,
                misses: counters.misses,
                cross_query_hits: counters.cross_scope_hits,
                evictions: counters.evictions,
                arenas: artifacts.arena_entries(),
                arena_hits: counters.arena_hits,
                arena_misses: counters.arena_misses,
            },
            deltas: DeltaTotals {
                applied: load(&self.counters.deltas_applied),
                inserted: load(&self.counters.delta_inserted),
                deleted: load(&self.counters.delta_deleted),
                reprobed: load(&self.counters.delta_reprobed),
                evicted_artifacts: load(&self.counters.delta_evicted_artifacts),
                evicted_rewrites: load(&self.counters.delta_evicted_rewrites),
            },
            snapshots: SnapshotTotals {
                saves: load(&self.counters.snapshot_saves),
                restores: load(&self.counters.snapshot_restores),
                bytes_written: load(&self.counters.snapshot_bytes_written),
                bytes_read: load(&self.counters.snapshot_bytes_read),
            },
        }
    }

    /// Current sizes and behaviour counters of the compile-artifact caches
    /// (the `cache` section of [`Engine::stats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.stats().cache
    }

    /// Persist every compile artifact of this engine — the hash-consed
    /// expression arena, the cached distributions and compiled d-tree arenas
    /// (respecting the LRU bounds: only what is cached is written), and the
    /// step-I rewrite cache — into a versioned, checksummed snapshot file, so a
    /// restarted process can come back **warm**
    /// (see [`Engine::with_artifacts_from`]).
    ///
    /// The snapshot embeds a fingerprint of the database (semiring, variable
    /// distributions, table contents); loading it against any other database is
    /// refused with [`Error::Snapshot`]. The format is documented in
    /// `docs/SNAPSHOT_FORMAT.md`.
    ///
    /// ```
    /// use pvc_db::{Database, Engine, EvalOptions, Query, Schema};
    ///
    /// // Deterministic loading code: both "processes" build the same database.
    /// fn build_db() -> Database {
    ///     let mut db = Database::new();
    ///     db.create_table("offers", Schema::new(["shop", "price"]));
    ///     let (offers, vars) = db.table_and_vars_mut("offers").unwrap();
    ///     offers.push_independent(vec!["M&S".into(), 10i64.into()], 0.9, vars);
    ///     offers.push_independent(vec!["Gap".into(), 12i64.into()], 0.8, vars);
    ///     db
    /// }
    ///
    /// let path = std::env::temp_dir().join(format!("pvc-doc-{}.snap", std::process::id()));
    /// let query = Query::table("offers").project(["shop"]);
    ///
    /// // First process: serve traffic, then snapshot the warmed-up artifacts.
    /// let engine = Engine::new(build_db());
    /// let cold = engine.prepare(&query)?.execute(&EvalOptions::default())?;
    /// let stats = engine.save_artifacts(&path)?;
    /// assert!(stats.rewrites >= 1 && stats.bytes > 0);
    ///
    /// // "Restart": a fresh engine starts warm from the snapshot.
    /// let restarted = Engine::with_artifacts_from(build_db(), &path)?;
    /// let warm = restarted.prepare(&query)?.execute(&EvalOptions::default())?;
    /// assert_eq!(cold.tuples.len(), warm.tuples.len());
    /// for (a, b) in cold.tuples.iter().zip(&warm.tuples) {
    ///     assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    /// }
    /// assert_eq!(restarted.cache_stats().misses, 0); // served entirely from the snapshot
    /// std::fs::remove_file(&path).ok();
    /// # Ok::<(), pvc_db::Error>(())
    /// ```
    pub fn save_artifacts(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SnapshotStats, Error> {
        self.save_artifacts_with(&pvc_core::FsStorage, path.as_ref())
    }

    /// [`Engine::save_artifacts`] through a pluggable [`pvc_core::Storage`] —
    /// the variant the serve runtime uses so snapshot writes are exercisable
    /// under fault injection. The snapshot records the engine's WAL high-water
    /// mark in its extra section; after the write succeeds the caller may
    /// [`DeltaWal::rotate`] the log up to that mark.
    pub fn save_artifacts_with(
        &self,
        storage: &dyn pvc_core::Storage,
        path: &std::path::Path,
    ) -> Result<SnapshotStats, Error> {
        let fingerprint = crate::snapshot::database_fingerprint(&self.db);
        let table_fps = crate::snapshot::database_table_fingerprints(&self.db);
        let tables = self.caches.rewrites().tables();
        let extra = crate::snapshot::encode_extra(self.wal_high_water(), &self.journal, &tables);
        let n_rewrites = tables.len();
        drop(tables);
        // The counts come from the same locked view as the bytes, so they are
        // exact even when another engine shares (and keeps filling) the store.
        let (bytes, counts) =
            self.caches
                .artifacts
                .snapshot_bytes(fingerprint, &table_fps, Some(&extra));
        pvc_core::persist::write_snapshot_file_with(storage, path, &bytes)?;
        EngineCounters::add(&self.counters.snapshot_saves, 1);
        EngineCounters::add(&self.counters.snapshot_bytes_written, bytes.len() as u64);
        Ok(SnapshotStats {
            interned: counts.interned_exprs + counts.interned_aggs,
            distributions: counts.distributions,
            arenas: counts.arenas,
            rewrites: n_rewrites,
            bytes: bytes.len(),
        })
    }

    /// Create an engine that starts **warm from disk**: a fresh artifact store
    /// (with the snapshot's cache bounds) and rewrite cache are rebuilt from a
    /// snapshot previously written by [`Engine::save_artifacts`].
    ///
    /// `db` must be the same database the snapshot was recorded against
    /// (typically rebuilt by the same deterministic loading code); a fingerprint
    /// mismatch, corrupted/truncated file or unsupported format version is
    /// refused with a typed [`Error::Snapshot`] — never a panic, and never a
    /// silently-wrong warm cache. Results are bit-identical to a cold engine;
    /// only the first-query latency changes. See [`Engine::save_artifacts`] for
    /// a runnable end-to-end example and [`Engine::restore_artifacts`] for
    /// merging a snapshot into an already-running engine.
    /// **Delta survival**: when the database diverges from the snapshot on only
    /// *some* tables (the typical post-[`Engine::apply_delta`] restart), the
    /// snapshot's per-table fingerprint vector pinpoints them, and the load
    /// proceeds **partially**: artifacts over the mismatched tables' variables
    /// and rewrites over mismatched base tables are dropped, everything else is
    /// restored warm. Only when *no* table matches (a genuinely different
    /// database) is the snapshot refused outright.
    pub fn with_artifacts_from(
        db: Database,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Engine, Error> {
        Engine::with_artifacts_from_storage(db, path.as_ref(), &pvc_core::FsStorage)
    }

    /// [`Engine::with_artifacts_from`] through a pluggable
    /// [`pvc_core::Storage`]. Also restores the snapshot's WAL high-water mark
    /// (see [`Engine::wal_high_water`]), which [`Engine::recover_with`] uses to
    /// decide where log replay starts.
    pub fn with_artifacts_from_storage(
        db: Database,
        path: &std::path::Path,
        storage: &dyn pvc_core::Storage,
    ) -> Result<Engine, Error> {
        let bytes = pvc_core::persist::read_snapshot_file_with(storage, path)?;
        let snapshot = pvc_core::persist::decode_snapshot(&bytes)?;
        let (hwm, journal, rewrite_bytes) = match snapshot.extra() {
            Some(extra) => {
                let (hwm, journal_bytes, rewrite_bytes) = crate::snapshot::decode_extra(extra)?;
                let journal = crate::snapshot::decode_journal(journal_bytes)?;
                (hwm, journal, Some(rewrite_bytes))
            }
            None => (0, Vec::new(), None),
        };
        // A snapshot taken after deltas fingerprints the *mutated* database,
        // while crash recovery is handed the deterministically-reloaded base
        // one (tenant rows are never persisted in artifact snapshots). When
        // the fingerprints disagree and the snapshot carries a journal,
        // re-derive the snapshotted state by replaying the journal onto the
        // base — this, not the (possibly rotated) WAL, is the durable record
        // of those acknowledged deltas. A database that already matches
        // (live restart with the mutated state in hand) skips the replay:
        // applying the journal twice would corrupt it.
        let direct = crate::snapshot::database_fingerprint(&db);
        let db = if journal.is_empty() || direct == snapshot.fingerprint() {
            db
        } else {
            let mut replayer = Engine::new(db);
            for (_, delta) in &journal {
                replayer.apply_delta(delta.clone()).map_err(|e| {
                    Error::Snapshot(pvc_core::PersistError::Format(format!(
                        "snapshot delta journal does not re-apply to the provided database \
                         (is it the original base?): {e}"
                    )))
                })?;
            }
            replayer.into_database()
        };
        // Fingerprint next (the honest-mismatch diagnosis), then the variable
        // bound (defence in depth against crafted files — the checksum is
        // integrity, not authentication).
        let fingerprint = crate::snapshot::database_fingerprint(&db);
        let mismatch = partial_match(&snapshot, &db, fingerprint)?;
        snapshot.verify_variables(db.vars.len())?;
        let (store, _) = SharedArtifacts::from_snapshot(&snapshot, snapshot.fingerprint())?;
        if !mismatch.is_empty() {
            store.evict_touching(&mismatch_var_set(&db, &mismatch));
        }
        let mut engine = Engine::with_shared_artifacts(db, Arc::new(store));
        engine.wal_seq.fetch_max(hwm, Ordering::Relaxed);
        engine.journal = journal;
        if let Some(rewrite_bytes) = rewrite_bytes {
            let rewrites = crate::snapshot::decode_rewrites(rewrite_bytes, engine.db.vars.len())?;
            let mut live = engine.caches.rewrites();
            for (key, (table, bases)) in rewrites {
                if bases.iter().any(|b| mismatch.contains(b)) {
                    continue; // rewrites depend on base-table content
                }
                live.insert(key, table, bases);
            }
            drop(live);
        }
        EngineCounters::add(&engine.counters.snapshot_restores, 1);
        EngineCounters::add(&engine.counters.snapshot_bytes_read, bytes.len() as u64);
        Ok(engine)
    }

    /// Merge a snapshot into this engine's **live** store: interned ids are
    /// remapped onto the live arena (shared structure deduplicates), cache
    /// entries are inserted under this engine's LRU bounds, and restored
    /// rewrites fill gaps without displacing live entries. The snapshot's
    /// fingerprint must match this engine's database.
    ///
    /// This is the multi-tenant / already-running variant of
    /// [`Engine::with_artifacts_from`]; every engine sharing this store (via
    /// [`Engine::with_shared_artifacts`]) sees the restored artifacts.
    /// Like [`Engine::with_artifacts_from`], a **partial** per-table fingerprint
    /// match is honoured: entries over diverged tables are skipped/evicted, the
    /// rest merges in warm.
    pub fn restore_artifacts(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<SnapshotStats, Error> {
        let bytes = pvc_core::persist::read_snapshot_file(path)?;
        let snapshot = pvc_core::persist::decode_snapshot(&bytes)?;
        let fingerprint = crate::snapshot::database_fingerprint(&self.db);
        let mismatch = partial_match(&snapshot, &self.db, fingerprint)?;
        snapshot.verify_variables(self.db.vars.len())?;
        let stats = self
            .caches
            .artifacts
            .restore_snapshot(&snapshot, snapshot.fingerprint())?;
        if !mismatch.is_empty() {
            self.caches
                .artifacts
                .evict_touching(&mismatch_var_set(&self.db, &mismatch));
        }
        let mut rewrites = 0usize;
        if let Some(extra) = snapshot.extra() {
            // The delta journal is recovery-only (see
            // [`Engine::with_artifacts_from_storage`]): a live merge cannot
            // re-apply deltas to a database that is already serving. The
            // high-water mark is honoured only on an exact match — under a
            // partial match this engine's database provably does not contain
            // everything the snapshot's mark covers.
            let (hwm, _journal_bytes, rewrite_bytes) = crate::snapshot::decode_extra(extra)?;
            if mismatch.is_empty() {
                self.wal_seq.fetch_max(hwm, Ordering::Relaxed);
            }
            let restored = crate::snapshot::decode_rewrites(rewrite_bytes, self.db.vars.len())?;
            let mut live = self.caches.rewrites();
            for (key, (table, bases)) in restored {
                if bases.iter().any(|b| mismatch.contains(b)) {
                    continue;
                }
                rewrites += 1;
                live.insert_if_absent(key, table, bases);
            }
        }
        EngineCounters::add(&self.counters.snapshot_restores, 1);
        EngineCounters::add(&self.counters.snapshot_bytes_read, bytes.len() as u64);
        Ok(SnapshotStats {
            interned: stats.interned_exprs + stats.interned_aggs,
            distributions: stats.distributions,
            arenas: stats.arenas,
            rewrites,
            bytes: bytes.len(),
        })
    }

    /// Validate a query, compute its output schema, classify it against the §6
    /// tractability classes, and record the chosen strategy in a [`Plan`].
    ///
    /// Returns [`Error::Validation`] for every query that violates Definition 5 or
    /// references unknown tables/columns — nothing in the prepared pipeline panics on
    /// malformed input.
    ///
    /// ```
    /// use pvc_db::{Database, Engine, EvalOptions, Query, Schema, Strategy};
    ///
    /// let mut db = Database::new();
    /// db.create_table("S", Schema::new(["sid", "shop"]));
    /// let (s, vars) = db.table_and_vars_mut("S")?;
    /// s.push_independent(vec![1i64.into(), "M&S".into()], 0.4, vars);
    ///
    /// let engine = Engine::new(db);
    /// let prepared = engine.prepare(&Query::table("S").project(["shop"]))?;
    /// // A projection of a tuple-independent table is in Q_ind (Definition 8).
    /// assert_eq!(prepared.plan().strategy, Strategy::IndependentFastPath);
    /// assert_eq!(prepared.schema().names(), vec!["shop"]);
    /// let result = prepared.execute(&EvalOptions::default())?;
    /// assert!((result.tuples[0].confidence - 0.4).abs() < 1e-12);
    /// // Unknown tables surface as typed validation errors, not panics.
    /// assert!(engine.prepare(&Query::table("missing")).is_err());
    /// # Ok::<(), pvc_db::Error>(())
    /// ```
    pub fn prepare(&self, query: &Query) -> Result<PreparedQuery<'_>, Error> {
        let _span = obs::span("prepare");
        let plan = plan_query(&self.db, query)?;
        Ok(PreparedQuery {
            engine: self,
            query: query.clone(),
            plan,
        })
    }

    /// One-shot evaluation without an engine (no caching): validate, rewrite,
    /// compute probabilities. This is what the deprecated free-function shims call;
    /// prefer [`Engine::prepare`] for anything executed more than once.
    ///
    /// [`EvalOptions::threads`] is honoured; parallel workers need owning handles,
    /// so the database is cloned once — but only when the execution actually runs
    /// on more than one worker (a request for `threads = 0` on a single-core
    /// machine, or a result too small to share, stays clone-free).
    pub fn execute_once(
        db: &Database,
        query: &Query,
        options: &EvalOptions,
    ) -> Result<QueryResult, Error> {
        let plan = plan_query(db, query)?;
        let query_span = obs::span("query");
        let (table, scope, rewrite_time) = {
            let _s = obs::span("rewrite");
            step_one(db, query, &plan, None)?
        };
        if let Some(s) = &query_span {
            s.attr("structural_key", format!("{scope:016x}"));
        }
        let try_fast = allow_fast_path(db, &plan, options);
        let threads = resolve_threads(options.threads, table.tuples.len());
        if threads <= 1 {
            run_sequential(db, &table, options, try_fast, None, scope, rewrite_time)
        } else {
            run_parallel(
                Arc::new(db.clone()),
                table,
                options,
                try_fast,
                None,
                scope,
                rewrite_time,
                threads,
            )
        }
    }
}

/// A query that has been validated and planned by [`Engine::prepare`], ready for
/// (repeated) execution.
#[derive(Debug)]
pub struct PreparedQuery<'e> {
    engine: &'e Engine,
    query: Query,
    plan: Plan,
}

impl PreparedQuery<'_> {
    /// The plan recorded at preparation time.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The validated output schema.
    pub fn schema(&self) -> &Schema {
        &self.plan.schema
    }

    /// The prepared query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Run steps I+II under the given options, materialising the whole result.
    /// Step I is cached across executions of the same query on this engine; step II
    /// reuses previously compiled confidences and aggregate distributions, and runs
    /// on [`EvalOptions::threads`] workers. Implemented over the same per-tuple
    /// pipeline as [`execute_streaming`](Self::execute_streaming), so results are
    /// identical for every thread count.
    pub fn execute(&self, options: &EvalOptions) -> Result<QueryResult, Error> {
        execute_pipeline(
            &self.engine.db,
            &self.query,
            &self.plan,
            options,
            Some(&self.engine.caches),
        )
    }

    /// Run steps I+II, returning a [`TupleStream`] that yields result tuples **in
    /// deterministic tuple order, as they are computed** by background workers.
    ///
    /// Step I (the rewriting) runs synchronously before this returns — it is
    /// inherently sequential and produces the tuple list the workers share. Step II
    /// is then computed by [`EvalOptions::threads`] worker threads (at least one:
    /// even `threads = 1` computes in the background, overlapping production with
    /// consumption). Dropping the stream cancels the remaining work and joins the
    /// workers; consuming it fully yields exactly the tuples
    /// [`execute`](Self::execute) would have returned.
    ///
    /// ```
    /// use pvc_db::{Database, Engine, EvalOptions, Query, Schema};
    ///
    /// let mut db = Database::new();
    /// db.create_table("S", Schema::new(["sid"]));
    /// let (s, vars) = db.table_and_vars_mut("S")?;
    /// for i in 0..10 {
    ///     s.push_independent(vec![(i as i64).into()], 0.5, vars);
    /// }
    ///
    /// let engine = Engine::new(db);
    /// let prepared = engine.prepare(&Query::table("S"))?;
    /// let stream = prepared.execute_streaming(&EvalOptions::default().with_threads(2))?;
    /// assert_eq!(stream.total_tuples(), 10);
    /// // Tuples arrive in deterministic order as workers finish them.
    /// let confidences: Vec<f64> = stream
    ///     .map(|tuple| tuple.map(|t| t.confidence))
    ///     .collect::<Result<_, _>>()?;
    /// assert_eq!(confidences.len(), 10);
    /// # Ok::<(), pvc_db::Error>(())
    /// ```
    pub fn execute_streaming(&self, options: &EvalOptions) -> Result<TupleStream, Error> {
        let engine = self.engine;
        let query_span = obs::span("query");
        let (table, scope, rewrite_time) = {
            let _s = obs::span("rewrite");
            step_one(&engine.db, &self.query, &self.plan, Some(&engine.caches))?
        };
        if let Some(s) = &query_span {
            s.attr("structural_key", format!("{scope:016x}"));
        }
        // Workers run per-tuple spans; the coordinator-level evaluate span is
        // counted here once (the stream outlives this call).
        let _evaluate_span = obs::span("evaluate");
        let artifacts = artifact_handle(options, Some(&engine.caches));
        let try_fast = allow_fast_path(&engine.db, &self.plan, options);
        let threads = resolve_threads(options.threads, table.tuples.len());
        spawn_stream(
            Arc::clone(&engine.db),
            table,
            options.clone(),
            try_fast,
            artifacts,
            scope,
            rewrite_time,
            threads,
        )
    }
}

/// Validate + classify: the planning half of `prepare`.
fn plan_query(db: &Database, query: &Query) -> Result<Plan, Error> {
    let schema = query.output_schema(db).map_err(Error::Validation)?;
    let class = classify(query, db);
    let tuple_independent_input = query.base_tables().iter().all(|name| {
        db.table(name)
            .map(PvcTable::is_tuple_independent)
            .unwrap_or(false)
    });
    let strategy = match class {
        QueryClass::Qind => Strategy::IndependentFastPath,
        QueryClass::Qhie => Strategy::HierarchicalFastPath,
        QueryClass::General => Strategy::GeneralCompilation,
    };
    Ok(Plan {
        class,
        strategy,
        schema,
        base_tables: query.base_tables().iter().map(|s| s.to_string()).collect(),
        non_repeating: query.is_non_repeating(),
        tuple_independent_input,
    })
}

/// Whether this execution may use the §6 read-once fast paths.
fn allow_fast_path(db: &Database, plan: &Plan, options: &EvalOptions) -> bool {
    options.tractable_fast_path && plan.strategy.is_tractable() && db.kind == SemiringKind::Bool
}

/// The artifact store this execution should use: `None` when a node budget makes
/// compilation observably fallible (cached successes computed without — or with a
/// different — budget must not mask the error), the engine's shared store
/// otherwise. Every other option only changes *how* the exact result is computed,
/// never the result.
fn artifact_handle(options: &EvalOptions, caches: Option<&Caches>) -> Option<Arc<SharedArtifacts>> {
    if options.compile.node_budget.is_some() {
        None
    } else {
        caches.map(|c| Arc::clone(&c.artifacts))
    }
}

/// Step I: the rewriting `⟦·⟧`, cached per canonical query key. The query was
/// already validated by `prepare`, so the cold path skips re-validation and stamps
/// the plan's schema directly. Returns the result table, the scope tag attributing
/// artifact-cache inserts to this query, and the elapsed time.
fn step_one(
    db: &Database,
    query: &Query,
    plan: &Plan,
    caches: Option<&Caches>,
) -> Result<(Arc<PvcTable>, u64, Duration), Error> {
    let start = Instant::now();
    let key = query.structural_key();
    let scope = fnv64(&key);
    let cached = caches.and_then(|c| c.rewrites().get(&key));
    let table = match cached {
        Some(table) => table,
        None => {
            let mut table = crate::exec::rewrite_planned(db, query)?;
            table.schema = plan.schema.clone();
            table.name = "result".to_string();
            let table = Arc::new(table);
            if let Some(c) = caches {
                c.rewrites()
                    .insert(key, Arc::clone(&table), plan.base_tables.clone());
            }
            table
        }
    };
    Ok((table, scope, start.elapsed()))
}

/// Per-execution fast-path counters, shared across workers.
#[derive(Debug, Default)]
struct TupleCounters {
    fast_path_hits: AtomicUsize,
    agg_fast_path_hits: AtomicUsize,
}

/// A per-tuple profile fragment: the tuple's span tree plus the number of spans
/// its bounded ring dropped.
type TupleProfile = (obs::ProfileNode, u64);

/// One streamed worker result: tuple index, outcome, and its profile fragment.
type StreamedTuple = (usize, Result<ProbTuple, Error>, Option<TupleProfile>);

/// [`tuple_result`] wrapped in per-tuple observability: a `tuple` span (counted
/// in global tracing mode), and — in profile mode — a thread-local [`obs::Trace`]
/// capturing the tuple's full span tree, with the kernel dispatch counts
/// (dense/sparse) attributed deterministically via `pvc_prob`'s thread-local
/// capture. Per-tuple work is single-threaded regardless of `threads`, so the
/// resulting tree does not depend on the worker count.
#[allow(clippy::too_many_arguments)]
fn tuple_result_traced(
    db: &Database,
    table: &PvcTable,
    index: usize,
    options: &EvalOptions,
    try_fast: bool,
    artifacts: Option<&SharedArtifacts>,
    scope: u64,
    counters: &TupleCounters,
) -> Result<(ProbTuple, Option<TupleProfile>), Error> {
    if !options.profile {
        let _span = obs::span("tuple");
        let tuple = tuple_result(
            db, table, index, options, try_fast, artifacts, scope, counters,
        )?;
        return Ok((tuple, None));
    }
    let trace = Rc::new(obs::Trace::new(obs::DEFAULT_TRACE_CAPACITY));
    let result = obs::with_trace(Rc::clone(&trace), || {
        let span = obs::span("tuple");
        let prior = pvc_prob::begin_tuple_capture();
        let result = tuple_result(
            db, table, index, options, try_fast, artifacts, scope, counters,
        );
        let (dense, sparse) = pvc_prob::take_tuple_capture(prior);
        if let Some(s) = &span {
            s.attr("index", index.to_string());
            s.attr("kernel_dense", dense.to_string());
            s.attr("kernel_sparse", sparse.to_string());
        }
        result
    });
    let tuple = result?;
    let (mut roots, dropped) = obs::profile_nodes(&trace);
    let node = if roots.len() == 1 {
        roots.pop().expect("one root")
    } else {
        // Ring overflow orphaned some spans: collect them under a synthetic node.
        let mut node = obs::ProfileNode::new("tuple");
        node.children = roots;
        node
    };
    Ok((tuple, Some((node, dropped))))
}

/// Compute one result tuple: its confidence and (when requested) the distribution
/// of every aggregation attribute. This is the per-tuple unit of work shared by the
/// sequential path and every parallel worker — a pure function of the tuple, so
/// output does not depend on which thread runs it.
#[allow(clippy::too_many_arguments)]
fn tuple_result(
    db: &Database,
    table: &PvcTable,
    index: usize,
    options: &EvalOptions,
    try_fast: bool,
    artifacts: Option<&SharedArtifacts>,
    scope: u64,
    counters: &TupleCounters,
) -> Result<ProbTuple, Error> {
    let tuple = &table.tuples[index];
    let confidence = tuple_confidence(
        db,
        &tuple.annotation,
        options,
        try_fast,
        artifacts,
        scope,
        counters,
    )?;
    let mut aggregate_distributions = BTreeMap::new();
    if options.aggregate_distributions {
        for (column, value) in table.schema.columns().iter().zip(&tuple.values) {
            if let Value::Agg(expr) = value {
                let dist = aggregate_distribution(
                    db, expr, options, try_fast, artifacts, scope, counters,
                )?;
                aggregate_distributions.insert(column.name.clone(), dist);
            }
        }
    }
    Ok(ProbTuple {
        values: tuple.values.clone(),
        confidence,
        aggregate_distributions,
    })
}

/// Assemble the final [`QueryResult`] from drained tuples, timings and final
/// fast-path counts.
fn assemble_result(
    table: &PvcTable,
    tuples: Vec<ProbTuple>,
    rewrite_time: Duration,
    probability_time: Duration,
    fast_path_hits: usize,
    agg_fast_path_hits: usize,
    threads: usize,
) -> QueryResult {
    QueryResult {
        columns: table
            .schema
            .names()
            .into_iter()
            .map(str::to_string)
            .collect(),
        tuples,
        rewrite_time,
        probability_time,
        fast_path_hits,
        agg_fast_path_hits,
        threads,
        profile: None,
    }
}

/// Assemble the [`obs::ExecutionProfile`] of one materialising execution from the
/// coordinator timings and the per-tuple span trees (in tuple order).
fn build_profile(
    scope: u64,
    rewrite_time: Duration,
    probability_time: Duration,
    tuple_profiles: Vec<TupleProfile>,
) -> obs::ExecutionProfile {
    let mut dropped_spans = 0;
    let mut evaluate = obs::ProfileNode::new("evaluate");
    evaluate.dur_ns = probability_time.as_nanos().min(u64::MAX as u128) as u64;
    for (node, dropped) in tuple_profiles {
        dropped_spans += dropped;
        evaluate.children.push(node);
    }
    let mut rewrite = obs::ProfileNode::new("rewrite");
    rewrite.dur_ns = rewrite_time.as_nanos().min(u64::MAX as u128) as u64;
    let mut root = obs::ProfileNode::new("query");
    root.attrs
        .push(("structural_key".to_string(), format!("{scope:016x}")));
    root.dur_ns = rewrite.dur_ns.saturating_add(evaluate.dur_ns);
    root.children = vec![rewrite, evaluate];
    obs::ExecutionProfile {
        root,
        dropped_spans,
    }
}

/// Step II inline in the calling thread — no worker threads, no channel — so
/// cheap executions pay no spawn overhead. Shared by [`execute_pipeline`]'s
/// single-thread branch and [`Engine::execute_once`].
fn run_sequential(
    db: &Database,
    table: &PvcTable,
    options: &EvalOptions,
    try_fast: bool,
    artifacts: Option<&SharedArtifacts>,
    scope: u64,
    rewrite_time: Duration,
) -> Result<QueryResult, Error> {
    let start = Instant::now();
    let counters = TupleCounters::default();
    let mut tuples = Vec::with_capacity(table.tuples.len());
    let mut tuple_profiles: Vec<TupleProfile> = Vec::new();
    {
        let _evaluate_span = obs::span("evaluate");
        for index in 0..table.tuples.len() {
            let (tuple, profile) = tuple_result_traced(
                db, table, index, options, try_fast, artifacts, scope, &counters,
            )?;
            tuples.push(tuple);
            if let Some(p) = profile {
                tuple_profiles.push(p);
            }
        }
    }
    let probability_time = start.elapsed();
    let mut result = assemble_result(
        table,
        tuples,
        rewrite_time,
        probability_time,
        counters.fast_path_hits.load(Ordering::Relaxed),
        counters.agg_fast_path_hits.load(Ordering::Relaxed),
        1,
    );
    if options.profile {
        result.profile = Some(build_profile(
            scope,
            rewrite_time,
            probability_time,
            tuple_profiles,
        ));
    }
    Ok(result)
}

/// Step II on `threads` workers: spawn a stream and drain it. Shared by
/// [`execute_pipeline`]'s parallel branch and [`Engine::execute_once`].
#[allow(clippy::too_many_arguments)]
fn run_parallel(
    db: Arc<Database>,
    table: Arc<PvcTable>,
    options: &EvalOptions,
    try_fast: bool,
    artifacts: Option<Arc<SharedArtifacts>>,
    scope: u64,
    rewrite_time: Duration,
    threads: usize,
) -> Result<QueryResult, Error> {
    let start = Instant::now();
    let mut stream = spawn_stream(
        db,
        Arc::clone(&table),
        options.clone(),
        try_fast,
        artifacts,
        scope,
        rewrite_time,
        threads,
    )?;
    let mut tuples = Vec::with_capacity(stream.total_tuples());
    {
        let _evaluate_span = obs::span("evaluate");
        for item in &mut stream {
            // The first error (in tuple order) wins, exactly as in the sequential
            // loop; dropping the stream cancels and joins the workers.
            tuples.push(item?);
        }
    }
    let probability_time = start.elapsed();
    let (fast, agg) = (stream.fast_path_hits(), stream.agg_fast_path_hits());
    let tuple_profiles = options.profile.then(|| stream.take_profiles());
    let mut result = assemble_result(
        &table,
        tuples,
        rewrite_time,
        probability_time,
        fast,
        agg,
        threads,
    );
    if let Some(profiles) = tuple_profiles {
        result.profile = Some(build_profile(
            scope,
            rewrite_time,
            probability_time,
            profiles,
        ));
    }
    Ok(result)
}

/// Steps I+II with optional caching, materialising the whole result.
fn execute_pipeline(
    db: &Arc<Database>,
    query: &Query,
    plan: &Plan,
    options: &EvalOptions,
    caches: Option<&Caches>,
) -> Result<QueryResult, Error> {
    let query_span = obs::span("query");
    let (table, scope, rewrite_time) = {
        let _s = obs::span("rewrite");
        step_one(db, query, plan, caches)?
    };
    if let Some(s) = &query_span {
        s.attr("structural_key", format!("{scope:016x}"));
    }
    let artifacts = artifact_handle(options, caches);
    let try_fast = allow_fast_path(db, plan, options);
    let threads = resolve_threads(options.threads, table.tuples.len());
    if threads <= 1 {
        run_sequential(
            db,
            &table,
            options,
            try_fast,
            artifacts.as_deref(),
            scope,
            rewrite_time,
        )
    } else {
        run_parallel(
            Arc::clone(db),
            table,
            options,
            try_fast,
            artifacts,
            scope,
            rewrite_time,
            threads,
        )
    }
}

/// Pooled-mode lifecycle state: how many pool jobs of this stream are currently
/// running, and whether the stream was cancelled before they started.
#[derive(Debug, Default)]
struct StreamGate {
    cancelled: bool,
    active: usize,
}

/// State shared between the consumer of a [`TupleStream`] and its workers.
#[derive(Debug)]
struct StreamShared {
    db: Arc<Database>,
    table: Arc<PvcTable>,
    options: EvalOptions,
    try_fast: bool,
    artifacts: Option<Arc<SharedArtifacts>>,
    scope: u64,
    counters: TupleCounters,
    /// Set when the stream is dropped: workers stop claiming tuples.
    cancel: AtomicBool,
    /// The next unclaimed tuple index (dynamic work distribution).
    cursor: AtomicUsize,
    /// Pooled-mode quiescence gate. Spawned threads are joined by handle; pool
    /// jobs have no handle, so dropping the stream instead waits here until
    /// every started job has exited (queued-but-unstarted jobs observe
    /// `cancelled` under this lock and become no-ops). Checking the flag and
    /// counting the job under **one** lock is what makes the drop race-free: a
    /// job either sees the cancellation or is counted before the drop starts
    /// waiting.
    gate: Mutex<StreamGate>,
    /// Signalled whenever `gate.active` reaches zero.
    quiesced: Condvar,
}

impl StreamShared {
    /// Register one pool job as running; `false` means the stream was already
    /// cancelled and the job must not touch any work.
    fn gate_enter(&self) -> bool {
        let mut gate = self.gate.lock().expect("stream gate poisoned");
        if gate.cancelled {
            return false;
        }
        gate.active += 1;
        true
    }
}

/// Decrements the gate when a pool job exits — by any path, panic included
/// (the guard lives across the worker loop, so unwinding still releases the
/// stream's drop from its wait).
struct GateGuard(Arc<StreamShared>);

impl Drop for GateGuard {
    fn drop(&mut self) {
        let mut gate = self.0.gate.lock().expect("stream gate poisoned");
        gate.active -= 1;
        if gate.active == 0 {
            self.0.quiesced.notify_all();
        }
    }
}

fn worker_loop(shared: &StreamShared, sender: &SyncSender<StreamedTuple>) {
    loop {
        if shared.cancel.load(Ordering::Relaxed) {
            return;
        }
        let index = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if index >= shared.table.tuples.len() {
            return;
        }
        // A panic inside per-tuple evaluation (a bug) must still deliver *some*
        // item for the claimed index: if it were swallowed, the consumer would
        // keep buffering every later tuple waiting for this one — unbounded
        // memory and an arbitrarily late error. Caught here, it surfaces as an
        // in-order `Error::Worker` instead.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tuple_result_traced(
                &shared.db,
                &shared.table,
                index,
                &shared.options,
                shared.try_fast,
                shared.artifacts.as_deref(),
                shared.scope,
                &shared.counters,
            )
        }))
        .unwrap_or_else(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Err(Error::Worker(format!(
                "panic while computing tuple {index}: {detail}"
            )))
        });
        let (result, profile) = match outcome {
            Ok((tuple, profile)) => (Ok(tuple), profile),
            Err(e) => (Err(e), None),
        };
        // A send error means the consumer dropped the stream: stop quietly.
        if sender.send((index, result, profile)).is_err() {
            return;
        }
    }
}

/// Spawn the worker pool for one execution and wrap it in a [`TupleStream`].
#[allow(clippy::too_many_arguments)]
fn spawn_stream(
    db: Arc<Database>,
    table: Arc<PvcTable>,
    mut options: EvalOptions,
    try_fast: bool,
    artifacts: Option<Arc<SharedArtifacts>>,
    scope: u64,
    rewrite_time: Duration,
    threads: usize,
) -> Result<TupleStream, Error> {
    let total = table.tuples.len();
    let columns = table
        .schema
        .names()
        .into_iter()
        .map(str::to_string)
        .collect();
    // Take the pool handle *out* of the options the stream retains: jobs hold
    // `Arc<StreamShared>`, and a pool must never be kept alive (and eventually
    // dropped, which joins its workers) from one of its own worker threads.
    let pool = options.pool.take();
    let shared = Arc::new(StreamShared {
        db,
        table,
        options,
        try_fast,
        artifacts,
        scope,
        counters: TupleCounters::default(),
        cancel: AtomicBool::new(false),
        cursor: AtomicUsize::new(0),
        gate: Mutex::new(StreamGate::default()),
        quiesced: Condvar::new(),
    });
    // Bounded channel: workers run at most a small window ahead of the consumer,
    // so a slow consumer of a huge result does not buffer the whole result set.
    let (sender, receiver) =
        std::sync::mpsc::sync_channel::<(usize, Result<ProbTuple, Error>, Option<TupleProfile>)>(
            threads * 2 + 2,
        );
    if let Some(pool) = pool {
        // Pooled mode: submit the worker loops as jobs on the persistent pool
        // instead of spawning threads. More jobs than pool workers cannot run
        // concurrently (they would only claim an empty cursor after the loop
        // ends), so cap at the pool width.
        let jobs = threads.min(pool.threads()).max(1);
        for _ in 0..jobs {
            let worker_shared = Arc::clone(&shared);
            let worker_sender = sender.clone();
            pool.execute(move || {
                if !worker_shared.gate_enter() {
                    return;
                }
                let _guard = GateGuard(Arc::clone(&worker_shared));
                worker_loop(&worker_shared, &worker_sender);
            });
        }
        drop(sender);
        return Ok(TupleStream {
            columns,
            rewrite_time,
            total,
            threads: jobs,
            receiver: Some(receiver),
            reassembly: OrderedReassembly::new(),
            profiles: Vec::new(),
            shared,
            workers: Vec::new(),
            poisoned: false,
        });
    }
    let mut workers = Vec::with_capacity(threads);
    for worker in 0..threads {
        let worker_shared = Arc::clone(&shared);
        let worker_sender = sender.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("pvc-tuple-worker-{worker}"))
            .spawn(move || worker_loop(&worker_shared, &worker_sender));
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                // Honour the no-detached-threads contract even on a failed spawn
                // (typically thread-limit exhaustion — exactly when strays hurt):
                // stop and join the workers that did start before reporting.
                shared.cancel.store(true, Ordering::Relaxed);
                drop(sender);
                drop(receiver);
                for handle in workers {
                    let _ = handle.join();
                }
                return Err(Error::Worker(format!("failed to spawn worker thread: {e}")));
            }
        }
    }
    drop(sender);
    Ok(TupleStream {
        columns,
        rewrite_time,
        total,
        threads,
        receiver: Some(receiver),
        reassembly: OrderedReassembly::new(),
        profiles: Vec::new(),
        shared,
        workers,
        poisoned: false,
    })
}

/// A streaming query result: an iterator over `Result<ProbTuple, Error>` that
/// yields tuples **in deterministic tuple order** while background workers compute
/// them (see [`PreparedQuery::execute_streaming`]).
///
/// * Partial consumption is safe: dropping the stream sets a cancel flag, closes
///   the channel and joins every worker — no detached threads outlive it.
/// * An `Err` item reports the failure of that specific tuple (e.g. a node-budget
///   abort); later tuples may still follow.
/// * After the stream is exhausted, [`fast_path_hits`](Self::fast_path_hits) /
///   [`agg_fast_path_hits`](Self::agg_fast_path_hits) report the execution's
///   fast-path counters.
#[derive(Debug)]
pub struct TupleStream {
    columns: Vec<String>,
    rewrite_time: Duration,
    total: usize,
    threads: usize,
    receiver: Option<Receiver<StreamedTuple>>,
    reassembly: OrderedReassembly<Result<ProbTuple, Error>>,
    /// Per-tuple profile fragments received so far (profile mode only), keyed by
    /// tuple index — arrival order is nondeterministic, so they are sorted when
    /// taken.
    profiles: Vec<(usize, TupleProfile)>,
    shared: Arc<StreamShared>,
    workers: Vec<JoinHandle<()>>,
    poisoned: bool,
}

impl TupleStream {
    /// Column names of the result.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Wall-clock time of step I (the rewriting), which ran before the stream was
    /// returned.
    pub fn rewrite_time(&self) -> Duration {
        self.rewrite_time
    }

    /// Total number of result tuples this stream will yield.
    pub fn total_tuples(&self) -> usize {
        self.total
    }

    /// Number of worker threads computing tuples.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tuple confidences computed by the §6 read-once fast path **so far** (final
    /// once the stream is exhausted).
    pub fn fast_path_hits(&self) -> usize {
        self.shared.counters.fast_path_hits.load(Ordering::Relaxed)
    }

    /// Aggregate distributions assembled by the Proposition 1 closed form so far.
    pub fn agg_fast_path_hits(&self) -> usize {
        self.shared
            .counters
            .agg_fast_path_hits
            .load(Ordering::Relaxed)
    }

    /// Take the per-tuple profile fragments received so far, in tuple order
    /// (only populated when the stream runs with `EvalOptions::profile`).
    pub(crate) fn take_profiles(&mut self) -> Vec<TupleProfile> {
        let mut profiles = std::mem::take(&mut self.profiles);
        profiles.sort_by_key(|(index, _)| *index);
        profiles.into_iter().map(|(_, profile)| profile).collect()
    }
}

impl Iterator for TupleStream {
    type Item = Result<ProbTuple, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.reassembly.next_index() >= self.total {
            return None;
        }
        loop {
            if let Some(item) = self.reassembly.pop() {
                return Some(item);
            }
            let receiver = self.receiver.as_ref()?;
            match receiver.recv() {
                Ok((index, result, profile)) => {
                    if let Some(profile) = profile {
                        self.profiles.push((index, profile));
                    }
                    self.reassembly.push(index, result)
                }
                Err(_) => {
                    // Every sender hung up before all tuples were delivered: a
                    // worker panicked. Surface it instead of silently truncating.
                    self.poisoned = true;
                    return Some(Err(Error::Worker(format!(
                        "worker thread exited before delivering tuple {} of {}",
                        self.reassembly.next_index(),
                        self.total
                    ))));
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.poisoned {
            return (0, Some(0));
        }
        let remaining = self.total - self.reassembly.next_index();
        (remaining, Some(remaining))
    }
}

impl Drop for TupleStream {
    fn drop(&mut self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
        // Closing the receiver unblocks any worker waiting on the bounded channel;
        // each then observes the send error (or the cancel flag) and exits.
        self.receiver = None;
        for handle in self.workers.drain(..) {
            // A worker that panicked already surfaced as Error::Worker during
            // iteration; nothing useful to do with the panic payload here.
            let _ = handle.join();
        }
        // Pooled mode has no handles to join: mark the gate cancelled (so
        // queued-but-unstarted jobs become no-ops) and wait until every started
        // job has exited. Only then is it safe to release the stream's shared
        // state — the pool outlives the stream, the stream's jobs must not.
        let mut gate = self.shared.gate.lock().expect("stream gate poisoned");
        gate.cancelled = true;
        while gate.active > 0 {
            gate = self
                .shared
                .quiesced
                .wait(gate)
                .expect("stream gate poisoned");
        }
    }
}

/// The confidence of one annotation: canonical cache, then read-once fast path,
/// then cache-aware compilation.
#[allow(clippy::too_many_arguments)]
fn tuple_confidence(
    db: &Database,
    annotation: &SemiringExpr,
    options: &EvalOptions,
    try_fast: bool,
    artifacts: Option<&SharedArtifacts>,
    scope: u64,
    counters: &TupleCounters,
) -> Result<f64, Error> {
    let span = obs::span("confidence");
    if let Some(arts) = artifacts {
        let id = {
            let _intern_span = obs::span("intern");
            arts.intern(annotation)
        };
        // Warm path: reduce the cached distribution to its confidence under the
        // lock — no per-tuple clone.
        if let Some(p) = arts.map_semiring(id, scope, confidence_of) {
            if let Some(s) = &span {
                s.attr("path", "cache".into());
            }
            return Ok(p);
        }
        if try_fast {
            if let Some(p) = read_once_confidence(annotation, &db.vars) {
                counters.fast_path_hits.fetch_add(1, Ordering::Relaxed);
                // The fast path only runs over the Boolean semiring, so the
                // confidence determines the full distribution — cache it so later
                // lookups (and sub-d-tree composition) can reuse it.
                let dist: SemiringDist = Dist::from_pairs([
                    (SemiringValue::Bool(true), p),
                    (SemiringValue::Bool(false), 1.0 - p),
                ]);
                arts.insert_semiring(id, scope, &dist);
                if let Some(s) = &span {
                    s.attr("path", "fast".into());
                }
                return Ok(p);
            }
        }
        if let Some(s) = &span {
            s.attr("path", "compile".into());
        }
        // The lookup above already recorded the miss; fill without re-checking.
        let dist = arts.fill_semiring(id, &db.vars, db.kind, &options.compile, scope)?;
        return Ok(confidence_of(&dist));
    }
    if try_fast {
        if let Some(p) = read_once_confidence(annotation, &db.vars) {
            counters.fast_path_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = &span {
                s.attr("path", "fast".into());
            }
            return Ok(p);
        }
    }
    if let Some(s) = &span {
        s.attr("path", "compile".into());
    }
    compiled_confidence(db, annotation, options)
}

/// Full step-II confidence: compile the annotation into a d-tree and sum the mass of
/// the non-zero semiring values.
fn compiled_confidence(
    db: &Database,
    annotation: &SemiringExpr,
    options: &EvalOptions,
) -> Result<f64, Error> {
    let mut compiler = Compiler::with_options(&db.vars, db.kind, options.compile.clone());
    let tree = compiler.compile_semiring(annotation)?;
    let dist = tree.semiring_distribution(&db.vars, db.kind)?;
    Ok(dist
        .iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum())
}

/// The exact distribution of one aggregate: canonical cache, then the MIN/MAX
/// read-once closed form, then cache-aware compilation.
#[allow(clippy::too_many_arguments)]
fn aggregate_distribution(
    db: &Database,
    expr: &SemimoduleExpr,
    options: &EvalOptions,
    try_fast: bool,
    artifacts: Option<&SharedArtifacts>,
    scope: u64,
    counters: &TupleCounters,
) -> Result<MonoidDist, Error> {
    let span = obs::span("aggregate");
    if let Some(arts) = artifacts {
        let id = {
            let _intern_span = obs::span("intern");
            arts.intern_semimodule(expr)
        };
        if let Some(d) = arts.get_aggregate(id, scope) {
            if let Some(s) = &span {
                s.attr("path", "cache".into());
            }
            return Ok(d);
        }
        if try_fast {
            if let Some(d) = min_max_read_once_distribution(expr, &db.vars) {
                counters.agg_fast_path_hits.fetch_add(1, Ordering::Relaxed);
                arts.insert_aggregate(id, scope, &d);
                if let Some(s) = &span {
                    s.attr("path", "fast".into());
                }
                return Ok(d);
            }
        }
        if let Some(s) = &span {
            s.attr("path", "compile".into());
        }
        // The lookup above already recorded the miss; fill without re-checking.
        return Ok(arts.fill_aggregate(id, &db.vars, db.kind, &options.compile, scope)?);
    }
    if try_fast {
        if let Some(d) = min_max_read_once_distribution(expr, &db.vars) {
            counters.agg_fast_path_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = &span {
                s.attr("path", "fast".into());
            }
            return Ok(d);
        }
    }
    if let Some(s) = &span {
        s.attr("path", "compile".into());
    }
    let mut compiler = Compiler::with_options(&db.vars, db.kind, options.compile.clone());
    let tree = compiler.compile_semimodule(expr)?;
    Ok(tree.monoid_distribution(&db.vars, db.kind)?)
}

/// Read-once confidence evaluation over the Boolean semiring: the probability that a
/// sum/product of *variable-disjoint* subexpressions is non-zero multiplies out
/// directly, with no d-tree. Returns `None` whenever the expression is not of that
/// shape (shared variables, comparisons, non-Boolean variables) — the caller then
/// falls back to full compilation, so this is always sound.
fn read_once_confidence(expr: &SemiringExpr, vars: &VarTable) -> Option<f64> {
    match expr {
        SemiringExpr::Const(c) => Some(if c.is_zero() { 0.0 } else { 1.0 }),
        SemiringExpr::Var(v) => {
            if vars.kind(*v) == SemiringKind::Bool {
                Some(vars.prob_true(*v))
            } else {
                None
            }
        }
        SemiringExpr::Mul(children) => {
            pairwise_var_disjoint(children)?;
            let mut p = 1.0;
            for child in children {
                p *= read_once_confidence(child, vars)?;
            }
            Some(p)
        }
        SemiringExpr::Add(children) => {
            pairwise_var_disjoint(children)?;
            let mut q = 1.0;
            for child in children {
                q *= 1.0 - read_once_confidence(child, vars)?;
            }
            Some(1.0 - q)
        }
        // Comparisons need the full machinery (pruning, convolution).
        SemiringExpr::CmpSS(..) | SemiringExpr::CmpMM(..) => None,
    }
}

/// Read-once fast path for MIN/MAX aggregate distributions (Proposition 1 of the
/// paper): when the terms `Φ_i ⊗ m_i` of a MIN/MAX semimodule expression have
/// pairwise variable-disjoint, read-once Boolean coefficients, the terms are
/// independent and the distribution has the closed form
///
/// ```text
/// P[MIN = v] = Π_{m_i < v} (1 − p_i) · (1 − Π_{m_i = v} (1 − p_i)),
/// P[MIN = 0_M] = Π_i (1 − p_i)            (no term present)
/// ```
///
/// with `p_i = P[Φ_i ≠ ⊥]` (symmetrically for MAX with `>` in place of `<`). The
/// result has at most `n + 1` support values and is computed in `O(n log n)` — no
/// d-tree, no convolution. Returns `None` whenever the expression is not of that
/// shape (SUM/COUNT/PROD, shared variables, non-read-once coefficients); the caller
/// then falls back to full compilation, so this is always sound.
fn min_max_read_once_distribution(expr: &SemimoduleExpr, vars: &VarTable) -> Option<MonoidDist> {
    if !matches!(expr.op, AggOp::Min | AggOp::Max) {
        return None;
    }
    if expr.terms.is_empty() {
        return Some(Dist::point(expr.op.identity()));
    }
    // Terms must be pairwise variable-disjoint to be independent.
    pairwise_disjoint_sets(expr.terms.iter().map(|t| t.vars()))?;
    let mut present: Vec<(MonoidValue, f64)> = Vec::with_capacity(expr.terms.len());
    for t in &expr.terms {
        present.push((t.value, read_once_confidence(&t.coeff, vars)?));
    }
    // Winning value first: ascending for MIN, descending for MAX.
    match expr.op {
        AggOp::Min => present.sort_by_key(|t| t.0),
        _ => present.sort_by_key(|t| std::cmp::Reverse(t.0)),
    }
    let mut pairs = Vec::with_capacity(present.len() + 1);
    // Probability that every term strictly better than the current value is absent.
    let mut p_better_absent = 1.0;
    let mut i = 0;
    while i < present.len() {
        let value = present[i].0;
        let mut p_absent_here = 1.0;
        while i < present.len() && present[i].0 == value {
            p_absent_here *= 1.0 - present[i].1;
            i += 1;
        }
        pairs.push((value, p_better_absent * (1.0 - p_absent_here)));
        p_better_absent *= p_absent_here;
    }
    // No term present: the monoid's neutral element.
    pairs.push((expr.op.identity(), p_better_absent));
    Some(Dist::from_pairs(pairs))
}

/// `Some(())` iff the given variable sets are pairwise disjoint (the sum of the
/// sizes equals the size of the union).
fn pairwise_disjoint_sets(sets: impl Iterator<Item = VarSet>) -> Option<()> {
    let mut total = 0usize;
    let mut all = VarSet::new();
    for vs in sets {
        total += vs.len();
        all = all.union(&vs);
    }
    (all.len() == total).then_some(())
}

/// `Some(())` iff the children mention pairwise disjoint variable sets.
fn pairwise_var_disjoint(children: &[SemiringExpr]) -> Option<()> {
    pairwise_disjoint_sets(children.iter().map(|c| c.vars()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{figure1_db, paper_q1};
    use crate::query::{AggSpec, Predicate, Query, QueryError};
    use pvc_algebra::{AggOp, CmpOp};
    use pvc_expr::oracle;

    #[test]
    fn prepare_validates_and_classifies() {
        let db = figure1_db();
        let engine = Engine::new(db);
        // A tuple-independent base table is Q_ind.
        let prepared = engine.prepare(&Query::table("S")).unwrap();
        assert_eq!(prepared.plan().class, QueryClass::Qind);
        assert_eq!(prepared.plan().strategy, Strategy::IndependentFastPath);
        assert!(prepared.plan().strategy.is_tractable());
        assert!(prepared.plan().tuple_independent_input);
        assert_eq!(prepared.schema().names(), vec!["sid", "shop"]);
        // Unknown tables are validation errors.
        let err = engine.prepare(&Query::table("missing")).unwrap_err();
        assert!(matches!(
            err,
            Error::Validation(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn execute_matches_oracle_and_uses_fast_path() {
        let db = figure1_db();
        let engine = Engine::new(db);
        // π_shop(S) is Q_ind with read-once annotations (x1+x2+x3 per shop).
        let q = Query::table("S").project(["shop"]);
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(prepared.plan().class, QueryClass::Qind);
        let result = prepared.execute(&EvalOptions::default()).unwrap();
        assert_eq!(result.tuples.len(), 2);
        assert_eq!(result.fast_path_hits, 2);
        let table = crate::exec::try_evaluate(engine.database(), &q).unwrap();
        for (prob, tuple) in result.tuples.iter().zip(&table.tuples) {
            let expected = oracle::confidence_by_enumeration(
                &tuple.annotation,
                &engine.database().vars,
                SemiringKind::Bool,
            );
            assert!((prob.confidence - expected).abs() < 1e-9);
        }
        // Disabling the fast path must give identical confidences.
        let slow = prepared
            .execute(&EvalOptions::default().without_fast_path())
            .unwrap();
        for (a, b) in result.tuples.iter().zip(&slow.tuples) {
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn caches_fill_and_invalidate() {
        let db = figure1_db();
        let mut engine = Engine::new(db);
        let q = paper_q1();
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        prepared.execute(&EvalOptions::default()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.rewrites, 1);
        assert!(stats.confidences >= 1);
        assert!(stats.interned >= 1);
        assert!(stats.misses >= 1);
        // A second execution answers every annotation from the cache: no new
        // entries, no new misses, strictly more hits. Re-running the *same* query
        // is not cross-query reuse.
        let again = prepared.execute(&EvalOptions::default()).unwrap();
        assert_eq!(again.tuples.len(), 9);
        let warm = engine.cache_stats();
        assert_eq!(warm.confidences, stats.confidences);
        assert_eq!(warm.misses, stats.misses);
        assert!(warm.hits > stats.hits);
        assert_eq!(warm.cross_query_hits, stats.cross_query_hits);
        drop(prepared);

        // The typed update path invalidates *selectively*: a delta against S
        // evicts the paper_q1 rewrite (S is a base table) and the artifacts over
        // S's variables, but artifacts over PS/P1/P2-only provenance survive.
        let delta_stats = engine
            .apply_delta(Delta::new().insert("S", vec![6i64.into(), "Gap".into()], 0.5))
            .unwrap();
        assert_eq!(delta_stats.inserted, 1);
        assert_eq!(delta_stats.evicted_rewrites, 1);
        assert_eq!(delta_stats.kept_rewrites, 0);
        // An insert touches no existing variable, so every artifact survives.
        assert_eq!(delta_stats.touched_vars, 0);
        assert_eq!(delta_stats.evicted_artifacts, 0);
        let after_delta = engine.cache_stats();
        assert_eq!(after_delta.rewrites, 0);
        assert_eq!(after_delta.confidences, warm.confidences);

        // The legacy shim keeps today's detach-everything semantics, counters
        // included.
        #[allow(deprecated)]
        engine.database_mut();
        assert_eq!(engine.cache_stats(), CacheStats::default());
    }

    #[test]
    fn unrelated_insert_keeps_other_tables_warm() {
        // The acceptance scenario: after a 1-tuple insert into one table, a
        // prepared query over *other* tables answers with zero recompilations.
        let mut engine = Engine::new(figure1_db());
        let q = Query::table("S").project(["shop"]);
        engine
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let warm = engine.cache_stats();
        assert!(warm.misses + warm.hits > 0);

        let stats = engine
            .apply_delta(Delta::new().insert("P1", vec![9i64.into(), 99i64.into()], 0.25))
            .unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.evicted_artifacts, 0);
        assert_eq!(stats.evicted_rewrites, 0);
        assert_eq!(stats.kept_rewrites, 1, "the S rewrite must survive");

        let reference = engine
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let after = engine.cache_stats();
        // Exact counters: not a single recomputation — no new misses, no new
        // rewrite entries, only hits.
        assert_eq!(after.misses, warm.misses);
        assert_eq!(after.arena_misses, warm.arena_misses);
        assert_eq!(after.rewrites, warm.rewrites);
        assert_eq!(after.confidences, warm.confidences);
        assert!(after.hits > warm.hits);
        // And the answers match a cold engine on the mutated database exactly.
        let cold = Engine::new(engine.database().clone());
        let cold_result = cold
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(reference.tuples.len(), cold_result.tuples.len());
        for (a, b) in reference.tuples.iter().zip(&cold_result.tuples) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }

    #[test]
    fn apply_delta_is_bit_identical_to_cold_rebuild() {
        // All three strategies, sequential and parallel: results after a mixed
        // delta must be bit-identical to a cold engine built on the mutated
        // database — surviving cache entries never leak pre-delta state.
        let queries = [
            Query::table("S").project(["shop"]), // Q_ind
            Query::table("S")
                .join(Query::table("PS"), &[("sid", "ps_sid")])
                .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]), // Q_hie
            paper_q1()
                .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
                .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
                .project(["shop"]), // general
        ];
        let mut engine = Engine::new(figure1_db());
        let mut strategies = std::collections::BTreeSet::new();
        // Warm every query pre-delta so stale entries would be caught.
        for q in &queries {
            let prepared = engine.prepare(q).unwrap();
            strategies.insert(format!("{:?}", prepared.plan().strategy));
            prepared.execute(&EvalOptions::default()).unwrap();
        }
        assert_eq!(strategies.len(), 3, "queries must cover all strategies");

        let delta = Delta::new()
            .insert("S", vec![6i64.into(), "Gap".into()], 0.7)
            .set_probability("PS", 0, 0.9)
            .delete("P1", 1);
        let stats = engine.apply_delta(delta).unwrap();
        assert_eq!(stats.tables_touched, 3);
        assert!(stats.touched_vars >= 2);

        let cold = Engine::new(engine.database().clone());
        for q in &queries {
            for threads in [1, 4] {
                let options = EvalOptions::default().with_threads(threads);
                let warm = engine.prepare(q).unwrap().execute(&options).unwrap();
                let reference = cold.prepare(q).unwrap().execute(&options).unwrap();
                assert_eq!(warm.tuples.len(), reference.tuples.len());
                for (a, b) in warm.tuples.iter().zip(&reference.tuples) {
                    assert_eq!(a.values, b.values);
                    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
                    assert_eq!(a.aggregate_distributions, b.aggregate_distributions);
                }
            }
        }
    }

    #[test]
    fn delta_validation_is_atomic_and_typed() {
        let mut engine = Engine::new(figure1_db());
        let q = paper_q1();
        engine
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let warm = engine.cache_stats();
        let tuples_before = engine.database().total_tuples();

        // A delta with one valid and one invalid op must change *nothing*.
        let cases = [
            Delta::new()
                .insert("S", vec![7i64.into(), "Gap".into()], 0.5)
                .insert("missing", vec![1i64.into()], 0.5),
            Delta::new().insert("S", vec![7i64.into()], 0.5), // arity
            Delta::new().insert("S", vec![7i64.into(), "Gap".into()], 1.5), // probability
            Delta::new().delete("S", 99),                     // range
            Delta::new().delete("S", 0).delete("S", 0),       // duplicate
            Delta::new().set_probability("S", 0, f64::NAN),   // NaN
        ];
        for delta in cases {
            let err = engine.apply_delta(delta).unwrap_err();
            assert!(
                matches!(err, Error::Delta { .. } | Error::UnknownTable { .. }),
                "unexpected error: {err}"
            );
            assert_eq!(engine.database().total_tuples(), tuples_before);
            assert_eq!(engine.cache_stats(), warm);
        }
        assert_eq!(engine.stats().deltas.applied, 0);

        // An empty delta is a no-op, not an error.
        let stats = engine.apply_delta(Delta::new()).unwrap();
        assert_eq!(stats, DeltaStats::default());
    }

    #[test]
    fn set_probability_evicts_only_intersecting_artifacts() {
        let mut engine = Engine::new(figure1_db());
        let q_s = Query::table("S").project(["shop"]);
        let q_p = Query::table("P1").project(["pid"]);
        for q in [&q_s, &q_p] {
            engine
                .prepare(q)
                .unwrap()
                .execute(&EvalOptions::default())
                .unwrap();
        }
        let warm = engine.cache_stats();

        // Re-weight one S tuple: S-provenance artifacts go, P1's survive, and
        // the P1 query stays miss-free while the S query recomputes.
        let stats = engine
            .apply_delta(Delta::new().set_probability("S", 0, 0.9))
            .unwrap();
        assert_eq!(stats.reprobed, 1);
        assert_eq!(stats.touched_vars, 1);
        assert!(stats.evicted_artifacts >= 1);
        assert!(stats.kept_artifacts >= 1);
        assert_eq!(stats.evicted_rewrites, 1);
        assert_eq!(stats.kept_rewrites, 1);

        let p_warm = engine
            .prepare(&q_p)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(engine.cache_stats().misses, warm.misses, "P1 stays warm");
        assert_eq!(p_warm.tuples.len(), 4);

        let s_result = engine
            .prepare(&q_s)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        // The M&S tuple's confidence reflects the new probability exactly as a
        // cold engine computes it.
        let cold = Engine::new(engine.database().clone());
        let s_cold = cold
            .prepare(&q_s)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        for (a, b) in s_result.tuples.iter().zip(&s_cold.tuples) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }

    #[test]
    fn engine_stats_consolidates_the_scattered_getters() {
        let mut engine = Engine::new(figure1_db());
        assert_eq!(engine.stats(), EngineStats::default());
        engine
            .prepare(&paper_q1())
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = engine.stats();
        // The old getter is a thin delegate of the consolidated struct.
        assert_eq!(stats.cache, engine.cache_stats());
        assert_eq!(stats.deltas, DeltaTotals::default());
        engine
            .apply_delta(Delta::new().insert("P2", vec![9i64.into(), 9i64.into()], 0.5))
            .unwrap();
        let after = engine.stats();
        assert_eq!(after.deltas.applied, 1);
        assert_eq!(after.deltas.inserted, 1);
        assert_eq!(after.deltas.evicted_rewrites, 1); // paper_q1 reads P2
        let dir = std::env::temp_dir().join(format!("pvc-stats-{}.snap", std::process::id()));
        engine.save_artifacts(&dir).unwrap();
        let saved = engine.stats().snapshots;
        assert_eq!(saved.saves, 1);
        assert!(saved.bytes_written > 0);
        engine.restore_artifacts(&dir).unwrap();
        let restored = engine.stats().snapshots;
        assert_eq!(restored.restores, 1);
        assert!(restored.bytes_read > 0);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn snapshot_survives_compatible_delta() {
        // Disk-warm restart across a delta: snapshot before, mutate, reload on
        // the mutated database — unaffected tables come back warm.
        let path = std::env::temp_dir().join(format!("pvc-delta-{}.snap", std::process::id()));
        let q_s = Query::table("S").project(["shop"]);
        let q_p = Query::table("P1").project(["pid"]);
        let mut engine = Engine::new(figure1_db());
        for q in [&q_s, &q_p] {
            engine
                .prepare(q)
                .unwrap()
                .execute(&EvalOptions::default())
                .unwrap();
        }
        engine.save_artifacts(&path).unwrap();
        engine
            .apply_delta(Delta::new().insert("P1", vec![9i64.into(), 99i64.into()], 0.25))
            .unwrap();
        let mutated = engine.database().clone();

        // Partial restore: P1 diverged (its rewrite and artifacts are dropped),
        // S matches (restored warm: the S query runs without a single miss).
        let restarted = Engine::with_artifacts_from(mutated.clone(), &path).unwrap();
        let warm = restarted
            .prepare(&q_s)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = restarted.cache_stats();
        assert_eq!(stats.misses, 0, "S must be answered from the snapshot");
        assert!(stats.hits > 0);
        let cold = Engine::new(mutated.clone());
        let cold_s = cold
            .prepare(&q_s)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        for (a, b) in warm.tuples.iter().zip(&cold_s.tuples) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
        // The P1 query recomputes (its artifacts were selectively dropped) and
        // agrees with the cold engine bit-for-bit.
        let p_warm = restarted
            .prepare(&q_p)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let p_cold = cold
            .prepare(&q_p)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(p_warm.tuples.len(), 5);
        for (a, b) in p_warm.tuples.iter().zip(&p_cold.tuples) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }

        // A fully diverged database (fresh ids, every table different) is still
        // refused outright — the cold-start fallback, never a wrong warm cache.
        let mut other = Database::new();
        other.create_table("S", crate::schema::Schema::new(["sid", "shop"]));
        let (s, vars) = other.table_and_vars_mut("S").unwrap();
        s.push_independent(vec![1i64.into(), "X".into()], 0.1, vars);
        assert!(matches!(
            Engine::with_artifacts_from(other, &path),
            Err(Error::Snapshot(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn structurally_equal_renderings_hit_across_queries() {
        // P1 ∪ P2 and P2 ∪ P1 are different queries whose rewritings render the
        // same provenance with summands in opposite orders; canonical interning
        // must make the second execution hit the first's cache entries.
        let db = figure1_db();
        let engine = Engine::new(db);
        let qa = Query::table("P1")
            .union(Query::table("P2"))
            .project(["pid"]);
        let qb = Query::table("P2")
            .union(Query::table("P1"))
            .project(["pid"]);
        let ra = engine
            .prepare(&qa)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(engine.cache_stats().cross_query_hits, 0);
        let rb = engine
            .prepare(&qb)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = engine.cache_stats();
        assert!(
            stats.cross_query_hits >= 1,
            "expected cross-query reuse, got {stats:?}"
        );
        for (a, b) in ra.tuples.iter().zip(&rb.tuples) {
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn structural_keys_distinguish_queries_and_are_stable() {
        let qa = Query::table("P1")
            .union(Query::table("P2"))
            .project(["pid"]);
        let qb = Query::table("P2")
            .union(Query::table("P1"))
            .project(["pid"]);
        // Stable for equal queries, distinct for different renderings (the rewrite
        // materialises their tuples in different orders, so they must not share a
        // step-I cache entry).
        assert_eq!(qa.structural_key(), qa.clone().structural_key());
        assert_ne!(qa.structural_key(), qb.structural_key());
        // Spot-check that predicates and aggregations feed the key.
        let base = paper_q1();
        let with_pred = paper_q1().select(Predicate::AggCmpConst("price".into(), CmpOp::Le, 50));
        assert_ne!(base.structural_key(), with_pred.structural_key());
    }

    #[test]
    fn lru_bound_evicts_but_preserves_results() {
        let db = figure1_db();
        let engine = Engine::with_cache_config(
            figure1_db(),
            CacheConfig {
                max_entries: 2,
                max_bytes: usize::MAX,
            },
        );
        let reference = Engine::new(db);
        let q = paper_q1();
        let bounded = engine
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let unbounded = reference
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = engine.cache_stats();
        assert!(stats.confidences <= 2);
        assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
        for (a, b) in bounded.tuples.iter().zip(&unbounded.tuples) {
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn confidence_only_skips_aggregates() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let q = Query::table("P1").group_agg(
            Vec::<String>::new(),
            vec![AggSpec::new(AggOp::Min, "weight", "m")],
        );
        let prepared = engine.prepare(&q).unwrap();
        let full = prepared.execute(&EvalOptions::default()).unwrap();
        assert!(full.tuples[0].aggregate_distributions.contains_key("m"));
        let slim = prepared.execute(&EvalOptions::confidence_only()).unwrap();
        assert!(slim.tuples[0].aggregate_distributions.is_empty());
        assert!((slim.tuples[0].confidence - full.tuples[0].confidence).abs() < 1e-12);
    }

    #[test]
    fn node_budget_surfaces_as_compile_error() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let q2 = paper_q1()
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
            .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
            .project(["shop"]);
        let prepared = engine.prepare(&q2).unwrap();
        let err = prepared
            .execute(
                &EvalOptions::default()
                    .with_node_budget(1)
                    .without_fast_path(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Compile(_)));
        // The budget must also be enforced on a *warm* engine: a prior unbudgeted
        // success must not be served from the cache in place of the error.
        prepared.execute(&EvalOptions::default()).unwrap();
        assert!(engine.cache_stats().confidences > 0);
        let err = prepared
            .execute(
                &EvalOptions::default()
                    .with_node_budget(1)
                    .without_fast_path(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Compile(_)));
        // Parallel execution reports the same first-in-order error.
        let err = prepared
            .execute(
                &EvalOptions::default()
                    .with_node_budget(1)
                    .without_fast_path()
                    .with_threads(4),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Compile(_)));
    }

    #[test]
    fn q2_is_planned_hierarchical() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let agg = Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]);
        let prepared = engine.prepare(&agg).unwrap();
        assert_eq!(prepared.plan().class, QueryClass::Qhie);
        assert_eq!(prepared.plan().strategy, Strategy::HierarchicalFastPath);
        let rendered = prepared.plan().to_string();
        assert!(rendered.contains("hierarchical fast path"));
    }

    #[test]
    fn min_max_aggregate_fast_path_matches_compilation() {
        let db = figure1_db();
        let engine = Engine::new(db);
        // MIN/MAX over P1's four independent weights: Q_ind, disjoint coefficients.
        for op in [AggOp::Min, AggOp::Max] {
            let q = Query::table("P1")
                .group_agg(Vec::<String>::new(), vec![AggSpec::new(op, "weight", "m")]);
            let prepared = engine.prepare(&q).unwrap();
            assert!(prepared.plan().strategy.is_tractable());
            let fast = prepared.execute(&EvalOptions::default()).unwrap();
            assert_eq!(
                fast.agg_fast_path_hits, 1,
                "{op:?} should use the closed form"
            );
            // A fresh engine without the fast path must produce the same
            // distribution via full compilation.
            let slow_engine = Engine::new(figure1_db());
            let slow = slow_engine
                .prepare(&q)
                .unwrap()
                .execute(&EvalOptions::default().without_fast_path())
                .unwrap();
            assert_eq!(slow.agg_fast_path_hits, 0);
            let df = &fast.tuples[0].aggregate_distributions["m"];
            let ds = &slow.tuples[0].aggregate_distributions["m"];
            assert!(df.approx_eq(ds, 1e-9), "{op:?}: {df} vs {ds}");
        }
    }

    #[test]
    fn min_max_closed_form_agrees_with_oracle() {
        let mut vars = VarTable::new();
        let x = vars.boolean("x", 0.3);
        let y = vars.boolean("y", 0.6);
        let z = vars.boolean("z", 0.8);
        // Duplicate values across terms exercise the same-value grouping.
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(10)),
                (SemiringExpr::Var(y), MonoidValue::Fin(10)),
                (SemiringExpr::Var(z), MonoidValue::Fin(25)),
            ],
        );
        let dist = min_max_read_once_distribution(&alpha, &vars).unwrap();
        let expected = oracle::semimodule_dist_by_enumeration(&alpha, &vars, SemiringKind::Bool);
        assert!(dist.approx_eq(&expected, 1e-9), "{dist} vs {expected}");
        // Shared variables must bail out.
        let shared = SemimoduleExpr::from_terms(
            AggOp::Max,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(1)),
                (
                    SemiringExpr::Var(x) * SemiringExpr::Var(y),
                    MonoidValue::Fin(2),
                ),
            ],
        );
        assert!(min_max_read_once_distribution(&shared, &vars).is_none());
        // SUM is not covered by Proposition 1's closed form.
        let sum = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![(SemiringExpr::Var(x), MonoidValue::Fin(1))],
        );
        assert!(min_max_read_once_distribution(&sum, &vars).is_none());
    }

    #[test]
    fn read_once_confidence_agrees_with_oracle() {
        let mut vars = VarTable::new();
        let x = vars.boolean("x", 0.3);
        let y = vars.boolean("y", 0.6);
        let z = vars.boolean("z", 0.8);
        // x·(y + z): read-once.
        let expr = SemiringExpr::Var(x) * (SemiringExpr::Var(y) + SemiringExpr::Var(z));
        let p = read_once_confidence(&expr, &vars).unwrap();
        let expected = oracle::confidence_by_enumeration(&expr, &vars, SemiringKind::Bool);
        assert!((p - expected).abs() < 1e-12);
        // x·y + x·z shares x between summands: not read-once, must bail out.
        let shared = SemiringExpr::Var(x) * SemiringExpr::Var(y)
            + SemiringExpr::Var(x) * SemiringExpr::Var(z);
        assert!(read_once_confidence(&shared, &vars).is_none());
    }

    #[test]
    fn streaming_yields_tuples_in_order() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let prepared = engine.prepare(&paper_q1()).unwrap();
        let reference = prepared.execute(&EvalOptions::default()).unwrap();
        for threads in [1, 4] {
            let stream = prepared
                .execute_streaming(&EvalOptions::default().with_threads(threads))
                .unwrap();
            assert_eq!(stream.total_tuples(), reference.tuples.len());
            assert_eq!(stream.columns(), &reference.columns[..]);
            let tuples: Vec<ProbTuple> = stream.map(|t| t.unwrap()).collect();
            assert_eq!(tuples.len(), reference.tuples.len());
            for (s, r) in tuples.iter().zip(&reference.tuples) {
                assert_eq!(s.values, r.values);
                assert_eq!(s.confidence.to_bits(), r.confidence.to_bits());
            }
        }
    }

    #[test]
    fn streaming_partial_consumption_cancels_cleanly() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let prepared = engine.prepare(&paper_q1()).unwrap();
        let mut stream = prepared
            .execute_streaming(&EvalOptions::default().with_threads(2))
            .unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(first.confidence > 0.0);
        drop(stream); // must cancel and join workers without deadlocking
                      // The engine stays fully usable afterwards.
        let result = prepared.execute(&EvalOptions::default()).unwrap();
        assert_eq!(result.tuples.len(), 9);
    }

    #[test]
    fn parallel_execution_is_bit_identical() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let prepared = engine.prepare(&paper_q1()).unwrap();
        let seq = prepared
            .execute(&EvalOptions::default().with_threads(1))
            .unwrap();
        assert_eq!(seq.threads, 1);
        let par = prepared
            .execute(&EvalOptions::default().with_threads(4))
            .unwrap();
        assert_eq!(par.threads, 4.min(seq.tuples.len()));
        assert_eq!(seq.tuples.len(), par.tuples.len());
        for (a, b) in seq.tuples.iter().zip(&par.tuples) {
            assert_eq!(a.values, b.values);
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
            assert_eq!(a.aggregate_distributions, b.aggregate_distributions);
        }
    }

    #[test]
    fn pooled_execution_is_bit_identical_to_spawning() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let prepared = engine.prepare(&paper_q1()).unwrap();
        let spawned = prepared
            .execute(&EvalOptions::default().with_threads(4))
            .unwrap();
        let pool = Arc::new(WorkerPool::new(4).unwrap());
        // Several executions reuse the same pool — the serving pattern.
        for _ in 0..3 {
            let pooled = prepared
                .execute(
                    &EvalOptions::default()
                        .with_threads(4)
                        .with_pool(Arc::clone(&pool)),
                )
                .unwrap();
            assert_eq!(spawned.tuples.len(), pooled.tuples.len());
            for (a, b) in spawned.tuples.iter().zip(&pooled.tuples) {
                assert_eq!(a.values, b.values);
                assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
                assert_eq!(a.aggregate_distributions, b.aggregate_distributions);
            }
        }
        assert!(pool.executed_jobs() > 0, "work must run on the pool");
        assert_eq!(pool.panicked_jobs(), 0);
    }

    #[test]
    fn pooled_stream_drop_mid_stream_quiesces_and_pool_survives() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let prepared = engine.prepare(&paper_q1()).unwrap();
        let pool = Arc::new(WorkerPool::new(2).unwrap());
        let options = EvalOptions::default()
            .with_threads(2)
            .with_pool(Arc::clone(&pool));
        let mut stream = prepared.execute_streaming(&options).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(first.confidence > 0.0);
        // Dropping mid-stream must cancel the pool jobs and wait them out —
        // without killing the pool, which keeps serving later executions.
        drop(stream);
        let result = prepared.execute(&options).unwrap();
        assert_eq!(result.tuples.len(), 9);
        assert_eq!(pool.panicked_jobs(), 0);
        // Pool shutdown drains and joins cleanly afterwards (no leaked jobs;
        // stream state never retains the pool handle, so dropping the options
        // leaves this as the only reference).
        drop(options);
        Arc::try_unwrap(pool)
            .expect("no job may still hold the pool")
            .shutdown();
    }

    #[test]
    fn rewrite_cache_is_lru_bounded() {
        let engine = Engine::with_cache_config(
            figure1_db(),
            CacheConfig {
                max_entries: 2,
                max_bytes: usize::MAX,
            },
        );
        // Four distinct queries → four distinct structural keys.
        let queries = [
            Query::table("S").project(["shop"]),
            Query::table("S").project(["sid"]),
            Query::table("P1").project(["pid"]),
            Query::table("P2").project(["pid"]),
        ];
        for q in &queries {
            engine
                .prepare(q)
                .unwrap()
                .execute(&EvalOptions::default())
                .unwrap();
            let stats = engine.cache_stats();
            assert!(
                stats.rewrites <= 2,
                "rewrite cache exceeded bound: {stats:?}"
            );
            assert!(stats.rewrite_bytes > 0);
        }
        // Re-running an evicted query still gives correct results (recomputed).
        let again = engine
            .prepare(&queries[0])
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(again.tuples.len(), 2);
    }

    #[test]
    fn compact_artifacts_bounds_interner_and_preserves_results() {
        let engine = Engine::with_cache_config(
            figure1_db(),
            CacheConfig {
                max_entries: 4,
                max_bytes: usize::MAX,
            },
        );
        let q = paper_q1();
        let prepared = engine.prepare(&q).unwrap();
        let reference = prepared.execute(&EvalOptions::default()).unwrap();
        let before = engine.cache_stats();
        let stats = engine.compact_artifacts();
        assert_eq!(stats.generation, 1);
        assert!(
            stats.interned_after <= stats.interned_before,
            "compaction must not grow the arena: {stats:?}"
        );
        // LRU-evicted entries left dead interner nodes behind; with the small
        // bound above, compaction must actually retire some of them.
        assert!(before.interned >= stats.interned_after);
        let after = prepared.execute(&EvalOptions::default()).unwrap();
        for (a, b) in reference.tuples.iter().zip(&after.tuples) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }

    #[test]
    fn shared_artifacts_across_engines_reuse_compilations() {
        let db = figure1_db();
        let engine_a = Engine::new(db.clone());
        let engine_b = Engine::with_shared_artifacts(db, engine_a.shared_artifacts());
        let q = paper_q1();
        engine_a
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let misses_after_a = engine_a.cache_stats().misses;
        // Engine B executes the same query: every artifact is already cached.
        engine_b
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = engine_b.cache_stats();
        assert_eq!(
            stats.misses, misses_after_a,
            "engine B should not recompute"
        );
        assert!(stats.hits > 0);
    }

    #[test]
    fn database_mut_detaches_from_the_shared_store() {
        let db = figure1_db();
        let mut engine_a = Engine::new(db.clone());
        let engine_b = Engine::with_shared_artifacts(db, engine_a.shared_artifacts());
        let q = paper_q1();
        engine_b
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let b_before = engine_b.cache_stats();
        assert!(b_before.confidences > 0);
        // Mutating A's database must not invalidate B's artifacts (B's database is
        // unchanged, so its cached distributions are still correct) — A simply
        // walks away onto a fresh, empty store.
        #[allow(deprecated)]
        engine_a.database_mut();
        assert_eq!(engine_a.cache_stats(), CacheStats::default());
        assert_eq!(engine_b.cache_stats(), b_before);
        // A's post-mutation executions fill the fresh store, not B's.
        engine_a
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert!(engine_a.cache_stats().confidences > 0);
        assert_eq!(engine_b.cache_stats(), b_before);
    }

    #[test]
    fn apply_delta_on_a_shared_store_keeps_disjoint_entries() {
        // The apply_delta counterpart of the detach test: the store stays
        // shared, and only intersecting entries are evicted — for an insert-only
        // delta, none. (Deltas that re-weight or delete run strictly between
        // batches; see the `apply_delta` concurrency contract.)
        let db = figure1_db();
        let mut engine_a = Engine::new(db.clone());
        let engine_b = Engine::with_shared_artifacts(db, engine_a.shared_artifacts());
        let q = paper_q1();
        engine_b
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let b_before = engine_b.cache_stats();
        let stats = engine_a
            .apply_delta(Delta::new().insert("S", vec![6i64.into(), "Gap".into()], 0.4))
            .unwrap();
        assert_eq!(stats.evicted_artifacts, 0);
        // Still the same store, with every artifact intact: B's view of the
        // artifact caches is unchanged (hit/miss counters included).
        assert!(Arc::ptr_eq(
            &engine_a.shared_artifacts(),
            &engine_b.shared_artifacts()
        ));
        assert_eq!(engine_b.cache_stats(), b_before);
        // A's next execution of the same query re-runs step I (its rewrite was
        // evicted — S changed) but reuses every artifact whose provenance did
        // not gain the new tuple's variable.
        let result = engine_a
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        // The new S tuple (sid 6) has no PS join partner: still 9 result tuples.
        assert_eq!(result.tuples.len(), 9);
    }

    /// A scratch directory unique to one test, cleaned before use.
    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pvc-engine-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn confidences(engine: &Engine, q: &Query) -> Vec<u64> {
        engine
            .prepare(q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap()
            .tuples
            .iter()
            .map(|t| t.confidence.to_bits())
            .collect()
    }

    #[test]
    fn recovery_replays_acknowledged_deltas_bit_identically() {
        let dir = scratch_dir("recover");
        let wal = dir.join("t.wal");
        let storage = pvc_core::FsStorage::shared();
        let options = RecoverOptions::new(&wal).with_snapshot(dir.join("t.snap"));
        let q = Query::table("P1").project(["pid"]);

        let deltas = [
            Delta::new().insert("P1", vec![100i64.into(), 1i64.into()], 0.3),
            Delta::new().insert("P1", vec![101i64.into(), 2i64.into()], 0.6),
            Delta::new().set_probability("P1", 0, 0.9),
        ];
        // First "process": cold start (no snapshot, empty log), acknowledge
        // three deltas, then crash without saving anything.
        {
            let (mut engine, report) =
                Engine::recover_with(Arc::clone(&storage), figure1_db(), &options).unwrap();
            assert_eq!(report, RecoveryReport::default());
            for delta in &deltas {
                engine.apply_delta(delta.clone()).unwrap();
            }
            assert_eq!(engine.wal_high_water(), 3);
        } // drop = kill -9 as far as durable state is concerned

        // Second "process": every acknowledged delta replays from the log, and
        // the results are bit-identical to a never-crashed engine.
        let (engine, report) =
            Engine::recover_with(Arc::clone(&storage), figure1_db(), &options).unwrap();
        assert!(!report.snapshot_restored);
        assert_eq!(report.wal_replayed, 3);
        assert_eq!(report.wal_skipped, 0);
        assert_eq!(report.high_water, 3);
        let mut reference = Engine::new(figure1_db());
        for delta in &deltas {
            reference.apply_delta(delta.clone()).unwrap();
        }
        assert_eq!(confidences(&engine, &q), confidences(&reference, &q));

        // Third "process", after a snapshot: the snapshot carries the
        // high-water mark, the log rotates empty, nothing replays twice.
        engine
            .save_artifacts_with(storage.as_ref(), &dir.join("t.snap"))
            .unwrap();
        let mut engine = engine;
        engine.wal_mut().unwrap().rotate(3).unwrap();
        drop(engine);
        let (engine, report) =
            Engine::recover_with(Arc::clone(&storage), figure1_db(), &options).unwrap();
        assert!(report.snapshot_restored);
        assert_eq!(report.wal_replayed, 0);
        assert_eq!(report.high_water, 3);
        // New appends continue past the snapshotted prefix, never reusing a
        // sequence number.
        let mut engine = engine;
        engine
            .apply_delta(Delta::new().insert("P1", vec![102i64.into(), 3i64.into()], 0.5))
            .unwrap();
        assert_eq!(engine.wal_high_water(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_unacknowledged_record() {
        let dir = scratch_dir("torn-tail");
        let wal = dir.join("t.wal");
        let storage = pvc_core::FsStorage::shared();
        let options = RecoverOptions::new(&wal);
        {
            let (mut engine, _) =
                Engine::recover_with(Arc::clone(&storage), figure1_db(), &options).unwrap();
            engine
                .apply_delta(Delta::new().insert("P1", vec![100i64.into(), 1i64.into()], 0.3))
                .unwrap();
            engine
                .apply_delta(Delta::new().insert("P1", vec![101i64.into(), 2i64.into()], 0.6))
                .unwrap();
        }
        // Simulate a crash mid-append: amputate the last 5 bytes.
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
        let (engine, report) =
            Engine::recover_with(Arc::clone(&storage), figure1_db(), &options).unwrap();
        assert_eq!(report.wal_replayed, 1, "only the whole record replays");
        assert!(report.wal_tail_dropped_bytes > 0);
        // The recovered engine matches a reference that saw only delta 1.
        let mut reference = Engine::new(figure1_db());
        reference
            .apply_delta(Delta::new().insert("P1", vec![100i64.into(), 1i64.into()], 0.3))
            .unwrap();
        let q = Query::table("P1").project(["pid"]);
        assert_eq!(confidences(&engine, &q), confidences(&reference, &q));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_append_failure_refuses_the_delta_atomically() {
        let dir = scratch_dir("refuse");
        let options = RecoverOptions::new(dir.join("t.wal"));
        let faulty: Arc<dyn pvc_core::Storage> = Arc::new(pvc_core::FaultyStorage::new(
            11,
            pvc_core::FaultConfig {
                transient: 1.0,
                ..pvc_core::FaultConfig::none()
            },
        ));

        // An empty log cannot even be created on all-faulty storage: the
        // typed WAL error surfaces, never a panic.
        let err = Engine::recover_with(Arc::clone(&faulty), figure1_db(), &options).unwrap_err();
        assert!(matches!(err, Error::Wal(_)), "got {err:?}");

        // Seed a clean one-record log through healthy storage first.
        {
            let (mut engine, _) =
                Engine::recover_with(pvc_core::FsStorage::shared(), figure1_db(), &options)
                    .unwrap();
            engine
                .apply_delta(Delta::new().insert("P1", vec![100i64.into(), 1i64.into()], 0.3))
                .unwrap();
        }
        // Re-opening a clean log needs no writes, so recovery succeeds even on
        // the faulty storage — but the next append fails, and WAL-before-apply
        // must refuse the delta without touching the database.
        let (mut engine, report) =
            Engine::recover_with(Arc::clone(&faulty), figure1_db(), &options).unwrap();
        assert_eq!(report.wal_replayed, 1);
        let rows_before = engine.database().table("P1").unwrap().len();
        let hwm_before = engine.wal_high_water();
        let err = engine
            .apply_delta(Delta::new().insert("P1", vec![101i64.into(), 2i64.into()], 0.5))
            .unwrap_err();
        assert!(matches!(err, Error::Wal(_)), "got {err:?}");
        assert_eq!(engine.database().table("P1").unwrap().len(), rows_before);
        assert_eq!(engine.wal_high_water(), hwm_before);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
