//! The query engine: a fallible, plan-aware, reusable front-end over the two-step
//! evaluation pipeline of the paper (step I: the `⟦·⟧` rewriting of Fig. 4; step II:
//! d-tree compilation and probability computation, §5).
//!
//! The flow is *prepare once, execute many*:
//!
//! 1. [`Engine::new`] takes ownership of a [`Database`] and sets up the engine's
//!    compile-artifact caches;
//! 2. [`Engine::prepare`] validates a query **once** (the well-formedness checks of
//!    Definition 5), computes its output schema, classifies it against the
//!    tractability classes of §6 (`Q_ind` / `Q_hie` / general) and records the chosen
//!    evaluation strategy in an inspectable [`Plan`];
//! 3. [`PreparedQuery::execute`] runs steps I+II under explicit [`EvalOptions`],
//!    reusing the cached rewrite of the same query and the cached confidences /
//!    aggregate distributions of previously compiled expressions.
//!
//! For queries classified `Q_ind`/`Q_hie` over a Boolean tuple-independent database,
//! tuple confidences are computed by a **read-once fast path** that never builds a
//! d-tree: the provenance of hierarchical non-repeating queries factorises into
//! variable-disjoint sums and products, whose probabilities multiply directly. The
//! same gate covers MIN/MAX aggregate distributions over pairwise-independent terms,
//! which are assembled by the Proposition 1 closed form instead of a d-tree. The
//! fast path is self-checking (it bails out to full compilation on any expression
//! that is not of the required shape), so enabling it never changes results — only
//! speed.
//!
//! ## Caching & reuse
//!
//! The engine's compile-artifact caches are built on the hash-consed expression
//! arena of [`pvc_expr::intern`] and the bounded [`CompilationCache`] of
//! [`pvc_core::cache`]: every annotation and aggregate expression is interned into a
//! **canonical id** (stable under commutative operand reordering), and the computed
//! distributions are memoised under that id with an LRU entry/byte bound
//! ([`CacheConfig`], see [`Engine::with_cache_config`]). Structurally-equal
//! provenance therefore shares one cache entry even when different queries render it
//! in different operand orders, and [`CacheStats`] reports hits, misses, evictions
//! and *cross-query* hits.

use crate::database::Database;
use crate::error::Error;
use crate::prob_eval::{ProbTuple, QueryResult};
use crate::query::Query;
use crate::relation::PvcTable;
use crate::schema::Schema;
use crate::tractable::{classify, QueryClass};
use crate::value::Value;
use pvc_algebra::{AggOp, MonoidValue, SemiringKind, SemiringValue};
use pvc_core::{
    confidence_of, CacheConfig, CachedEvaluator, CompilationCache, CompileOptions, Compiler,
};
use pvc_expr::{Interner, SemimoduleExpr, SemiringExpr, VarSet, VarTable};
use pvc_prob::{Dist, MonoidDist, SemiringDist};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Options controlling one execution of a prepared query: how expressions are
/// compiled, whether the §6 tractable fast path may be used, and how much of the
/// result is materialised.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Options forwarded to the d-tree compiler (rule selection, node budget).
    pub compile: CompileOptions,
    /// Allow the read-once fast path for tuple confidences when the plan classified
    /// the query as tractable (`Q_ind`/`Q_hie`). On by default; results are identical
    /// either way.
    pub tractable_fast_path: bool,
    /// Materialise the exact distribution of every aggregation attribute. Disable
    /// (see [`EvalOptions::confidence_only`]) to skip the semimodule compilation when
    /// only tuple confidences are needed.
    pub aggregate_distributions: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalOptions {
    /// The default options: full compilation rules, fast path enabled, aggregate
    /// distributions materialised.
    pub fn new() -> Self {
        EvalOptions {
            compile: CompileOptions::default(),
            tractable_fast_path: true,
            aggregate_distributions: true,
        }
    }

    /// Compute tuple confidences only, skipping aggregate-distribution compilation —
    /// the cheapest useful result shape.
    pub fn confidence_only() -> Self {
        EvalOptions {
            aggregate_distributions: false,
            ..Self::new()
        }
    }

    /// Replace the compiler options (e.g. for ablations or to set a node budget).
    pub fn with_compile(mut self, compile: CompileOptions) -> Self {
        self.compile = compile;
        self
    }

    /// Set a d-tree node budget; compilation beyond it returns [`Error::Compile`].
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.compile.node_budget = Some(budget);
        self
    }

    /// Disable the tractable fast path (every confidence goes through a d-tree).
    pub fn without_fast_path(mut self) -> Self {
        self.tractable_fast_path = false;
        self
    }
}

/// The evaluation strategy recorded in a [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The query is in `Q_ind` (Definition 8): result tuples are pairwise
    /// independent and confidences are computed by read-once evaluation.
    IndependentFastPath,
    /// The query is in `Q_hie` (Definition 9): hierarchical provenance, compiled
    /// without Shannon expansion (read-once fast path for confidences).
    HierarchicalFastPath,
    /// No syntactic tractability guarantee: full knowledge compilation (which may
    /// still be fast — the classification is conservative).
    GeneralCompilation,
}

impl Strategy {
    /// True for the two strategies backed by the §6 tractability results.
    pub fn is_tractable(self) -> bool {
        !matches!(self, Strategy::GeneralCompilation)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::IndependentFastPath => write!(f, "independent fast path (Q_ind)"),
            Strategy::HierarchicalFastPath => write!(f, "hierarchical fast path (Q_hie)"),
            Strategy::GeneralCompilation => write!(f, "general knowledge compilation"),
        }
    }
}

/// The inspectable plan produced by [`Engine::prepare`]: what the validator and the
/// tractability analysis concluded about a query, before anything is executed.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The syntactic tractability class of §6.
    pub class: QueryClass,
    /// The evaluation strategy the engine will use.
    pub strategy: Strategy,
    /// The validated output schema.
    pub schema: Schema,
    /// Base tables referenced by the query, with multiplicity.
    pub base_tables: Vec<String>,
    /// Whether no base table occurs more than once (precondition of §6).
    pub non_repeating: bool,
    /// Whether every referenced base table is tuple-independent (precondition of §6).
    pub tuple_independent_input: bool,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: {}", self.strategy)?;
        writeln!(f, "  class:  {:?}", self.class)?;
        writeln!(f, "  schema: {}", self.schema)?;
        writeln!(
            f,
            "  tables: {:?} (non-repeating: {}, tuple-independent: {})",
            self.base_tables, self.non_repeating, self.tuple_independent_input
        )
    }
}

/// Sizes and behaviour counters of the engine's compile-artifact caches (see
/// [`Engine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cached step-I rewrites, keyed by query.
    pub rewrites: usize,
    /// Cached annotation distributions/confidences, keyed by canonical expression id.
    pub confidences: usize,
    /// Cached aggregate distributions, keyed by canonical semimodule-expression id.
    pub aggregates: usize,
    /// Distinct nodes in the hash-consed expression arena (semiring + semimodule).
    pub interned: usize,
    /// Approximate payload bytes held by the artifact caches.
    pub bytes: usize,
    /// Artifact-cache lookups answered from the cache.
    pub hits: u64,
    /// Artifact-cache lookups that had to compute.
    pub misses: u64,
    /// Hits whose entry was inserted while executing a *different* query — the
    /// cross-query reuse enabled by canonical interning.
    pub cross_query_hits: u64,
    /// Entries evicted by the LRU bounds.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct Caches {
    rewrites: RefCell<BTreeMap<String, Arc<PvcTable>>>,
    interner: RefCell<Interner>,
    artifacts: RefCell<CompilationCache>,
}

impl Caches {
    fn with_config(config: CacheConfig) -> Self {
        Caches {
            rewrites: RefCell::new(BTreeMap::new()),
            interner: RefCell::new(Interner::new()),
            artifacts: RefCell::new(CompilationCache::new(config)),
        }
    }

    fn clear(&self) {
        self.rewrites.borrow_mut().clear();
        *self.interner.borrow_mut() = Interner::new();
        self.artifacts.borrow_mut().clear();
    }
}

/// FNV-1a over a byte string: the stable scope tag used to attribute cache entries
/// to the query that inserted them (for cross-query hit accounting).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The query engine: owns a [`Database`] and a cache of compile artifacts, and hands
/// out validated [`PreparedQuery`] values.
#[derive(Debug)]
pub struct Engine {
    db: Database,
    caches: Caches,
}

impl Engine {
    /// Create an engine owning the given database (default cache bounds).
    pub fn new(db: Database) -> Self {
        Engine {
            db,
            caches: Caches::default(),
        }
    }

    /// Create an engine with explicit compile-artifact cache bounds (entry and byte
    /// LRU limits; see [`CacheConfig`]).
    pub fn with_cache_config(db: Database, config: CacheConfig) -> Self {
        Engine {
            db,
            caches: Caches::with_config(config),
        }
    }

    /// The owned database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database. Invalidates every cached compile artifact,
    /// since cached rewrites and probabilities are only valid against the data and
    /// variable distributions they were computed from.
    pub fn database_mut(&mut self) -> &mut Database {
        self.caches.clear();
        &mut self.db
    }

    /// Consume the engine, returning the database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Current sizes and behaviour counters of the compile-artifact caches.
    pub fn cache_stats(&self) -> CacheStats {
        let artifacts = self.caches.artifacts.borrow();
        let counters = artifacts.counters();
        let interner = self.caches.interner.borrow();
        CacheStats {
            rewrites: self.caches.rewrites.borrow().len(),
            confidences: artifacts.semiring_entries(),
            aggregates: artifacts.aggregate_entries(),
            interned: interner.len() + interner.agg_len(),
            bytes: artifacts.bytes(),
            hits: counters.hits,
            misses: counters.misses,
            cross_query_hits: counters.cross_scope_hits,
            evictions: counters.evictions,
        }
    }

    /// Validate a query, compute its output schema, classify it against the §6
    /// tractability classes, and record the chosen strategy in a [`Plan`].
    ///
    /// Returns [`Error::Validation`] for every query that violates Definition 5 or
    /// references unknown tables/columns — nothing in the prepared pipeline panics on
    /// malformed input.
    pub fn prepare(&self, query: &Query) -> Result<PreparedQuery<'_>, Error> {
        let plan = plan_query(&self.db, query)?;
        Ok(PreparedQuery {
            engine: self,
            query: query.clone(),
            plan,
        })
    }

    /// One-shot evaluation without an engine (no caching): validate, rewrite,
    /// compute probabilities. This is what the deprecated free-function shims call;
    /// prefer [`Engine::prepare`] for anything executed more than once.
    pub fn execute_once(
        db: &Database,
        query: &Query,
        options: &EvalOptions,
    ) -> Result<QueryResult, Error> {
        let plan = plan_query(db, query)?;
        execute_pipeline(db, query, &plan, options, None)
    }
}

/// A query that has been validated and planned by [`Engine::prepare`], ready for
/// (repeated) execution.
#[derive(Debug)]
pub struct PreparedQuery<'e> {
    engine: &'e Engine,
    query: Query,
    plan: Plan,
}

impl PreparedQuery<'_> {
    /// The plan recorded at preparation time.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The validated output schema.
    pub fn schema(&self) -> &Schema {
        &self.plan.schema
    }

    /// The prepared query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Run steps I+II under the given options. Step I is cached across executions of
    /// the same query on this engine; step II reuses previously compiled confidences
    /// and aggregate distributions.
    pub fn execute(&self, options: &EvalOptions) -> Result<QueryResult, Error> {
        execute_pipeline(
            self.engine.database(),
            &self.query,
            &self.plan,
            options,
            Some(&self.engine.caches),
        )
    }
}

/// Validate + classify: the planning half of `prepare`.
fn plan_query(db: &Database, query: &Query) -> Result<Plan, Error> {
    let schema = query.output_schema(db).map_err(Error::Validation)?;
    let class = classify(query, db);
    let tuple_independent_input = query.base_tables().iter().all(|name| {
        db.table(name)
            .map(PvcTable::is_tuple_independent)
            .unwrap_or(false)
    });
    let strategy = match class {
        QueryClass::Qind => Strategy::IndependentFastPath,
        QueryClass::Qhie => Strategy::HierarchicalFastPath,
        QueryClass::General => Strategy::GeneralCompilation,
    };
    Ok(Plan {
        class,
        strategy,
        schema,
        base_tables: query.base_tables().iter().map(|s| s.to_string()).collect(),
        non_repeating: query.is_non_repeating(),
        tuple_independent_input,
    })
}

/// Steps I+II with optional caching.
fn execute_pipeline(
    db: &Database,
    query: &Query,
    plan: &Plan,
    options: &EvalOptions,
    caches: Option<&Caches>,
) -> Result<QueryResult, Error> {
    // A node budget makes compilation observably fallible, so cached successes
    // computed without (or with a different) budget must not mask the error; the
    // compile-artifact caches are bypassed for budgeted executions. The step-I
    // rewrite does not depend on compile options and stays cached. Every other
    // option only changes *how* the exact result is computed, never the result.
    let artifact_caches = if options.compile.node_budget.is_some() {
        None
    } else {
        caches
    };

    // Step I: the rewriting ⟦·⟧, cached per query. The query was already validated
    // by `prepare`, so the cold path skips re-validation and stamps the plan's
    // schema directly.
    let start = Instant::now();
    let query_key = format!("{query:?}");
    // The scope tag attributes artifact-cache inserts to this query, so that hits
    // from other queries can be counted as cross-query reuse.
    let scope = fnv64(query_key.as_bytes());
    let cached_rewrite = caches.and_then(|c| c.rewrites.borrow().get(&query_key).cloned());
    let table: Arc<PvcTable> = match cached_rewrite {
        Some(table) => table,
        None => {
            let mut table = crate::exec::rewrite_planned(db, query)?;
            table.schema = plan.schema.clone();
            table.name = "result".to_string();
            let table = Arc::new(table);
            if let Some(c) = caches {
                c.rewrites
                    .borrow_mut()
                    .insert(query_key, Arc::clone(&table));
            }
            table
        }
    };
    let rewrite_time = start.elapsed();

    // Step II: compile every annotation and aggregate; compute probabilities.
    let start = Instant::now();
    let try_fast = options.tractable_fast_path
        && plan.strategy.is_tractable()
        && db.kind == SemiringKind::Bool;
    let mut fast_path_hits = 0usize;
    let mut agg_fast_path_hits = 0usize;
    let mut tuples = Vec::with_capacity(table.tuples.len());
    for tuple in &table.tuples {
        let confidence = tuple_confidence(
            db,
            &tuple.annotation,
            options,
            try_fast,
            &mut fast_path_hits,
            artifact_caches,
            scope,
        )?;
        let mut aggregate_distributions = BTreeMap::new();
        if options.aggregate_distributions {
            for (column, value) in table.schema.columns().iter().zip(&tuple.values) {
                if let Value::Agg(expr) = value {
                    let dist = aggregate_distribution(
                        db,
                        expr,
                        options,
                        try_fast,
                        &mut agg_fast_path_hits,
                        artifact_caches,
                        scope,
                    )?;
                    aggregate_distributions.insert(column.name.clone(), dist);
                }
            }
        }
        tuples.push(ProbTuple {
            values: tuple.values.clone(),
            confidence,
            aggregate_distributions,
        });
    }
    let probability_time = start.elapsed();

    Ok(QueryResult {
        columns: table
            .schema
            .names()
            .into_iter()
            .map(str::to_string)
            .collect(),
        tuples,
        rewrite_time,
        probability_time,
        fast_path_hits,
        agg_fast_path_hits,
    })
}

/// The confidence of one annotation: canonical cache, then read-once fast path,
/// then cache-aware compilation.
fn tuple_confidence(
    db: &Database,
    annotation: &SemiringExpr,
    options: &EvalOptions,
    try_fast: bool,
    fast_path_hits: &mut usize,
    caches: Option<&Caches>,
    scope: u64,
) -> Result<f64, Error> {
    if let Some(c) = caches {
        let id = c.interner.borrow_mut().intern(annotation);
        // Warm path: reduce the cached distribution to its confidence under the
        // borrow — no per-tuple clone.
        if let Some(p) = c
            .artifacts
            .borrow_mut()
            .map_semiring(id, scope, confidence_of)
        {
            return Ok(p);
        }
        if try_fast {
            if let Some(p) = read_once_confidence(annotation, &db.vars) {
                *fast_path_hits += 1;
                // The fast path only runs over the Boolean semiring, so the
                // confidence determines the full distribution — cache it so later
                // lookups (and sub-d-tree composition) can reuse it.
                let dist: SemiringDist = Dist::from_pairs([
                    (SemiringValue::Bool(true), p),
                    (SemiringValue::Bool(false), 1.0 - p),
                ]);
                c.artifacts.borrow_mut().insert_semiring(id, scope, &dist);
                return Ok(p);
            }
        }
        let mut interner = c.interner.borrow_mut();
        let mut artifacts = c.artifacts.borrow_mut();
        let mut eval = CachedEvaluator::new(
            &mut interner,
            &mut artifacts,
            &db.vars,
            db.kind,
            options.compile.clone(),
            scope,
        );
        let dist = eval.fill_semiring(id)?;
        return Ok(confidence_of(&dist));
    }
    if try_fast {
        if let Some(p) = read_once_confidence(annotation, &db.vars) {
            *fast_path_hits += 1;
            return Ok(p);
        }
    }
    compiled_confidence(db, annotation, options)
}

/// Full step-II confidence: compile the annotation into a d-tree and sum the mass of
/// the non-zero semiring values.
fn compiled_confidence(
    db: &Database,
    annotation: &SemiringExpr,
    options: &EvalOptions,
) -> Result<f64, Error> {
    let mut compiler = Compiler::with_options(&db.vars, db.kind, options.compile.clone());
    let tree = compiler.compile_semiring(annotation)?;
    let dist = tree.semiring_distribution(&db.vars, db.kind)?;
    Ok(dist
        .iter()
        .filter(|(v, _)| !v.is_zero())
        .map(|(_, p)| p)
        .sum())
}

/// The exact distribution of one aggregate: canonical cache, then the MIN/MAX
/// read-once closed form, then cache-aware compilation.
fn aggregate_distribution(
    db: &Database,
    expr: &SemimoduleExpr,
    options: &EvalOptions,
    try_fast: bool,
    agg_fast_path_hits: &mut usize,
    caches: Option<&Caches>,
    scope: u64,
) -> Result<MonoidDist, Error> {
    if let Some(c) = caches {
        let id = c.interner.borrow_mut().intern_semimodule(expr);
        if let Some(d) = c.artifacts.borrow_mut().get_aggregate(id, scope) {
            return Ok(d);
        }
        if try_fast {
            if let Some(d) = min_max_read_once_distribution(expr, &db.vars) {
                *agg_fast_path_hits += 1;
                c.artifacts.borrow_mut().insert_aggregate(id, scope, &d);
                return Ok(d);
            }
        }
        let mut interner = c.interner.borrow_mut();
        let mut artifacts = c.artifacts.borrow_mut();
        let mut eval = CachedEvaluator::new(
            &mut interner,
            &mut artifacts,
            &db.vars,
            db.kind,
            options.compile.clone(),
            scope,
        );
        return Ok(eval.fill_aggregate(id)?);
    }
    if try_fast {
        if let Some(d) = min_max_read_once_distribution(expr, &db.vars) {
            *agg_fast_path_hits += 1;
            return Ok(d);
        }
    }
    let mut compiler = Compiler::with_options(&db.vars, db.kind, options.compile.clone());
    let tree = compiler.compile_semimodule(expr)?;
    Ok(tree.monoid_distribution(&db.vars, db.kind)?)
}

/// Read-once confidence evaluation over the Boolean semiring: the probability that a
/// sum/product of *variable-disjoint* subexpressions is non-zero multiplies out
/// directly, with no d-tree. Returns `None` whenever the expression is not of that
/// shape (shared variables, comparisons, non-Boolean variables) — the caller then
/// falls back to full compilation, so this is always sound.
fn read_once_confidence(expr: &SemiringExpr, vars: &VarTable) -> Option<f64> {
    match expr {
        SemiringExpr::Const(c) => Some(if c.is_zero() { 0.0 } else { 1.0 }),
        SemiringExpr::Var(v) => {
            if vars.kind(*v) == SemiringKind::Bool {
                Some(vars.prob_true(*v))
            } else {
                None
            }
        }
        SemiringExpr::Mul(children) => {
            pairwise_var_disjoint(children)?;
            let mut p = 1.0;
            for child in children {
                p *= read_once_confidence(child, vars)?;
            }
            Some(p)
        }
        SemiringExpr::Add(children) => {
            pairwise_var_disjoint(children)?;
            let mut q = 1.0;
            for child in children {
                q *= 1.0 - read_once_confidence(child, vars)?;
            }
            Some(1.0 - q)
        }
        // Comparisons need the full machinery (pruning, convolution).
        SemiringExpr::CmpSS(..) | SemiringExpr::CmpMM(..) => None,
    }
}

/// Read-once fast path for MIN/MAX aggregate distributions (Proposition 1 of the
/// paper): when the terms `Φ_i ⊗ m_i` of a MIN/MAX semimodule expression have
/// pairwise variable-disjoint, read-once Boolean coefficients, the terms are
/// independent and the distribution has the closed form
///
/// ```text
/// P[MIN = v] = Π_{m_i < v} (1 − p_i) · (1 − Π_{m_i = v} (1 − p_i)),
/// P[MIN = 0_M] = Π_i (1 − p_i)            (no term present)
/// ```
///
/// with `p_i = P[Φ_i ≠ ⊥]` (symmetrically for MAX with `>` in place of `<`). The
/// result has at most `n + 1` support values and is computed in `O(n log n)` — no
/// d-tree, no convolution. Returns `None` whenever the expression is not of that
/// shape (SUM/COUNT/PROD, shared variables, non-read-once coefficients); the caller
/// then falls back to full compilation, so this is always sound.
fn min_max_read_once_distribution(expr: &SemimoduleExpr, vars: &VarTable) -> Option<MonoidDist> {
    if !matches!(expr.op, AggOp::Min | AggOp::Max) {
        return None;
    }
    if expr.terms.is_empty() {
        return Some(Dist::point(expr.op.identity()));
    }
    // Terms must be pairwise variable-disjoint to be independent.
    pairwise_disjoint_sets(expr.terms.iter().map(|t| t.vars()))?;
    let mut present: Vec<(MonoidValue, f64)> = Vec::with_capacity(expr.terms.len());
    for t in &expr.terms {
        present.push((t.value, read_once_confidence(&t.coeff, vars)?));
    }
    // Winning value first: ascending for MIN, descending for MAX.
    match expr.op {
        AggOp::Min => present.sort_by_key(|t| t.0),
        _ => present.sort_by_key(|t| std::cmp::Reverse(t.0)),
    }
    let mut pairs = Vec::with_capacity(present.len() + 1);
    // Probability that every term strictly better than the current value is absent.
    let mut p_better_absent = 1.0;
    let mut i = 0;
    while i < present.len() {
        let value = present[i].0;
        let mut p_absent_here = 1.0;
        while i < present.len() && present[i].0 == value {
            p_absent_here *= 1.0 - present[i].1;
            i += 1;
        }
        pairs.push((value, p_better_absent * (1.0 - p_absent_here)));
        p_better_absent *= p_absent_here;
    }
    // No term present: the monoid's neutral element.
    pairs.push((expr.op.identity(), p_better_absent));
    Some(Dist::from_pairs(pairs))
}

/// `Some(())` iff the given variable sets are pairwise disjoint (the sum of the
/// sizes equals the size of the union).
fn pairwise_disjoint_sets(sets: impl Iterator<Item = VarSet>) -> Option<()> {
    let mut total = 0usize;
    let mut all = VarSet::new();
    for vs in sets {
        total += vs.len();
        all = all.union(&vs);
    }
    (all.len() == total).then_some(())
}

/// `Some(())` iff the children mention pairwise disjoint variable sets.
fn pairwise_var_disjoint(children: &[SemiringExpr]) -> Option<()> {
    pairwise_disjoint_sets(children.iter().map(|c| c.vars()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{figure1_db, paper_q1};
    use crate::query::{AggSpec, Predicate, Query, QueryError};
    use pvc_algebra::{AggOp, CmpOp};
    use pvc_expr::oracle;

    #[test]
    fn prepare_validates_and_classifies() {
        let db = figure1_db();
        let engine = Engine::new(db);
        // A tuple-independent base table is Q_ind.
        let prepared = engine.prepare(&Query::table("S")).unwrap();
        assert_eq!(prepared.plan().class, QueryClass::Qind);
        assert_eq!(prepared.plan().strategy, Strategy::IndependentFastPath);
        assert!(prepared.plan().strategy.is_tractable());
        assert!(prepared.plan().tuple_independent_input);
        assert_eq!(prepared.schema().names(), vec!["sid", "shop"]);
        // Unknown tables are validation errors.
        let err = engine.prepare(&Query::table("missing")).unwrap_err();
        assert!(matches!(
            err,
            Error::Validation(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn execute_matches_oracle_and_uses_fast_path() {
        let db = figure1_db();
        let engine = Engine::new(db);
        // π_shop(S) is Q_ind with read-once annotations (x1+x2+x3 per shop).
        let q = Query::table("S").project(["shop"]);
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(prepared.plan().class, QueryClass::Qind);
        let result = prepared.execute(&EvalOptions::default()).unwrap();
        assert_eq!(result.tuples.len(), 2);
        assert_eq!(result.fast_path_hits, 2);
        let table = crate::exec::try_evaluate(engine.database(), &q).unwrap();
        for (prob, tuple) in result.tuples.iter().zip(&table.tuples) {
            let expected = oracle::confidence_by_enumeration(
                &tuple.annotation,
                &engine.database().vars,
                SemiringKind::Bool,
            );
            assert!((prob.confidence - expected).abs() < 1e-9);
        }
        // Disabling the fast path must give identical confidences.
        let slow = prepared
            .execute(&EvalOptions::default().without_fast_path())
            .unwrap();
        for (a, b) in result.tuples.iter().zip(&slow.tuples) {
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn caches_fill_and_invalidate() {
        let db = figure1_db();
        let mut engine = Engine::new(db);
        let q = paper_q1();
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        prepared.execute(&EvalOptions::default()).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.rewrites, 1);
        assert!(stats.confidences >= 1);
        assert!(stats.interned >= 1);
        assert!(stats.misses >= 1);
        // A second execution answers every annotation from the cache: no new
        // entries, no new misses, strictly more hits. Re-running the *same* query
        // is not cross-query reuse.
        let again = prepared.execute(&EvalOptions::default()).unwrap();
        assert_eq!(again.tuples.len(), 9);
        let warm = engine.cache_stats();
        assert_eq!(warm.confidences, stats.confidences);
        assert_eq!(warm.misses, stats.misses);
        assert!(warm.hits > stats.hits);
        assert_eq!(warm.cross_query_hits, stats.cross_query_hits);
        // Touching the database invalidates everything, counters included.
        engine.database_mut();
        assert_eq!(engine.cache_stats(), CacheStats::default());
    }

    #[test]
    fn structurally_equal_renderings_hit_across_queries() {
        // P1 ∪ P2 and P2 ∪ P1 are different queries whose rewritings render the
        // same provenance with summands in opposite orders; canonical interning
        // must make the second execution hit the first's cache entries.
        let db = figure1_db();
        let engine = Engine::new(db);
        let qa = Query::table("P1")
            .union(Query::table("P2"))
            .project(["pid"]);
        let qb = Query::table("P2")
            .union(Query::table("P1"))
            .project(["pid"]);
        let ra = engine
            .prepare(&qa)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        assert_eq!(engine.cache_stats().cross_query_hits, 0);
        let rb = engine
            .prepare(&qb)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = engine.cache_stats();
        assert!(
            stats.cross_query_hits >= 1,
            "expected cross-query reuse, got {stats:?}"
        );
        for (a, b) in ra.tuples.iter().zip(&rb.tuples) {
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn lru_bound_evicts_but_preserves_results() {
        let db = figure1_db();
        let engine = Engine::with_cache_config(
            figure1_db(),
            CacheConfig {
                max_entries: 2,
                max_bytes: usize::MAX,
            },
        );
        let reference = Engine::new(db);
        let q = paper_q1();
        let bounded = engine
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let unbounded = reference
            .prepare(&q)
            .unwrap()
            .execute(&EvalOptions::default())
            .unwrap();
        let stats = engine.cache_stats();
        assert!(stats.confidences <= 2);
        assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
        for (a, b) in bounded.tuples.iter().zip(&unbounded.tuples) {
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn confidence_only_skips_aggregates() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let q = Query::table("P1").group_agg(
            Vec::<String>::new(),
            vec![AggSpec::new(AggOp::Min, "weight", "m")],
        );
        let prepared = engine.prepare(&q).unwrap();
        let full = prepared.execute(&EvalOptions::default()).unwrap();
        assert!(full.tuples[0].aggregate_distributions.contains_key("m"));
        let slim = prepared.execute(&EvalOptions::confidence_only()).unwrap();
        assert!(slim.tuples[0].aggregate_distributions.is_empty());
        assert!((slim.tuples[0].confidence - full.tuples[0].confidence).abs() < 1e-12);
    }

    #[test]
    fn node_budget_surfaces_as_compile_error() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let q2 = paper_q1()
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
            .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
            .project(["shop"]);
        let prepared = engine.prepare(&q2).unwrap();
        let err = prepared
            .execute(
                &EvalOptions::default()
                    .with_node_budget(1)
                    .without_fast_path(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Compile(_)));
        // The budget must also be enforced on a *warm* engine: a prior unbudgeted
        // success must not be served from the cache in place of the error.
        prepared.execute(&EvalOptions::default()).unwrap();
        assert!(engine.cache_stats().confidences > 0);
        let err = prepared
            .execute(
                &EvalOptions::default()
                    .with_node_budget(1)
                    .without_fast_path(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Compile(_)));
    }

    #[test]
    fn q2_is_planned_hierarchical() {
        let db = figure1_db();
        let engine = Engine::new(db);
        let agg = Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]);
        let prepared = engine.prepare(&agg).unwrap();
        assert_eq!(prepared.plan().class, QueryClass::Qhie);
        assert_eq!(prepared.plan().strategy, Strategy::HierarchicalFastPath);
        let rendered = prepared.plan().to_string();
        assert!(rendered.contains("hierarchical fast path"));
    }

    #[test]
    fn min_max_aggregate_fast_path_matches_compilation() {
        let db = figure1_db();
        let engine = Engine::new(db);
        // MIN/MAX over P1's four independent weights: Q_ind, disjoint coefficients.
        for op in [AggOp::Min, AggOp::Max] {
            let q = Query::table("P1")
                .group_agg(Vec::<String>::new(), vec![AggSpec::new(op, "weight", "m")]);
            let prepared = engine.prepare(&q).unwrap();
            assert!(prepared.plan().strategy.is_tractable());
            let fast = prepared.execute(&EvalOptions::default()).unwrap();
            assert_eq!(
                fast.agg_fast_path_hits, 1,
                "{op:?} should use the closed form"
            );
            // A fresh engine without the fast path must produce the same
            // distribution via full compilation.
            let slow_engine = Engine::new(figure1_db());
            let slow = slow_engine
                .prepare(&q)
                .unwrap()
                .execute(&EvalOptions::default().without_fast_path())
                .unwrap();
            assert_eq!(slow.agg_fast_path_hits, 0);
            let df = &fast.tuples[0].aggregate_distributions["m"];
            let ds = &slow.tuples[0].aggregate_distributions["m"];
            assert!(df.approx_eq(ds, 1e-9), "{op:?}: {df} vs {ds}");
        }
    }

    #[test]
    fn min_max_closed_form_agrees_with_oracle() {
        let mut vars = VarTable::new();
        let x = vars.boolean("x", 0.3);
        let y = vars.boolean("y", 0.6);
        let z = vars.boolean("z", 0.8);
        // Duplicate values across terms exercise the same-value grouping.
        let alpha = SemimoduleExpr::from_terms(
            AggOp::Min,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(10)),
                (SemiringExpr::Var(y), MonoidValue::Fin(10)),
                (SemiringExpr::Var(z), MonoidValue::Fin(25)),
            ],
        );
        let dist = min_max_read_once_distribution(&alpha, &vars).unwrap();
        let expected = oracle::semimodule_dist_by_enumeration(&alpha, &vars, SemiringKind::Bool);
        assert!(dist.approx_eq(&expected, 1e-9), "{dist} vs {expected}");
        // Shared variables must bail out.
        let shared = SemimoduleExpr::from_terms(
            AggOp::Max,
            vec![
                (SemiringExpr::Var(x), MonoidValue::Fin(1)),
                (
                    SemiringExpr::Var(x) * SemiringExpr::Var(y),
                    MonoidValue::Fin(2),
                ),
            ],
        );
        assert!(min_max_read_once_distribution(&shared, &vars).is_none());
        // SUM is not covered by Proposition 1's closed form.
        let sum = SemimoduleExpr::from_terms(
            AggOp::Sum,
            vec![(SemiringExpr::Var(x), MonoidValue::Fin(1))],
        );
        assert!(min_max_read_once_distribution(&sum, &vars).is_none());
    }

    #[test]
    fn read_once_confidence_agrees_with_oracle() {
        let mut vars = VarTable::new();
        let x = vars.boolean("x", 0.3);
        let y = vars.boolean("y", 0.6);
        let z = vars.boolean("z", 0.8);
        // x·(y + z): read-once.
        let expr = SemiringExpr::Var(x) * (SemiringExpr::Var(y) + SemiringExpr::Var(z));
        let p = read_once_confidence(&expr, &vars).unwrap();
        let expected = oracle::confidence_by_enumeration(&expr, &vars, SemiringKind::Bool);
        assert!((p - expected).abs() < 1e-12);
        // x·y + x·z shares x between summands: not read-once, must bail out.
        let shared = SemiringExpr::Var(x) * SemiringExpr::Var(y)
            + SemiringExpr::Var(x) * SemiringExpr::Var(z);
        assert!(read_once_confidence(&shared, &vars).is_none());
    }
}
