//! Cell values of pvc-tables.
//!
//! A pvc-table cell holds either a constant (string or integer) or a semimodule
//! expression (an aggregated value conditioned on random variables), cf. Definition 6
//! of the paper.

use pvc_algebra::MonoidValue;
use pvc_expr::SemimoduleExpr;
use std::fmt;

/// A value stored in a pvc-table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string constant.
    Str(String),
    /// An integer constant.
    Int(i64),
    /// A semimodule expression (only present in aggregation columns).
    Agg(SemimoduleExpr),
}

impl Value {
    /// The string payload, if this is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The semimodule expression, if this is an aggregation value.
    pub fn as_agg(&self) -> Option<&SemimoduleExpr> {
        match self {
            Value::Agg(e) => Some(e),
            _ => None,
        }
    }

    /// The integer payload as a monoid value (used when aggregating this column).
    pub fn as_monoid_value(&self) -> Option<MonoidValue> {
        self.as_int().map(MonoidValue::Fin)
    }

    /// True if the value is a constant (not a semimodule expression).
    pub fn is_constant(&self) -> bool {
        !matches!(self, Value::Agg(_))
    }

    /// A hashable/orderable key for grouping and duplicate elimination.
    ///
    /// Panics on aggregation values: the query language `Q` (Definition 5) forbids
    /// grouping, projecting or unioning on aggregation attributes, and the executor
    /// enforces that restriction before calling this.
    pub fn key(&self) -> KeyValue {
        match self {
            Value::Str(s) => KeyValue::Str(s.clone()),
            Value::Int(i) => KeyValue::Int(*i),
            Value::Agg(_) => panic!("aggregation values cannot be used as grouping keys"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Agg(e) => write!(f, "{e}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<SemimoduleExpr> for Value {
    fn from(e: SemimoduleExpr) -> Self {
        Value::Agg(e)
    }
}

/// A constant cell value usable as a grouping / comparison key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyValue {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
}

impl fmt::Display for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyValue::Int(i) => write!(f, "{i}"),
            KeyValue::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::AggOp;

    #[test]
    fn accessors() {
        let s = Value::from("M&S");
        let i = Value::from(42i64);
        assert_eq!(s.as_str(), Some("M&S"));
        assert_eq!(i.as_int(), Some(42));
        assert!(s.as_int().is_none());
        assert!(i.as_str().is_none());
        assert!(s.is_constant());
        assert_eq!(i.as_monoid_value(), Some(MonoidValue::Fin(42)));
    }

    #[test]
    fn agg_values() {
        let e = SemimoduleExpr::constant(AggOp::Sum, MonoidValue::Fin(3));
        let v = Value::from(e.clone());
        assert!(!v.is_constant());
        assert_eq!(v.as_agg(), Some(&e));
    }

    #[test]
    fn keys_order_and_display() {
        let a = Value::from("a").key();
        let b = Value::from("b").key();
        assert!(a < b);
        assert_eq!(Value::from(7i64).key(), KeyValue::Int(7));
        assert_eq!(a.to_string(), "a");
        assert_eq!(Value::from(7i64).to_string(), "7");
    }

    #[test]
    #[should_panic(expected = "grouping keys")]
    fn agg_key_panics() {
        Value::from(SemimoduleExpr::zero(AggOp::Min)).key();
    }
}
