//! Query evaluation, step II: probability computation for the tuples produced by the
//! rewriting (§5 of the paper), by compiling every annotation and semimodule
//! expression into a decomposition tree.
//!
//! The functions here are one-shot conveniences; the [`crate::Engine`] runs the same
//! pipeline with compile-artifact caching and the tractable fast path of §6, and is
//! the preferred entry point for repeated execution.

use crate::database::Database;
use crate::engine::{Engine, EvalOptions};
use crate::error::Error;
use crate::query::Query;
use crate::relation::PvcTable;
use crate::value::Value;
use pvc_core::{CompileOptions, Compiler};
use pvc_prob::MonoidDist;
use std::collections::BTreeMap;
use std::time::Duration;

/// One result tuple with its probabilistic interpretation.
#[derive(Debug, Clone)]
pub struct ProbTuple {
    /// The data values of the tuple (aggregation columns show their expressions).
    pub values: Vec<Value>,
    /// The probability that the tuple is present (annotation ≠ `0_S`).
    pub confidence: f64,
    /// For every aggregation column: the exact distribution of the aggregate value.
    /// Empty when the result was requested confidence-only
    /// (see [`EvalOptions::confidence_only`]).
    pub aggregate_distributions: BTreeMap<String, MonoidDist>,
}

/// The fully evaluated result of a query: tuples, confidences and aggregate
/// distributions, plus timing of the two evaluation phases.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Column names of the result.
    pub columns: Vec<String>,
    /// The result tuples.
    pub tuples: Vec<ProbTuple>,
    /// Wall-clock time of step I (tuple and expression construction, `⟦·⟧`).
    pub rewrite_time: Duration,
    /// Wall-clock time of step II (d-tree compilation and probability computation).
    pub probability_time: Duration,
    /// How many tuple confidences were computed by the tractable fast path of §6
    /// (read-once evaluation, no d-tree built). Zero when the fast path was disabled
    /// or the query was not classified as tractable.
    pub fast_path_hits: usize,
    /// How many aggregate distributions were assembled by the Proposition 1 closed
    /// form for MIN/MAX over independent read-once terms (no d-tree built). Zero
    /// when the fast path was disabled or the query was not classified as tractable.
    pub agg_fast_path_hits: usize,
    /// How many worker threads computed step II (see [`EvalOptions::threads`]; `1`
    /// means the sequential in-thread path). Purely informational — results are
    /// identical for every thread count.
    pub threads: usize,
    /// The execution's span tree, collected only when [`EvalOptions::profile`]
    /// is set (`None` otherwise). See `pvc_core::obs` and `docs/OBSERVABILITY.md`.
    pub profile: Option<pvc_core::obs::ExecutionProfile>,
}

impl QueryResult {
    /// The confidence of the tuple whose data values match `key` (compared by display
    /// form), if any.
    pub fn confidence_of(&self, key: &[&str]) -> Option<f64> {
        self.tuples
            .iter()
            .find(|t| {
                key.len() <= t.values.len()
                    && key.iter().zip(&t.values).all(|(k, v)| v.to_string() == *k)
            })
            .map(|t| t.confidence)
    }
}

/// Evaluate a query end-to-end: run the rewriting `⟦·⟧`, then compute the exact
/// probability of every result tuple and the exact distribution of every aggregate.
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::prepare(..)?.execute(..)?`, which validates instead of panicking"
)]
pub fn evaluate_with_probabilities(db: &Database, query: &Query) -> QueryResult {
    match Engine::execute_once(db, query, &EvalOptions::default()) {
        Ok(result) => result,
        Err(e) => panic!("query evaluation failed: {e}"),
    }
}

/// As `evaluate_with_probabilities`, with explicit compilation options (used by the
/// ablation benchmarks).
#[deprecated(
    since = "0.2.0",
    note = "use `Engine::prepare(..)?.execute(..)?` with `EvalOptions::with_compile(..)`"
)]
pub fn evaluate_with_options(
    db: &Database,
    query: &Query,
    options: &CompileOptions,
) -> QueryResult {
    let options = EvalOptions::default().with_compile(options.clone());
    match Engine::execute_once(db, query, &options) {
        Ok(result) => result,
        Err(e) => panic!("query evaluation failed: {e}"),
    }
}

/// Compute only the per-tuple confidences of an already-evaluated pvc-table. This is
/// the `P(·)` phase measured separately in Experiment F.
pub fn try_tuple_confidences(db: &Database, table: &PvcTable) -> Result<Vec<f64>, Error> {
    table
        .tuples
        .iter()
        .map(|t| {
            let mut compiler = Compiler::new(&db.vars, db.kind);
            let tree = compiler.compile_semiring(&t.annotation)?;
            let dist = tree.semiring_distribution(&db.vars, db.kind)?;
            Ok(dist
                .iter()
                .filter(|(v, _)| !v.is_zero())
                .map(|(_, p)| p)
                .sum())
        })
        .collect()
}

/// Compute per-tuple confidences, panicking on compilation failure.
#[deprecated(since = "0.2.0", note = "use `try_tuple_confidences`")]
pub fn tuple_confidences(db: &Database, table: &PvcTable) -> Vec<f64> {
    match try_tuple_confidences(db, table) {
        Ok(confidences) => confidences,
        Err(e) => panic!("confidence computation failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::tests::{figure1_db, paper_q1};
    use crate::exec::try_evaluate;
    use crate::query::{AggSpec, Predicate};
    use pvc_algebra::{AggOp, CmpOp, MonoidValue, SemiringKind};
    use pvc_expr::oracle;

    fn run(db: &Database, query: &Query) -> QueryResult {
        Engine::execute_once(db, query, &EvalOptions::default()).unwrap()
    }

    #[test]
    fn q1_tuple_confidences_match_oracle() {
        let db = figure1_db();
        let result = run(&db, &paper_q1());
        assert_eq!(result.tuples.len(), 9);
        // Cross-check every confidence against brute-force enumeration.
        let table = try_evaluate(&db, &paper_q1()).unwrap();
        for (prob_tuple, tuple) in result.tuples.iter().zip(&table.tuples) {
            let expected =
                oracle::confidence_by_enumeration(&tuple.annotation, &db.vars, SemiringKind::Bool);
            assert!((prob_tuple.confidence - expected).abs() < 1e-9);
        }
        assert!(result.confidence_of(&["M&S", "10"]).is_some());
    }

    #[test]
    fn q2_shop_probabilities_match_oracle() {
        // The paper's Q2: shops whose maximal price is at most 50.
        let db = figure1_db();
        let q2 = paper_q1()
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
            .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
            .project(["shop"]);
        let result = run(&db, &q2);
        assert_eq!(result.tuples.len(), 2);
        let table = try_evaluate(&db, &q2).unwrap();
        for (prob_tuple, tuple) in result.tuples.iter().zip(&table.tuples) {
            let expected =
                oracle::confidence_by_enumeration(&tuple.annotation, &db.vars, SemiringKind::Bool);
            assert!(
                (prob_tuple.confidence - expected).abs() < 1e-9,
                "mismatch for {:?}: got {}, expected {}",
                prob_tuple.values[0].to_string(),
                prob_tuple.confidence,
                expected
            );
        }
    }

    #[test]
    fn aggregate_distributions_are_reported() {
        let db = figure1_db();
        let q = Query::table("P1").group_agg(
            Vec::<String>::new(),
            vec![
                AggSpec::new(AggOp::Min, "weight", "min_w"),
                AggSpec::count("cnt"),
            ],
        );
        let result = run(&db, &q);
        assert_eq!(result.tuples.len(), 1);
        let t = &result.tuples[0];
        assert!((t.confidence - 1.0).abs() < 1e-12);
        let min_dist = &t.aggregate_distributions["min_w"];
        // MIN over four optional weights 4, 8, 7, 6 each present with probability 1/2.
        assert!((min_dist.prob(&MonoidValue::Fin(4)) - 0.5).abs() < 1e-9);
        assert!((min_dist.prob(&MonoidValue::PosInf) - 0.0625).abs() < 1e-9);
        let cnt_dist = &t.aggregate_distributions["cnt"];
        assert!((cnt_dist.prob(&MonoidValue::Fin(2)) - 6.0 / 16.0).abs() < 1e-9);
        // Cross-check the COUNT distribution against the oracle.
        let table = try_evaluate(&db, &q).unwrap();
        let expr = table.tuples[0].values[1].as_agg().unwrap();
        let oracle_dist =
            oracle::semimodule_dist_by_enumeration(expr, &db.vars, SemiringKind::Bool);
        assert!(cnt_dist.approx_eq(&oracle_dist, 1e-9));
    }

    #[test]
    fn timings_are_recorded() {
        let db = figure1_db();
        let result = run(&db, &paper_q1());
        assert!(result.rewrite_time > Duration::ZERO);
        assert!(result.probability_time > Duration::ZERO);
        assert_eq!(result.columns, vec!["shop", "price"]);
    }

    #[test]
    fn tuple_confidences_helper() {
        let db = figure1_db();
        let table = try_evaluate(&db, &paper_q1()).unwrap();
        let confs = try_tuple_confidences(&db, &table).unwrap();
        assert_eq!(confs.len(), table.len());
        assert!(confs.iter().all(|p| *p > 0.0 && *p <= 1.0));
    }

    #[test]
    fn deprecated_shims_still_work() {
        let db = figure1_db();
        #[allow(deprecated)]
        let result = evaluate_with_probabilities(&db, &paper_q1());
        assert_eq!(result.tuples.len(), 9);
        let table = try_evaluate(&db, &paper_q1()).unwrap();
        #[allow(deprecated)]
        let confs = tuple_confidences(&db, &table);
        assert_eq!(confs.len(), 9);
    }
}
