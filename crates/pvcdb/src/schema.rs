//! Relation schemas: named columns, flagged as data or aggregation attributes.

use std::fmt;

/// A single column of a pvc-table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (qualified names such as `s_suppkey` are just plain strings).
    pub name: String,
    /// True if the column holds semimodule expressions (an aggregation attribute
    /// produced by the `$` operator). The query language restricts how such columns
    /// may be used (Definition 5 of the paper).
    pub is_aggregation: bool,
}

impl Column {
    /// A data (non-aggregation) column.
    pub fn data(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            is_aggregation: false,
        }
    }

    /// An aggregation column.
    pub fn aggregation(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            is_aggregation: true,
        }
    }
}

/// The schema of a pvc-table: an ordered list of named columns.
///
/// The annotation column `Φ` is *not* part of the schema; it is stored separately on
/// every tuple.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// A schema of data columns with the given names.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        Schema {
            columns: names.into_iter().map(|n| Column::data(n)).collect(),
        }
    }

    /// A schema from explicit columns.
    pub fn from_columns(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The index of a column, panicking with a helpful message if absent.
    #[deprecated(
        since = "0.2.0",
        note = "use `Schema::index_of` and handle the `None` instead of panicking"
    )]
    pub fn expect_index(&self, name: &str) -> usize {
        self.require_index(name)
    }

    /// Internal panicking lookup backing the deprecated [`Schema::expect_index`] and
    /// the paths where the column set was already validated by `Query::output_schema`.
    pub(crate) fn require_index(&self, name: &str) -> usize {
        self.index_of(name).unwrap_or_else(|| {
            panic!(
                "column `{name}` not found; available columns: {:?}",
                self.columns.iter().map(|c| &c.name).collect::<Vec<_>>()
            )
        })
    }

    /// True if the named column exists and is an aggregation column.
    pub fn is_aggregation(&self, name: &str) -> bool {
        self.index_of(name)
            .map(|i| self.columns[i].is_aggregation)
            .unwrap_or(false)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Concatenate two schemas (for the product operator), reporting the first
    /// duplicate column name (rename columns first to avoid it).
    pub fn try_concat(&self, other: &Schema) -> Result<Schema, String> {
        for c in &other.columns {
            if self.index_of(&c.name).is_some() {
                return Err(c.name.clone());
            }
        }
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Ok(Schema { columns })
    }

    /// Concatenate two schemas (for the product operator). Panics on duplicate column
    /// names — rename columns first, or use [`Schema::try_concat`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Schema::try_concat`, which reports the duplicate column instead of panicking"
    )]
    pub fn concat(&self, other: &Schema) -> Schema {
        match self.try_concat(other) {
            Ok(schema) => schema,
            Err(dup) => panic!("duplicate column `{dup}` in product; rename one side first"),
        }
    }

    /// The schema restricted to the given columns (in the given order), reporting the
    /// first missing column name.
    pub fn try_project(&self, names: &[String]) -> Result<Schema, String> {
        let columns = names
            .iter()
            .map(|n| {
                self.index_of(n)
                    .map(|i| self.columns[i].clone())
                    .ok_or_else(|| n.clone())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Schema { columns })
    }

    /// The schema restricted to the given columns (in the given order). Panics on a
    /// missing column — use [`Schema::try_project`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Schema::try_project`, which reports the missing column instead of panicking"
    )]
    pub fn project(&self, names: &[String]) -> Schema {
        Schema {
            columns: names
                .iter()
                .map(|n| self.columns[self.require_index(n)].clone())
                .collect(),
        }
    }

    /// Rename a column, reporting the name if it does not exist.
    pub fn try_rename(&self, old: &str, new: &str) -> Result<Schema, String> {
        let idx = self.index_of(old).ok_or_else(|| old.to_string())?;
        let mut columns = self.columns.clone();
        columns[idx].name = new.to_string();
        Ok(Schema { columns })
    }

    /// Rename a column. Panics if `old` does not exist — use [`Schema::try_rename`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Schema::try_rename`, which reports the missing column instead of panicking"
    )]
    pub fn rename(&self, old: &str, new: &str) -> Schema {
        let mut columns = self.columns.clone();
        let idx = self.require_index(old);
        columns[idx].name = new.to_string();
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", c.name)?;
            if c.is_aggregation {
                write!(f, "*")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::new(["sid", "shop"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("shop"), Some(1));
        assert_eq!(s.index_of("price"), None);
        assert!(!s.is_aggregation("shop"));
        assert_eq!(s.names(), vec!["sid", "shop"]);
    }

    #[test]
    fn aggregation_columns() {
        let s = Schema::from_columns(vec![Column::data("shop"), Column::aggregation("total")]);
        assert!(s.is_aggregation("total"));
        assert!(!s.is_aggregation("shop"));
        assert_eq!(s.to_string(), "(shop, total*)");
    }

    #[test]
    fn concat_project_rename() {
        let a = Schema::new(["sid", "shop"]);
        let b = Schema::new(["pid", "price"]);
        let c = a.try_concat(&b).unwrap();
        assert_eq!(c.arity(), 4);
        let p = c
            .try_project(&["shop".to_string(), "price".to_string()])
            .unwrap();
        assert_eq!(p.names(), vec!["shop", "price"]);
        let r = c.try_rename("price", "cost").unwrap();
        assert_eq!(r.index_of("cost"), Some(3));
        assert_eq!(r.index_of("price"), None);
    }

    #[test]
    fn fallible_replacements_report_the_offending_column() {
        let a = Schema::new(["sid"]);
        assert_eq!(a.try_concat(&Schema::new(["sid"])), Err("sid".to_string()));
        assert_eq!(
            a.try_project(&["nope".to_string()]),
            Err("nope".to_string())
        );
        assert_eq!(a.try_rename("nope", "x"), Err("nope".to_string()));
        assert_eq!(a.index_of("nope"), None);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "duplicate column")]
    fn deprecated_concat_with_duplicates_still_panics() {
        let a = Schema::new(["sid"]);
        let b = Schema::new(["sid"]);
        a.concat(&b);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "not found")]
    fn deprecated_expect_index_still_panics() {
        Schema::new(["a"]).expect_index("b");
    }
}
