//! # pvc-db
//!
//! **pvc-tables** (probabilistic value-conditioned tables, §3 of the paper), a
//! positive relational algebra with grouping/aggregation over them, and the query
//! **engine** that evaluates it:
//!
//! * [`PvcTable`] / [`Database`] — relations with an annotation column of semiring
//!   expressions and (after aggregation) semimodule expressions as values;
//! * [`Query`] — the query language `Q` of Definition 5, with well-formedness checks;
//! * [`Engine`] / [`PreparedQuery`] — the public entry point: `prepare` validates a
//!   query once, classifies it against the tractability classes of §6 and records an
//!   inspectable [`Plan`]; `execute` runs the two evaluation steps under explicit
//!   [`EvalOptions`], with compile-artifact caching and a read-once fast path for
//!   tractable queries;
//! * [`Engine::save_artifacts`] / [`Engine::with_artifacts_from`] — persistent
//!   compile-artifact snapshots: a restarted process reloads the interned
//!   expressions, cached distributions, compiled d-tree arenas and step-I
//!   rewrites and answers its first query warm (see `docs/SNAPSHOT_FORMAT.md`);
//! * [`Error`] — the single error enum of every fallible entry point;
//! * [`exec::try_evaluate`] — step I of query evaluation: the rewriting `⟦·⟧` of
//!   Fig. 4, computing result tuples together with their annotations;
//! * [`prob_eval`] — step II helpers: compiling every annotation and aggregate into a
//!   decomposition tree (via `pvc-core`) and computing exact tuple confidences and
//!   aggregate distributions;
//! * [`tractable`] — the syntactic tractability classes `Q_ind` / `Q_hie` of §6.
//!
//! ```
//! use pvc_db::{Database, Engine, EvalOptions, Query, Schema};
//!
//! let mut db = Database::new();
//! db.create_table("S", Schema::new(["sid", "shop"]));
//! let (table, vars) = db.table_and_vars_mut("S")?;
//! table.push_independent(vec![1i64.into(), "M&S".into()], 0.4, vars);
//!
//! let engine = Engine::new(db);
//! let prepared = engine.prepare(&Query::table("S").project(["shop"]))?;
//! assert!(prepared.plan().strategy.is_tractable());
//! let result = prepared.execute(&EvalOptions::default())?;
//! assert!((result.tuples[0].confidence - 0.4).abs() < 1e-12);
//! # Ok::<(), pvc_db::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod engine;
pub mod error;
pub mod exec;
pub mod prob_eval;
pub mod query;
pub mod relation;
pub mod schema;
pub(crate) mod snapshot;
pub mod tractable;
pub mod value;
pub mod wal;

pub use database::Database;
pub use engine::{
    CacheStats, Delta, DeltaStats, DeltaTotals, Engine, EngineStats, EvalOptions, Plan,
    PreparedQuery, RecoverOptions, RecoveryReport, SnapshotStats, SnapshotTotals, Strategy,
    TupleStream,
};
pub use error::Error;
pub use exec::try_evaluate;
pub use prob_eval::{try_tuple_confidences, ProbTuple, QueryResult};
// Re-exported so engine users can bound/share the caches (and inspect snapshot
// failures) without depending on `pvc-core`.
pub use pvc_core::{CacheConfig, Durability, PersistError, SharedArtifacts, Storage};
pub use query::{AggSpec, Predicate, Query, QueryError};
pub use relation::{PvcTable, Tuple};
pub use schema::{Column, Schema};
pub use tractable::{classify, flatten_spj, QueryClass, SpjBlock};
pub use value::{KeyValue, Value};
pub use wal::{DeltaWal, LoggedDelta};

#[allow(deprecated)]
pub use exec::evaluate;
#[allow(deprecated)]
pub use prob_eval::{evaluate_with_probabilities, tuple_confidences};
