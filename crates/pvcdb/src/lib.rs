//! # pvc-db
//!
//! **pvc-tables** (probabilistic value-conditioned tables, §3 of the paper) and a
//! positive relational algebra with grouping/aggregation over them:
//!
//! * [`PvcTable`] / [`Database`] — relations with an annotation column of semiring
//!   expressions and (after aggregation) semimodule expressions as values;
//! * [`Query`] — the query language `Q` of Definition 5, with well-formedness checks;
//! * [`exec::evaluate`] — step I of query evaluation: the rewriting `⟦·⟧` of Fig. 4,
//!   computing result tuples together with their annotations;
//! * [`prob_eval::evaluate_with_probabilities`] — step II: compiling every annotation
//!   and aggregate into a decomposition tree (via `pvc-core`) and computing exact
//!   tuple confidences and aggregate distributions;
//! * [`tractable`] — the syntactic tractability classes `Q_ind` / `Q_hie` of §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod exec;
pub mod prob_eval;
pub mod query;
pub mod relation;
pub mod schema;
pub mod tractable;
pub mod value;

pub use database::Database;
pub use exec::evaluate;
pub use prob_eval::{evaluate_with_probabilities, tuple_confidences, ProbTuple, QueryResult};
pub use query::{AggSpec, Predicate, Query, QueryError};
pub use relation::{PvcTable, Tuple};
pub use schema::{Column, Schema};
pub use tractable::{classify, flatten_spj, QueryClass, SpjBlock};
pub use value::{KeyValue, Value};
