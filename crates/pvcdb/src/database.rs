//! A pvc-database: a set of pvc-tables over one shared probability space
//! (Definition 6 of the paper).

use crate::error::Error;
use crate::relation::PvcTable;
use crate::schema::Schema;
use pvc_algebra::SemiringKind;
use pvc_expr::VarTable;
use std::collections::BTreeMap;

/// A pvc-database: named pvc-tables plus the registry of random variables they are
/// annotated with, interpreted in a fixed annotation semiring.
#[derive(Debug, Clone)]
pub struct Database {
    tables: BTreeMap<String, PvcTable>,
    /// The random variables (the induced probability space Ω).
    pub vars: VarTable,
    /// The annotation semiring (Boolean for set semantics, N for bag semantics).
    pub kind: SemiringKind,
}

impl Database {
    /// An empty database over the Boolean annotation semiring.
    pub fn new() -> Self {
        Self::with_kind(SemiringKind::Bool)
    }

    /// An empty database over an explicit annotation semiring.
    pub fn with_kind(kind: SemiringKind) -> Self {
        Database {
            tables: BTreeMap::new(),
            vars: VarTable::new(),
            kind,
        }
    }

    /// Add (or replace) a table.
    pub fn add_table(&mut self, table: PvcTable) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Create an empty table with the given schema, add it, and return its name.
    pub fn create_table(&mut self, name: &str, schema: Schema) {
        self.add_table(PvcTable::new(name, schema));
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&PvcTable> {
        self.tables.get(name)
    }

    /// Look up a table by name, reporting the available names on failure.
    ///
    /// This is the fallible lookup used throughout the engine; prefer it over the
    /// deprecated, panicking [`Database::expect_table`].
    pub fn table_or_err(&self, name: &str) -> Result<&PvcTable, Error> {
        self.tables.get(name).ok_or_else(|| Error::UnknownTable {
            name: name.to_string(),
            available: self.tables.keys().cloned().collect(),
        })
    }

    /// Look up a table by name, panicking with the available names if absent.
    #[deprecated(since = "0.2.0", note = "use `table_or_err` (or `table`) instead")]
    pub fn expect_table(&self, name: &str) -> &PvcTable {
        match self.table_or_err(name) {
            Ok(table) => table,
            Err(e) => panic!("{e}"),
        }
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut PvcTable> {
        self.tables.get_mut(name)
    }

    /// Mutable access to both a table and the variable registry, for bulk loading of
    /// tuple-independent data.
    pub fn table_and_vars_mut(
        &mut self,
        name: &str,
    ) -> Result<(&mut PvcTable, &mut VarTable), Error> {
        let available: Vec<String> = self.tables.keys().cloned().collect();
        match self.tables.get_mut(name) {
            Some(table) => Ok((table, &mut self.vars)),
            None => Err(Error::UnknownTable {
                name: name.to_string(),
                available,
            }),
        }
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Total number of tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(PvcTable::len).sum()
    }

    /// True if every table is tuple-independent (the precondition of the tractability
    /// results of §6).
    pub fn is_tuple_independent(&self) -> bool {
        self.tables.values().all(PvcTable::is_tuple_independent)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid", "shop"]));
        assert!(db.table("S").is_some());
        assert!(db.table("T").is_none());
        assert_eq!(db.table_names(), vec!["S"]);
        assert_eq!(db.kind, SemiringKind::Bool);
    }

    #[test]
    fn load_tuple_independent_data() {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid", "shop"]));
        {
            let (table, vars) = db.table_and_vars_mut("S").unwrap();
            table.push_independent(vec![1i64.into(), "M&S".into()], 0.3, vars);
            table.push_independent(vec![2i64.into(), "Gap".into()], 0.9, vars);
        }
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(db.vars.len(), 2);
        assert!(db.is_tuple_independent());
    }

    #[test]
    fn missing_table_is_an_error() {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid"]));
        let err = db.table_or_err("missing").unwrap_err();
        assert!(matches!(
            &err,
            Error::UnknownTable { name, available }
                if name == "missing" && available == &["S".to_string()]
        ));
        assert!(err.to_string().contains("not found"));
        let err = db.table_and_vars_mut("missing").unwrap_err();
        assert!(matches!(err, Error::UnknownTable { .. }));
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn deprecated_expect_table_still_panics() {
        #[allow(deprecated)]
        Database::new().expect_table("missing");
    }

    /// Coverage for the PR-1/2 shim deprecation: every panicking entry point of the
    /// public API is `#[deprecated]` and has a fallible replacement that reports the
    /// failure as a value. The shims exercised here are the complete list —
    /// `Database::expect_table`, `Schema::{expect_index, concat, project, rename}`
    /// and `PvcTable::{push, value}`; everything else on the public surface returns
    /// `Option`/`Result` on bad input.
    #[test]
    fn every_panicking_shim_has_a_fallible_replacement() {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid", "shop"]));

        // Database::expect_table -> Database::table_or_err / Database::table.
        assert!(db.table_or_err("missing").is_err());

        let schema = db.table("S").unwrap().schema.clone();
        // Schema::expect_index -> Schema::index_of.
        assert_eq!(schema.index_of("missing"), None);
        // Schema::concat -> Schema::try_concat.
        assert_eq!(schema.try_concat(&schema), Err("sid".to_string()));
        // Schema::project -> Schema::try_project.
        assert_eq!(
            schema.try_project(&["missing".to_string()]),
            Err("missing".to_string())
        );
        // Schema::rename -> Schema::try_rename.
        assert_eq!(
            schema.try_rename("missing", "x"),
            Err("missing".to_string())
        );

        let table = db.table_mut("S").unwrap();
        // PvcTable::push -> PvcTable::try_push.
        assert!(table
            .try_push(
                vec![1i64.into()],
                pvc_expr::SemiringExpr::Const(pvc_algebra::SemiringValue::Bool(true)),
            )
            .is_err());
        // PvcTable::value -> PvcTable::try_value.
        assert_eq!(table.try_value(0, "shop"), None);
    }
}
