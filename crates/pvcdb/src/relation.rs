//! pvc-tables: relations whose tuples carry a semiring annotation and may hold
//! semimodule expressions as values (§3, Definition 6 of the paper).

use crate::schema::Schema;
use crate::value::Value;
use pvc_expr::{SemiringExpr, VarTable};
use std::fmt;

/// One tuple of a pvc-table: the cell values plus the annotation `Φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Cell values, aligned with the table's schema.
    pub values: Vec<Value>,
    /// The annotation — a semiring expression over the database's random variables.
    pub annotation: SemiringExpr,
}

impl Tuple {
    /// Create a tuple.
    pub fn new(values: Vec<Value>, annotation: SemiringExpr) -> Self {
        Tuple { values, annotation }
    }
}

/// A pvc-table: a schema plus annotated tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct PvcTable {
    /// Table name (used by queries to reference base relations).
    pub name: String,
    /// The schema (the annotation column is implicit).
    pub schema: Schema,
    /// The annotated tuples.
    pub tuples: Vec<Tuple>,
}

impl PvcTable {
    /// An empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        PvcTable {
            name: name.into(),
            schema,
            tuples: Vec::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the table has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple with an explicit annotation, reporting an arity mismatch
    /// against the schema instead of panicking.
    pub fn try_push(&mut self, values: Vec<Value>, annotation: SemiringExpr) -> Result<(), String> {
        if values.len() != self.schema.arity() {
            return Err(format!(
                "tuple arity {} does not match schema {} of table {}",
                values.len(),
                self.schema,
                self.name
            ));
        }
        self.tuples.push(Tuple::new(values, annotation));
        Ok(())
    }

    /// Append a tuple with an explicit annotation. Panics on an arity mismatch — use
    /// [`PvcTable::try_push`].
    #[deprecated(
        since = "0.2.0",
        note = "use `PvcTable::try_push`, which reports arity mismatches instead of panicking"
    )]
    pub fn push(&mut self, values: Vec<Value>, annotation: SemiringExpr) {
        if let Err(message) = self.try_push(values, annotation) {
            panic!("{message}");
        }
    }

    /// Append a tuple annotated with a *fresh* Boolean random variable with
    /// probability `p` — the tuple-independent table construction used throughout the
    /// paper's experiments. Returns the created variable's expression.
    pub fn push_independent(
        &mut self,
        values: Vec<Value>,
        p: f64,
        vars: &mut VarTable,
    ) -> SemiringExpr {
        let label = format!("{}#{}", self.name, self.tuples.len());
        let var = vars.boolean(label, p);
        let annotation = SemiringExpr::Var(var);
        if let Err(message) = self.try_push(values, annotation.clone()) {
            panic!("{message}");
        }
        annotation
    }

    /// Append a deterministic tuple (annotation `1_S` in the Boolean semiring).
    pub fn push_certain(&mut self, values: Vec<Value>) {
        let annotation = SemiringExpr::Const(pvc_algebra::SemiringValue::Bool(true));
        if let Err(message) = self.try_push(values, annotation) {
            panic!("{message}");
        }
    }

    /// The value of a named column in a given tuple, or `None` if the row is out of
    /// range or the column does not exist.
    pub fn try_value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.schema.index_of(column)?;
        self.tuples.get(row).map(|t| &t.values[idx])
    }

    /// The value of a named column in a given tuple. Panics on an unknown column or
    /// an out-of-range row — use [`PvcTable::try_value`].
    #[deprecated(
        since = "0.2.0",
        note = "use `PvcTable::try_value`, which returns `None` instead of panicking"
    )]
    pub fn value(&self, row: usize, column: &str) -> &Value {
        &self.tuples[row].values[self.schema.require_index(column)]
    }

    /// Iterate over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// True if every tuple value is a constant (no semimodule expressions) and every
    /// annotation is a single, distinct variable — the *tuple-independent* property
    /// required by the tractability results of §6.
    pub fn is_tuple_independent(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.tuples.iter().all(|t| {
            t.values.iter().all(Value::is_constant)
                && match &t.annotation {
                    SemiringExpr::Var(v) => seen.insert(*v),
                    _ => false,
                }
        })
    }

    /// Render the table as an aligned text grid (annotation column included), for
    /// examples and debugging.
    pub fn render(&self) -> String {
        let mut header: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        header.push("Φ".to_string());
        let mut rows: Vec<Vec<String>> = vec![header];
        for t in &self.tuples {
            let mut row: Vec<String> = t.values.iter().map(|v| v.to_string()).collect();
            row.push(t.annotation.to_string());
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|i| rows.iter().map(|r| r[i].chars().count()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (ri, row) in rows.iter().enumerate() {
            for (value, width) in row.iter().zip(&widths) {
                out.push_str(value);
                out.push_str(&" ".repeat(width - value.chars().count() + 2));
            }
            out.push('\n');
            if ri == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for PvcTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {}", self.name, self.schema)?;
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_algebra::SemiringValue;

    #[test]
    fn push_and_lookup() {
        let mut vars = VarTable::new();
        let mut t = PvcTable::new("S", Schema::new(["sid", "shop"]));
        t.push_independent(vec![1i64.into(), "M&S".into()], 0.5, &mut vars);
        t.push_independent(vec![2i64.into(), "Gap".into()], 0.7, &mut vars);
        assert_eq!(t.len(), 2);
        assert_eq!(t.try_value(0, "shop").and_then(Value::as_str), Some("M&S"));
        assert_eq!(t.try_value(1, "sid").and_then(Value::as_int), Some(2));
        assert_eq!(t.try_value(2, "sid"), None);
        assert_eq!(t.try_value(0, "nope"), None);
        assert!(t.is_tuple_independent());
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn certain_tuples_are_not_tuple_independent() {
        let mut t = PvcTable::new("R", Schema::new(["a"]));
        t.push_certain(vec![1i64.into()]);
        assert!(!t.is_tuple_independent());
    }

    #[test]
    fn repeated_variable_breaks_tuple_independence() {
        let mut vars = VarTable::new();
        let x = vars.boolean("x", 0.5);
        let mut t = PvcTable::new("R", Schema::new(["a"]));
        t.try_push(vec![1i64.into()], SemiringExpr::Var(x)).unwrap();
        t.try_push(vec![2i64.into()], SemiringExpr::Var(x)).unwrap();
        assert!(!t.is_tuple_independent());
    }

    #[test]
    fn try_push_reports_arity_mismatches() {
        let mut t = PvcTable::new("R", Schema::new(["a", "b"]));
        let err = t
            .try_push(
                vec![1i64.into()],
                SemiringExpr::Const(SemiringValue::Bool(true)),
            )
            .unwrap_err();
        assert!(err.contains("arity 1"), "unexpected message: {err}");
        assert!(t.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "arity")]
    fn deprecated_push_still_panics_on_arity_mismatch() {
        let mut t = PvcTable::new("R", Schema::new(["a", "b"]));
        t.push(
            vec![1i64.into()],
            SemiringExpr::Const(SemiringValue::Bool(true)),
        );
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "not found")]
    fn deprecated_value_still_panics_on_unknown_column() {
        let mut t = PvcTable::new("R", Schema::new(["a"]));
        t.push_certain(vec![1i64.into()]);
        t.value(0, "nope");
    }

    #[test]
    fn render_contains_values_and_annotations() {
        let mut vars = VarTable::new();
        let mut t = PvcTable::new("S", Schema::new(["sid", "shop"]));
        t.push_independent(vec![1i64.into(), "M&S".into()], 0.5, &mut vars);
        let rendered = t.render();
        assert!(rendered.contains("shop"));
        assert!(rendered.contains("M&S"));
        assert!(rendered.contains("Φ"));
    }
}
