//! Syntactic tractability analysis: the query classes `Q_ind` and `Q_hie` of §6 of the
//! paper, built around the *hierarchical* property of non-repeating
//! select–project–join queries.
//!
//! For a query `π_{A̅} σ_φ (Q_1 × … × Q_n)` and an attribute `A`, let `A*` be the set
//! of attributes transitively equated with `A` by `φ` and `at(A*)` the set of relation
//! occurrences containing an attribute from `A*`. The query is **hierarchical** if for
//! every two attributes `A`, `B` that are neither in the head `A̅` nor equated with a
//! constant, `at(A*)` and `at(B*)` are disjoint or one contains the other.
//!
//! Hierarchical non-repeating queries over tuple-independent tables are tractable
//! (their provenance is read-once); the classes of Definition 8/9 extend this to
//! aggregation. The analysis below conservatively classifies a query: `General` only
//! means that tractability could not be established syntactically, not that the
//! instance is hard — the compiler still often succeeds quickly.

use crate::database::Database;
use crate::query::{Predicate, Query};
use pvc_expr::independence::UnionFind;
use std::collections::{BTreeMap, BTreeSet};

/// The tractability class assigned to a query by the syntactic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// The query produces pairwise independent result tuples (Definition 8).
    Qind,
    /// The query is in the tractable class `Q_hie` (Definition 9).
    Qhie,
    /// Tractability could not be established syntactically.
    General,
}

/// A flattened select–project–join block: the leaves (base relations), the equality
/// atoms of the selection, the constant bindings, and the head attributes.
#[derive(Debug, Clone, Default)]
pub struct SpjBlock {
    /// Relation occurrences: `(occurrence index, table name, columns)`.
    pub relations: Vec<(String, Vec<String>)>,
    /// Column-to-column equalities from selections / joins.
    pub equalities: Vec<(String, String)>,
    /// Columns equated with a constant.
    pub constant_columns: BTreeSet<String>,
    /// The head (projection) attributes. `None` means "project everything".
    pub head: Option<Vec<String>>,
}

impl SpjBlock {
    /// Which relation occurrence (by index) owns each column.
    fn column_owner(&self) -> BTreeMap<String, usize> {
        let mut owner = BTreeMap::new();
        for (idx, (_, cols)) in self.relations.iter().enumerate() {
            for c in cols {
                owner.insert(c.clone(), idx);
            }
        }
        owner
    }

    /// The attribute equivalence classes induced by the equality atoms, as a map from
    /// column name to class representative.
    fn equivalence_classes(&self) -> BTreeMap<String, usize> {
        let mut columns: Vec<String> = self.column_owner().keys().cloned().collect();
        columns.sort();
        let index: BTreeMap<&str, usize> = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.as_str(), i))
            .collect();
        let mut uf = UnionFind::new(columns.len());
        for (a, b) in &self.equalities {
            if let (Some(&ia), Some(&ib)) = (index.get(a.as_str()), index.get(b.as_str())) {
                uf.union(ia, ib);
            }
        }
        columns
            .iter()
            .map(|c| (c.clone(), uf.find(index[c.as_str()])))
            .collect()
    }

    /// Check the hierarchical property.
    pub fn is_hierarchical(&self) -> bool {
        let owner = self.column_owner();
        let classes = self.equivalence_classes();
        let head: BTreeSet<&String> = self.head.iter().flatten().collect();

        // Head attributes and constant-bound attributes are exempt, and so is every
        // attribute in their equivalence class reachable through the head/constant —
        // per the definition we exempt classes containing a head or constant column.
        let mut exempt_classes: BTreeSet<usize> = BTreeSet::new();
        for (col, class) in &classes {
            if head.contains(col) || self.constant_columns.contains(col) {
                exempt_classes.insert(*class);
            }
        }

        // at(A*): the set of relation occurrences containing an attribute of the class.
        let mut at: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (col, class) in &classes {
            if exempt_classes.contains(class) {
                continue;
            }
            if let Some(rel) = owner.get(col) {
                at.entry(*class).or_default().insert(*rel);
            }
        }

        let sets: Vec<&BTreeSet<usize>> = at.values().collect();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let (a, b) = (sets[i], sets[j]);
                let disjoint = a.is_disjoint(b);
                let nested = a.is_subset(b) || b.is_subset(a);
                if !disjoint && !nested {
                    return false;
                }
            }
        }
        true
    }

    /// True if every head attribute is a *root* attribute: its equivalence class has
    /// an attribute in every relation occurrence.
    pub fn head_attributes_are_roots(&self) -> bool {
        let owner = self.column_owner();
        let classes = self.equivalence_classes();
        let n = self.relations.len();
        let Some(head) = &self.head else {
            return true;
        };
        // at over all classes, including head classes.
        let mut at: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (col, class) in &classes {
            if let Some(rel) = owner.get(col) {
                at.entry(*class).or_default().insert(*rel);
            }
        }
        head.iter().all(|col| {
            classes
                .get(col)
                .and_then(|class| at.get(class))
                .map(|rels| rels.len() == n)
                .unwrap_or(false)
        })
    }
}

/// Flatten a query into an [`SpjBlock`] if it is a select–project–join (with renames)
/// over base tables. Returns `None` for queries containing union or aggregation.
pub fn flatten_spj(query: &Query, db: &Database) -> Option<SpjBlock> {
    let mut block = SpjBlock::default();
    collect_spj(query, db, &mut block, &mut Vec::new())?;
    Some(block)
}

fn collect_spj(
    query: &Query,
    db: &Database,
    block: &mut SpjBlock,
    renames: &mut Vec<(String, String)>,
) -> Option<()> {
    match query {
        Query::Table(name) => {
            let table = db.table(name)?;
            let mut cols: Vec<String> = table
                .schema
                .names()
                .into_iter()
                .map(str::to_string)
                .collect();
            // Apply any renames collected on the way down.
            for (old, new) in renames.iter() {
                for c in cols.iter_mut() {
                    if c == old {
                        *c = new.clone();
                    }
                }
            }
            block.relations.push((name.clone(), cols));
            Some(())
        }
        Query::Rename(mapping, input) => {
            let mut inner_renames = renames.clone();
            inner_renames.extend(mapping.iter().cloned());
            collect_spj(input, db, block, &mut inner_renames)
        }
        Query::Product(a, b) => {
            collect_spj(a, db, block, renames)?;
            collect_spj(b, db, block, renames)
        }
        Query::Select(pred, input) => {
            collect_predicate(pred, block)?;
            collect_spj(input, db, block, renames)
        }
        Query::Project(cols, input) => {
            // Only the outermost projection defines the head.
            if block.head.is_none() {
                block.head = Some(cols.clone());
            }
            collect_spj(input, db, block, renames)
        }
        Query::Union(..) | Query::GroupAgg { .. } => None,
    }
}

fn collect_predicate(pred: &Predicate, block: &mut SpjBlock) -> Option<()> {
    match pred {
        Predicate::ColEqCol(a, b) => {
            block.equalities.push((a.clone(), b.clone()));
            Some(())
        }
        Predicate::ColCmpConst(a, _, _) => {
            block.constant_columns.insert(a.clone());
            Some(())
        }
        Predicate::And(ps) => {
            for p in ps {
                collect_predicate(p, block)?;
            }
            Some(())
        }
        // Predicates over aggregation attributes cannot occur inside an SPJ block.
        Predicate::AggCmpConst(..) | Predicate::AggCmpAgg(..) | Predicate::AggCmpCol(..) => None,
    }
}

/// Classify a query into `Q_ind` / `Q_hie` / `General` (Definitions 8 and 9).
pub fn classify(query: &Query, db: &Database) -> QueryClass {
    if !query.is_non_repeating() {
        return QueryClass::General;
    }
    // Base case: a tuple-independent base relation is in Q_ind.
    if let Query::Table(name) = query {
        if db
            .table(name)
            .map(|t| t.is_tuple_independent())
            .unwrap_or(false)
        {
            return QueryClass::Qind;
        }
        return QueryClass::General;
    }
    // Hierarchical SPJ over base tables (Definition 9.2 / 8.2b).
    if let Some(block) = flatten_spj(query, db) {
        if block.is_hierarchical() {
            return if block.head_attributes_are_roots() {
                QueryClass::Qind
            } else {
                QueryClass::Qhie
            };
        }
        return QueryClass::General;
    }
    // Aggregation over a hierarchical SPJ block, optionally followed by projection on
    // the group-by attributes and selections on the aggregate (Definitions 8.2a, 9.1).
    match query {
        Query::Project(cols, inner) => {
            // π over a query whose result columns include aggregation attributes is
            // still tractable if the inner query is; the projection only sums
            // annotations of independent tuples.
            let class = classify(inner, db);
            if class == QueryClass::General {
                return QueryClass::General;
            }
            let _ = cols;
            class
        }
        Query::Select(pred, inner) => {
            // Selections comparing an aggregate with a constant keep the class
            // (Definition 8.2a); comparisons between two aggregates require both to be
            // over independent inputs (8.2c) — approximated by requiring Qind.
            let class = classify(inner, db);
            match pred {
                Predicate::AggCmpConst(..)
                | Predicate::ColCmpConst(..)
                | Predicate::ColEqCol(..) => class,
                Predicate::AggCmpAgg(..) | Predicate::AggCmpCol(..) => {
                    if class == QueryClass::Qind {
                        QueryClass::Qind
                    } else {
                        QueryClass::General
                    }
                }
                Predicate::And(_) => class,
            }
        }
        Query::GroupAgg {
            group_by, input, ..
        } => {
            // $_{A̅; γ←AGG(C)}[σ_ψ(Q1 × … × Qn)] with the underlying π_{A̅}σ_ψ(…)
            // hierarchical is in Q_hie (Definition 9.1).
            let mut probe = (**input).clone();
            probe = Query::Project(group_by.clone(), Box::new(probe));
            if let Some(block) = flatten_spj(&probe, db) {
                if block.is_hierarchical() {
                    if group_by.is_empty() {
                        // Aggregation without grouping over a hierarchical block
                        // (the Ré–Suciu HAVING-style queries) yields a single tuple.
                        return QueryClass::Qind;
                    }
                    return QueryClass::Qhie;
                }
                return QueryClass::General;
            }
            // Aggregation over a Q_ind sub-query (Definition 8.2a).
            match classify(input, db) {
                QueryClass::Qind => QueryClass::Qind,
                _ => QueryClass::General,
            }
        }
        Query::Union(a, b) => {
            // A union of independent tractable queries over disjoint relations stays
            // tractable; conservatively require both operands to be classified.
            let (ca, cb) = (classify(a, db), classify(b, db));
            if ca != QueryClass::General && cb != QueryClass::General {
                QueryClass::Qhie
            } else {
                QueryClass::General
            }
        }
        _ => QueryClass::General,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggSpec;
    use crate::schema::Schema;
    use pvc_algebra::AggOp;

    fn db_rst() -> Database {
        let mut db = Database::new();
        db.create_table("R", Schema::new(["r_x"]));
        db.create_table("S", Schema::new(["s_x", "s_y"]));
        db.create_table("T", Schema::new(["t_y"]));
        for name in ["R", "S", "T"] {
            let (t, vars) = db.table_and_vars_mut(name).unwrap();
            let arity = t.schema.arity();
            t.push_independent(vec![1i64.into(); arity], 0.5, vars);
        }
        db
    }

    #[test]
    fn hierarchical_two_way_join() {
        // π_∅ σ_{r_x = s_x}(R × S) is hierarchical.
        let db = db_rst();
        let q = Query::table("R")
            .join(Query::table("S"), &[("r_x", "s_x")])
            .project(Vec::<String>::new());
        let block = flatten_spj(&q, &db).unwrap();
        assert!(block.is_hierarchical());
        // An empty head is vacuously made of root attributes (Definition 8.2b), so the
        // Boolean hierarchical query lands in Q_ind (⊂ Q_hie).
        assert_eq!(classify(&q, &db), QueryClass::Qind);
    }

    #[test]
    fn non_hierarchical_rst_pattern() {
        // π_∅ σ_{r_x = s_x ∧ s_y = t_y}(R × S × T): the classic non-hierarchical
        // (hard) pattern — at(x*) = {R,S} and at(y*) = {S,T} overlap without nesting.
        let db = db_rst();
        let q = Query::table("R")
            .product(Query::table("S"))
            .product(Query::table("T"))
            .select(Predicate::And(vec![
                Predicate::eq_col("r_x", "s_x"),
                Predicate::eq_col("s_y", "t_y"),
            ]))
            .project(Vec::<String>::new());
        let block = flatten_spj(&q, &db).unwrap();
        assert!(!block.is_hierarchical());
        assert_eq!(classify(&q, &db), QueryClass::General);
    }

    #[test]
    fn head_variables_make_queries_independent() {
        // π_{s_x} σ_{r_x = s_x}(R × S): the head attribute is a root attribute, so the
        // result tuples are independent.
        let db = db_rst();
        let q = Query::table("R")
            .join(Query::table("S"), &[("r_x", "s_x")])
            .project(["s_x"]);
        assert_eq!(classify(&q, &db), QueryClass::Qind);
    }

    #[test]
    fn base_tables_and_repeats() {
        let db = db_rst();
        assert_eq!(classify(&Query::table("R"), &db), QueryClass::Qind);
        let repeated = Query::table("R").product(Query::table("R").rename(&[("r_x", "r_x2")]));
        assert_eq!(classify(&repeated, &db), QueryClass::General);
    }

    #[test]
    fn aggregation_over_hierarchical_join_is_qhie() {
        // Example 14: $_{∅; α←SUM(price)}(σ_{shop='M&S'}(S) ⋈ PS).
        let db = crate::exec::tests::figure1_db();
        let q = Query::table("S")
            .select(Predicate::eq_const("shop", "M&S"))
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .group_agg(
                Vec::<String>::new(),
                vec![AggSpec::new(AggOp::Sum, "price", "alpha")],
            );
        assert_eq!(classify(&q, &db), QueryClass::Qind);
        // Grouped variant is Q_hie.
        let q = Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")]);
        assert_eq!(classify(&q, &db), QueryClass::Qhie);
    }

    #[test]
    fn selection_on_aggregate_keeps_class() {
        let db = crate::exec::tests::figure1_db();
        let q = Query::table("PS")
            .group_agg(["ps_sid"], vec![AggSpec::new(AggOp::Min, "price", "m")])
            .select(Predicate::AggCmpConst(
                "m".into(),
                pvc_algebra::CmpOp::Le,
                20,
            ));
        assert_ne!(classify(&q, &db), QueryClass::General);
    }

    #[test]
    fn constants_are_exempt_from_hierarchy() {
        // σ_{s_y = 3 ∧ r_x = s_x}(R × S) projected to ∅: y is bound to a constant and
        // does not break the hierarchy.
        let db = db_rst();
        let q = Query::table("R")
            .product(Query::table("S"))
            .select(Predicate::And(vec![
                Predicate::eq_col("r_x", "s_x"),
                Predicate::eq_const("s_y", 3i64),
            ]))
            .project(Vec::<String>::new());
        let block = flatten_spj(&q, &db).unwrap();
        assert!(block.is_hierarchical());
    }
}
