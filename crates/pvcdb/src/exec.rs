//! Query evaluation, step I: computing the tuples of the query result together with
//! their semiring annotations and semimodule values — the rewriting `⟦·⟧` of Fig. 4 of
//! the paper, executed directly over in-memory pvc-tables.
//!
//! * joint use of data (product/join) multiplies annotations;
//! * alternative use of data (projection/union) sums annotations;
//! * selection multiplies the annotation with a conditional expression when the
//!   predicate involves aggregation attributes, and plainly filters otherwise;
//! * the `$` operator builds semimodule expressions `Σ_AGG Φ_t ⊗ v_t` per group and
//!   annotates grouped results with the group-non-emptiness condition
//!   `[(Σ_K Φ_t) ≠ 0_K]`.

use crate::database::Database;
use crate::error::Error;
use crate::query::{AggSpec, Predicate, Query, QueryError};
use crate::relation::{PvcTable, Tuple};
use crate::schema::{Column, Schema};
use crate::value::{KeyValue, Value};
use pvc_algebra::{CmpOp, MonoidValue, SemiringKind};
use pvc_expr::{SemimoduleExpr, SemiringExpr};
use std::collections::BTreeMap;

/// Evaluate a query over a pvc-database, producing the result pvc-table (tuples with
/// annotations and semimodule values, but no probabilities yet).
///
/// The query is validated first (the checks of Definition 5); validation failures,
/// unknown tables and type mismatches are reported as [`Error`] values rather than
/// panics. This is step I of the engine; prefer [`crate::Engine::prepare`] when the
/// same query is executed more than once.
pub fn try_evaluate(db: &Database, query: &Query) -> Result<PvcTable, Error> {
    let schema = query.output_schema(db).map_err(Error::Validation)?;
    let mut result = evaluate_rec(db, query)?;
    result.schema = schema;
    result.name = "result".to_string();
    Ok(result)
}

/// Step I without the upfront validation walk, for queries that have already been
/// validated by [`crate::Engine::prepare`] (the caller stamps the plan's schema and
/// result name). Runtime failures (unknown tables raced away, type mismatches) are
/// still reported as [`Error`] values.
pub(crate) fn rewrite_planned(db: &Database, query: &Query) -> Result<PvcTable, Error> {
    evaluate_rec(db, query)
}

/// Evaluate a query, panicking on invalid input.
#[deprecated(
    since = "0.2.0",
    note = "use `try_evaluate`, or `Engine::prepare(..)?.execute(..)?` for the full pipeline"
)]
pub fn evaluate(db: &Database, query: &Query) -> PvcTable {
    match try_evaluate(db, query) {
        Ok(table) => table,
        Err(e) => panic!("query evaluation failed: {e}"),
    }
}

fn evaluate_rec(db: &Database, query: &Query) -> Result<PvcTable, Error> {
    let kind = db.kind;
    match query {
        Query::Table(name) => Ok(db.table_or_err(name)?.clone()),
        Query::Rename(mapping, input) => {
            let mut table = evaluate_rec(db, input)?;
            for (old, new) in mapping {
                table.schema = table
                    .schema
                    .try_rename(old, new)
                    .map_err(|c| Error::Validation(QueryError::UnknownColumn(c)))?;
            }
            Ok(table)
        }
        Query::Select(pred, input) => {
            // Peephole optimisation: `σ_{… ∧ A=B ∧ …}(Q1 × Q2)` with `A` from `Q1` and
            // `B` from `Q2` is executed as a hash equi-join instead of materialising
            // the full cross product. The produced tuples and annotations are exactly
            // those of the Fig. 4 rewriting — only the evaluation order changes.
            if let Query::Product(a, b) = input.as_ref() {
                let ta = evaluate_rec(db, a)?;
                let tb = evaluate_rec(db, b)?;
                if let Some((pairs, rest)) = split_equijoin_predicate(pred, &ta, &tb) {
                    let joined = eval_hash_join(&ta, &tb, &pairs);
                    return match rest {
                        Some(p) => eval_select(&joined, &p, kind),
                        None => Ok(joined),
                    };
                }
                let product = eval_product(&ta, &tb);
                return eval_select(&product, pred, kind);
            }
            let table = evaluate_rec(db, input)?;
            eval_select(&table, pred, kind)
        }
        Query::Project(cols, input) => {
            let table = evaluate_rec(db, input)?;
            eval_project(&table, cols, kind)
        }
        Query::Product(a, b) => {
            let ta = evaluate_rec(db, a)?;
            let tb = evaluate_rec(db, b)?;
            Ok(eval_product(&ta, &tb))
        }
        Query::Union(a, b) => {
            let ta = evaluate_rec(db, a)?;
            let tb = evaluate_rec(db, b)?;
            eval_union(&ta, &tb, kind)
        }
        Query::GroupAgg {
            group_by,
            aggs,
            input,
        } => {
            let table = evaluate_rec(db, input)?;
            eval_group_agg(&table, group_by, aggs, kind)
        }
    }
}

/// The result of evaluating a predicate on one tuple.
enum PredOutcome {
    /// The tuple is kept unchanged.
    Keep,
    /// The tuple is dropped.
    Drop,
    /// The tuple is kept with its annotation multiplied by a conditional expression.
    Conditional(SemiringExpr),
}

fn eval_select(table: &PvcTable, pred: &Predicate, kind: SemiringKind) -> Result<PvcTable, Error> {
    let mut out = PvcTable::new(table.name.clone(), table.schema.clone());
    for tuple in &table.tuples {
        match eval_predicate(table, tuple, pred, kind)? {
            PredOutcome::Drop => {}
            PredOutcome::Keep => out.tuples.push(tuple.clone()),
            PredOutcome::Conditional(cond) => {
                let annotation = tuple.annotation.clone() * cond;
                out.tuples
                    .push(Tuple::new(tuple.values.clone(), annotation));
            }
        }
    }
    Ok(out)
}

/// Resolve a column name against a schema, reporting unknown columns through the
/// [`Error`] contract instead of panicking. Queries are validated by
/// `Engine::prepare`, so a miss here indicates a schema raced away underneath a
/// prepared query — still an error, never an abort.
fn col_index(schema: &Schema, column: &str) -> Result<usize, Error> {
    schema
        .index_of(column)
        .ok_or_else(|| Error::Validation(QueryError::UnknownColumn(column.to_string())))
}

fn cell<'a>(table: &PvcTable, tuple: &'a Tuple, column: &str) -> Result<&'a Value, Error> {
    Ok(&tuple.values[col_index(&table.schema, column)?])
}

/// Fetch a cell that must hold a semimodule expression (an aggregation attribute).
fn agg_cell(table: &PvcTable, tuple: &Tuple, column: &str) -> Result<SemimoduleExpr, Error> {
    cell(table, tuple, column)?
        .as_agg()
        .cloned()
        .ok_or_else(|| Error::Validation(QueryError::PredicateSortMismatch(column.to_string())))
}

fn eval_predicate(
    table: &PvcTable,
    tuple: &Tuple,
    pred: &Predicate,
    kind: SemiringKind,
) -> Result<PredOutcome, Error> {
    Ok(match pred {
        Predicate::ColEqCol(a, b) => {
            let (va, vb) = (cell(table, tuple, a)?, cell(table, tuple, b)?);
            keep_if(va.key() == vb.key())
        }
        Predicate::ColCmpConst(a, theta, c) => {
            let va = cell(table, tuple, a)?;
            keep_if(theta.eval(&va.key(), &c.key()))
        }
        Predicate::AggCmpConst(alpha, theta, c) => {
            let expr = agg_cell(table, tuple, alpha)?;
            let constant = SemimoduleExpr::constant_in(expr.op, MonoidValue::Fin(*c), kind);
            PredOutcome::Conditional(SemiringExpr::cmp_mm(*theta, expr, constant))
        }
        Predicate::AggCmpAgg(alpha, theta, beta) => {
            let lhs = agg_cell(table, tuple, alpha)?;
            let rhs = agg_cell(table, tuple, beta)?;
            PredOutcome::Conditional(SemiringExpr::cmp_mm(*theta, lhs, rhs))
        }
        Predicate::AggCmpCol(alpha, theta, col) => {
            let lhs = agg_cell(table, tuple, alpha)?;
            let c = cell(table, tuple, col)?
                .as_int()
                .ok_or_else(|| Error::TypeMismatch {
                    column: col.to_string(),
                    expected: "an integer data column",
                })?;
            let constant = SemimoduleExpr::constant_in(lhs.op, MonoidValue::Fin(c), kind);
            PredOutcome::Conditional(SemiringExpr::cmp_mm(*theta, lhs, constant))
        }
        Predicate::And(ps) => {
            let mut conditions: Vec<SemiringExpr> = Vec::new();
            for p in ps {
                match eval_predicate(table, tuple, p, kind)? {
                    PredOutcome::Drop => return Ok(PredOutcome::Drop),
                    PredOutcome::Keep => {}
                    PredOutcome::Conditional(c) => conditions.push(c),
                }
            }
            if conditions.is_empty() {
                PredOutcome::Keep
            } else {
                PredOutcome::Conditional(SemiringExpr::product(conditions))
            }
        }
    })
}

fn keep_if(cond: bool) -> PredOutcome {
    if cond {
        PredOutcome::Keep
    } else {
        PredOutcome::Drop
    }
}

fn eval_project(table: &PvcTable, cols: &[String], kind: SemiringKind) -> Result<PvcTable, Error> {
    let indices: Vec<usize> = cols
        .iter()
        .map(|c| col_index(&table.schema, c))
        .collect::<Result<_, _>>()?;
    let schema = table
        .schema
        .try_project(cols)
        .map_err(|c| Error::Validation(QueryError::UnknownColumn(c)))?;
    let mut groups: BTreeMap<Vec<KeyValue>, (Vec<Value>, Vec<SemiringExpr>)> = BTreeMap::new();
    for tuple in &table.tuples {
        let projected: Vec<Value> = indices.iter().map(|i| tuple.values[*i].clone()).collect();
        let key: Vec<KeyValue> = projected.iter().map(Value::key).collect();
        groups
            .entry(key)
            .or_insert_with(|| (projected, Vec::new()))
            .1
            .push(tuple.annotation.clone());
    }
    let mut out = PvcTable::new(table.name.clone(), schema);
    for (_, (values, annotations)) in groups {
        let annotation = SemiringExpr::sum(annotations).simplify(kind);
        out.tuples.push(Tuple::new(values, annotation));
    }
    Ok(out)
}

/// Split a selection over a product into equi-join pairs `(left index, right index)`
/// (already resolved against the operand schemas, so the join itself cannot fail)
/// and the remaining predicate. Returns `None` if no cross-operand equality is found.
type EquijoinSplit = (Vec<(usize, usize)>, Option<Predicate>);

fn split_equijoin_predicate(
    pred: &Predicate,
    left: &PvcTable,
    right: &PvcTable,
) -> Option<EquijoinSplit> {
    let atoms: Vec<Predicate> = match pred {
        Predicate::And(ps) => ps.clone(),
        other => vec![other.clone()],
    };
    let mut pairs = Vec::new();
    let mut rest = Vec::new();
    for atom in atoms {
        match &atom {
            Predicate::ColEqCol(a, b) => {
                match (
                    left.schema.index_of(a),
                    right.schema.index_of(b),
                    left.schema.index_of(b),
                    right.schema.index_of(a),
                ) {
                    (Some(la), Some(rb), _, _) => pairs.push((la, rb)),
                    (_, _, Some(lb), Some(ra)) => pairs.push((lb, ra)),
                    _ => rest.push(atom),
                }
            }
            _ => rest.push(atom),
        }
    }
    if pairs.is_empty() {
        return None;
    }
    let rest = match rest.len() {
        0 => None,
        1 => rest.pop(),
        _ => Some(Predicate::And(rest)),
    };
    Some((pairs, rest))
}

/// Hash equi-join: equivalent to `σ_{⋀ L=R}(left × right)` but in time proportional to
/// the input plus output size.
fn eval_hash_join(left: &PvcTable, right: &PvcTable, pairs: &[(usize, usize)]) -> PvcTable {
    let schema = left
        .schema
        .try_concat(&right.schema)
        .unwrap_or_else(|dup| panic!("duplicate column `{dup}` in validated join"));
    let left_idx: Vec<usize> = pairs.iter().map(|(l, _)| *l).collect();
    let right_idx: Vec<usize> = pairs.iter().map(|(_, r)| *r).collect();
    let mut index: BTreeMap<Vec<KeyValue>, Vec<usize>> = BTreeMap::new();
    for (row, tuple) in right.tuples.iter().enumerate() {
        let key: Vec<KeyValue> = right_idx.iter().map(|i| tuple.values[*i].key()).collect();
        index.entry(key).or_default().push(row);
    }
    let mut out = PvcTable::new(format!("{}x{}", left.name, right.name), schema);
    for ltuple in &left.tuples {
        let key: Vec<KeyValue> = left_idx.iter().map(|i| ltuple.values[*i].key()).collect();
        if let Some(rows) = index.get(&key) {
            for &row in rows {
                let rtuple = &right.tuples[row];
                let mut values = ltuple.values.clone();
                values.extend(rtuple.values.iter().cloned());
                let annotation = ltuple.annotation.clone() * rtuple.annotation.clone();
                out.tuples.push(Tuple::new(values, annotation));
            }
        }
    }
    out
}

fn eval_product(a: &PvcTable, b: &PvcTable) -> PvcTable {
    let schema = a
        .schema
        .try_concat(&b.schema)
        .unwrap_or_else(|dup| panic!("duplicate column `{dup}` in validated product"));
    let mut out = PvcTable::new(format!("{}x{}", a.name, b.name), schema);
    for ta in &a.tuples {
        for tb in &b.tuples {
            let mut values = ta.values.clone();
            values.extend(tb.values.iter().cloned());
            let annotation = ta.annotation.clone() * tb.annotation.clone();
            out.tuples.push(Tuple::new(values, annotation));
        }
    }
    out
}

fn eval_union(a: &PvcTable, b: &PvcTable, kind: SemiringKind) -> Result<PvcTable, Error> {
    if a.schema.names() != b.schema.names() {
        return Err(Error::Validation(QueryError::UnionSchemaMismatch));
    }
    let mut groups: BTreeMap<Vec<KeyValue>, (Vec<Value>, Vec<SemiringExpr>)> = BTreeMap::new();
    for tuple in a.tuples.iter().chain(b.tuples.iter()) {
        let key: Vec<KeyValue> = tuple.values.iter().map(Value::key).collect();
        groups
            .entry(key)
            .or_insert_with(|| (tuple.values.clone(), Vec::new()))
            .1
            .push(tuple.annotation.clone());
    }
    let mut out = PvcTable::new(format!("{}u{}", a.name, b.name), a.schema.clone());
    for (_, (values, annotations)) in groups {
        let annotation = SemiringExpr::sum(annotations).simplify(kind);
        out.tuples.push(Tuple::new(values, annotation));
    }
    Ok(out)
}

fn eval_group_agg(
    table: &PvcTable,
    group_by: &[String],
    aggs: &[AggSpec],
    kind: SemiringKind,
) -> Result<PvcTable, Error> {
    let group_indices: Vec<usize> = group_by
        .iter()
        .map(|c| col_index(&table.schema, c))
        .collect::<Result<_, _>>()?;
    let mut columns: Vec<Column> = group_indices
        .iter()
        .map(|&i| table.schema.columns()[i].clone())
        .collect();
    columns.extend(aggs.iter().map(|a| Column::aggregation(a.alias.clone())));
    let schema = Schema::from_columns(columns);
    let mut out = PvcTable::new(table.name.clone(), schema);

    // Group tuples by the values of the group-by attributes.
    let mut groups: BTreeMap<Vec<KeyValue>, (Vec<Value>, Vec<usize>)> = BTreeMap::new();
    for (row, tuple) in table.tuples.iter().enumerate() {
        let key_values: Vec<Value> = group_indices
            .iter()
            .map(|i| tuple.values[*i].clone())
            .collect();
        let key: Vec<KeyValue> = key_values.iter().map(Value::key).collect();
        groups
            .entry(key)
            .or_insert_with(|| (key_values, Vec::new()))
            .1
            .push(row);
    }

    // With an empty group-by list, there is always exactly one (possibly empty) group;
    // its annotation is 1_K (Fig. 4, second `$` rule).
    if group_by.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), (Vec::new(), Vec::new()));
    }

    for (_, (key_values, rows)) in groups {
        let mut values = key_values;
        for spec in aggs {
            values.push(Value::Agg(build_aggregate(table, &rows, spec)?));
        }
        let annotation = if group_by.is_empty() {
            SemiringExpr::Const(kind.one())
        } else {
            // [(Σ_K Φ_t) ≠ 0_K]
            let sum = SemiringExpr::sum(
                rows.iter()
                    .map(|r| table.tuples[*r].annotation.clone())
                    .collect(),
            );
            SemiringExpr::cmp_ss(CmpOp::Ne, sum, SemiringExpr::Const(kind.zero()))
        };
        out.tuples.push(Tuple::new(values, annotation));
    }
    Ok(out)
}

/// Build `Γ = Σ_AGG (Φ_t ⊗ v_t)` over the rows of one group (Fig. 4).
fn build_aggregate(
    table: &PvcTable,
    rows: &[usize],
    spec: &AggSpec,
) -> Result<SemimoduleExpr, Error> {
    let mut expr = SemimoduleExpr::zero(spec.op);
    for &row in rows {
        let tuple = &table.tuples[row];
        let value = match &spec.column {
            None => MonoidValue::Fin(1),
            Some(col) => {
                if spec.op.is_count() {
                    MonoidValue::Fin(1)
                } else {
                    cell(table, tuple, col)?.as_monoid_value().ok_or_else(|| {
                        Error::TypeMismatch {
                            column: col.clone(),
                            expected: "integer constants under aggregation",
                        }
                    })?
                }
            }
        };
        expr.push(tuple.annotation.clone(), value);
    }
    Ok(expr)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::query::Query;
    use pvc_algebra::{AggOp, SemiringValue};
    use pvc_expr::oracle::confidence_by_enumeration;

    /// Build the paper's Figure 1 database: suppliers S, product-suppliers PS and the
    /// products tables P1, P2, with all variables at probability 0.5.
    pub(crate) fn figure1_db() -> Database {
        let mut db = Database::new();
        db.create_table("S", Schema::new(["sid", "shop"]));
        db.create_table("PS", Schema::new(["ps_sid", "ps_pid", "price"]));
        db.create_table("P1", Schema::new(["pid", "weight"]));
        db.create_table("P2", Schema::new(["pid", "weight"]));
        {
            let (s, vars) = db.table_and_vars_mut("S").unwrap();
            for (sid, shop) in [(1, "M&S"), (2, "M&S"), (3, "M&S"), (4, "Gap"), (5, "Gap")] {
                s.push_independent(vec![(sid as i64).into(), shop.into()], 0.5, vars);
            }
        }
        {
            let (ps, vars) = db.table_and_vars_mut("PS").unwrap();
            for (sid, pid, price) in [
                (1, 1, 10),
                (1, 2, 50),
                (2, 1, 11),
                (2, 2, 60),
                (3, 3, 15),
                (3, 4, 40),
                (4, 1, 15),
                (4, 3, 60),
                (5, 1, 10),
            ] {
                ps.push_independent(
                    vec![
                        (sid as i64).into(),
                        (pid as i64).into(),
                        (price as i64).into(),
                    ],
                    0.5,
                    vars,
                );
            }
        }
        {
            let (p1, vars) = db.table_and_vars_mut("P1").unwrap();
            for (pid, weight) in [(1, 4), (2, 8), (3, 7), (4, 6)] {
                p1.push_independent(vec![(pid as i64).into(), (weight as i64).into()], 0.5, vars);
            }
        }
        {
            let (p2, vars) = db.table_and_vars_mut("P2").unwrap();
            p2.push_independent(vec![1i64.into(), 5i64.into()], 0.5, vars);
        }
        db
    }

    /// The paper's query Q1 = π_{shop, price}[S ⋈ PS ⋈ (P1 ∪ P2)].
    pub(crate) fn paper_q1() -> Query {
        let products = Query::table("P1").union(Query::table("P2"));
        Query::table("S")
            .join(Query::table("PS"), &[("sid", "ps_sid")])
            .join(
                products.rename(&[("pid", "p_pid"), ("weight", "p_weight")]),
                &[("ps_pid", "p_pid")],
            )
            .project(["shop", "price"])
    }

    #[test]
    fn figure1_q1_result() {
        let db = figure1_db();
        let result = try_evaluate(&db, &paper_q1()).unwrap();
        // Figure 1d lists 9 result tuples: 6 for M&S and 3 for Gap.
        assert_eq!(result.len(), 9);
        let m_and_s = result
            .iter()
            .filter(|t| t.values[0].as_str() == Some("M&S"))
            .count();
        assert_eq!(m_and_s, 6);
        // The ⟨M&S, 10⟩ tuple is annotated with x1·y11·(z1 + z5): a product of the
        // supplier, the offer, and the sum of the two product alternatives.
        let t = result
            .iter()
            .find(|t| t.values[0].as_str() == Some("M&S") && t.values[1].as_int() == Some(10))
            .unwrap();
        let vars = t.annotation.vars();
        assert_eq!(vars.len(), 4);
        // Its confidence is P[x1]·P[y11]·(1 − (1−P[z1])(1−P[z5])) = 0.5·0.5·0.75.
        let p = confidence_by_enumeration(&t.annotation, &db.vars, db.kind);
        assert!((p - 0.1875).abs() < 1e-9);
    }

    #[test]
    fn figure1_q2_annotations() {
        // Q2 = π_shop σ_{P ≤ 50} $_{shop; P ← MAX(price)}[Q1].
        let db = figure1_db();
        let q2 = paper_q1()
            .group_agg(["shop"], vec![AggSpec::new(AggOp::Max, "price", "P")])
            .select(Predicate::AggCmpConst("P".into(), CmpOp::Le, 50))
            .project(["shop"]);
        let result = try_evaluate(&db, &q2).unwrap();
        assert_eq!(result.len(), 2);
        for t in result.iter() {
            // Each annotation is [α ≤ 50] · [Σ Φ ≠ 0] — a product of two conditionals.
            match &t.annotation {
                SemiringExpr::Mul(children) => assert_eq!(children.len(), 2),
                other => panic!("expected a product annotation, got {other}"),
            }
        }
    }

    #[test]
    fn example_8_aggregation_without_grouping() {
        // $_{∅; α←AGG(weight)}(P1) produces a single tuple annotated 1_K whose value is
        // z1⊗4 + z2⊗8 + z3⊗7 + z4⊗6.
        let db = figure1_db();
        let q = Query::table("P1").group_agg(
            Vec::<String>::new(),
            vec![AggSpec::new(AggOp::Sum, "weight", "alpha")],
        );
        let result = try_evaluate(&db, &q).unwrap();
        assert_eq!(result.len(), 1);
        let tuple = &result.tuples[0];
        assert_eq!(
            tuple.annotation,
            SemiringExpr::Const(SemiringValue::Bool(true))
        );
        let alpha = tuple.values[0].as_agg().unwrap();
        assert_eq!(alpha.num_terms(), 4);
        assert_eq!(alpha.op, AggOp::Sum);
    }

    #[test]
    fn aggregation_without_grouping_on_empty_input() {
        // The result still contains one tuple whose aggregate is the neutral element.
        let mut db = Database::new();
        db.create_table("E", Schema::new(["v"]));
        let q = Query::table("E").group_agg(
            Vec::<String>::new(),
            vec![AggSpec::new(AggOp::Min, "v", "m"), AggSpec::count("c")],
        );
        let result = try_evaluate(&db, &q).unwrap();
        assert_eq!(result.len(), 1);
        let m = result.tuples[0].values[0].as_agg().unwrap();
        assert_eq!(m.num_terms(), 0);
        assert_eq!(m.op, AggOp::Min);
    }

    #[test]
    fn projection_sums_annotations() {
        let db = figure1_db();
        // π_shop(S): shop M&S is derived from three suppliers — annotation x1+x2+x3.
        let q = Query::table("S").project(["shop"]);
        let result = try_evaluate(&db, &q).unwrap();
        assert_eq!(result.len(), 2);
        let mands = result
            .iter()
            .find(|t| t.values[0].as_str() == Some("M&S"))
            .unwrap();
        assert_eq!(mands.annotation.vars().len(), 3);
        let p = confidence_by_enumeration(&mands.annotation, &db.vars, db.kind);
        assert!((p - (1.0 - 0.5f64.powi(3))).abs() < 1e-9);
    }

    #[test]
    fn union_merges_duplicates() {
        let mut db = Database::new();
        db.create_table("A", Schema::new(["pid"]));
        db.create_table("B", Schema::new(["pid"]));
        {
            let (a, vars) = db.table_and_vars_mut("A").unwrap();
            a.push_independent(vec![1i64.into()], 0.5, vars);
            a.push_independent(vec![2i64.into()], 0.5, vars);
        }
        {
            let (b, vars) = db.table_and_vars_mut("B").unwrap();
            b.push_independent(vec![1i64.into()], 0.5, vars);
        }
        let result = try_evaluate(&db, &Query::table("A").union(Query::table("B"))).unwrap();
        assert_eq!(result.len(), 2);
        let one = result
            .iter()
            .find(|t| t.values[0].as_int() == Some(1))
            .unwrap();
        // Annotation of pid=1 is the sum of two variables.
        assert_eq!(one.annotation.vars().len(), 2);
    }

    #[test]
    fn selection_on_data_columns_filters() {
        let db = figure1_db();
        let q = Query::table("S").select(Predicate::eq_const("shop", "Gap"));
        let result = try_evaluate(&db, &q).unwrap();
        assert_eq!(result.len(), 2);
        let q = Query::table("PS").select(Predicate::ColCmpConst(
            "price".into(),
            CmpOp::Ge,
            Value::Int(50),
        ));
        let result = try_evaluate(&db, &q).unwrap();
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn count_aggregate_uses_unit_values() {
        let db = figure1_db();
        let q = Query::table("PS").group_agg(["ps_sid"], vec![AggSpec::count("cnt")]);
        let result = try_evaluate(&db, &q).unwrap();
        assert_eq!(result.len(), 5);
        for t in result.iter() {
            let cnt = t.values[1].as_agg().unwrap();
            assert!(cnt
                .terms
                .iter()
                .all(|term| term.value == MonoidValue::Fin(1)));
            assert_eq!(cnt.op, AggOp::Count);
        }
    }
}
